// AdaptivePolicy: seeded determinism of the set-dueling sample and the
// winner sequence, the phase-switch regression on the checked-in drift
// fixture, reset() reusability, and contract cleanliness under the
// simulator's invariant auditor.
#include "policies/adaptive.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/simulator.hpp"
#include "core/optgen.hpp"
#include "core/registry.hpp"
#include "testing/oracles.hpp"
#include "workload/trace.hpp"

namespace fbc {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(FBC_FIXTURE_DIR) + "/" + name;
}

struct DriftFixture {
  Trace trace;
  Bytes cache_bytes = 0;
};

DriftFixture load_drift_fixture() {
  DriftFixture f;
  f.trace = load_trace(fixture_path("optgen-drift-18.trace"));
  const std::string* cache_meta = f.trace.meta_value("cache_bytes");
  if (cache_meta == nullptr)
    throw std::runtime_error("drift fixture lost its cache_bytes meta");
  f.cache_bytes = std::stoull(*cache_meta);
  return f;
}

std::unique_ptr<AdaptivePolicy> make_adaptive(const Trace& trace,
                                              const AdaptiveConfig& config) {
  PolicyContext context;
  context.catalog = &trace.catalog;
  context.jobs = trace.jobs;
  std::vector<AdaptiveContender> contenders;
  for (const char* name : {"optfb", "landlord", "gdsf"}) {
    contenders.push_back(AdaptiveContender{name, make_policy(name, context),
                                           make_policy(name, context)});
  }
  const FileCatalog* catalog = &trace.catalog;
  AdaptivePolicy::OracleFactory oracle = [catalog](Bytes capacity) {
    auto gen =
        std::make_shared<BundleOPTgen>(*catalog, OptgenConfig{capacity, 4096});
    return [gen](const Request& r) { return gen->observe(r).opt_hit; };
  };
  return std::make_unique<AdaptivePolicy>(trace.catalog, config,
                                          std::move(contenders),
                                          std::move(oracle));
}

std::vector<std::size_t> run_and_collect_winners(const DriftFixture& f,
                                                 const AdaptiveConfig& config) {
  auto policy = make_adaptive(f.trace, config);
  SimulatorConfig sim;
  sim.cache_bytes = f.cache_bytes;
  sim.queue_length = 1;
  sim.warmup_jobs = 0;
  simulate(sim, f.trace.catalog, *policy, f.trace.jobs);
  const auto winners = policy->winner_history();
  return {winners.begin(), winners.end()};
}

TEST(AdaptivePolicyTest, RejectsEmptyOrHalfBuiltContenders) {
  FileCatalog catalog({1});
  EXPECT_THROW(AdaptivePolicy(catalog, AdaptiveConfig{}, {}, nullptr),
               std::invalid_argument);
  std::vector<AdaptiveContender> half;
  half.push_back(
      AdaptiveContender{"lru", make_policy("lru", PolicyContext{}), nullptr});
  EXPECT_THROW(
      AdaptivePolicy(catalog, AdaptiveConfig{}, std::move(half), nullptr),
      std::invalid_argument);
}

TEST(AdaptivePolicyTest, SamplingIsDeterministicAndRequestKeyed) {
  const DriftFixture f = load_drift_fixture();
  AdaptiveConfig config;
  config.sample_period = 4;
  auto policy = make_adaptive(f.trace, config);
  std::size_t in_sample = 0;
  for (const Request& job : f.trace.jobs) {
    const bool first = policy->sampled(job);
    EXPECT_EQ(first, policy->sampled(job));  // pure in the request
    if (first) ++in_sample;
  }
  // Hash sampling at period 4 keeps a nontrivial strict subset.
  EXPECT_GT(in_sample, 0u);
  EXPECT_LT(in_sample, f.trace.jobs.size());

  AdaptiveConfig always;
  always.sample_period = 1;
  auto full = make_adaptive(f.trace, always);
  for (const Request& job : f.trace.jobs) EXPECT_TRUE(full->sampled(job));
}

TEST(AdaptivePolicyTest, FixedSeedGivesIdenticalWinnerSequence) {
  const DriftFixture f = load_drift_fixture();
  AdaptiveConfig config;
  config.sample_period = 2;
  config.phase_jobs = 24;
  const std::vector<std::size_t> first = run_and_collect_winners(f, config);
  const std::vector<std::size_t> second = run_and_collect_winners(f, config);
  EXPECT_EQ(first, second);
  // Pinned at fixture introduction: landlord leads the first two phases,
  // optfb the middle ones, gdsf the last -- the drift's phase change is
  // visible in the election record.
  EXPECT_EQ(first, (std::vector<std::size_t>{1, 1, 0, 0, 0, 2}));
}

TEST(AdaptivePolicyTest, DriftFixtureSwitchesLeaders) {
  const DriftFixture f = load_drift_fixture();
  AdaptiveConfig config;
  config.sample_period = 2;
  config.phase_jobs = 24;
  const std::vector<std::size_t> winners = run_and_collect_winners(f, config);
  ASSERT_GE(winners.size(), 2u);
  bool switched = false;
  for (std::size_t i = 1; i < winners.size(); ++i) {
    if (winners[i] != winners[0]) switched = true;
  }
  EXPECT_TRUE(switched)
      << "drift fixture no longer forces a leader change";
}

TEST(AdaptivePolicyTest, ResetMakesTheDuelReplayable) {
  const DriftFixture f = load_drift_fixture();
  AdaptiveConfig config;
  config.sample_period = 2;
  config.phase_jobs = 24;
  auto policy = make_adaptive(f.trace, config);
  SimulatorConfig sim;
  sim.cache_bytes = f.cache_bytes;
  simulate(sim, f.trace.catalog, *policy, f.trace.jobs);
  const std::vector<std::size_t> first{policy->winner_history().begin(),
                                       policy->winner_history().end()};
  policy->reset();
  EXPECT_TRUE(policy->winner_history().empty());
  EXPECT_EQ(policy->leader(), 0u);
  simulate(sim, f.trace.catalog, *policy, f.trace.jobs);
  const std::vector<std::size_t> second{policy->winner_history().begin(),
                                        policy->winner_history().end()};
  EXPECT_EQ(first, second);
}

TEST(AdaptivePolicyTest, RegistryBuildsItCleanUnderTheAuditor) {
  const DriftFixture f = load_drift_fixture();
  SimulatorConfig sim;
  sim.cache_bytes = f.cache_bytes;
  sim.queue_length = 1;
  sim.warmup_jobs = 0;
  const std::vector<testing::Violation> violations =
      testing::check_simulation(f.trace, sim, "adaptive");
  for (const testing::Violation& v : violations) {
    ADD_FAILURE() << v.to_string();
  }
}

TEST(AdaptivePolicyTest, ExposesContenderNamesInRegistryOrder) {
  const DriftFixture f = load_drift_fixture();
  auto policy = make_adaptive(f.trace, AdaptiveConfig{});
  ASSERT_EQ(policy->contender_count(), 3u);
  EXPECT_EQ(policy->contender_name(0), "optfb");
  EXPECT_EQ(policy->contender_name(1), "landlord");
  EXPECT_EQ(policy->contender_name(2), "gdsf");
  EXPECT_EQ(policy->name(), "adaptive");
}

}  // namespace
}  // namespace fbc
