// Tests for the random-eviction baseline.
#include "policies/random_evict.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(RandomPolicy, FreesEnoughSpace) {
  FileCatalog catalog = unit_catalog(10);
  DiskCache cache(500, catalog);
  RandomPolicy policy(1);
  for (FileId id = 0; id < 5; ++id) cache.insert(id);
  const Request incoming({5, 6, 7});
  const auto victims = policy.select_victims(incoming, 300, cache);
  Bytes freed = 0;
  for (FileId v : victims) {
    EXPECT_TRUE(cache.contains(v));
    EXPECT_FALSE(incoming.contains(v));
    freed += catalog.size_of(v);
  }
  EXPECT_GE(freed, 300u);
}

TEST(RandomPolicy, NeverSelectsRequestedOrPinned) {
  FileCatalog catalog = unit_catalog(6);
  DiskCache cache(600, catalog);
  RandomPolicy policy(2);
  for (FileId id = 0; id < 6; ++id) cache.insert(id);
  cache.pin(3);
  const Request incoming({0, 1});
  for (int trial = 0; trial < 50; ++trial) {
    for (FileId v : policy.select_victims(incoming, 100, cache)) {
      EXPECT_NE(v, 0u);
      EXPECT_NE(v, 1u);
      EXPECT_NE(v, 3u);
    }
  }
  cache.unpin(3);
}

TEST(RandomPolicy, SameSeedSameChoices) {
  FileCatalog catalog = unit_catalog(8);
  auto run = [&](std::uint64_t seed) {
    DiskCache cache(800, catalog);
    for (FileId id = 0; id < 8; ++id) cache.insert(id);
    RandomPolicy policy(seed);
    return policy.select_victims(Request{}, 300, cache);
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(RandomPolicy, ChoicesVaryAcrossCalls) {
  FileCatalog catalog = unit_catalog(10);
  DiskCache cache(1000, catalog);
  for (FileId id = 0; id < 10; ++id) cache.insert(id);
  RandomPolicy policy(7);
  std::set<FileId> seen;
  for (int trial = 0; trial < 100; ++trial) {
    for (FileId v : policy.select_victims(Request{}, 100, cache)) {
      seen.insert(v);
    }
  }
  // Victims should spread over most of the cache, not fixate on one file.
  EXPECT_GE(seen.size(), 8u);
}

TEST(RandomPolicy, ExhaustionThrows) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(300, catalog);
  RandomPolicy policy(1);
  cache.insert(0);
  // Asking to free more than all evictable candidates can yield.
  EXPECT_THROW((void)policy.select_victims(Request{}, 500, cache),
               std::logic_error);
}

TEST(RandomPolicy, SimulatorChurn) {
  FileCatalog catalog = unit_catalog(10);
  RandomPolicy policy(3);
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 100; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 10)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 100u);
}

}  // namespace
}  // namespace fbc
