// Tests for the bundle-adapted Landlord policy (paper Algorithm 3).
#include "policies/landlord.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n, Bytes each = 100) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(each);
  return catalog;
}

/// Drives the policy through the simulator protocol by hand for scripted
/// assertions: serves one request against the cache.
void serve(LandlordPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    const Bytes needed = missing_bytes - cache.free_bytes();
    for (FileId v : policy.select_victims(r, needed, cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Landlord, FreshFilesGetFullCredit) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(300, catalog);
  LandlordPolicy policy;
  serve(policy, cache, Request({0, 1}));
  EXPECT_DOUBLE_EQ(policy.credit(0), 1.0);
  EXPECT_DOUBLE_EQ(policy.credit(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.credit(2), 0.0);  // untracked
}

TEST(Landlord, HitRefreshProtectsAgainstEviction) {
  // Uniform Landlord distinguishes files only once inflation has risen, so
  // first force an eviction, then check that a refreshed survivor outlives
  // an unrefreshed one.
  FileCatalog catalog = unit_catalog(5);
  DiskCache cache(300, catalog);
  LandlordPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  // Evicts an arbitrary victim V among {0,1,2}; the two survivors drop to
  // effective credit 0, file 3 enters at credit 1.
  serve(policy, cache, Request({3}));
  std::vector<FileId> survivors;
  for (FileId id : {0u, 1u, 2u}) {
    if (cache.contains(id)) survivors.push_back(id);
  }
  ASSERT_EQ(survivors.size(), 2u);
  const FileId refreshed = survivors[0];
  const FileId stale = survivors[1];
  EXPECT_NEAR(policy.credit(refreshed), 0.0, 1e-12);

  // A request-hit on `refreshed` pays its rent back up to 1.
  serve(policy, cache, Request({refreshed}));
  EXPECT_NEAR(policy.credit(refreshed), 1.0, 1e-12);
  EXPECT_NEAR(policy.credit(stale), 0.0, 1e-12);

  // The next admission must evict `stale`, the unique minimum.
  serve(policy, cache, Request({4}));
  EXPECT_FALSE(cache.contains(stale));
  EXPECT_TRUE(cache.contains(refreshed));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Landlord, UniformDecrementSemantics) {
  // After an eviction at minimum credit c, every remaining credit drops by
  // c (effective credits), matching "decrease all credits by the minimum".
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(200, catalog);
  LandlordPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  // All credits are 1; admitting {2} evicts one of {0,1} at credit 1 and
  // the survivor's effective credit becomes 0.
  serve(policy, cache, Request({2}));
  const FileId survivor = cache.contains(0) ? 0 : 1;
  EXPECT_NEAR(policy.credit(survivor), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(policy.credit(2), 1.0);
}

TEST(Landlord, NeverEvictsRequestedFiles) {
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LandlordPolicy policy;
  serve(policy, cache, Request({0, 1, 2}));
  // {0, 3}: needs 100 bytes; 0 is requested and must survive.
  serve(policy, cache, Request({0, 3}));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Landlord, SizeProportionalCreditsFavorLargeFiles) {
  // With ProportionalToSize credits, small files expire first.
  FileCatalog catalog;
  catalog.add_file(100);  // small
  catalog.add_file(400);  // large
  catalog.add_file(100);  // incoming
  DiskCache cache(500, catalog);
  LandlordPolicy policy(LandlordPolicy::CreditModel::ProportionalToSize);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));  // evicts the min-credit file: 0
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Landlord, NamesReflectModel) {
  EXPECT_EQ(LandlordPolicy().name(), "landlord");
  EXPECT_EQ(
      LandlordPolicy(LandlordPolicy::CreditModel::ProportionalToSize).name(),
      "landlord-size");
}

TEST(Landlord, ResetClearsState) {
  FileCatalog catalog = unit_catalog(2);
  DiskCache cache(200, catalog);
  LandlordPolicy policy;
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.credit(0), 0.0);
}

TEST(Landlord, SimulatorIntegrationNeverViolatesContract) {
  FileCatalog catalog = unit_catalog(20, 50);
  LandlordPolicy policy;
  SimulatorConfig config{.cache_bytes = 400};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 200; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 20),
                            static_cast<FileId>((3 * i + 1) % 20),
                            static_cast<FileId>((7 * i + 2) % 20)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 200u);
  EXPECT_GT(result.decisions, 0u);
}

}  // namespace
}  // namespace fbc
