// Tests for bundle-adapted LRU.
#include "policies/lru.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

void serve(LruPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LruPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({3}));  // evicts 0
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lru, HitRenewsRecency) {
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LruPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({0}));  // hit: 0 becomes most recent
  serve(policy, cache, Request({3}));  // evicts 1 (now the stalest)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, BundleTouchesAllItsFiles) {
  FileCatalog catalog = unit_catalog(5);
  DiskCache cache(400, catalog);
  LruPolicy policy;
  serve(policy, cache, Request({0, 1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({3}));
  serve(policy, cache, Request({0, 1}));  // hit: both 0 and 1 renewed
  serve(policy, cache, Request({4}));     // evicts 2
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Lru, NeverEvictsRequestedFiles) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(200, catalog);
  LruPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  // {0,2}: 0 is both the LRU candidate and requested; must evict 1.
  serve(policy, cache, Request({0, 2}));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lru, LastTouchIntrospection) {
  FileCatalog catalog = unit_catalog(2);
  DiskCache cache(200, catalog);
  LruPolicy policy;
  EXPECT_EQ(policy.last_touch(0), 0u);
  serve(policy, cache, Request({0}));
  const auto t0 = policy.last_touch(0);
  EXPECT_GT(t0, 0u);
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({0}));
  EXPECT_GT(policy.last_touch(0), policy.last_touch(1));
}

TEST(Lru, ResetClears) {
  FileCatalog catalog = unit_catalog(2);
  DiskCache cache(200, catalog);
  LruPolicy policy;
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_EQ(policy.last_touch(0), 0u);
}

TEST(Lru, SimulatorChurn) {
  FileCatalog catalog = unit_catalog(10);
  LruPolicy policy;
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 100; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 10)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 100u);
  // Cyclic scan over 10 files with space for 3: LRU always misses.
  EXPECT_EQ(result.metrics.request_hits(), 0u);
}

}  // namespace
}  // namespace fbc
