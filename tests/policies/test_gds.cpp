// Tests for the GreedyDual-Size baseline.
#include "policies/gds.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

void serve(GdsPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Gds, UnitCostEvictsLargeFilesFirst) {
  // H = L + 1/size: the big file has the smallest H and goes first.
  FileCatalog catalog;
  catalog.add_file(400);  // 0: big
  catalog.add_file(100);  // 1: small
  catalog.add_file(100);  // 2: incoming
  DiskCache cache(500, catalog);
  GdsPolicy policy(GdsCost::Unit);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Gds, SizeCostIsSizeNeutral) {
  // H = L + size/size = L + 1 for every file: pure aging. After an
  // eviction raises L, a refreshed file outlives an unrefreshed one.
  FileCatalog catalog;
  for (int i = 0; i < 5; ++i) catalog.add_file(100);
  DiskCache cache(300, catalog);
  GdsPolicy policy(GdsCost::Size);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({3}));  // arbitrary victim, L rises to 1
  std::vector<FileId> survivors;
  for (FileId id : {0u, 1u, 2u}) {
    if (cache.contains(id)) survivors.push_back(id);
  }
  ASSERT_EQ(survivors.size(), 2u);
  serve(policy, cache, Request({survivors[0]}));  // refresh
  serve(policy, cache, Request({4}));             // evicts survivors[1]
  EXPECT_TRUE(cache.contains(survivors[0]));
  EXPECT_FALSE(cache.contains(survivors[1]));
}

TEST(Gds, FetchTimeFavorsExpensivePerByteFiles) {
  // cost = latency + size/bw. Per byte, small files are costlier, so the
  // large file is evicted first (same direction as Unit, softer).
  FileCatalog catalog;
  catalog.add_file(50 * 1024 * 1024);  // 0: big
  catalog.add_file(1024 * 1024);       // 1: small
  catalog.add_file(1024 * 1024);       // 2: incoming
  DiskCache cache(51 * 1024 * 1024 + 512 * 1024, catalog);
  GdsPolicy policy(GdsCost::FetchTime, /*latency_cost=*/1.0,
                   /*bandwidth_bytes_per_cost=*/50.0 * 1024 * 1024);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Gds, HValueIntrospection) {
  FileCatalog catalog;
  catalog.add_file(100);
  DiskCache cache(100, catalog);
  GdsPolicy policy(GdsCost::Unit);
  EXPECT_DOUBLE_EQ(policy.h_value(0), 0.0);
  serve(policy, cache, Request({0}));
  EXPECT_NEAR(policy.h_value(0), 0.01, 1e-12);  // 1/100
}

TEST(Gds, Names) {
  EXPECT_EQ(GdsPolicy(GdsCost::Unit).name(), "gds-unit");
  EXPECT_EQ(GdsPolicy(GdsCost::Size).name(), "gds-size");
  EXPECT_EQ(GdsPolicy(GdsCost::FetchTime).name(), "gds-fetch");
}

TEST(Gds, ResetClears) {
  FileCatalog catalog;
  catalog.add_file(100);
  DiskCache cache(100, catalog);
  GdsPolicy policy(GdsCost::Unit);
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.h_value(0), 0.0);
}

TEST(Gds, SimulatorChurn) {
  FileCatalog catalog;
  for (Bytes i = 0; i < 15; ++i) catalog.add_file(50 + 25 * (i % 4));
  GdsPolicy policy(GdsCost::Unit);
  SimulatorConfig config{.cache_bytes = 500};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 200; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 15),
                            static_cast<FileId>((i * 4 + 1) % 15)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 200u);
}

}  // namespace
}  // namespace fbc
