// Tests for the distributed online file-bundle policy (dist-online,
// after Qin & Etesami): equal cost-share credits, the cap at 1, credit
// accumulation across bundles (the frequency component Landlord lacks),
// the uniform-decrement eviction rule, and the shard-composability
// property the cluster relies on -- a bundle slice pays its files the
// same share the whole bundle would have.
#include "policies/dist_online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n, Bytes each = 100) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(each);
  return catalog;
}

/// Serves one request against the cache via the simulator protocol.
void serve(DistOnlinePolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    const Bytes needed = missing_bytes - cache.free_bytes();
    for (FileId v : policy.select_victims(r, needed, cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(DistOnline, RegisteredInPolicyRegistry) {
  const std::vector<std::string> names = policy_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "dist-online"),
            names.end());
  FileCatalog catalog = unit_catalog(4);
  PolicyContext context;
  context.catalog = &catalog;
  const std::unique_ptr<ReplacementPolicy> policy =
      make_policy("dist-online", context);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "dist-online");
}

TEST(DistOnline, EqualShareSplitsBundleCost) {
  // Files of 50 B with a 100 B normalizer: a two-file bundle costs
  // (50+50)/100 = 1 and each member earns 1/2.
  FileCatalog catalog;
  catalog.add_file(50);
  catalog.add_file(50);
  catalog.add_file(100);  // max_file_size = 100
  DiskCache cache(200, catalog);
  DistOnlinePolicy policy(catalog);
  serve(policy, cache, Request({0, 1}));
  EXPECT_NEAR(policy.credit(0), 0.5, 1e-12);
  EXPECT_NEAR(policy.credit(1), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(policy.credit(2), 0.0);  // untracked
}

TEST(DistOnline, CreditsAccumulateAndCapAtOne) {
  FileCatalog catalog;
  catalog.add_file(50);
  catalog.add_file(100);
  DiskCache cache(200, catalog);
  DistOnlinePolicy policy(catalog);
  // Each {0} request pays 50/100 = 0.5; two reach the cap, a third stays.
  serve(policy, cache, Request({0}));
  EXPECT_NEAR(policy.credit(0), 0.5, 1e-12);
  serve(policy, cache, Request({0}));
  EXPECT_NEAR(policy.credit(0), 1.0, 1e-12);
  serve(policy, cache, Request({0}));
  EXPECT_NEAR(policy.credit(0), 1.0, 1e-12);  // capped
}

TEST(DistOnline, SliceSharesMatchWholeBundleShares) {
  // Uniform sizes: a scattered bundle's slice pays each of its files
  // bytes(slice)/max/|slice| = bytes(F)/max/|F|, exactly what the whole
  // bundle pays on one cache. This is the composability property that
  // lets every shard run the same rule on its slice of a scatter.
  FileCatalog catalog = unit_catalog(4, 100);
  DiskCache whole_cache(1000, catalog);
  DistOnlinePolicy whole(catalog);
  serve(whole, whole_cache, Request({0, 1, 2, 3}));

  DiskCache slice_cache(1000, catalog);
  DistOnlinePolicy slice(catalog);
  serve(slice, slice_cache, Request({0, 1}));  // shard A's slice
  EXPECT_NEAR(slice.credit(0), whole.credit(0), 1e-12);
  EXPECT_NEAR(slice.credit(1), whole.credit(1), 1e-12);
}

TEST(DistOnline, FrequentCheapBundlesOutrankOneShotFiles) {
  // Files 0 and 1 keep appearing in a cheap bundle (share 0.5 each, since
  // the 100 B file sets the normalizer); file 2 is seen once. Repetition
  // accumulates 0 and 1 past the one-shot file -- the frequency component
  // plain Landlord lacks -- so the next admission evicts file 2.
  FileCatalog catalog;
  for (int i = 0; i < 4; ++i) catalog.add_file(50);
  catalog.add_file(100);  // max_file_size = 100
  DiskCache cache(150, catalog);
  DistOnlinePolicy policy(catalog);
  serve(policy, cache, Request({0, 1}));  // credit 0.5 each
  serve(policy, cache, Request({2}));     // credit 0.5
  serve(policy, cache, Request({0, 1}));  // hit: accumulate to 1.0
  EXPECT_GT(policy.credit(0), policy.credit(2));
  serve(policy, cache, Request({3}));  // needs 50 B -> evicts the minimum
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(DistOnline, UniformDecrementOnEviction) {
  // Evicting at minimum credit m lowers every survivor's effective
  // credit by m (lazy inflation), like Landlord's rent collection.
  FileCatalog catalog = unit_catalog(3, 100);
  DiskCache cache(200, catalog);
  DistOnlinePolicy policy(catalog);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));  // credit(0) = 1 (two shares of 1)
  serve(policy, cache, Request({1}));  // credit(1) = 1
  serve(policy, cache, Request({1}));
  // Both at 1.0; admitting {2} evicts one of them at m = 1 and the
  // survivor's effective credit drops to 0 while 2 enters at its share.
  serve(policy, cache, Request({2}));
  const FileId survivor = cache.contains(0) ? 0 : 1;
  EXPECT_NEAR(policy.credit(survivor), 0.0, 1e-12);
  EXPECT_NEAR(policy.credit(2), 1.0, 1e-12);
}

TEST(DistOnline, ResetClearsCreditState) {
  FileCatalog catalog = unit_catalog(2, 100);
  DiskCache cache(200, catalog);
  DistOnlinePolicy policy(catalog);
  serve(policy, cache, Request({0}));
  EXPECT_GT(policy.credit(0), 0.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.credit(0), 0.0);
}

TEST(DistOnline, RunsUnderTheSimulator) {
  // End-to-end: the registry-constructed policy drives the simulator
  // without tripping the policy-contract checks.
  FileCatalog catalog = unit_catalog(8, 100);
  std::vector<Request> jobs;
  for (int round = 0; round < 3; ++round)
    for (FileId id = 0; id < 8; id += 2) {
      // Back-to-back repeats: the second submission always finds its
      // bundle resident, so the run exercises the hit path under any
      // eviction order the credits produce.
      jobs.push_back(Request({id, id + 1}));
      jobs.push_back(Request({id, id + 1}));
    }
  PolicyContext context;
  context.catalog = &catalog;
  const std::unique_ptr<ReplacementPolicy> policy =
      make_policy("dist-online", context);
  SimulatorConfig config;
  config.cache_bytes = 400;
  config.warmup_jobs = 0;
  Simulator simulator(config, catalog, *policy);
  const SimulationResult result = simulator.run(jobs);
  EXPECT_EQ(result.metrics.jobs(), jobs.size());
  EXPECT_GT(result.metrics.request_hits(), 0u);
}

}  // namespace
}  // namespace fbc
