// Tests for GreedyDual-Size-Frequency.
#include "policies/gdsf.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

void serve(GdsfPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Gdsf, FrequencyProtectsHotFiles) {
  // With size cost, H = L + freq: frequency dominates among equal sizes.
  FileCatalog catalog({100, 100, 100, 100});
  DiskCache cache(300, catalog);
  GdsfPolicy policy(/*size_cost=*/true);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));  // freq(0) = 2 -> H = 2
  serve(policy, cache, Request({1}));  // H = 1
  serve(policy, cache, Request({2}));  // H = 1
  serve(policy, cache, Request({3}));  // evicts 1 or 2, never 0
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Gdsf, UnitCostTradesSizeAgainstFrequency) {
  // cost = 1: H = L + freq/size. A big file referenced twice (H = 2/400)
  // still loses to a small file referenced once (H = 1/100).
  FileCatalog catalog;
  catalog.add_file(400);  // 0: big, hot
  catalog.add_file(100);  // 1: small, cold
  catalog.add_file(100);  // 2: incoming
  DiskCache cache(500, catalog);
  GdsfPolicy policy(/*size_cost=*/false);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));  // evicts 0 despite its frequency
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Gdsf, FrequencySurvivesEviction) {
  FileCatalog catalog({100, 100});
  DiskCache cache(100, catalog);
  GdsfPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));  // evicts 0
  EXPECT_EQ(policy.frequency(0), 1u);
  serve(policy, cache, Request({0}));  // freq(0) = 2 despite eviction
  EXPECT_EQ(policy.frequency(0), 2u);
}

TEST(Gdsf, HValueIntrospection) {
  FileCatalog catalog({100});
  DiskCache cache(100, catalog);
  GdsfPolicy policy(/*size_cost=*/true);
  EXPECT_DOUBLE_EQ(policy.h_value(0), 0.0);
  serve(policy, cache, Request({0}));
  EXPECT_DOUBLE_EQ(policy.h_value(0), 1.0);  // freq 1 x size/size
  serve(policy, cache, Request({0}));
  EXPECT_DOUBLE_EQ(policy.h_value(0), 2.0);
}

TEST(Gdsf, Names) {
  EXPECT_EQ(GdsfPolicy(true).name(), "gdsf");
  EXPECT_EQ(GdsfPolicy(false).name(), "gdsf-unit");
}

TEST(Gdsf, ResetClears) {
  FileCatalog catalog({100});
  DiskCache cache(100, catalog);
  GdsfPolicy policy;
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_EQ(policy.frequency(0), 0u);
  EXPECT_DOUBLE_EQ(policy.h_value(0), 0.0);
}

TEST(Gdsf, SimulatorChurn) {
  FileCatalog catalog;
  for (Bytes i = 0; i < 15; ++i) catalog.add_file(50 + 30 * (i % 3));
  GdsfPolicy policy;
  SimulatorConfig config{.cache_bytes = 400};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 200; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 15),
                            static_cast<FileId>((i * 11 + 3) % 15)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 200u);
}

}  // namespace
}  // namespace fbc
