// Tests for bundle-adapted LFU.
#include "policies/lfu.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

void serve(LfuPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Lfu, EvictsLeastFrequent) {
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));  // freq(0) = 2
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({1}));  // freq(1) = 2
  serve(policy, cache, Request({2}));  // freq(2) = 1
  serve(policy, cache, Request({3}));  // evicts 2, the least frequent
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Lfu, TiesBrokenByRecencyOldestFirst) {
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0}));  // freq 1, oldest
  serve(policy, cache, Request({1}));  // freq 1
  serve(policy, cache, Request({2}));  // freq 1
  serve(policy, cache, Request({3}));  // all tie at freq 1: evict 0
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Lfu, FrequencyAccumulatesAcrossResidency) {
  // A file's popularity survives eviction (classic LFU with history).
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(200, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));  // freq(0) = 3
  serve(policy, cache, Request({1}));  // cache {0,1}
  serve(policy, cache, Request({2}));  // evicts 1 (freq 1 < 3)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(policy.frequency(0), 3u);
  EXPECT_EQ(policy.frequency(1), 1u);
}

TEST(Lfu, NeverEvictsRequestedFiles) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(200, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({1}));
  // {0,2}: 0 has the lowest frequency but is requested; evict 1.
  serve(policy, cache, Request({0, 2}));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lfu, BundleCountsEveryFile) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(300, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0, 1, 2}));
  EXPECT_EQ(policy.frequency(0), 1u);
  EXPECT_EQ(policy.frequency(1), 1u);
  EXPECT_EQ(policy.frequency(2), 1u);
  serve(policy, cache, Request({0, 1, 2}));
  EXPECT_EQ(policy.frequency(2), 2u);
}

TEST(Lfu, ResetClears) {
  FileCatalog catalog = unit_catalog(2);
  DiskCache cache(200, catalog);
  LfuPolicy policy;
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_EQ(policy.frequency(0), 0u);
}

TEST(Lfu, SimulatorChurn) {
  FileCatalog catalog = unit_catalog(12);
  LfuPolicy policy;
  SimulatorConfig config{.cache_bytes = 400};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 150; ++i) {
    // Files 0..2 are hot (requested every other job), the rest cold.
    if (i % 2 == 0) {
      jobs.push_back(Request({0, 1, 2}));
    } else {
      jobs.push_back(Request({static_cast<FileId>(3 + (i / 2) % 9)}));
    }
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  // The hot trio should essentially always be resident after warm-up:
  // at least the 74 repeat occurrences minus the first are hits.
  EXPECT_GE(result.metrics.request_hits(), 70u);
}

}  // namespace
}  // namespace fbc
