// Parameterized contract test: NO policy may ever evict a pinned file.
// Pins model the working sets of concurrently in-flight jobs (multi-slot
// SRM, cluster nodes), which persist across replacement decisions.
//
// The harness follows the real simulator protocol: `bytes_needed` is
// always missing_bytes - free_bytes for the incoming request, and the
// incoming files are loaded after each decision.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "core/registry.hpp"

namespace fbc {
namespace {

class PinnedExemption : public ::testing::TestWithParam<const char*> {};

TEST_P(PinnedExemption, NeverSelectsPinnedVictims) {
  FileCatalog catalog;
  for (int i = 0; i < 10; ++i) catalog.add_file(100);  // resident set
  for (int i = 0; i < 4; ++i) catalog.add_file(200);   // incoming files
  DiskCache cache(1000, catalog);

  std::vector<Request> all_jobs;
  for (FileId i = 0; i < 14; ++i) all_jobs.push_back(Request({i}));

  PolicyContext context;
  context.catalog = &catalog;
  context.jobs = all_jobs;
  PolicyPtr policy = make_policy(GetParam(), context);

  // Fill the cache through the proper protocol.
  for (FileId i = 0; i < 10; ++i) {
    Request r({i});
    policy->on_job_arrival(r, cache);
    cache.insert(i);
    policy->on_files_loaded(r, std::vector<FileId>{i}, cache);
  }

  // Pin a three-file working set of a concurrent job.
  cache.pin(2);
  cache.pin(5);
  cache.pin(7);

  // Serve four 200-byte newcomers; each admission forces an eviction
  // decision around the pins.
  for (FileId f = 10; f < 14; ++f) {
    Request incoming({f});
    policy->on_job_arrival(incoming, cache);
    const Bytes missing = cache.missing_bytes(incoming);
    ASSERT_GT(missing, 0u);
    if (cache.free_bytes() < missing) {
      const Bytes needed = missing - cache.free_bytes();
      Bytes freed = 0;
      for (FileId v : policy->select_victims(incoming, needed, cache)) {
        EXPECT_FALSE(cache.pinned(v))
            << GetParam() << " evicted pinned file " << v;
        EXPECT_FALSE(incoming.contains(v)) << GetParam();
        ASSERT_TRUE(cache.contains(v)) << GetParam();
        cache.evict(v);
        policy->on_file_evicted(v);
        freed += catalog.size_of(v);
      }
      EXPECT_GE(freed, needed) << GetParam();
    }
    cache.insert(f);
    policy->on_files_loaded(incoming, std::vector<FileId>{f}, cache);
  }

  // The pinned working set survived every decision.
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(5));
  EXPECT_TRUE(cache.contains(7));
  EXPECT_LE(cache.used_bytes(), cache.capacity());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PinnedExemption,
                         ::testing::Values("optfb", "optfb-basic",
                                           "optfb-full", "landlord",
                                           "landlord-size", "lru", "lru-2",
                                           "lfu", "fifo", "gds-unit",
                                           "gds-size", "gdsf", "random",
                                           "lookahead"));

}  // namespace
}  // namespace fbc
