// Tests for LRU-K.
#include "policies/lru_k.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/simulator.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

void serve(ReplacementPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(LruK, RejectsZeroK) {
  EXPECT_THROW(LruKPolicy(0), std::invalid_argument);
}

TEST(LruK, NameIncludesK) {
  EXPECT_EQ(LruKPolicy(2).name(), "lru-2");
  EXPECT_EQ(LruKPolicy(3).name(), "lru-3");
}

TEST(LruK, SingleReferenceFilesGoFirst) {
  // Files with fewer than K references are evicted before any file with a
  // full K-history, regardless of raw recency.
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  LruKPolicy policy(2);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));  // 0 has 2 refs
  serve(policy, cache, Request({1}));  // 1 ref
  serve(policy, cache, Request({2}));  // 1 ref, most recent
  // 0's 2nd reference is older than both single references, but plain LRU
  // would evict 0; LRU-2 evicts 1 (the oldest <K-history file).
  serve(policy, cache, Request({3}));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruK, KthReferenceOrderingAmongFullHistories) {
  FileCatalog catalog = unit_catalog(3);
  DiskCache cache(200, catalog);
  LruKPolicy policy(2);
  // Both files get two references; 0's SECOND-most-recent reference is
  // older than 1's.
  serve(policy, cache, Request({0}));  // t1
  serve(policy, cache, Request({1}));  // t2
  serve(policy, cache, Request({1}));  // t3 (1: kth = t2)
  serve(policy, cache, Request({0}));  // t4 (0: kth = t1)
  serve(policy, cache, Request({2}));  // evicts 0 (kth t1 < t2)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(LruK, BackwardDistanceIntrospection) {
  FileCatalog catalog = unit_catalog(1);
  DiskCache cache(100, catalog);
  LruKPolicy policy(2);
  EXPECT_EQ(policy.backward_k_distance(0), 0u);
  serve(policy, cache, Request({0}));  // 1 ref: still below K
  EXPECT_EQ(policy.backward_k_distance(0), 0u);
  serve(policy, cache, Request({0}));  // 2 refs: kth = first ref time (1)
  EXPECT_EQ(policy.backward_k_distance(0), 1u);
  serve(policy, cache, Request({0}));  // window slides: kth = 2
  EXPECT_EQ(policy.backward_k_distance(0), 2u);
}

TEST(LruK, K1DegeneratesToLru) {
  FileCatalog catalog = unit_catalog(5);
  std::vector<Request> jobs;
  for (FileId i = 0; i < 40; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 5)}));
    jobs.push_back(Request({static_cast<FileId>((i * 3 + 1) % 5)}));
  }
  SimulatorConfig config{.cache_bytes = 300};
  LruKPolicy lru1(1);
  LruPolicy lru;
  const auto a = simulate(config, catalog, lru1, jobs).metrics;
  SimulatorConfig config2{.cache_bytes = 300};
  const auto b = simulate(config2, catalog, lru, jobs).metrics;
  EXPECT_EQ(a.request_hits(), b.request_hits());
  EXPECT_EQ(a.bytes_missed(), b.bytes_missed());
}

TEST(LruK, ScanResistance) {
  // A one-off scan of cold files must not displace the hot set under
  // LRU-2, while plain LRU loses it.
  FileCatalog catalog = unit_catalog(12);
  std::vector<Request> jobs;
  auto hot = [&](std::vector<Request>& out) {
    out.push_back(Request({0}));
    out.push_back(Request({1}));
    out.push_back(Request({2}));
  };
  hot(jobs);
  hot(jobs);  // hot set has >= 2 references each
  for (FileId scan = 3; scan < 12; ++scan) jobs.push_back(Request({scan}));
  hot(jobs);  // return to the hot set

  SimulatorConfig config{.cache_bytes = 400};
  LruKPolicy lru2(2);
  const auto with_k = simulate(config, catalog, lru2, jobs).metrics;
  SimulatorConfig config2{.cache_bytes = 400};
  LruPolicy lru;
  const auto plain = simulate(config2, catalog, lru, jobs).metrics;
  EXPECT_GT(with_k.request_hits(), plain.request_hits());
}

TEST(LruK, ResetClears) {
  FileCatalog catalog = unit_catalog(1);
  DiskCache cache(100, catalog);
  LruKPolicy policy(2);
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({0}));
  policy.reset();
  EXPECT_EQ(policy.backward_k_distance(0), 0u);
}

}  // namespace
}  // namespace fbc
