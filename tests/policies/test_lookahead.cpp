// Tests for the clairvoyant farthest-next-use policy.
#include "policies/lookahead.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(Lookahead, EvictsFarthestNextUse) {
  FileCatalog catalog = unit_catalog(4);
  // Stream: 0 1 2 3 1 0 -- when 3 arrives (cache holds 0,1,2), next uses
  // are 1 -> job 4, 0 -> job 5, 2 -> never. Evict 2.
  std::vector<Request> jobs{Request({0}), Request({1}), Request({2}),
                            Request({3}), Request({1}), Request({0})};
  LookaheadPolicy policy(jobs);
  SimulatorConfig config{.cache_bytes = 300};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  // Jobs 4 and 5 ({1} and {0}) must be hits because 2 was sacrificed.
  EXPECT_EQ(result.metrics.request_hits(), 2u);
  EXPECT_FALSE(sim.cache().contains(2));
}

TEST(Lookahead, NeverUsedAgainGoesFirst) {
  FileCatalog catalog = unit_catalog(4);
  std::vector<Request> jobs{Request({0}), Request({1}), Request({2}),
                            Request({3}), Request({0}), Request({1}),
                            Request({0}), Request({1})};
  LookaheadPolicy policy(jobs);
  SimulatorConfig config{.cache_bytes = 300};
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  // After loading 3 (evicting 2, never reused), 0 and 1 stay resident for
  // four straight hits.
  EXPECT_EQ(result.metrics.request_hits(), 4u);
}

TEST(Lookahead, BeatsLruOnAdversarialScan) {
  // Cyclic scan of 4 files with room for 3: LRU gets zero hits; the
  // clairvoyant policy keeps a useful subset.
  FileCatalog catalog = unit_catalog(4);
  std::vector<Request> jobs;
  for (int round = 0; round < 25; ++round) {
    for (FileId id = 0; id < 4; ++id) jobs.push_back(Request({id}));
  }
  SimulatorConfig config{.cache_bytes = 300};

  LruPolicy lru;
  const auto lru_result = simulate(config, catalog, lru, jobs);
  LookaheadPolicy oracle(jobs);
  const auto oracle_result = simulate(config, catalog, oracle, jobs);

  EXPECT_EQ(lru_result.metrics.request_hits(), 0u);
  EXPECT_GT(oracle_result.metrics.request_hits(),
            lru_result.metrics.request_hits());
}

TEST(Lookahead, TieBreaksTowardLargerFiles) {
  FileCatalog catalog;
  catalog.add_file(100);  // 0
  catalog.add_file(300);  // 1: larger, same (non-existent) next use
  catalog.add_file(100);  // 2
  std::vector<Request> jobs{Request({0}), Request({1}), Request({2})};
  LookaheadPolicy policy(jobs);
  SimulatorConfig config{.cache_bytes = 400};
  Simulator sim(config, catalog, policy);
  sim.run(jobs);
  // Admitting 2 needs 100 bytes; both 0 and 1 are never used again, the
  // larger (1) is evicted.
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_FALSE(sim.cache().contains(1));
}

TEST(Lookahead, ResetRestartsTheOracle) {
  FileCatalog catalog = unit_catalog(3);
  std::vector<Request> jobs{Request({0}), Request({1}), Request({2}),
                            Request({0})};
  LookaheadPolicy policy(jobs);
  {
    SimulatorConfig config{.cache_bytes = 200};
    Simulator sim(config, catalog, policy);
    sim.run(jobs);
  }
  policy.reset();
  // Re-running the same stream after reset produces the same outcome.
  SimulatorConfig config{.cache_bytes = 200};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_EQ(result.metrics.request_hits(), 1u);  // the final {0}
}

}  // namespace
}  // namespace fbc
