// Tests for bundle-adapted FIFO.
#include "policies/fifo.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

void serve(FifoPolicy& policy, DiskCache& cache, const Request& r) {
  policy.on_job_arrival(r, cache);
  const auto missing = cache.missing_files(r);
  if (missing.empty()) {
    policy.on_request_hit(r, cache);
    return;
  }
  const Bytes missing_bytes = cache.catalog().bundle_bytes(missing);
  if (cache.free_bytes() < missing_bytes) {
    for (FileId v : policy.select_victims(
             r, missing_bytes - cache.free_bytes(), cache)) {
      cache.evict(v);
      policy.on_file_evicted(v);
    }
  }
  for (FileId id : missing) cache.insert(id);
  policy.on_files_loaded(r, missing, cache);
}

TEST(Fifo, EvictsInLoadOrder) {
  FileCatalog catalog = unit_catalog(5);
  DiskCache cache(300, catalog);
  FifoPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({3}));  // evicts 0
  EXPECT_FALSE(cache.contains(0));
  serve(policy, cache, Request({4}));  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Fifo, HitsDoNotRenew) {
  // Unlike LRU, a hit does not move the file back in the queue.
  FileCatalog catalog = unit_catalog(4);
  DiskCache cache(300, catalog);
  FifoPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({0}));  // hit: no renewal
  serve(policy, cache, Request({3}));  // still evicts 0 (oldest load)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Fifo, RequestedFilesKeepSeniority) {
  // A requested file at the queue head is skipped this round but remains
  // the next victim.
  FileCatalog catalog = unit_catalog(5);
  DiskCache cache(300, catalog);
  FifoPolicy policy;
  serve(policy, cache, Request({0}));
  serve(policy, cache, Request({1}));
  serve(policy, cache, Request({2}));
  serve(policy, cache, Request({0, 3}));  // 0 exempt: evicts 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  serve(policy, cache, Request({4}));  // 0 is again the oldest: evicted now
  EXPECT_FALSE(cache.contains(0));
}

TEST(Fifo, ResetClears) {
  FileCatalog catalog = unit_catalog(2);
  DiskCache cache(200, catalog);
  FifoPolicy policy;
  serve(policy, cache, Request({0}));
  policy.reset();
  // After reset the policy has no queue; reloading must work cleanly.
  serve(policy, cache, Request({1}));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Fifo, SimulatorChurn) {
  FileCatalog catalog = unit_catalog(10);
  FifoPolicy policy;
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 100; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 10),
                            static_cast<FileId>((i * 3 + 2) % 10)}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 100u);
}

}  // namespace
}  // namespace fbc
