// Tests for the OptFileBundle replacement policy (paper Algorithm 2).
#include "core/opt_file_bundle.hpp"

#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n, Bytes each = 100) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(each);
  return catalog;
}

TEST(OptFileBundle, NameEncodesConfiguration) {
  FileCatalog catalog = unit_catalog(1);
  EXPECT_EQ(OptFileBundlePolicy(catalog).name(), "optfb");
  OptFileBundleConfig basic;
  basic.variant = SelectVariant::Basic;
  EXPECT_EQ(OptFileBundlePolicy(catalog, basic).name(), "optfb-basic");
  OptFileBundleConfig full;
  full.history.mode = HistoryMode::Full;
  EXPECT_EQ(OptFileBundlePolicy(catalog, full).name(), "optfb-full");
}

TEST(OptFileBundle, KeepsTheValuableBundleCombination) {
  // Cache of 3 unit files; bundles {0,1} (popular) and lone files 2,3.
  // When 3 arrives, OptFileBundle must keep the popular {0,1} pair and
  // sacrifice 2, while a per-file policy might split the pair.
  FileCatalog catalog = unit_catalog(4);
  OptFileBundlePolicy policy(catalog);
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs{
      Request({0, 1}), Request({0, 1}), Request({0, 1}),  // popular pair
      Request({2}),                                       // filler
      Request({3}),                                       // forces eviction
      Request({0, 1}),                                    // must be a hit
  };
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(sim.cache().contains(1));
  EXPECT_FALSE(sim.cache().contains(2));
  // Hits: jobs 2, 3 (repeat pair) and the final pair request.
  EXPECT_EQ(result.metrics.request_hits(), 3u);
}

TEST(OptFileBundle, EvictsEverythingOutsideSelectionAndRequest) {
  // A fresh policy with no useful history evicts all non-requested files
  // when pressed (nothing in the candidate set is worth keeping).
  FileCatalog catalog = unit_catalog(5);
  OptFileBundlePolicy policy(catalog);
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs{
      Request({0}), Request({1}), Request({2}),
      Request({3, 4}),  // needs 200: eviction decision
  };
  Simulator sim(config, catalog, policy);
  sim.run(jobs);
  EXPECT_TRUE(sim.cache().contains(3));
  EXPECT_TRUE(sim.cache().contains(4));
  // With CacheResident candidates {0},{1},{2} all value 1 and budget 100,
  // exactly one single-file request survives alongside {3,4}.
  EXPECT_EQ(sim.cache().file_count(), 3u);
}

TEST(OptFileBundle, ChooseNextPicksHighestRelativeValue) {
  FileCatalog catalog = unit_catalog(6);
  OptFileBundlePolicy policy(catalog);
  DiskCache cache(600, catalog);

  // Build history: {0} seen three times, {1,2} once.
  for (int i = 0; i < 3; ++i) policy.on_job_arrival(Request({0}), cache);
  policy.on_job_arrival(Request({1, 2}), cache);

  std::vector<Request> queue{Request({1, 2}), Request({0}), Request({3})};
  // v'({0}) = (3+1)/s'(0); v'({1,2}) = (1+1)/(...); v'({3}) = 1/100.
  // {0} wins by popularity.
  EXPECT_EQ(policy.choose_next(queue, cache), 1u);
}

TEST(OptFileBundle, ChooseNextFallsBackToFcfsAmongUnseen) {
  FileCatalog catalog = unit_catalog(4);
  OptFileBundlePolicy policy(catalog);
  DiskCache cache(400, catalog);
  // All unseen singletons tie at 1/s'(f); the first wins.
  std::vector<Request> queue{Request({0}), Request({1}), Request({2})};
  EXPECT_EQ(policy.choose_next(queue, cache), 0u);
}

TEST(OptFileBundle, PrefetchDisabledByDefault) {
  FileCatalog catalog = unit_catalog(4);
  OptFileBundlePolicy policy(catalog);
  DiskCache cache(400, catalog);
  EXPECT_TRUE(policy.prefetch(Request({0}), cache).empty());
}

TEST(OptFileBundle, FullHistoryPrefetchRestoresEvictedBundles) {
  // Under Full history with prefetching, a valuable historical bundle that
  // was displaced is pulled back into leftover space even though nobody
  // demanded it on this job (Algorithm 2 step 3 verbatim:
  // load F(Opt) \ F(C)).
  FileCatalog catalog = unit_catalog(6);
  OptFileBundleConfig config;
  config.history.mode = HistoryMode::Full;
  config.prefetch_selected = true;
  OptFileBundlePolicy policy(catalog, config);
  SimulatorConfig sim_config{.cache_bytes = 300};
  std::vector<Request> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(Request({0, 1}));  // precious
  jobs.push_back(Request({2, 3, 4}));  // displaces {0,1} entirely
  jobs.push_back(Request({2}));        // hit, builds {2}'s history
  jobs.push_back(Request({5}));        // decision: selection re-picks {0,1}
  jobs.push_back(Request({0, 1}));     // hit thanks to the prefetch
  Simulator sim(sim_config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  // The {5} admission selects the high-value non-resident {0,1} bundle for
  // the 200-byte budget, evicts {2,3,4}, loads 5 and prefetches 0 and 1.
  EXPECT_EQ(result.metrics.bytes_prefetched(), 200u);
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(sim.cache().contains(1));
  EXPECT_TRUE(sim.cache().contains(5));
  // The final {0,1} job is a request-hit.
  EXPECT_GE(result.metrics.request_hits(), 10u);
}

TEST(OptFileBundle, PrefetchBytesAreCharged) {
  // Deterministic prefetch scenario: after {3} displaces part of the
  // cache, the selection keeps the popular {0,1} pair -- including file 1
  // that was just evicted -- so 1 comes back as a prefetch.
  FileCatalog catalog = unit_catalog(5);
  OptFileBundleConfig config;
  config.history.mode = HistoryMode::Full;
  config.prefetch_selected = true;
  OptFileBundlePolicy policy(catalog, config);
  SimulatorConfig sim_config{.cache_bytes = 300};
  std::vector<Request> jobs{
      Request({0, 1}), Request({0, 1}), Request({0, 1}), Request({0, 1}),
      Request({2}),        // cache now {0,1,2}
      Request({3, 4}),     // eviction decision with budget 100
  };
  Simulator sim(sim_config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  // Budget for the selection is 100 bytes: the {0,1} pair (200 bytes,
  // naive or union) cannot be kept; no prefetch is possible either since
  // free space after loading is 0. The decision itself must still satisfy
  // all contracts and account every byte.
  const CacheMetrics& m = result.metrics;
  EXPECT_EQ(m.bytes_requested(),
            200u * 4 + 100 + 200);
  EXPECT_LE(sim.cache().used_bytes(), sim.cache().capacity());
}

TEST(OptFileBundle, HistoryIntrospection) {
  FileCatalog catalog = unit_catalog(3);
  OptFileBundlePolicy policy(catalog);
  DiskCache cache(300, catalog);
  policy.on_job_arrival(Request({0, 1}), cache);
  policy.on_job_arrival(Request({0, 1}), cache);
  EXPECT_EQ(policy.history().observed_jobs(), 2u);
  EXPECT_DOUBLE_EQ(policy.history().value(Request({0, 1})), 2.0);
  policy.reset();
  EXPECT_EQ(policy.history().observed_jobs(), 0u);
}

TEST(OptFileBundle, LastCandidateCountTracksDecisions) {
  FileCatalog catalog = unit_catalog(4);
  OptFileBundlePolicy policy(catalog);
  SimulatorConfig config{.cache_bytes = 200};
  std::vector<Request> jobs{Request({0}), Request({1}), Request({2})};
  Simulator sim(config, catalog, policy);
  sim.run(jobs);
  // The last decision (admitting {2}) saw the cache-resident candidates.
  EXPECT_LE(policy.last_candidate_count(), 2u);
}

// Property: on random workloads, the policy always satisfies the simulator
// contract (no pinned/requested evictions, capacity respected) across all
// variants and history modes.
struct OptFbParam {
  SelectVariant variant;
  HistoryMode mode;
};

class OptFileBundleProperty : public ::testing::TestWithParam<OptFbParam> {};

TEST_P(OptFileBundleProperty, ContractHoldsOnRandomWorkload) {
  WorkloadConfig wconfig;
  wconfig.seed = 7;
  wconfig.cache_bytes = 10000;
  wconfig.num_files = 60;
  wconfig.min_file_bytes = 100;
  wconfig.max_file_frac = 0.05;
  wconfig.num_requests = 40;
  wconfig.max_bundle_files = 4;
  wconfig.num_jobs = 400;
  const Workload w = generate_workload(wconfig);

  OptFileBundleConfig pconfig;
  pconfig.variant = GetParam().variant;
  pconfig.history.mode = GetParam().mode;
  pconfig.history.window_jobs = 50;
  pconfig.prefetch_selected = GetParam().mode != HistoryMode::CacheResident;
  OptFileBundlePolicy policy(w.catalog, pconfig);

  SimulatorConfig sconfig{.cache_bytes = wconfig.cache_bytes};
  Simulator sim(sconfig, w.catalog, policy);
  const SimulationResult result = sim.run(w.jobs);  // throws on violation
  EXPECT_EQ(result.metrics.jobs() + result.metrics.unserviceable(),
            w.jobs.size());
  EXPECT_LE(sim.cache().used_bytes(), sim.cache().capacity());
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndModes, OptFileBundleProperty,
    ::testing::Values(
        OptFbParam{SelectVariant::Basic, HistoryMode::CacheResident},
        OptFbParam{SelectVariant::Resort, HistoryMode::CacheResident},
        OptFbParam{SelectVariant::Resort, HistoryMode::Full},
        OptFbParam{SelectVariant::Resort, HistoryMode::Window},
        OptFbParam{SelectVariant::Seeded1, HistoryMode::CacheResident}));

}  // namespace
}  // namespace fbc
