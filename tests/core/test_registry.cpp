// Tests for the policy registry/factory.
#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(Registry, CreatesEveryRegisteredPolicy) {
  FileCatalog catalog = unit_catalog(4);
  std::vector<Request> jobs{Request({0}), Request({1})};
  PolicyContext context;
  context.catalog = &catalog;
  context.jobs = jobs;
  for (const std::string& name : policy_names()) {
    PolicyPtr policy = make_policy(name, context);
    ASSERT_NE(policy, nullptr) << name;
    // The factory name matches the policy's own name prefix (optfb
    // variants self-describe their configuration).
    EXPECT_FALSE(policy->name().empty()) << name;
  }
}

TEST(Registry, PolicyNamesAreDistinct) {
  const auto names = policy_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(Registry, UnknownNameThrows) {
  PolicyContext context;
  EXPECT_THROW((void)make_policy("belady2000", context), std::invalid_argument);
}

TEST(Registry, OptfbRequiresCatalog) {
  PolicyContext context;  // no catalog
  EXPECT_THROW((void)make_policy("optfb", context), std::invalid_argument);
}

TEST(Registry, LookaheadRequiresJobs) {
  FileCatalog catalog = unit_catalog(2);
  PolicyContext context;
  context.catalog = &catalog;
  EXPECT_THROW((void)make_policy("lookahead", context), std::invalid_argument);
}

TEST(Registry, BaselinesNeedNoCatalog) {
  PolicyContext context;  // empty is fine for stateless-construction ones
  for (const std::string name :
       {"landlord", "lru", "lfu", "gds-unit", "random"}) {
    EXPECT_NE(make_policy(name, context), nullptr) << name;
  }
}

TEST(Registry, OptfbVariantsDiffer) {
  FileCatalog catalog = unit_catalog(2);
  PolicyContext context;
  context.catalog = &catalog;
  EXPECT_EQ(make_policy("optfb", context)->name(), "optfb");
  EXPECT_EQ(make_policy("optfb-basic", context)->name(), "optfb-basic");
  EXPECT_EQ(make_policy("optfb-full", context)->name(), "optfb-full");
  EXPECT_EQ(make_policy("optfb-window", context)->name(), "optfb-window");
}

}  // namespace
}  // namespace fbc
