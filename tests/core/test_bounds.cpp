// Verification of Theorem 4.1: on random small instances, the value
// achieved by OptCacheSelect is at least 1/2 (1 - e^{-1/d}) of the exact
// optimum (and the Seeded2 variant at least matches the plain greedy;
// empirically both sit far above their floors).
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/opt_cache_select.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace fbc {
namespace {

TEST(BoundFactors, KnownValues) {
  // d = 1: 1 - e^{-1} ~ 0.632; greedy floor is half of that.
  EXPECT_NEAR(seeded_bound_factor(1), 0.6321205588, 1e-9);
  EXPECT_NEAR(greedy_bound_factor(1), 0.3160602794, 1e-9);
  // d = 0 is treated as d = 1 (no sharing observed).
  EXPECT_DOUBLE_EQ(seeded_bound_factor(0), seeded_bound_factor(1));
}

TEST(BoundFactors, DecreaseWithSharing) {
  // More sharing (larger d) weakens the guarantee.
  for (std::uint32_t d = 1; d < 10; ++d) {
    EXPECT_GT(seeded_bound_factor(d), seeded_bound_factor(d + 1));
    EXPECT_GT(greedy_bound_factor(d), greedy_bound_factor(d + 1));
  }
  // And 1/2 relationship holds everywhere.
  for (std::uint32_t d = 1; d < 20; ++d) {
    EXPECT_DOUBLE_EQ(greedy_bound_factor(d), 0.5 * seeded_bound_factor(d));
  }
}

TEST(MaxFileDegree, CountsSharing) {
  FileCatalog catalog({1, 1, 1});
  std::vector<Request> requests{Request({0, 1}), Request({0, 2}),
                                Request({0})};
  std::vector<SelectionItem> items;
  for (const Request& r : requests) items.push_back({&r, 1.0});
  EXPECT_EQ(max_file_degree(items), 3u);  // file 0 in all three
  EXPECT_EQ(max_file_degree({}), 0u);
}

/// Random instance generator for the bound sweep.
struct RandomInstance {
  FileCatalog catalog;
  std::vector<Request> requests;
  std::vector<double> values;
  std::vector<std::uint32_t> degrees;
  Bytes capacity = 0;

  explicit RandomInstance(std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t num_files = 4 + rng.index(6);     // 4..9 files
    const std::size_t num_requests = 3 + rng.index(10); // 3..12 requests
    for (std::size_t f = 0; f < num_files; ++f) {
      catalog.add_file(rng.uniform_u64(1, 20));
    }
    for (std::size_t r = 0; r < num_requests; ++r) {
      const std::size_t k =
          1 + rng.index(std::min<std::size_t>(4, num_files));
      const auto picked = rng.sample_without_replacement(num_files, k);
      std::vector<FileId> files;
      for (std::size_t idx : picked) files.push_back(static_cast<FileId>(idx));
      requests.emplace_back(std::move(files));
      values.push_back(static_cast<double>(rng.uniform_u64(1, 10)));
    }
    degrees.assign(catalog.count(), 0);
    for (const Request& r : requests) {
      for (FileId id : r.files) ++degrees[id];
    }
    capacity = 1 + rng.uniform_u64(0, catalog.total_bytes());
  }

  [[nodiscard]] std::vector<SelectionItem> items() const {
    std::vector<SelectionItem> out;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out.push_back(SelectionItem{&requests[i], values[i]});
    }
    return out;
  }
};

class ApproximationBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproximationBound, GreedyWithinProvenFactorOfOptimal) {
  const RandomInstance inst(GetParam());
  const auto items = inst.items();
  OptCacheSelect selector(inst.catalog, inst.degrees);
  const SelectionResult exact =
      exact_select(items, inst.catalog, inst.capacity);
  const std::uint32_t d = max_file_degree(items);

  for (SelectVariant variant :
       {SelectVariant::Basic, SelectVariant::Resort, SelectVariant::Seeded1,
        SelectVariant::Seeded2}) {
    const SelectionResult greedy =
        selector.select(items, inst.capacity, variant);
    // Never above the optimum...
    EXPECT_LE(greedy.total_value, exact.total_value + 1e-9)
        << to_string(variant);
    // ...and never below the proven floor.
    if (exact.total_value > 0.0) {
      const double ratio = greedy.total_value / exact.total_value;
      EXPECT_GE(ratio, greedy_bound_factor(d) - 1e-9)
          << to_string(variant) << " d=" << d;
    }
    // The greedy's union must respect the budget.
    EXPECT_LE(greedy.file_bytes, inst.capacity) << to_string(variant);
  }
}

TEST_P(ApproximationBound, SeededDominatesPlainGreedy) {
  const RandomInstance inst(GetParam());
  const auto items = inst.items();
  OptCacheSelect selector(inst.catalog, inst.degrees);
  const double resort =
      selector.select(items, inst.capacity, SelectVariant::Resort)
          .total_value;
  const double seeded1 =
      selector.select(items, inst.capacity, SelectVariant::Seeded1)
          .total_value;
  const double seeded2 =
      selector.select(items, inst.capacity, SelectVariant::Seeded2)
          .total_value;
  EXPECT_GE(seeded1, resort - 1e-9);
  EXPECT_GE(seeded2, seeded1 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ApproximationBound,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ClairvoyantUpperBound, WeighsBundlesAndRespectsCapacity) {
  // Files 0 (8B) and 1 (2B), capacity 9: the naive repeat bound counts
  // only exact request repeats and ignores capacity; the clairvoyant
  // bound credits any job whose files were all seen before AND whose
  // bundle fits -- each correction can move the count either way.
  FileCatalog catalog({8, 2});
  const std::vector<Request> jobs{Request({0}), Request({1}),
                                  Request({0, 1}),  // 10B > 9B: no hit
                                  Request({0})};    // subset reuse: hit
  const RepeatBound clair = clairvoyant_upper_bound(catalog, jobs, 9);
  // {0,1} repeats nothing and is over capacity; the final {0} was seen.
  EXPECT_EQ(clair.hits, 1u);
  EXPECT_EQ(clair.hit_bytes, 8u);
  // Value density of the final {0}: v = 8, denom = 8 / d(0) with d = 3.
  EXPECT_NEAR(clair.density_value, 8.0 / (8.0 / 3.0), 1e-12);

  // The naive form sees the exact repeat of {0} but would also have
  // counted a repeat of the over-capacity bundle.
  EXPECT_EQ(naive_repeat_upper_bound(jobs), 1u);
  const std::vector<Request> oversized{Request({0, 1}), Request({0, 1})};
  EXPECT_EQ(naive_repeat_upper_bound(oversized), 1u);       // capacity-blind
  EXPECT_EQ(clairvoyant_upper_bound(catalog, oversized, 9).hits, 0u);
}

TEST(ClairvoyantUpperBound, MonotoneInCapacity) {
  FileCatalog catalog({8, 2, 5});
  const std::vector<Request> jobs{Request({0}), Request({1}), Request({2}),
                                  Request({0, 1}), Request({1, 2}),
                                  Request({0, 1, 2})};
  std::uint64_t previous = 0;
  for (Bytes cap = 1; cap <= catalog.total_bytes(); ++cap) {
    const std::uint64_t hits = clairvoyant_upper_bound(catalog, jobs, cap).hits;
    EXPECT_GE(hits, previous) << "capacity " << cap;
    previous = hits;
  }
}

TEST(ClairvoyantUpperBound, PinnedOldVsNewOnDriftFixture) {
  // The unweighted repeat count this bound replaced, pinned against the
  // paper-aligned bound on the checked-in drift fixture: subset-bundle
  // reuse adds hits the naive count misses, while capacity awareness and
  // value weighting change what the report means (see EXPERIMENTS.md).
  const Trace fixture =
      load_trace(std::string(FBC_FIXTURE_DIR) + "/optgen-drift-18.trace");
  const std::string* cache_meta = fixture.meta_value("cache_bytes");
  ASSERT_NE(cache_meta, nullptr);
  const RepeatBound clair = clairvoyant_upper_bound(
      fixture.catalog, fixture.jobs, std::stoull(*cache_meta));
  EXPECT_EQ(clair.hits, 143u);
  EXPECT_EQ(clair.hit_bytes, 8103u);
  EXPECT_NEAR(clair.density_value, 2331.8216693142454, 1e-9);
  EXPECT_EQ(naive_repeat_upper_bound(fixture.jobs), 141u);
}

}  // namespace
}  // namespace fbc
