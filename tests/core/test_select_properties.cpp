// Large-instance property tests for OptCacheSelect: structural invariants
// that must hold for every variant on instances far bigger than the
// exact-solver tests can verify.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/opt_cache_select.hpp"
#include "util/rng.hpp"

namespace fbc {
namespace {

struct BigInstance {
  FileCatalog catalog;
  std::vector<Request> requests;
  std::vector<double> values;
  std::vector<std::uint32_t> degrees;
  std::vector<FileId> free_files;
  Bytes capacity = 0;

  explicit BigInstance(std::uint64_t seed) {
    Rng rng(seed);
    const std::size_t num_files = 40 + rng.index(40);
    const std::size_t num_requests = 40 + rng.index(40);
    for (std::size_t f = 0; f < num_files; ++f) {
      catalog.add_file(rng.uniform_u64(1, 500));
    }
    for (std::size_t r = 0; r < num_requests; ++r) {
      const std::size_t k = 1 + rng.index(6);
      const auto picked = rng.sample_without_replacement(num_files, k);
      std::vector<FileId> files;
      for (std::size_t idx : picked) files.push_back(static_cast<FileId>(idx));
      requests.emplace_back(std::move(files));
      values.push_back(static_cast<double>(rng.uniform_u64(0, 20)));
    }
    degrees.assign(catalog.count(), 0);
    for (const Request& r : requests) {
      for (FileId id : r.files) ++degrees[id];
    }
    // Some free files (an incoming bundle).
    for (std::size_t idx :
         rng.sample_without_replacement(num_files, 1 + rng.index(5))) {
      free_files.push_back(static_cast<FileId>(idx));
    }
    capacity = rng.uniform_u64(0, catalog.total_bytes() / 2);
  }

  [[nodiscard]] std::vector<SelectionItem> items() const {
    std::vector<SelectionItem> out;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out.push_back(SelectionItem{&requests[i], values[i]});
    }
    return out;
  }
};

class SelectProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectProperties, StructuralInvariantsHoldForEveryVariant) {
  const BigInstance inst(GetParam());
  const auto items = inst.items();
  OptCacheSelect selector(inst.catalog, inst.degrees);

  for (SelectVariant variant : {SelectVariant::Basic, SelectVariant::Resort,
                                SelectVariant::Seeded1}) {
    const SelectionResult result =
        selector.select(items, inst.capacity, variant, inst.free_files);

    // Chosen indices are unique, valid, and have positive value.
    std::set<std::size_t> unique(result.chosen.begin(), result.chosen.end());
    EXPECT_EQ(unique.size(), result.chosen.size()) << to_string(variant);
    double value_sum = 0.0;
    for (std::size_t idx : result.chosen) {
      ASSERT_LT(idx, items.size()) << to_string(variant);
      EXPECT_GT(items[idx].value, 0.0) << to_string(variant);
      value_sum += items[idx].value;
    }
    EXPECT_DOUBLE_EQ(result.total_value, value_sum) << to_string(variant);

    // result.files is exactly the union of chosen bundles minus the free
    // files, sorted and deduplicated; file_bytes matches.
    std::set<FileId> expected;
    for (std::size_t idx : result.chosen) {
      for (FileId id : items[idx].request->files) expected.insert(id);
    }
    for (FileId id : inst.free_files) expected.erase(id);
    std::vector<FileId> expected_sorted(expected.begin(), expected.end());
    EXPECT_EQ(result.files, expected_sorted) << to_string(variant);
    EXPECT_EQ(result.file_bytes, inst.catalog.bundle_bytes(result.files))
        << to_string(variant);

    // The union respects the budget.
    EXPECT_LE(result.file_bytes, inst.capacity) << to_string(variant);

    // Step 3 floor: the result is at least as valuable as the best single
    // request that fits alone.
    double best_single = 0.0;
    for (const SelectionItem& item : items) {
      Bytes alone = 0;
      for (FileId id : item.request->files) {
        if (!std::binary_search(inst.free_files.begin(),
                                inst.free_files.end(), id)) {
          alone += inst.catalog.size_of(id);
        }
      }
      if (alone <= inst.capacity) best_single = std::max(best_single,
                                                         item.value);
    }
    EXPECT_GE(result.total_value, best_single - 1e-9) << to_string(variant);
  }
}

TEST_P(SelectProperties, SeededVariantsDominate) {
  const BigInstance inst(GetParam());
  const auto items = inst.items();
  OptCacheSelect selector(inst.catalog, inst.degrees);
  const double resort =
      selector.select(items, inst.capacity, SelectVariant::Resort,
                      inst.free_files)
          .total_value;
  const double seeded1 =
      selector.select(items, inst.capacity, SelectVariant::Seeded1,
                      inst.free_files)
          .total_value;
  EXPECT_GE(seeded1, resort - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectProperties,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace fbc
