// Regression pins for Theorem 4.1 on fuzzer-found hard instances.
//
// The fixtures under tests/fixtures/ were produced by
//   fbcfuzz --dump-hard=tests/fixtures --seed=7 --iters=2000
// searching for the instances with the *lowest* Basic-greedy/exact value
// ratio -- the adversarial corner of the instance space where the bound
// has the least slack. Each fixture is a self-contained v3 trace (see
// docs/TRACE-FORMAT.md); this test re-solves every one and asserts the
// paper's guarantees:
//   Basic/Resort/Seeded1 >= 1/2 (1 - e^{-1/d}) * exact
//   Seeded2              >=     (1 - e^{-1/d}) * exact
// plus the seeded-enumeration dominance chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/opt_cache_select.hpp"
#include "testing/instance_gen.hpp"
#include "workload/trace.hpp"

namespace fbc {
namespace {

std::vector<std::string> fixture_paths() {
  std::vector<std::string> paths;
  const std::filesystem::path dir(FBC_FIXTURE_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("hard-select-", 0) == 0 &&
        entry.path().extension() == ".trace") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(TheoremBoundRegression, HardInstancesRespectTheorem41) {
  const std::vector<std::string> paths = fixture_paths();
  ASSERT_FALSE(paths.empty()) << "no hard-select-*.trace fixtures under "
                              << FBC_FIXTURE_DIR;

  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    const Trace trace = load_trace(path);
    const testing::SelectInstance instance =
        testing::select_instance_from_trace(trace);
    const std::vector<SelectionItem> items = instance.items();

    ExactSelectStats stats;
    const SelectionResult exact =
        exact_select(items, instance.catalog, instance.capacity,
                     /*max_nodes=*/2000000, &stats);
    ASSERT_FALSE(stats.truncated)
        << "fixture too large for the exact reference solve";
    ASSERT_GT(exact.total_value, 0.0);

    const std::uint32_t d = max_file_degree(items);
    EXPECT_GE(d, 2u) << "hard fixtures should have shared files";
    const double eps = 1e-9 * exact.total_value;

    const std::vector<std::uint32_t> degrees = instance.degrees();
    OptCacheSelect selector(instance.catalog, degrees);
    const auto value_of = [&](SelectVariant variant) {
      return selector.select(items, instance.capacity, variant, {})
          .total_value;
    };
    const double basic = value_of(SelectVariant::Basic);
    const double resort = value_of(SelectVariant::Resort);
    const double seeded1 = value_of(SelectVariant::Seeded1);
    const double seeded2 = value_of(SelectVariant::Seeded2);

    const double greedy_floor = greedy_bound_factor(d) * exact.total_value;
    const double seeded_floor = seeded_bound_factor(d) * exact.total_value;
    EXPECT_GE(basic + eps, greedy_floor);
    EXPECT_GE(resort + eps, greedy_floor);
    EXPECT_GE(seeded1 + eps, greedy_floor);
    EXPECT_GE(seeded2 + eps, seeded_floor);

    // No greedy beats the optimum, and the enumerations dominate.
    EXPECT_LE(basic, exact.total_value + eps);
    EXPECT_LE(seeded2, exact.total_value + eps);
    EXPECT_GE(seeded1 + eps, resort);
    EXPECT_GE(seeded2 + eps, seeded1);

    // The fixture records the ratio observed when it was mined; the
    // instance must still be *hard* (well below the trivial ratio 1) or
    // the corpus has decayed into something no longer worth pinning.
    const double ratio = basic / exact.total_value;
    EXPECT_LT(ratio, 0.5) << "fixture no longer adversarial";
  }
}

}  // namespace
}  // namespace fbc
