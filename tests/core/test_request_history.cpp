// Tests for the L(R) request-history structure.
#include "core/request_history.hpp"

#include <gtest/gtest.h>

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n, Bytes each = 100) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(each);
  return catalog;
}

TEST(RequestHistory, ObserveCountsOccurrences) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog);
  const Request r({0, 1});
  EXPECT_DOUBLE_EQ(history.value(r), 0.0);
  history.observe(r);
  history.observe(r);
  history.observe(Request({2}));
  EXPECT_DOUBLE_EQ(history.value(r), 2.0);
  EXPECT_DOUBLE_EQ(history.value(Request({2})), 1.0);
  EXPECT_EQ(history.observed_jobs(), 3u);
  EXPECT_EQ(history.distinct_requests(), 2u);
}

TEST(RequestHistory, WeightedObservation) {
  FileCatalog catalog = unit_catalog(3);
  RequestHistory history(catalog);
  history.observe(Request({0}), 2.5);
  history.observe(Request({0}), 0.5);
  EXPECT_DOUBLE_EQ(history.value(Request({0})), 3.0);
}

TEST(RequestHistory, DegreeCountsDistinctRequests) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog);
  history.observe(Request({0, 1}));
  history.observe(Request({0, 2}));
  history.observe(Request({0, 1}));  // repeat: degree unchanged
  EXPECT_EQ(history.degree(0), 2u);
  EXPECT_EQ(history.degree(1), 1u);
  EXPECT_EQ(history.degree(2), 1u);
  EXPECT_EQ(history.degree(4), 0u);
  EXPECT_EQ(history.max_degree(), 2u);
}

TEST(RequestHistory, AdjustedSizes) {
  FileCatalog catalog = unit_catalog(3, 600);
  RequestHistory history(catalog);
  history.observe(Request({0, 1}));
  history.observe(Request({0, 2}));
  history.observe(Request({0}));
  // d(0) = 3, d(1) = d(2) = 1.
  EXPECT_DOUBLE_EQ(history.adjusted_size(0), 200.0);
  EXPECT_DOUBLE_EQ(history.adjusted_size(1), 600.0);
  // Unreferenced files divide by 1.
  EXPECT_DOUBLE_EQ(
      history.adjusted_bundle_size(std::vector<FileId>{0, 1}), 800.0);
}

TEST(RequestHistory, RelativeValueMatchesDefinition) {
  FileCatalog catalog = unit_catalog(3, 600);
  RequestHistory history(catalog);
  const Request r({0, 1});
  history.observe(r);
  history.observe(r);
  // v(r) = 2, d(0) = d(1) = 1 => adjusted bundle size 1200.
  EXPECT_DOUBLE_EQ(history.relative_value(r), 2.0 / 1200.0);
  EXPECT_DOUBLE_EQ(history.relative_value(r, /*extra_weight=*/1.0),
                   3.0 / 1200.0);
  // Unseen request has relative value 0 (but extra weight revives it).
  const Request unseen({2});
  EXPECT_DOUBLE_EQ(history.relative_value(unseen), 0.0);
  EXPECT_DOUBLE_EQ(history.relative_value(unseen, 1.0), 1.0 / 600.0);
}

TEST(RequestHistory, FullModeKeepsAllCandidates) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog, {HistoryMode::Full, 0});
  DiskCache cache(100, catalog);  // nothing resident
  history.observe(Request({0}));
  history.observe(Request({1, 2}));
  EXPECT_EQ(history.candidates(cache).size(), 2u);
}

TEST(RequestHistory, CacheResidentModeFiltersUnsupported) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog, {HistoryMode::CacheResident, 0});
  DiskCache cache(500, catalog);
  cache.insert(0);
  cache.insert(1);
  history.observe(Request({0}));        // supported
  history.observe(Request({0, 1}));     // supported
  history.observe(Request({1, 2}));     // 2 not resident
  const auto candidates = history.candidates(cache);
  ASSERT_EQ(candidates.size(), 2u);
  for (const HistoryEntry* e : candidates) {
    EXPECT_TRUE(cache.supports(e->request));
  }
}

TEST(RequestHistory, CacheResidentKeepsGlobalDegrees) {
  // Degrees and popularity survive even when the entry is filtered out of
  // the candidate list (paper §5.2).
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog, {HistoryMode::CacheResident, 0});
  DiskCache cache(100, catalog);
  history.observe(Request({2, 3}));
  EXPECT_TRUE(history.candidates(cache).empty());
  EXPECT_EQ(history.degree(2), 1u);
  EXPECT_DOUBLE_EQ(history.value(Request({2, 3})), 1.0);
}

TEST(RequestHistory, WindowModeExpiresOldEntries) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog, {HistoryMode::Window, 3});
  DiskCache cache(100, catalog);
  history.observe(Request({0}));  // job 1
  history.observe(Request({1}));  // job 2
  history.observe(Request({2}));  // job 3
  history.observe(Request({3}));  // job 4: {0} is now outside the window
  const auto candidates = history.candidates(cache);
  ASSERT_EQ(candidates.size(), 3u);
  for (const HistoryEntry* e : candidates) {
    EXPECT_NE(e->request, Request({0}));
  }
}

TEST(RequestHistory, WindowRefreshedByReoccurrence) {
  FileCatalog catalog = unit_catalog(5);
  RequestHistory history(catalog, {HistoryMode::Window, 3});
  DiskCache cache(100, catalog);
  history.observe(Request({0}));  // job 1
  history.observe(Request({1}));  // job 2
  history.observe(Request({0}));  // job 3: refreshes {0}
  history.observe(Request({2}));  // job 4
  const auto candidates = history.candidates(cache);
  bool has_zero = false;
  for (const HistoryEntry* e : candidates) {
    has_zero |= (e->request == Request({0}));
  }
  EXPECT_TRUE(has_zero);
}

TEST(RequestHistory, ExcludeParameterOmitsTheIncomingRequest) {
  FileCatalog catalog = unit_catalog(3);
  RequestHistory history(catalog, {HistoryMode::Full, 0});
  DiskCache cache(100, catalog);
  const Request incoming({0, 1});
  history.observe(incoming);
  history.observe(Request({2}));
  const auto candidates = history.candidates(cache, &incoming);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front()->request, Request({2}));
}

TEST(RequestHistory, ClearResetsEverything) {
  FileCatalog catalog = unit_catalog(3);
  RequestHistory history(catalog);
  history.observe(Request({0, 1}));
  history.clear();
  EXPECT_EQ(history.observed_jobs(), 0u);
  EXPECT_EQ(history.distinct_requests(), 0u);
  EXPECT_EQ(history.degree(0), 0u);
  EXPECT_EQ(history.max_degree(), 0u);
}

TEST(RequestHistory, ModeNames) {
  EXPECT_EQ(to_string(HistoryMode::Full), "full");
  EXPECT_EQ(to_string(HistoryMode::Window), "window");
  EXPECT_EQ(to_string(HistoryMode::CacheResident), "cache-resident");
}

}  // namespace
}  // namespace fbc
