// Tests for bounded-memory history compaction (RequestHistoryConfig::
// max_entries extension).
#include <gtest/gtest.h>

#include <vector>

#include "cache/simulator.hpp"
#include "core/opt_file_bundle.hpp"
#include "core/request_history.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(HistoryCompaction, UnboundedByDefault) {
  FileCatalog catalog = unit_catalog(300);
  RequestHistory history(catalog);
  for (FileId i = 0; i < 300; ++i) history.observe(Request({i}));
  EXPECT_EQ(history.distinct_requests(), 300u);
}

TEST(HistoryCompaction, CapsDistinctRequests) {
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 100;
  RequestHistory history(catalog, config);
  for (FileId i = 0; i < 300; ++i) history.observe(Request({i}));
  EXPECT_LE(history.distinct_requests(), 100u);
  EXPECT_GE(history.distinct_requests(), 75u);  // compaction keeps 3/4
}

TEST(HistoryCompaction, KeepsHighValueEntries) {
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 100;
  RequestHistory history(catalog, config);
  const Request hot({0, 1});
  for (int i = 0; i < 50; ++i) history.observe(hot);
  for (FileId i = 2; i < 280; ++i) history.observe(Request({i}));
  EXPECT_DOUBLE_EQ(history.value(hot), 50.0);  // survived every compaction
}

TEST(HistoryCompaction, DegreesShrinkWithDroppedEntries) {
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 100;
  RequestHistory history(catalog, config);
  // 150 distinct one-shot requests all touching file 0.
  for (FileId i = 1; i < 151; ++i) history.observe(Request({0, i}));
  // Without compaction d(0) would be 150; the cap keeps it <= 100.
  EXPECT_LE(history.degree(0), 100u);
  EXPECT_EQ(history.degree(0), static_cast<std::uint32_t>(
                                   history.distinct_requests()));
  EXPECT_EQ(history.max_degree(), history.degree(0));
}

TEST(HistoryCompaction, DroppedRequestRestartsFresh) {
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 20;
  RequestHistory history(catalog, config);
  const Request victim({200});
  history.observe(victim);
  // Flood with newer, higher-value entries to push `victim` out.
  for (int round = 0; round < 3; ++round) {
    for (FileId i = 0; i < 30; ++i) {
      history.observe(Request({i}));
      history.observe(Request({i}));
    }
  }
  EXPECT_DOUBLE_EQ(history.value(victim), 0.0);
  history.observe(victim);
  EXPECT_DOUBLE_EQ(history.value(victim), 1.0);
}

TEST(HistoryCompaction, JournalDeltasTrackDegreesExactly) {
  // Regression for incremental-engine staleness: compaction must emit a
  // -1 degree delta for every file of every dropped entry. A shadow degree
  // table maintained *purely* from drained journal deltas has to stay
  // equal to the history's own (from-scratch maintained) degree table
  // across repeated compactions -- if compact() ever stops journaling the
  // drops, the shadow table keeps the dropped entries' contributions and
  // this comparison fails.
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 50;
  RequestHistory history(catalog, config);
  history.set_journaling(true);

  std::vector<std::uint32_t> shadow(300, 0);
  std::uint64_t compactions_seen = 0;
  Rng rng(99);
  for (int job = 0; job < 400; ++job) {
    std::vector<FileId> files;
    const std::size_t width = 1 + rng.index(3);
    for (std::size_t i = 0; i < width; ++i) {
      files.push_back(static_cast<FileId>(rng.index(300)));
    }
    history.observe(Request(std::move(files)));

    const HistoryJournal& journal = history.journal();
    if (journal.dropped > 0) ++compactions_seen;
    for (const auto& [id, delta] : journal.degree_deltas) {
      shadow[id] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(shadow[id]) + delta);
    }
    history.drain_journal();

    // From-scratch recount == shadow table, every single job.
    for (FileId id = 0; id < 300; ++id) {
      ASSERT_EQ(shadow[id], history.degree(id))
          << "degree drift on file " << id << " after job " << job;
    }
  }
  EXPECT_GT(compactions_seen, 0u) << "cap never triggered -- test is vacuous";
}

TEST(HistoryCompaction, CompactionSetsRemappedFlag) {
  // Entry indices recorded before a compaction are invalid afterwards;
  // consumers detect this via the journal's remapped flag.
  FileCatalog catalog = unit_catalog(300);
  RequestHistoryConfig config;
  config.max_entries = 20;
  RequestHistory history(catalog, config);
  history.set_journaling(true);
  bool saw_remap = false;
  for (FileId i = 0; i < 60; ++i) {
    history.observe(Request({i}));
    if (history.journal().remapped) {
      saw_remap = true;
      EXPECT_GT(history.journal().dropped, 0u);
    }
    history.drain_journal();
  }
  EXPECT_TRUE(saw_remap);
}

TEST(HistoryCompaction, OptFbRunsWithBoundedHistory) {
  // End-to-end: a capped history keeps the policy functional and close to
  // the unbounded one on a Zipf workload (the dropped tail is cold).
  WorkloadConfig wconfig;
  wconfig.seed = 3;
  wconfig.cache_bytes = 8 * MiB;
  wconfig.num_files = 200;
  wconfig.min_file_bytes = 16 * KiB;
  wconfig.max_file_frac = 0.02;
  wconfig.num_requests = 300;
  wconfig.num_jobs = 3000;
  wconfig.popularity = Popularity::Zipf;
  const Workload w = generate_workload(wconfig);

  auto run = [&](std::size_t max_entries) {
    OptFileBundleConfig pconfig;
    pconfig.history.max_entries = max_entries;
    OptFileBundlePolicy policy(w.catalog, pconfig);
    SimulatorConfig config{.cache_bytes = wconfig.cache_bytes,
                           .warmup_jobs = 300};
    return simulate(config, w.catalog, policy, w.jobs)
        .metrics.byte_miss_ratio();
  };
  const double unbounded = run(0);
  const double bounded = run(60);
  EXPECT_LT(bounded, unbounded * 1.25);  // within 25% of unbounded
}

}  // namespace
}  // namespace fbc
