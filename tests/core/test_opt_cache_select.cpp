// Tests for the OptCacheSelect greedy variants and the exact solver.
#include "core/opt_cache_select.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace fbc {
namespace {

/// Helper bundling an instance: owns requests and exposes items.
struct Instance {
  FileCatalog catalog;
  std::vector<Request> requests;
  std::vector<double> values;
  std::vector<std::uint32_t> degrees;

  void add_request(std::vector<FileId> files, double value) {
    requests.emplace_back(std::move(files));
    values.push_back(value);
  }

  void finalize() {
    degrees.assign(catalog.count(), 0);
    for (const Request& r : requests) {
      for (FileId id : r.files) ++degrees[id];
    }
  }

  [[nodiscard]] std::vector<SelectionItem> items() const {
    std::vector<SelectionItem> out;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out.push_back(SelectionItem{&requests[i], values[i]});
    }
    return out;
  }

  [[nodiscard]] SelectionResult run(Bytes capacity, SelectVariant variant,
                                    std::span<const FileId> free = {}) const {
    OptCacheSelect selector(catalog, degrees);
    return selector.select(items(), capacity, variant, free);
  }
};

TEST(OptCacheSelect, KnapsackDegenerateCase) {
  // Disjoint single-file requests == 0/1 knapsack; the greedy's value/size
  // ordering solves this instance exactly.
  Instance inst;
  for (Bytes s : {Bytes{60}, Bytes{100}, Bytes{120}}) {
    (void)inst.catalog.add_file(s);
  }
  inst.add_request({0}, 60);   // density 1.0
  inst.add_request({1}, 100);  // density 1.0
  inst.add_request({2}, 120);  // density 1.0
  inst.finalize();
  const SelectionResult result = inst.run(220, SelectVariant::Basic);
  // Ties at equal density resolve by index: picks {0}, {1} (160 bytes),
  // then {2} no longer fits: total value 160... but the exact optimum is
  // {1},{2} = 220. Verify the exact solver finds 220.
  const SelectionResult exact = exact_select(inst.items(), inst.catalog, 220);
  EXPECT_DOUBLE_EQ(exact.total_value, 220.0);
  EXPECT_LE(result.total_value, exact.total_value);
  EXPECT_GE(result.total_value, 160.0);
}

TEST(OptCacheSelect, PrefersHighAdjustedRelativeValue) {
  Instance inst;
  for (int i = 0; i < 4; ++i) inst.catalog.add_file(100);
  inst.add_request({0}, 10);     // v' = 10/100
  inst.add_request({1, 2}, 10);  // v' = 10/200
  inst.add_request({3}, 1);      // v' = 1/100
  inst.finalize();
  const SelectionResult result = inst.run(200, SelectVariant::Basic);
  // Greedy order: {0}, then {1,2} fits (100+200=300 > 200? {1,2} needs 200
  // but only 100 left -> skipped), then {3} fits.
  ASSERT_EQ(result.chosen.size(), 2u);
  EXPECT_EQ(result.chosen[0], 0u);
  EXPECT_EQ(result.chosen[1], 2u);
  EXPECT_DOUBLE_EQ(result.total_value, 11.0);
}

TEST(OptCacheSelect, SharedFilesRaiseRank) {
  // Two requests share a popular file: its degree-adjusted size shrinks,
  // lifting both requests' ranks above a loner of equal value.
  Instance inst;
  for (int i = 0; i < 3; ++i) inst.catalog.add_file(100);
  inst.add_request({0, 1}, 5);  // shares file 0
  inst.add_request({0, 2}, 5);  // shares file 0
  inst.add_request({1, 2}, 5);  // no shared benefit beyond d-values
  inst.finalize();
  // Every file is shared by two requests: d(f) = 2, s'(f) = 50 for all.
  OptCacheSelect selector(inst.catalog, inst.degrees);
  EXPECT_DOUBLE_EQ(selector.adjusted_size(0), 50.0);
  EXPECT_DOUBLE_EQ(selector.adjusted_size(1), 50.0);
  const SelectionResult result = inst.run(300, SelectVariant::Resort);
  // Resort: take {0,1} (covered 0,1), then {0,2} costs only file 2 (100)
  // and fits; total union exactly 300 bytes, all three values... {1,2} is
  // then fully covered and free. Everything is selected.
  EXPECT_DOUBLE_EQ(result.total_value, 15.0);
  EXPECT_EQ(result.file_bytes, 300u);
}

TEST(OptCacheSelect, BasicDoubleCountsSharedFiles) {
  // Same instance, Basic variant: naive accounting blocks the third
  // request even though its files are already in the union.
  Instance inst;
  for (int i = 0; i < 3; ++i) inst.catalog.add_file(100);
  inst.add_request({0, 1}, 5);
  inst.add_request({0, 2}, 5);
  inst.add_request({1, 2}, 5);
  inst.finalize();
  const SelectionResult basic = inst.run(300, SelectVariant::Basic);
  const SelectionResult resort = inst.run(300, SelectVariant::Resort);
  EXPECT_LT(basic.total_value, resort.total_value);
  EXPECT_DOUBLE_EQ(basic.total_value, 5.0);  // 150 + 150 > 300 after first
}

TEST(OptCacheSelect, SingleRequestOverride) {
  // One huge request is worth more than everything the greedy packs.
  Instance inst;
  inst.catalog.add_file(500);  // 0: big file
  inst.catalog.add_file(100);  // 1
  inst.catalog.add_file(100);  // 2
  inst.add_request({0}, 100);     // v' = 100/500 = 0.2
  inst.add_request({1}, 30);      // v' = 0.3
  inst.add_request({2}, 30);      // v' = 0.3
  inst.finalize();
  const SelectionResult result = inst.run(500, SelectVariant::Basic);
  // Greedy picks {1}, {2} (value 60) then {0} does not fit (500 > 300).
  // Step 3 overrides with the single request worth 100.
  EXPECT_TRUE(result.single_request_override);
  EXPECT_DOUBLE_EQ(result.total_value, 100.0);
  ASSERT_EQ(result.chosen.size(), 1u);
  EXPECT_EQ(result.chosen[0], 0u);
}

TEST(OptCacheSelect, FreeFilesCostNothing) {
  Instance inst;
  for (int i = 0; i < 3; ++i) inst.catalog.add_file(100);
  inst.add_request({0, 1}, 4);
  inst.add_request({2}, 10);
  inst.finalize();
  const std::vector<FileId> free{0, 1};
  // Capacity 100 only: with {0,1} free, request 0 costs nothing and
  // request 1 exactly fits.
  const SelectionResult result =
      inst.run(100, SelectVariant::Resort, free);
  EXPECT_DOUBLE_EQ(result.total_value, 14.0);
  // Free files are excluded from the reported byte usage.
  EXPECT_EQ(result.file_bytes, 100u);
  EXPECT_EQ(result.files, (std::vector<FileId>{2}));
}

TEST(OptCacheSelect, ZeroValueItemsIgnored) {
  Instance inst;
  inst.catalog.add_file(100);
  inst.catalog.add_file(100);
  inst.add_request({0}, 0.0);
  inst.add_request({1}, 1.0);
  inst.finalize();
  for (SelectVariant v : {SelectVariant::Basic, SelectVariant::Resort,
                          SelectVariant::Seeded1, SelectVariant::Seeded2}) {
    const SelectionResult result = inst.run(200, v);
    EXPECT_DOUBLE_EQ(result.total_value, 1.0) << to_string(v);
    ASSERT_EQ(result.chosen.size(), 1u) << to_string(v);
    EXPECT_EQ(result.chosen[0], 1u) << to_string(v);
  }
}

TEST(OptCacheSelect, EmptyItemsYieldEmptySolution) {
  Instance inst;
  inst.catalog.add_file(100);
  inst.finalize();
  const SelectionResult result = inst.run(100, SelectVariant::Resort);
  EXPECT_TRUE(result.chosen.empty());
  EXPECT_DOUBLE_EQ(result.total_value, 0.0);
  EXPECT_TRUE(result.files.empty());
}

TEST(OptCacheSelect, RejectsInvalidItems) {
  Instance inst;
  inst.catalog.add_file(100);
  inst.add_request({0}, -1.0);
  inst.finalize();
  EXPECT_THROW((void)inst.run(100, SelectVariant::Basic), std::invalid_argument);

  OptCacheSelect selector(inst.catalog, inst.degrees);
  std::vector<SelectionItem> null_item{SelectionItem{nullptr, 1.0}};
  EXPECT_THROW((void)selector.select(null_item, 100), std::invalid_argument);
}

TEST(OptCacheSelect, SeededAtLeastAsGoodAsResort) {
  // Seeding can escape the greedy's bad first pick. Construct a trap:
  // a high-density small request blocks the optimal big pair.
  Instance inst;
  inst.catalog.add_file(60);   // 0
  inst.catalog.add_file(50);   // 1
  inst.catalog.add_file(50);   // 2
  inst.add_request({0}, 10);      // density highest
  inst.add_request({1}, 7);
  inst.add_request({2}, 7);
  inst.finalize();
  const SelectionResult resort = inst.run(100, SelectVariant::Resort);
  const SelectionResult seeded1 = inst.run(100, SelectVariant::Seeded1);
  const SelectionResult seeded2 = inst.run(100, SelectVariant::Seeded2);
  // Greedy: {0} (10), then nothing fits (50 > 40): value 10.
  // Optimal: {1} + {2} = 14; Seeded1 finds it by seeding {1} or {2}.
  EXPECT_DOUBLE_EQ(resort.total_value, 10.0);
  EXPECT_DOUBLE_EQ(seeded1.total_value, 14.0);
  EXPECT_GE(seeded2.total_value, seeded1.total_value);
}

TEST(OptCacheSelect, VariantNames) {
  EXPECT_EQ(to_string(SelectVariant::Basic), "basic");
  EXPECT_EQ(to_string(SelectVariant::Resort), "resort");
  EXPECT_EQ(to_string(SelectVariant::Seeded1), "seeded1");
  EXPECT_EQ(to_string(SelectVariant::Seeded2), "seeded2");
}

TEST(ExactSelect, SolvesSharedFileInstanceOptimally) {
  Instance inst;
  for (int i = 0; i < 4; ++i) inst.catalog.add_file(100);
  inst.add_request({0, 1}, 6);
  inst.add_request({1, 2}, 6);
  inst.add_request({2, 3}, 6);
  inst.add_request({0, 3}, 1);
  inst.finalize();
  // Capacity 300: best is {0,1}+{1,2} or {1,2}+{2,3} = 12 (union 3 files).
  const SelectionResult exact = exact_select(inst.items(), inst.catalog, 300);
  EXPECT_DOUBLE_EQ(exact.total_value, 12.0);
  EXPECT_LE(exact.file_bytes, 300u);
}

TEST(ExactSelect, UnionAccountingBeatsNaive) {
  // Three pairwise-overlapping requests whose union is exactly capacity.
  Instance inst;
  for (int i = 0; i < 3; ++i) inst.catalog.add_file(100);
  inst.add_request({0, 1}, 5);
  inst.add_request({0, 2}, 5);
  inst.add_request({1, 2}, 5);
  inst.finalize();
  const SelectionResult exact = exact_select(inst.items(), inst.catalog, 300);
  EXPECT_DOUBLE_EQ(exact.total_value, 15.0);
}

TEST(OptCacheSelect, ZeroCapacityOnlyAdmitsFreeRequests) {
  Instance inst;
  inst.catalog.add_file(100);
  inst.catalog.add_file(100);
  inst.add_request({0}, 5);
  inst.add_request({1}, 7);
  inst.finalize();
  // Capacity 0, no free files: nothing selectable.
  const SelectionResult none = inst.run(0, SelectVariant::Resort);
  EXPECT_TRUE(none.chosen.empty());
  EXPECT_DOUBLE_EQ(none.total_value, 0.0);
  // Capacity 0 but file 1 is free (incoming bundle): request 1 is free.
  const std::vector<FileId> free{1};
  const SelectionResult with_free =
      inst.run(0, SelectVariant::Resort, free);
  EXPECT_DOUBLE_EQ(with_free.total_value, 7.0);
  EXPECT_TRUE(with_free.files.empty());  // nothing beyond the free files
}

TEST(OptCacheSelect, DeterministicAcrossRepeatedCalls) {
  Instance inst;
  for (int i = 0; i < 10; ++i) inst.catalog.add_file(100);
  // Deliberately tied values and overlapping bundles.
  inst.add_request({0, 1}, 2);
  inst.add_request({1, 2}, 2);
  inst.add_request({2, 3}, 2);
  inst.add_request({4, 5}, 2);
  inst.add_request({5, 6}, 2);
  inst.finalize();
  for (SelectVariant v : {SelectVariant::Basic, SelectVariant::Resort,
                          SelectVariant::Seeded1}) {
    const SelectionResult a = inst.run(500, v);
    const SelectionResult b = inst.run(500, v);
    EXPECT_EQ(a.chosen, b.chosen) << to_string(v);
    EXPECT_EQ(a.files, b.files) << to_string(v);
  }
}

TEST(OptCacheSelect, OversizedSingleItemNeverChosen) {
  Instance inst;
  inst.catalog.add_file(1000);
  inst.catalog.add_file(10);
  inst.add_request({0}, 100);  // huge value but cannot fit
  inst.add_request({1}, 1);
  inst.finalize();
  for (SelectVariant v : {SelectVariant::Basic, SelectVariant::Resort,
                          SelectVariant::Seeded1, SelectVariant::Seeded2}) {
    const SelectionResult result = inst.run(100, v);
    EXPECT_DOUBLE_EQ(result.total_value, 1.0) << to_string(v);
    EXPECT_FALSE(result.single_request_override) << to_string(v);
  }
}

TEST(ExactSelect, EmptyAndInfeasibleInstances) {
  Instance inst;
  inst.catalog.add_file(1000);
  inst.add_request({0}, 5);
  inst.finalize();
  EXPECT_DOUBLE_EQ(exact_select(inst.items(), inst.catalog, 500).total_value,
                   0.0);
  EXPECT_DOUBLE_EQ(exact_select({}, inst.catalog, 500).total_value, 0.0);
}

namespace {

/// A knapsack-shaped instance big enough that the search visits many nodes.
Instance budget_instance() {
  Instance inst;
  for (FileId f = 0; f < 14; ++f) {
    (void)inst.catalog.add_file(10 + 7 * (f % 5));
    inst.add_request({f}, 5.0 + static_cast<double>((3 * f) % 11));
  }
  inst.finalize();
  return inst;
}

}  // namespace

TEST(ExactSelect, UnboundedSolveReportsNodesWithoutTruncation) {
  const Instance inst = budget_instance();
  ExactSelectStats stats;
  const SelectionResult exact =
      exact_select(inst.items(), inst.catalog, 120, 0, &stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_GT(exact.total_value, 0.0);
}

TEST(ExactSelect, TinyNodeBudgetTruncatesButStaysFeasible) {
  const Instance inst = budget_instance();
  const SelectionResult unbounded =
      exact_select(inst.items(), inst.catalog, 120);

  ExactSelectStats stats;
  const SelectionResult truncated =
      exact_select(inst.items(), inst.catalog, 120, 1, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(stats.nodes, 1u);
  // A truncated solve returns its incumbent: still feasible, never above
  // the true optimum.
  EXPECT_LE(truncated.file_bytes, 120u);
  EXPECT_LE(truncated.total_value, unbounded.total_value);
}

TEST(ExactSelect, LargeNodeBudgetMatchesUnbounded) {
  const Instance inst = budget_instance();
  ExactSelectStats unbounded_stats;
  const SelectionResult unbounded = exact_select(
      inst.items(), inst.catalog, 120, 0, &unbounded_stats);

  ExactSelectStats stats;
  const SelectionResult bounded =
      exact_select(inst.items(), inst.catalog, 120,
                   unbounded_stats.nodes + 1, &stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.nodes, unbounded_stats.nodes);
  EXPECT_DOUBLE_EQ(bounded.total_value, unbounded.total_value);
  EXPECT_EQ(bounded.chosen, unbounded.chosen);
}

TEST(ExactSelect, StatsResetBetweenCalls) {
  const Instance inst = budget_instance();
  ExactSelectStats stats;
  (void)exact_select(inst.items(), inst.catalog, 120, 1, &stats);
  ASSERT_TRUE(stats.truncated);
  // Re-use the same stats object: a fresh unbounded solve must clear it.
  (void)exact_select(inst.items(), inst.catalog, 120, 0, &stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.nodes, 1u);
}

}  // namespace
}  // namespace fbc
