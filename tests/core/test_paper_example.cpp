// Reproduction of the paper's worked example (Fig. 3, Tables 1 and 2):
// seven unit-size files f1..f7, six equally likely requests, a cache
// holding three files. Keeping the three *most popular* files supports
// only one request (hit probability 1/6), while the bundle-aware choice
// {f1, f3, f5} supports three (1/2).
//
// Paper file/request numbering is 1-based; we use 0-based FileIds, so
// f_k in the paper is file k-1 here.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "core/opt_cache_select.hpp"
#include "core/request_history.hpp"

namespace fbc {
namespace {

/// The six requests of Fig. 3 (0-based file ids). This incidence is the
/// unique one consistent with Table 1's degrees
///   d(f1)=2, d(f2)=1, d(f3)=2, d(f4)=1, d(f5)=4, d(f6)=3, d(f7)=3
/// and with every supported-requests row of Table 2 (derived by
/// intersecting the subset constraints those rows impose).
std::array<Request, 6> paper_requests() {
  return {
      Request({0, 2, 4}),  // r1 = {f1, f3, f5}
      Request({1, 5, 6}),  // r2 = {f2, f6, f7}
      Request({0, 4}),     // r3 = {f1, f5}
      Request({3, 5, 6}),  // r4 = {f4, f6, f7}
      Request({2, 4}),     // r5 = {f3, f5}
      Request({4, 5, 6}),  // r6 = {f5, f6, f7}
  };
}

FileCatalog unit_catalog() {
  FileCatalog catalog;
  for (int i = 0; i < 7; ++i) catalog.add_file(1);
  return catalog;
}

class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = unit_catalog();
    requests_ = paper_requests();
  }

  /// Number of requests supported by a given cache content.
  [[nodiscard]] int supported(const std::vector<FileId>& cache_files) const {
    Request cache_set{std::vector<FileId>(cache_files)};
    int count = 0;
    for (const Request& r : requests_) {
      bool all = true;
      for (FileId id : r.files) all = all && cache_set.contains(id);
      count += all;
    }
    return count;
  }

  FileCatalog catalog_;
  std::array<Request, 6> requests_;
};

TEST_F(PaperExample, Table1FileRequestCounts) {
  // Table 1, "No of Requests" column: f1..f7 -> 2,1,2,1,4,3,3.
  // (The printed probability 1/3 for f4 contradicts its own count column
  // of 1; 1 request out of 6 is 1/6. The count column is the consistent
  // one -- it is forced by Table 2's rows -- so we reproduce that.)
  std::map<FileId, int> degree;
  for (const Request& r : requests_) {
    for (FileId id : r.files) degree[id] += 1;
  }
  EXPECT_EQ(degree[0], 2);
  EXPECT_EQ(degree[1], 1);
  EXPECT_EQ(degree[2], 2);
  EXPECT_EQ(degree[3], 1);
  EXPECT_EQ(degree[4], 4);  // f5: the most popular file
  EXPECT_EQ(degree[5], 3);
  EXPECT_EQ(degree[6], 3);
}

TEST_F(PaperExample, Table2RequestHitProbabilities) {
  // Table 2 rows (request-hit probability = supported / 6).
  EXPECT_EQ(supported({4, 5, 6}), 1);  // {f5,f6,f7}: only r6 -> 1/6
  EXPECT_EQ(supported({0, 2, 4}), 3);  // {f1,f3,f5}: r1,r3,r5 -> 1/2
  EXPECT_EQ(supported({0, 4, 5}), 1);  // {f1,f5,f6}: only r3 -> 1/6
  EXPECT_EQ(supported({2, 4, 5}), 1);  // {f3,f5,f6}: only r5 -> 1/6
  EXPECT_EQ(supported({0, 1, 2}), 0);  // {f1,f2,f3}: none -> 0
}

TEST_F(PaperExample, PopularityChoiceIsSuboptimal) {
  // The three most popular files are f5, f6, f7 -- and they support just
  // one request, while the best 3-file cache supports three.
  EXPECT_LT(supported({4, 5, 6}), supported({0, 2, 4}));
}

TEST_F(PaperExample, BestThreeFileCacheIsF1F3F5) {
  // Exhaustive check over all C(7,3) = 35 cache contents: no selection
  // beats {f1, f3, f5}'s three supported requests.
  int best = 0;
  std::vector<FileId> best_files;
  for (FileId a = 0; a < 7; ++a) {
    for (FileId b = a + 1; b < 7; ++b) {
      for (FileId c = b + 1; c < 7; ++c) {
        const int count = supported({a, b, c});
        if (count > best) {
          best = count;
          best_files = {a, b, c};
        }
      }
    }
  }
  EXPECT_EQ(best, 3);
  EXPECT_EQ(best_files, (std::vector<FileId>{0, 2, 4}));
}

TEST_F(PaperExample, OptCacheSelectFindsTheOptimalCache) {
  // Run the paper's greedy over the six requests with equal values and a
  // budget of three unit files: it must recover the {f1, f3, f5} cache.
  RequestHistory history(catalog_);
  for (const Request& r : requests_) history.observe(r);

  std::vector<SelectionItem> items;
  for (const Request& r : requests_) {
    items.push_back(SelectionItem{&r, history.value(r)});
  }
  OptCacheSelect selector(catalog_, history.degrees());
  const SelectionResult result =
      selector.select(items, /*capacity=*/3, SelectVariant::Resort);
  EXPECT_EQ(result.files, (std::vector<FileId>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(result.total_value, 3.0);  // r1, r3, r5
  EXPECT_EQ(result.file_bytes, 3u);
}

TEST_F(PaperExample, ExactSolverAgreesWithGreedyHere) {
  RequestHistory history(catalog_);
  for (const Request& r : requests_) history.observe(r);
  std::vector<SelectionItem> items;
  for (const Request& r : requests_) {
    items.push_back(SelectionItem{&r, history.value(r)});
  }
  const SelectionResult exact = exact_select(items, catalog_, 3);
  EXPECT_DOUBLE_EQ(exact.total_value, 3.0);
  EXPECT_EQ(exact.files, (std::vector<FileId>{0, 2, 4}));
}

TEST_F(PaperExample, MaxDegreeIsFour) {
  // d = 4 in the paper's bound discussion (f5 is used by 4 requests).
  RequestHistory history(catalog_);
  for (const Request& r : requests_) history.observe(r);
  EXPECT_EQ(history.max_degree(), 4u);
}

}  // namespace
}  // namespace fbc
