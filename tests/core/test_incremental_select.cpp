// Tests for the incremental selection engine (core/incremental_select.hpp)
// and the history change-journal that feeds it.
//
// The headline property is *byte-identical* equivalence with the reference
// engine: the engine-diff adapter (testing/oracles.hpp) compares every
// replacement decision field by field -- victim lists, selected requests,
// kept files, and total_value via bit_cast -- and throws EngineDivergence
// at the first mismatch, so "simulation completes without violations"
// means the engines never produced results differing in a single bit.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "cache/simulator.hpp"
#include "core/opt_file_bundle.hpp"
#include "core/request_history.hpp"
#include "testing/instance_gen.hpp"
#include "testing/oracles.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

using testing::check_engines_agree;
using testing::EngineDivergence;
using testing::generate_sim_instance;
using testing::make_engine_diff_policy;
using testing::SelectInstance;
using testing::SimGenConfig;
using testing::SimInstance;
using testing::Violation;

Workload small_workload(std::uint64_t seed, Bytes cache = 4 * MiB,
                        std::size_t jobs = 600, std::size_t pool = 150) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = cache;
  config.num_files = 120;
  config.min_file_bytes = 16 * KiB;
  config.max_file_frac = 0.05;
  config.num_requests = pool;
  config.max_bundle_files = 6;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  return generate_workload(config);
}

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

// --- History change-journal: the engine's input contract ------------------

TEST(HistoryJournal, OffByDefault) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  EXPECT_FALSE(history.journaling());
  history.observe(Request({0, 1}));
  EXPECT_TRUE(history.journal().empty());
}

TEST(HistoryJournal, RecordsAddedEntriesAndDegreeIncrements) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  history.set_journaling(true);
  history.observe(Request({0, 1}));
  history.observe(Request({1, 2}));

  const HistoryJournal& journal = history.journal();
  ASSERT_EQ(journal.added.size(), 2u);
  EXPECT_EQ(journal.added[0], 0u);
  EXPECT_EQ(journal.added[1], 1u);
  EXPECT_TRUE(journal.value_dirty.empty());
  // +1 per file of each new bundle, in occurrence order.
  const std::vector<std::pair<FileId, std::int32_t>> expected{
      {0, 1}, {1, 1}, {1, 1}, {2, 1}};
  EXPECT_EQ(journal.degree_deltas, expected);
  EXPECT_FALSE(journal.remapped);
}

TEST(HistoryJournal, ReobservationIsValueDirtyNotAdded) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  history.set_journaling(true);
  const Request r({3, 4});
  history.observe(r);
  history.drain_journal();
  history.observe(r);

  const HistoryJournal& journal = history.journal();
  EXPECT_TRUE(journal.added.empty());
  EXPECT_TRUE(journal.degree_deltas.empty());  // degrees count distinct reqs
  ASSERT_EQ(journal.value_dirty.size(), 1u);
  EXPECT_EQ(journal.value_dirty[0], history.entry_index(r));
}

TEST(HistoryJournal, DrainAndToggleClear) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  history.set_journaling(true);
  history.observe(Request({0}));
  EXPECT_FALSE(history.journal().empty());
  history.drain_journal();
  EXPECT_TRUE(history.journal().empty());

  history.observe(Request({1}));
  history.set_journaling(false);
  history.set_journaling(true);
  EXPECT_TRUE(history.journal().empty());
}

TEST(HistoryJournal, ClearMarksRemapped) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  history.set_journaling(true);
  history.observe(Request({0}));
  history.clear();
  EXPECT_TRUE(history.journal().remapped);
}

TEST(HistoryJournal, EntryIndexTracksEntries) {
  FileCatalog catalog = unit_catalog(10);
  RequestHistory history(catalog);
  const Request r({5, 6});
  EXPECT_EQ(history.entry_index(r), SIZE_MAX);
  history.observe(r);
  const std::size_t idx = history.entry_index(r);
  ASSERT_LT(idx, history.entries().size());
  EXPECT_EQ(history.entries()[idx].request, r);
}

// --- Engine equivalence: every variant x history mode ---------------------

TEST(IncrementalSelect, AgreesAcrossAllVariantsAndHistoryModes) {
  // Kept small: the Seeded variants re-run the greedy once per seed
  // candidate, so a Full-history Seeded2 decision is quadratic in the
  // pool -- 200 jobs x 12 combos still covers hundreds of decisions.
  const Workload w = small_workload(11, 2 * MiB, 200, 80);
  SimulatorConfig sim{.cache_bytes = 2 * MiB, .warmup_jobs = 0};

  for (SelectVariant variant :
       {SelectVariant::Basic, SelectVariant::Resort, SelectVariant::Seeded1,
        SelectVariant::Seeded2}) {
    for (HistoryMode mode :
         {HistoryMode::Full, HistoryMode::Window, HistoryMode::CacheResident}) {
      OptFileBundleConfig config;
      config.variant = variant;
      config.history.mode = mode;
      config.history.window_jobs = 40;
      PolicyPtr policy = make_engine_diff_policy(w.catalog, config);
      // EngineDivergence at any decision would propagate out of simulate().
      EXPECT_NO_THROW(simulate(sim, w.catalog, *policy, w.jobs))
          << to_string(variant) << " / " << to_string(mode);
    }
  }
}

TEST(IncrementalSelect, AgreesWithBytesWeightedValuesAndPrefetch) {
  const Workload w = small_workload(12);
  SimulatorConfig sim{.cache_bytes = 4 * MiB, .warmup_jobs = 0};

  OptFileBundleConfig bytes_config;
  bytes_config.value_model = ValueModel::BytesWeighted;
  PolicyPtr bytes_policy = make_engine_diff_policy(w.catalog, bytes_config);
  EXPECT_NO_THROW(simulate(sim, w.catalog, *bytes_policy, w.jobs));

  // Full history + speculative prefetch exercises on_prefetched: the
  // engine must learn about files the simulator loads outside admission.
  OptFileBundleConfig prefetch_config;
  prefetch_config.history.mode = HistoryMode::Full;
  prefetch_config.prefetch_selected = true;
  PolicyPtr prefetch_policy =
      make_engine_diff_policy(w.catalog, prefetch_config);
  EXPECT_NO_THROW(simulate(sim, w.catalog, *prefetch_policy, w.jobs));
}

TEST(IncrementalSelect, AgreesUnderHistoryCompaction) {
  // max_entries small enough that compaction fires repeatedly: the journal
  // must carry the dropped entries' degree decrements and the remap flag,
  // or the incremental engine drifts (see drain_journal()).
  const Workload w = small_workload(13);
  SimulatorConfig sim{.cache_bytes = 4 * MiB, .warmup_jobs = 0};

  OptFileBundleConfig config;
  config.history.max_entries = 40;
  PolicyPtr policy = make_engine_diff_policy(w.catalog, config);
  EXPECT_NO_THROW(simulate(sim, w.catalog, *policy, w.jobs));

  // Confirm the scenario actually compacts (the test above is vacuous
  // otherwise): an incremental-engine policy run standalone stays capped.
  config.engine = SelectEngine::Incremental;
  OptFileBundlePolicy incremental(w.catalog, config);
  simulate(sim, w.catalog, incremental, w.jobs);
  EXPECT_LE(incremental.history().distinct_requests(), 40u);
  EXPECT_GT(incremental.history().observed_jobs(), 100u);
}

TEST(IncrementalSelect, AgreesOnFuzzedSimInstances) {
  // Randomized sweep over the fuzzer's trace generator -- tiny caches,
  // undersized-capacity and queued-admission cases included.
  const char* kPolicies[] = {"optfb",         "optfb-basic", "optfb-seeded1",
                             "optfb-seeded2", "optfb-full",  "optfb-window",
                             "optfb-bytes"};
  Rng master(2024);
  for (std::uint64_t iter = 0; iter < 28; ++iter) {
    Rng rng(master.derive_seed(iter));
    const SimInstance instance = generate_sim_instance(SimGenConfig{}, rng);
    const std::string policy = kPolicies[iter % std::size(kPolicies)];
    const std::vector<Violation> violations =
        check_engines_agree(instance.trace, instance.config, policy);
    EXPECT_TRUE(violations.empty())
        << "iter " << iter << " policy " << policy << ": "
        << (violations.empty() ? "" : violations.front().to_string());
  }
}

TEST(IncrementalSelect, AgreesOnPinnedHardFixtures) {
  // The checked-in adversarial instances (worst observed greedy/exact
  // ratio -- high file degrees, tight capacities) replayed as job streams.
  const std::filesystem::path dir(FBC_FIXTURE_DIR);
  std::size_t found = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".trace") continue;
    const Trace trace = load_trace(file.path().string());
    // The corpus also holds other fixture kinds (e.g. the optgen drift
    // trace); only select instances replay here.
    const std::string* kind = trace.meta_value("kind");
    if (kind == nullptr || *kind != "select") continue;
    ++found;
    const SelectInstance instance = testing::select_instance_from_trace(trace);
    for (const Bytes cache :
         {instance.capacity, instance.capacity * 2, instance.capacity / 2}) {
      if (cache == 0) continue;
      SimulatorConfig sim{.cache_bytes = cache};
      for (const char* policy : {"optfb", "optfb-full", "optfb-seeded2"}) {
        const std::vector<Violation> violations =
            check_engines_agree(trace, sim, policy);
        EXPECT_TRUE(violations.empty())
            << file.path().filename() << " cache=" << cache << " " << policy
            << ": "
            << (violations.empty() ? "" : violations.front().to_string());
      }
    }
  }
  EXPECT_GE(found, 3u) << "fixture corpus missing from " << dir;
}

// --- Effort counters ------------------------------------------------------

TEST(IncrementalSelect, RescoresFewerEntriesThanReference) {
  const Workload w = small_workload(14);
  SimulatorConfig sim{.cache_bytes = 4 * MiB, .warmup_jobs = 0};

  auto run = [&](SelectEngine engine) {
    OptFileBundleConfig config;
    config.engine = engine;
    OptFileBundlePolicy policy(w.catalog, config);
    return simulate(sim, w.catalog, policy, w.jobs);
  };
  const SimulationResult ref = run(SelectEngine::Reference);
  const SimulationResult inc = run(SelectEngine::Incremental);

  const SelectionCost& ref_cost = ref.metrics.selection_cost();
  const SelectionCost& inc_cost = inc.metrics.selection_cost();
  ASSERT_GT(ref_cost.decisions, 0u);
  EXPECT_EQ(ref_cost.decisions, inc_cost.decisions);
  // Same greedy runs on both sides => identical heap traffic.
  EXPECT_EQ(ref_cost.heap_ops, inc_cost.heap_ops);
  // The point of the engine: far fewer full v'(r) recomputations.
  EXPECT_LT(inc_cost.entries_rescored, ref_cost.entries_rescored / 2);
  // And, end to end, identical caching behavior.
  EXPECT_EQ(ref.metrics.byte_miss_ratio(), inc.metrics.byte_miss_ratio());
  EXPECT_EQ(ref.victims, inc.victims);
}

TEST(IncrementalSelect, PolicyNameDistinguishesEngines) {
  FileCatalog catalog = unit_catalog(4);
  OptFileBundleConfig config;
  OptFileBundlePolicy reference(catalog, config);
  config.engine = SelectEngine::Incremental;
  OptFileBundlePolicy incremental(catalog, config);
  EXPECT_NE(reference.name(), incremental.name());
  EXPECT_EQ(reference.engine(), SelectEngine::Reference);
  EXPECT_EQ(incremental.engine(), SelectEngine::Incremental);
}

// --- The oracle itself must be able to fail -------------------------------

TEST(IncrementalSelect, DiffAdapterDetectsDeliberateMismatch) {
  // Mis-pair the adapter on purpose: reference sees the full history,
  // "incremental" only cache-resident candidates. The first replacement
  // decision where the candidate sets differ must throw.
  const Workload w = small_workload(15, 2 * MiB);
  OptFileBundleConfig full_config;
  full_config.history.mode = HistoryMode::Full;
  OptFileBundleConfig resident_config;
  resident_config.history.mode = HistoryMode::CacheResident;
  resident_config.engine = SelectEngine::Incremental;

  PolicyPtr policy = make_engine_diff_policy(
      std::make_unique<OptFileBundlePolicy>(w.catalog, full_config),
      std::make_unique<OptFileBundlePolicy>(w.catalog, resident_config));
  SimulatorConfig sim{.cache_bytes = 2 * MiB};
  EXPECT_THROW(simulate(sim, w.catalog, *policy, w.jobs), EngineDivergence);
}

}  // namespace
}  // namespace fbc
