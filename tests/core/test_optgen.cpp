// BundleOPTgen: hand-checked verdicts, the nesting chain, window
// clipping, capacity monotonicity, differential agreement with the
// brute-force reference, the pinch-construction agreement with
// exact_select(), and pinned replays of the checked-in fixtures
// (including the drift scenario where every OPTgen level is strictly
// tighter than the clairvoyant repeat bound).
#include "core/optgen.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/opt_cache_select.hpp"
#include "testing/instance_gen.hpp"
#include "testing/optgen_reference.hpp"
#include "testing/oracles.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace fbc {
namespace {

using testing::OptgenCheckConfig;
using testing::OptgenReferenceResult;
using testing::SimGenConfig;
using testing::SimInstance;

std::string fixture_path(const std::string& name) {
  return std::string(FBC_FIXTURE_DIR) + "/" + name;
}

TEST(BundleOPTgenTest, RejectsZeroCapacityAndWindow) {
  FileCatalog catalog({1});
  EXPECT_THROW(BundleOPTgen(catalog, OptgenConfig{0, 4096}),
               std::invalid_argument);
  EXPECT_THROW(BundleOPTgen(catalog, OptgenConfig{10, 0}),
               std::invalid_argument);
}

TEST(BundleOPTgenTest, HandCheckedVerdicts) {
  FileCatalog catalog({4, 3, 5});
  BundleOPTgen oracle(catalog, OptgenConfig{10, 4096});

  // t0: first occurrence -- serviced, no reuse possible.
  OptgenVerdict v = oracle.observe(Request({0}));
  EXPECT_EQ(v, (OptgenVerdict{true, false, false, false, false}));

  // t1: another first occurrence.
  v = oracle.observe(Request({1}));
  EXPECT_EQ(v, (OptgenVerdict{true, false, false, false, false}));

  // t2: file 0 reuse across t1 (forced 3): 3 + 4 <= 10 at every level.
  v = oracle.observe(Request({0}));
  EXPECT_EQ(v, (OptgenVerdict{true, true, true, true, false}));

  // t3: {0,1}; file 0's gap is empty, file 1 needs quantum t2 (forced 4,
  // need 3): 4 + 3 <= 10.
  v = oracle.observe(Request({0, 1}));
  EXPECT_EQ(v, (OptgenVerdict{true, true, true, true, false}));

  // t4: file 2 never seen before.
  v = oracle.observe(Request({2}));
  EXPECT_EQ(v, (OptgenVerdict{true, false, false, false, false}));

  // t5: bundle 4+3+5 = 12 > 10 -- unserviceable, nothing can hit.
  v = oracle.observe(Request({0, 1, 2}));
  EXPECT_EQ(v, (OptgenVerdict{false, false, false, false, false}));

  // t6: file 2 reuse across the unserviceable t5 (forced 0): hit again.
  v = oracle.observe(Request({2}));
  EXPECT_EQ(v, (OptgenVerdict{true, true, true, true, false}));

  const OptgenStats& stats = oracle.stats();
  EXPECT_EQ(stats.jobs, 7u);
  EXPECT_EQ(stats.serviced, 6u);
  EXPECT_EQ(stats.opt_hits, 3u);
  EXPECT_EQ(stats.demand_hits, 3u);
  EXPECT_EQ(stats.reuse_hits, 3u);
  EXPECT_EQ(stats.opt_hit_bytes, 4u + 7u + 5u);
  EXPECT_EQ(stats.truncated_intervals, 0u);
}

TEST(BundleOPTgenTest, EmptyRequestIsAlwaysAHit) {
  FileCatalog catalog({4});
  BundleOPTgen oracle(catalog, OptgenConfig{10, 4096});
  // Even at t = 0, before anything was serviced: an empty bundle needs
  // nothing resident, so every level (and the clairvoyant bound above
  // them) counts it as a hit.
  const OptgenVerdict v = oracle.observe(Request(std::vector<FileId>{}));
  EXPECT_EQ(v, (OptgenVerdict{true, true, true, true, false}));
  const std::vector<Request> jobs{Request(std::vector<FileId>{})};
  const RepeatBound clair = clairvoyant_upper_bound(catalog, jobs, 10);
  EXPECT_EQ(clair.hits, 1u);
}

TEST(BundleOPTgenTest, CommittedOccupancyIsTracked) {
  FileCatalog catalog({4, 3});
  BundleOPTgen oracle(catalog, OptgenConfig{10, 4096});
  oracle.observe(Request({0}));
  oracle.observe(Request({1}));
  oracle.observe(Request({0}));  // commits 4 bytes across quantum 1
  EXPECT_EQ(oracle.occupancy_at(0), 4u);      // forced only
  EXPECT_EQ(oracle.occupancy_at(1), 3u + 4u); // forced + committed
  EXPECT_EQ(oracle.stats().peak_occupancy, 7u);
  EXPECT_EQ(oracle.now(), 3u);

  oracle.reset();
  EXPECT_EQ(oracle.now(), 0u);
  EXPECT_EQ(oracle.stats().jobs, 0u);
  // Reusable after reset: same trace, same verdicts.
  oracle.observe(Request({0}));
  oracle.observe(Request({1}));
  EXPECT_TRUE(oracle.observe(Request({0})).opt_hit);
}

TEST(BundleOPTgenTest, WindowClippingMarksTruncatedAndStaysAnUpperBound) {
  // Gap (0,3) for file 0; the infeasible quantum 1 (forced 3 + need 2 >
  // capacity 3) sits outside a window of 1, so the clipped verdict is
  // feasible -- an over-admission, never an under-admission.
  FileCatalog catalog({2, 3});
  const std::vector<Request> jobs{Request({0}), Request({1}),
                                  Request(std::vector<FileId>{}),
                                  Request({0})};

  BundleOPTgen wide(catalog, OptgenConfig{3, 4096});
  for (std::size_t t = 0; t + 1 < jobs.size(); ++t) wide.observe(jobs[t]);
  const OptgenVerdict unclipped = wide.observe(jobs.back());
  EXPECT_FALSE(unclipped.demand_feasible);
  EXPECT_FALSE(unclipped.truncated);

  BundleOPTgen narrow(catalog, OptgenConfig{3, 1});
  for (std::size_t t = 0; t + 1 < jobs.size(); ++t) narrow.observe(jobs[t]);
  const OptgenVerdict clipped = narrow.observe(jobs.back());
  EXPECT_TRUE(clipped.demand_feasible);
  EXPECT_TRUE(clipped.truncated);
  EXPECT_GE(narrow.stats().truncated_intervals, 1u);
}

TEST(BundleOPTgenTest, ChainHoldsOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SimGenConfig gen;
    gen.drift_prob = 0.5;
    const SimInstance inst = testing::generate_sim_instance(gen, rng);
    const Bytes cap = inst.config.cache_bytes;
    BundleOPTgen oracle(inst.trace.catalog, OptgenConfig{cap, 4096});
    for (const Request& job : inst.trace.jobs) {
      const OptgenVerdict v = oracle.observe(job);
      EXPECT_TRUE(!v.opt_hit || v.demand_feasible) << "seed " << seed;
      EXPECT_TRUE(!v.demand_feasible || v.reuse_feasible) << "seed " << seed;
      EXPECT_TRUE(!v.reuse_feasible || v.serviced) << "seed " << seed;
    }
    const RepeatBound clair =
        clairvoyant_upper_bound(inst.trace.catalog, inst.trace.jobs, cap);
    const OptgenStats& stats = oracle.stats();
    EXPECT_LE(stats.opt_hits, stats.demand_hits) << "seed " << seed;
    EXPECT_LE(stats.demand_hits, stats.reuse_hits) << "seed " << seed;
    EXPECT_LE(stats.reuse_hits, clair.hits) << "seed " << seed;
  }
}

TEST(BundleOPTgenTest, DemandAndReuseMonotoneInCapacityWhenServiceable) {
  // With every bundle serviceable at both capacities the forced schedule
  // is identical, so a larger cache can only admit more: each verdict at
  // capacity C implies the same verdict at C' > C. (Without the
  // serviceability proviso the forced schedule itself changes and the
  // bounds are legitimately non-monotone.)
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SimGenConfig gen;
    gen.undersized_prob = 0.0;  // capacity >= the largest bundle
    gen.drift_prob = 0.3;
    const SimInstance inst = testing::generate_sim_instance(gen, rng);
    const Bytes cap = inst.config.cache_bytes;
    BundleOPTgen small(inst.trace.catalog, OptgenConfig{cap, 4096});
    BundleOPTgen large(inst.trace.catalog, OptgenConfig{cap * 2, 4096});
    for (const Request& job : inst.trace.jobs) {
      const OptgenVerdict vs = small.observe(job);
      const OptgenVerdict vl = large.observe(job);
      EXPECT_TRUE(!vs.demand_feasible || vl.demand_feasible)
          << "seed " << seed;
      EXPECT_TRUE(!vs.reuse_feasible || vl.reuse_feasible) << "seed " << seed;
    }
  }
}

TEST(BundleOPTgenTest, AgreesWithBruteForceReferenceOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    SimGenConfig gen;
    gen.drift_prob = 0.5;
    const SimInstance inst = testing::generate_sim_instance(gen, rng);
    for (const std::size_t window : {std::size_t{4096}, std::size_t{3}}) {
      OptgenCheckConfig check;
      check.cache_bytes = inst.config.cache_bytes;
      check.window_quanta = window;
      // No policies: runs the divergence/capacity/chain/clairvoyant
      // oracles without the (slow) policy replays.
      const std::vector<testing::Violation> violations =
          testing::check_optgen(inst.trace, check);
      for (const testing::Violation& v : violations) {
        ADD_FAILURE() << "seed " << seed << " window " << window << ": "
                      << v.to_string();
      }
    }
  }
}

TEST(BundleOPTgenTest, PinchConstructionMatchesExactSelect) {
  // k disjoint unit bundles of size s, a separator of size sigma >= s,
  // then the k bundles again. Every phase-B reuse gap crosses the
  // separator quantum, where the admission constraint is exactly
  // sigma + (admitted + 1) * s <= C -- the 0/1 knapsack exact_select()
  // solves with budget C - sigma. Equal sizes make greedy == exact.
  struct Case {
    std::size_t k;
    Bytes s, sigma, capacity;
  };
  for (const Case& c : {Case{5, 2, 3, 10}, Case{4, 3, 3, 20},
                        Case{6, 1, 5, 9}, Case{3, 4, 4, 9}}) {
    FileCatalog catalog;
    for (std::size_t i = 0; i < c.k; ++i) catalog.add_file(c.s);
    catalog.add_file(c.sigma);

    std::vector<Request> phase;
    for (std::size_t i = 0; i < c.k; ++i)
      phase.emplace_back(std::vector<FileId>{static_cast<FileId>(i)});
    std::vector<Request> jobs = phase;
    jobs.emplace_back(std::vector<FileId>{static_cast<FileId>(c.k)});
    jobs.insert(jobs.end(), phase.begin(), phase.end());

    const OptgenStats og =
        replay_optgen(catalog, jobs, OptgenConfig{c.capacity, 4096});

    std::vector<SelectionItem> items;
    for (const Request& r : phase) items.push_back({&r, 1.0});
    const SelectionResult exact =
        exact_select(items, catalog, c.capacity - c.sigma);

    const std::uint64_t expected =
        std::min<std::uint64_t>(c.k, (c.capacity - c.sigma) / c.s);
    EXPECT_EQ(og.opt_hits, expected)
        << "k=" << c.k << " s=" << c.s << " sigma=" << c.sigma;
    EXPECT_DOUBLE_EQ(exact.total_value, static_cast<double>(expected));
    // Demand only needs sigma + s <= C per slice: all k phase-B jobs.
    EXPECT_EQ(og.demand_hits, c.k);
    EXPECT_EQ(og.reuse_hits, c.k);
  }
}

TEST(BundleOPTgenTest, PinnedHardSelectFixtureReplays) {
  // The Theorem 4.1 regression corpus, replayed twice (A;B) through the
  // oracle at the fixture capacity. Values pinned at introduction; a
  // change means the oracle's semantics moved.
  struct Pinned {
    const char* name;
    std::uint64_t serviced, opt, demand, reuse, clair;
  };
  const Pinned pinned[] = {
      {"hard-select-7-692.trace", 20, 15, 15, 15, 15},
      {"hard-select-7-924.trace", 20, 14, 14, 14, 14},
      {"hard-select-7-1090.trace", 12, 10, 10, 10, 10},
  };
  for (const Pinned& p : pinned) {
    const Trace fixture = load_trace(fixture_path(p.name));
    const testing::SelectInstance inst =
        testing::select_instance_from_trace(fixture);
    std::vector<Request> jobs = inst.requests;
    jobs.insert(jobs.end(), inst.requests.begin(), inst.requests.end());
    const OptgenStats og =
        replay_optgen(inst.catalog, jobs, OptgenConfig{inst.capacity, 4096});
    const RepeatBound clair =
        clairvoyant_upper_bound(inst.catalog, jobs, inst.capacity);
    EXPECT_EQ(og.serviced, p.serviced) << p.name;
    EXPECT_EQ(og.opt_hits, p.opt) << p.name;
    EXPECT_EQ(og.demand_hits, p.demand) << p.name;
    EXPECT_EQ(og.reuse_hits, p.reuse) << p.name;
    EXPECT_EQ(clair.hits, p.clair) << p.name;
  }
}

TEST(BundleOPTgenTest, DriftFixtureIsStrictlyTighterThanClairvoyant) {
  // The checked-in drift scenario: a mid-trace popularity rotation the
  // repeat-based clairvoyant bound cannot see through, so every OPTgen
  // level sits strictly below it (the bound-tightness acceptance case).
  const Trace fixture = load_trace(fixture_path("optgen-drift-18.trace"));
  const std::string* cache_meta = fixture.meta_value("cache_bytes");
  ASSERT_NE(cache_meta, nullptr);
  const Bytes cap = std::stoull(*cache_meta);
  const OptgenStats og =
      replay_optgen(fixture.catalog, fixture.jobs, OptgenConfig{cap, 4096});
  const RepeatBound clair =
      clairvoyant_upper_bound(fixture.catalog, fixture.jobs, cap);
  EXPECT_EQ(og.opt_hits, 90u);
  EXPECT_EQ(og.demand_hits, 105u);
  EXPECT_EQ(og.reuse_hits, 132u);
  EXPECT_EQ(clair.hits, 143u);
  EXPECT_LT(og.opt_hits, og.demand_hits);
  EXPECT_LT(og.demand_hits, og.reuse_hits);
  EXPECT_LT(og.reuse_hits, clair.hits);
}

}  // namespace
}  // namespace fbc
