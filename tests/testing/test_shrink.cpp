// Tests for the reproducer shrinkers: synthetic predicates with known
// minimal cores must be reduced all the way down to them.
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/instance_gen.hpp"

namespace fbc::testing {
namespace {

TEST(Shrink, SelectReducesToSingleTwoFileRequest) {
  // Failure model (id-independent, like a real re-run oracle): the
  // instance fails iff some request bundles at least two files.
  Rng rng(12);
  SelectGenConfig gen;
  gen.min_files = 12;
  gen.max_files = 12;
  gen.min_requests = 10;
  gen.max_requests = 10;
  gen.max_bundle_files = 4;
  SelectInstance instance = generate_select_instance(gen, rng);
  instance.requests[4].files = {2, 7, 9};
  instance.requests[4].canonicalize();

  const SelectPredicate pred = [](const SelectInstance& inst) {
    return std::any_of(inst.requests.begin(), inst.requests.end(),
                       [](const Request& r) { return r.size() >= 2; });
  };
  ASSERT_TRUE(pred(instance));
  const SelectInstance shrunk = shrink_select_instance(instance, pred);
  ASSERT_EQ(shrunk.requests.size(), 1u);
  EXPECT_EQ(shrunk.requests[0].files.size(), 2u);
  EXPECT_EQ(shrunk.values.size(), 1u);
  EXPECT_TRUE(shrunk.free_files.empty());
  // Size-halving bottoms out every file at 1 byte; the unused-file
  // compaction then drops everything the surviving bundle ignores.
  ASSERT_EQ(shrunk.catalog.count(), 2u);
  EXPECT_EQ(shrunk.catalog.size_of(0), 1u);
  EXPECT_EQ(shrunk.catalog.size_of(1), 1u);
}

TEST(Shrink, SelectKeepsValuesAlignedWithRequests) {
  Rng rng(21);
  SelectGenConfig gen;
  gen.min_requests = 8;
  gen.max_requests = 8;
  SelectInstance instance = generate_select_instance(gen, rng);
  // Failure model: at least 3 requests remain.
  const SelectPredicate pred = [](const SelectInstance& inst) {
    return inst.requests.size() >= 3;
  };
  const SelectInstance shrunk = shrink_select_instance(instance, pred);
  EXPECT_EQ(shrunk.requests.size(), 3u);
  EXPECT_EQ(shrunk.values.size(), shrunk.requests.size());
}

TEST(Shrink, SimReducesJobsAndConfig) {
  Rng rng(33);
  SimGenConfig gen;
  gen.min_jobs = 30;
  gen.max_jobs = 30;
  SimInstance instance = generate_sim_instance(gen, rng);
  instance.config.warmup_jobs = 2;
  instance.config.queue_length = 4;

  // Failure model: at least 2 jobs remain (independent of config).
  const SimPredicate pred = [](const SimInstance& inst) {
    return inst.trace.jobs.size() >= 2;
  };
  const SimInstance shrunk = shrink_sim_instance(instance, pred);
  EXPECT_EQ(shrunk.trace.jobs.size(), 2u);
  EXPECT_EQ(shrunk.config.warmup_jobs, 0u);
  EXPECT_EQ(shrunk.config.queue_length, 1u);
  for (const Request& job : shrunk.trace.jobs) {
    EXPECT_EQ(job.files.size(), 1u);
  }
  for (std::size_t f = 0; f < shrunk.trace.catalog.count(); ++f) {
    EXPECT_EQ(shrunk.trace.catalog.size_of(static_cast<FileId>(f)), 1u);
  }
}

TEST(Shrink, CompactUnusedFilesRemapsDensely) {
  Trace trace{FileCatalog({10, 20, 30, 40, 50}),
              {Request{{1, 4}}, Request{{4}}},
              {},
              {},
              {}};
  compact_unused_files(trace);
  ASSERT_EQ(trace.catalog.count(), 2u);
  EXPECT_EQ(trace.catalog.size_of(0), 20u);
  EXPECT_EQ(trace.catalog.size_of(1), 50u);
  EXPECT_EQ(trace.jobs[0].files, (std::vector<FileId>{0, 1}));
  EXPECT_EQ(trace.jobs[1].files, (std::vector<FileId>{1}));
}

TEST(Shrink, CompactIsNoOpWhenAllFilesUsed) {
  Trace trace{FileCatalog({10, 20}), {Request{{0, 1}}}, {}, {}, {}};
  compact_unused_files(trace);
  EXPECT_EQ(trace.catalog.count(), 2u);
  EXPECT_EQ(trace.jobs[0].files, (std::vector<FileId>{0, 1}));
}

}  // namespace
}  // namespace fbc::testing
