// Cluster scheduling-harness tests: cluster feasibility-floor math,
// serial-replay determinism, serial-vs-concurrent equivalence across
// random schedules / placements / policies (the fbcfuzz --cluster-diff
// oracle), leak detection for held leases, and reproducer-trace
// round-trips through the fuzzer's replay dispatch.
#include "testing/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "testing/fuzzer.hpp"
#include "util/rng.hpp"

namespace fbc::testing {
namespace {

service::ServiceConfig replay_config(const std::string& policy,
                                     std::uint64_t seed) {
  service::ServiceConfig config;
  config.policy = policy;
  config.seed = seed;
  return config;
}

cluster::ClusterConfig cluster_config(std::uint32_t shards,
                                      cluster::PlacementMode placement) {
  cluster::ClusterConfig config;
  config.shards = shards;
  config.placement = placement;
  config.vnodes = 16;
  config.spill_threshold = 0.1;  // small fuzz caches: force real scatters
  return config;
}

/// Two disjoint single-file ops on one client; op 1 releases op 0 first.
SchedInstance two_op_instance(std::size_t wave) {
  SchedInstance instance;
  instance.catalog = FileCatalog({10, 20});
  instance.wave = wave;
  SchedOp first;
  first.client = 0;
  first.request = Request({0});
  SchedOp second;
  second.client = 0;
  second.release_oldest = true;
  second.request = Request({1});
  instance.ops = {first, second};
  instance.cache_bytes = cluster_feasible_floor(instance);
  return instance;
}

TEST(ClusterFeasibleFloor, WaveOfOneReleasesBetweenOps) {
  // Serial waves: op 0 pins 10, op 1 releases it first, so the floor is
  // the larger single bundle.
  EXPECT_EQ(cluster_feasible_floor(two_op_instance(1)), 20u);
}

TEST(ClusterFeasibleFloor, WaveOfTwoSumsTheWholeWave)  {
  // Both ops land in one wave. The release runs during the paused phase
  // -- but unlike sched_sim's per-op floor, the cluster floor charges the
  // whole wave's bundles at once (intra-wave admission order is racy), so
  // it needs 10 + 20.
  EXPECT_EQ(cluster_feasible_floor(two_op_instance(2)), 30u);
}

TEST(ClusterFeasibleFloor, AtLeastTheSchedFloor) {
  SchedGenConfig gen;
  gen.max_ops = 16;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const SchedInstance instance = generate_sched_instance(gen, rng);
    EXPECT_GE(cluster_feasible_floor(instance),
              feasible_cache_floor(instance));
  }
}

TEST(ClusterSim, SerialReplayIsDeterministic) {
  SchedGenConfig gen;
  gen.max_ops = 20;
  Rng rng(11);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  const cluster::ClusterConfig cluster =
      cluster_config(3, cluster::PlacementMode::HashFile);
  const ClusterOutcome a =
      run_cluster_schedule(instance, replay_config("optfb", 1), cluster,
                           /*concurrent=*/false);
  const ClusterOutcome b =
      run_cluster_schedule(instance, replay_config("optfb", 1), cluster,
                           /*concurrent=*/false);
  EXPECT_EQ(a, b) << "--- first ---\n"
                  << to_string(a) << "--- second ---\n"
                  << to_string(b);
}

TEST(ClusterSim, ScatterLeasesAreGatheredAndReleased) {
  // A hash-placed multi-file bundle must scatter on a 4-shard cluster
  // (16 files cannot all live on one ring shard with high probability at
  // this seed) and the replay must end with zero outstanding leases.
  SchedInstance instance;
  for (int i = 0; i < 16; ++i) instance.catalog.add_file(10);
  instance.wave = 1;
  SchedOp op;
  op.client = 0;
  op.request = Request({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  instance.ops = {op};
  instance.cache_bytes = cluster_feasible_floor(instance);
  const cluster::ClusterConfig cluster =
      cluster_config(4, cluster::PlacementMode::HashFile);
  const ClusterOutcome outcome = run_cluster_schedule(
      instance, replay_config("optfb", 1), cluster, /*concurrent=*/false);
  EXPECT_EQ(outcome.scatter_acquires + outcome.single_acquires, 1u);
  EXPECT_EQ(outcome.rollbacks, 0u);
  // Every file landed somewhere and nowhere twice (hash partition).
  std::size_t resident_total = 0;
  for (const auto& shard : outcome.resident) resident_total += shard.size();
  EXPECT_EQ(resident_total, 16u);
}

TEST(ClusterSim, SerialAndConcurrentAgreeAcrossSeeds) {
  // The fbcfuzz --cluster-diff oracle on a deterministic mini-campaign:
  // random schedules, both placements, 2..4 shards, three policies.
  SchedGenConfig gen;
  gen.max_ops = 16;
  gen.max_files = 12;
  Rng rng(0xc1a57e4ULL);
  const char* policies[] = {"optfb", "landlord", "dist-online"};
  for (int i = 0; i < 12; ++i) {
    const SchedInstance instance = generate_sched_instance(gen, rng);
    const cluster::ClusterConfig cluster = cluster_config(
        2 + static_cast<std::uint32_t>(rng.index(3)),
        rng.bernoulli(0.5) ? cluster::PlacementMode::BundleAffinity
                           : cluster::PlacementMode::HashFile);
    const std::optional<std::string> diff = check_cluster_equivalence(
        instance, replay_config(policies[i % 3], 1 + i), cluster);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

TEST(ClusterSim, TraceRoundTripsWithTopologyMeta) {
  SchedGenConfig gen;
  gen.max_ops = 8;
  Rng rng(23);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  cluster::ClusterConfig cluster =
      cluster_config(3, cluster::PlacementMode::BundleAffinity);
  cluster.spill_threshold = 0.25;
  const Trace trace = cluster_instance_to_trace(instance, cluster);
  const std::string* kind = trace.meta_value("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(*kind, "cluster");  // rewritten, not shadowed

  const auto [parsed, parsed_cluster, parsed_faults] =
      cluster_instance_from_trace(trace);
  EXPECT_TRUE(parsed_faults.empty());  // no faults meta -> empty plan
  EXPECT_EQ(parsed.cache_bytes, instance.cache_bytes);
  EXPECT_EQ(parsed.wave, instance.wave);
  ASSERT_EQ(parsed.ops.size(), instance.ops.size());
  for (std::size_t i = 0; i < parsed.ops.size(); ++i)
    EXPECT_EQ(parsed.ops[i], instance.ops[i]);
  EXPECT_EQ(parsed_cluster.shards, 3u);
  EXPECT_EQ(parsed_cluster.placement, cluster::PlacementMode::BundleAffinity);
  EXPECT_EQ(parsed_cluster.vnodes, 16u);
  EXPECT_DOUBLE_EQ(parsed_cluster.spill_threshold, 0.25);
}

TEST(ClusterSim, ReplayDispatchRunsClusterReproducers) {
  // A healthy schedule round-trips through the fuzzer's replay entry
  // point and reports no violations.
  SchedGenConfig gen;
  gen.max_ops = 6;
  Rng rng(31);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  const cluster::ClusterConfig cluster =
      cluster_config(2, cluster::PlacementMode::HashFile);
  Trace trace = cluster_instance_to_trace(instance, cluster);
  trace.set_meta("policy", "landlord");
  trace.set_meta("cluster_seed", "42");
  const std::vector<Violation> violations = replay_reproducer(trace);
  EXPECT_TRUE(violations.empty());
}

TEST(ClusterSim, MissingTopologyMetaThrows) {
  SchedInstance instance = two_op_instance(1);
  const Trace trace = sched_instance_to_trace(instance);  // kind=serve
  EXPECT_THROW((void)cluster_instance_from_trace(trace), std::runtime_error);
}

TEST(ClusterSim, KillWaveReroutesAndLosesNoLease) {
  // Kill one shard for the middle of the schedule. Every request still
  // gets served (re-routed to the survivors), the replay's end-state
  // audits pass (run_cluster_schedule throws on a leaked lease, a
  // surviving scatter entry, or an undelivered deferred release), and
  // the health counters record the down/recover round trip.
  SchedGenConfig gen;
  gen.max_ops = 24;
  Rng rng(67);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  cluster::ClusterConfig cluster =
      cluster_config(3, cluster::PlacementMode::HashFile);
  cluster.down_threshold = 1;
  FaultPlan faults;
  faults.events.push_back({1, 1, true});    // kill shard 1 at wave 1
  faults.events.push_back({3, 1, false});   // revive + probe at wave 3
  const ClusterOutcome outcome =
      run_cluster_schedule(instance, replay_config("optfb", 1), cluster,
                           /*concurrent=*/false, faults);
  for (const GrantRecord& g : outcome.grants)
    EXPECT_NE(g.status,
              static_cast<std::uint8_t>(service::AcquireStatus::ShardsDown));
  if (outcome.shard_down_events > 0) {
    EXPECT_GT(outcome.rerouted, 0u);
    EXPECT_EQ(outcome.shard_recoveries, outcome.shard_down_events);
  }
}

TEST(ClusterSim, FaultedReplayIsDeterministic) {
  SchedGenConfig gen;
  gen.max_ops = 20;
  Rng rng(71);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  cluster::ClusterConfig cluster =
      cluster_config(3, cluster::PlacementMode::BundleAffinity);
  cluster.down_threshold = 2;
  FaultPlan faults;
  faults.events.push_back({0, 2, true});
  faults.events.push_back({2, 2, false});
  faults.events.push_back({3, 0, true});
  const ClusterOutcome a =
      run_cluster_schedule(instance, replay_config("optfb", 1), cluster,
                           /*concurrent=*/false, faults);
  const ClusterOutcome b =
      run_cluster_schedule(instance, replay_config("optfb", 1), cluster,
                           /*concurrent=*/false, faults);
  EXPECT_EQ(a, b) << "--- first ---\n"
                  << to_string(a) << "--- second ---\n"
                  << to_string(b);
}

TEST(ClusterSim, SerialAndConcurrentAgreeUnderFaults) {
  // The faulted arm of the fbcfuzz --cluster-diff oracle: kill/revive
  // waves must not open a divergence between the serial and concurrent
  // replays (probe_ms = 0 keeps fault routing interleaving-independent).
  SchedGenConfig gen;
  gen.max_ops = 16;
  gen.max_files = 12;
  Rng rng(0xfa171e57ULL);
  const char* policies[] = {"optfb", "landlord", "dist-online"};
  for (int i = 0; i < 8; ++i) {
    const SchedInstance instance = generate_sched_instance(gen, rng);
    cluster::ClusterConfig cluster = cluster_config(
        2 + static_cast<std::uint32_t>(rng.index(3)),
        rng.bernoulli(0.5) ? cluster::PlacementMode::BundleAffinity
                           : cluster::PlacementMode::HashFile);
    cluster.down_threshold = 1 + static_cast<std::uint32_t>(rng.index(2));
    FaultPlan faults;
    faults.events.push_back(
        {rng.index(4), static_cast<std::uint32_t>(rng.index(cluster.shards)),
         true});
    if (rng.bernoulli(0.5))
      faults.events.push_back(
          {faults.events[0].wave + 1 + rng.index(3), faults.events[0].shard,
           false});
    const std::optional<std::string> diff = check_cluster_equivalence(
        instance, replay_config(policies[i % 3], 1 + i), cluster, faults);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

TEST(ClusterSim, FaultPlanRoundTripsThroughTrace) {
  SchedGenConfig gen;
  gen.max_ops = 8;
  Rng rng(29);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  cluster::ClusterConfig cluster =
      cluster_config(3, cluster::PlacementMode::HashFile);
  cluster.down_threshold = 2;
  FaultPlan faults;
  faults.events.push_back({1, 2, true});
  faults.events.push_back({4, 2, false});
  const Trace trace = cluster_instance_to_trace(instance, cluster, faults);
  const auto [parsed, parsed_cluster, parsed_faults] =
      cluster_instance_from_trace(trace);
  EXPECT_EQ(parsed_cluster.down_threshold, 2u);
  ASSERT_EQ(parsed_faults.events.size(), 2u);
  EXPECT_EQ(parsed_faults.events[0].wave, 1u);
  EXPECT_EQ(parsed_faults.events[0].shard, 2u);
  EXPECT_TRUE(parsed_faults.events[0].kill);
  EXPECT_EQ(parsed_faults.events[1].wave, 4u);
  EXPECT_EQ(parsed_faults.events[1].shard, 2u);
  EXPECT_FALSE(parsed_faults.events[1].kill);
}

}  // namespace
}  // namespace fbc::testing
