// SchedSim harness tests: feasibility-floor math on hand-built schedules,
// replay determinism against a real BundleServer, batched-vs-serial
// equivalence across seeds (with and without the Reference engine
// shadowing the Incremental one), reproducer-trace round-trips, and
// delta-debugging shrink behavior.
#include "testing/sched_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "testing/oracles.hpp"
#include "util/rng.hpp"

namespace fbc::testing {
namespace {

/// Base serving config for replays: optfb on the incremental engine, like
/// the fbcfuzz --serve-diff campaign (cache_bytes comes from the
/// instance; run_schedule forces Fifo order and time_scale = 0 itself).
service::ServiceConfig replay_config(std::uint64_t seed) {
  service::ServiceConfig config;
  config.policy = "optfb";
  config.engine = SelectEngine::Incremental;
  config.seed = seed;
  return config;
}

/// Same, with the Reference engine attached in lock-step shadow: any
/// decision divergence throws EngineDivergence out of the replay.
service::ServiceConfig shadow_config(std::uint64_t seed) {
  service::ServiceConfig config = replay_config(seed);
  config.policy_factory = [](const std::string& name,
                             const PolicyContext& context) {
    return make_shadow_policy("enginediff:" + name, context);
  };
  return config;
}

/// Two disjoint single-file bundles on one client: op 1 releases op 0's
/// lease first, so the pin overlap -- and therefore the feasibility
/// floor -- depends only on how the ops split into waves.
SchedInstance two_file_instance(std::size_t wave) {
  SchedInstance instance;
  instance.catalog = FileCatalog({10, 20});
  instance.wave = wave;
  SchedOp first;
  first.client = 0;
  first.request = Request({0});
  SchedOp second;
  second.client = 0;
  second.release_oldest = true;
  second.request = Request({1});
  instance.ops = {first, second};
  instance.cache_bytes = feasible_cache_floor(instance);
  return instance;
}

TEST(FeasibleCacheFloor, SerialWavesReleaseBeforeTheNextAdmission) {
  // wave = 1: op 1's release runs in its own wave, before its admission,
  // so file 0 (10 B) is unpinned when bundle {1} (20 B) is admitted.
  EXPECT_EQ(feasible_cache_floor(two_file_instance(1)), 20u);
}

TEST(FeasibleCacheFloor, SameWaveReleasesCannotFreeTheWaveOwnPins) {
  // wave = 2: both ops share a wave. Releases run during the paused
  // enqueue phase -- before ANY admission of the wave -- and the client
  // holds nothing at that point, so the release is a no-op and op 1 must
  // fit alongside op 0's freshly pinned 10 B: floor = 10 + 20.
  EXPECT_EQ(feasible_cache_floor(two_file_instance(2)), 30u);
}

TEST(FeasibleCacheFloor, PinsStackAcrossClients) {
  SchedInstance instance;
  instance.catalog = FileCatalog({10, 20, 40});
  instance.wave = 3;
  for (std::uint32_t client = 0; client < 3; ++client) {
    SchedOp op;
    op.client = client;
    op.request = Request({static_cast<FileId>(client)});
    instance.ops.push_back(op);
  }
  // No releases: the third admission sees 10 + 20 pinned plus its own 40.
  EXPECT_EQ(feasible_cache_floor(instance), 70u);
}

TEST(SchedSim, GeneratorRespectsBoundsAndFeasibility) {
  SchedGenConfig gen;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const SchedInstance instance = generate_sched_instance(gen, rng);
    EXPECT_GE(instance.ops.size(), gen.min_ops);
    EXPECT_LE(instance.ops.size(), gen.max_ops);
    EXPECT_GE(instance.catalog.count(), gen.min_files);
    EXPECT_LE(instance.catalog.count(), gen.max_files);
    EXPECT_GE(instance.wave, 1u);
    EXPECT_LE(instance.wave, gen.max_wave);
    // Every wave must be admissible at the generated capacity -- the
    // property that keeps replays deterministic (no timeout races).
    EXPECT_GE(instance.cache_bytes, feasible_cache_floor(instance));
    for (const SchedOp& op : instance.ops) {
      EXPECT_LT(op.client, gen.max_clients);
      ASSERT_FALSE(op.request.files.empty());
      for (FileId id : op.request.files) ASSERT_LT(id, instance.catalog.count());
    }
  }
}

TEST(SchedSim, ReplayIsDeterministic) {
  SchedGenConfig gen;
  Rng rng(7);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  const SchedOutcome a = run_schedule(instance, replay_config(7));
  const SchedOutcome b = run_schedule(instance, replay_config(7));
  EXPECT_EQ(a, b) << "--- first ---\n"
                  << to_string(a) << "--- second ---\n"
                  << to_string(b);
  EXPECT_EQ(a.grants.size(), instance.ops.size());
  EXPECT_GT(a.requests, 0u);
  EXPECT_FALSE(to_string(a).empty());
}

TEST(SchedSim, BatchedMatchesSerialAcrossSeeds) {
  SchedGenConfig gen;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const SchedInstance instance = generate_sched_instance(gen, rng);
    const std::size_t batch = 2 + seed % 7;
    const std::optional<std::string> diff =
        check_batch_equivalence(instance, batch, replay_config(seed));
    EXPECT_FALSE(diff.has_value())
        << "seed " << seed << " batch " << batch << ":\n"
        << *diff;
  }
}

TEST(SchedSim, ShadowEngineStaysInLockStepAcrossSeeds) {
  // Same equivalence sweep, but with the Reference engine shadowing the
  // Incremental one inside both replays: a single diverging eviction
  // decision throws EngineDivergence and fails the test.
  SchedGenConfig gen;
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    Rng rng(seed);
    const SchedInstance instance = generate_sched_instance(gen, rng);
    const std::optional<std::string> diff =
        check_batch_equivalence(instance, 4, shadow_config(seed));
    EXPECT_FALSE(diff.has_value()) << "seed " << seed << ":\n" << *diff;
  }
}

TEST(SchedSim, TraceRoundTripPreservesTheSchedule) {
  SchedGenConfig gen;
  Rng rng(11);
  const SchedInstance instance = generate_sched_instance(gen, rng);
  const Trace trace = sched_instance_to_trace(instance);
  const SchedInstance parsed = sched_instance_from_trace(trace);

  EXPECT_EQ(parsed.wave, instance.wave);
  EXPECT_EQ(parsed.cache_bytes, instance.cache_bytes);
  ASSERT_EQ(parsed.catalog.count(), instance.catalog.count());
  for (FileId id = 0; id < instance.catalog.count(); ++id)
    EXPECT_EQ(parsed.catalog.size_of(id), instance.catalog.size_of(id));
  EXPECT_EQ(parsed.ops, instance.ops);

  // And the round-tripped schedule replays to the same outcome.
  EXPECT_EQ(run_schedule(parsed, replay_config(11)),
            run_schedule(instance, replay_config(11)));
}

TEST(SchedSim, ShrinkMinimizesToThePredicateCore) {
  // Structural predicate ("some bundle contains file 3"): shrinking must
  // drop every other op and every other file from the surviving bundle.
  SchedInstance instance;
  instance.catalog = FileCatalog({8, 8, 8, 8, 8});
  instance.wave = 2;
  const std::vector<std::vector<FileId>> bundles = {
      {0, 1}, {2}, {1, 3, 4}, {0}, {2, 4}, {3}};
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    SchedOp op;
    op.client = static_cast<std::uint32_t>(i % 2);
    op.release_oldest = (i % 3 == 0);
    op.request = Request(std::vector<FileId>(bundles[i]));
    instance.ops.push_back(std::move(op));
  }
  instance.cache_bytes = feasible_cache_floor(instance);

  const SchedPredicate has_file_3 = [](const SchedInstance& candidate) {
    return std::any_of(
        candidate.ops.begin(), candidate.ops.end(), [](const SchedOp& op) {
          return std::find(op.request.files.begin(), op.request.files.end(),
                           FileId{3}) != op.request.files.end();
        });
  };
  const SchedInstance shrunk =
      shrink_sched_instance(instance, has_file_3);
  ASSERT_EQ(shrunk.ops.size(), 1u);
  EXPECT_EQ(shrunk.ops[0].request.files, std::vector<FileId>({3}));
  // Shrinking keeps candidates feasible, so the reproducer still replays
  // deterministically.
  EXPECT_GE(shrunk.cache_bytes, feasible_cache_floor(shrunk));
}

TEST(SchedSim, ShrinkRejectsAPassingInput) {
  const SchedInstance instance = two_file_instance(1);
  EXPECT_THROW(
      (void)shrink_sched_instance(instance,
                                  [](const SchedInstance&) { return false; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace fbc::testing
