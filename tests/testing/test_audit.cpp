// Tests for the InvariantAuditor: clean wiring through the simulator plus
// direct-hook forgeries proving each oracle actually fires.
#include "testing/audit.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/metrics.hpp"
#include "core/registry.hpp"
#include "testing/oracles.hpp"

namespace fbc::testing {
namespace {

bool has_oracle(const InvariantAuditor& auditor, const std::string& oracle) {
  return contains_failure(auditor.violations(),
                          Violation{oracle, "forged", ""});
}

TEST(InvariantAuditor, CleanSimulationProducesNoViolations) {
  FileCatalog catalog({4, 8, 16, 32, 4});
  std::vector<Request> jobs = {Request{{0, 1}}, Request{{2, 3}},
                               Request{{0, 4}}, Request{{1, 2}},
                               Request{{0, 1}}};
  SimulatorConfig config;
  config.cache_bytes = 48;
  config.warmup_jobs = 1;

  PolicyContext context;
  context.catalog = &catalog;
  PolicyPtr policy = make_policy("lru", context);

  InvariantAuditor auditor(catalog, "lru");
  (void)simulate(config, catalog, *policy, jobs, &auditor);
  EXPECT_TRUE(auditor.violations().empty())
      << auditor.violations().front().to_string();
  EXPECT_EQ(auditor.jobs_audited(), jobs.size());
}

TEST(InvariantAuditor, DetectsLeftoverPin) {
  FileCatalog catalog({5});
  DiskCache cache(10, catalog);
  cache.insert(0);
  cache.pin(0);

  InvariantAuditor auditor(catalog, "forged");
  CacheMetrics metrics;
  const Request request{{0}};
  auditor.on_job_start(request, cache);
  metrics.record_job(5, 0, 1, 1);
  auditor.on_job_serviced(request, cache, metrics);
  EXPECT_TRUE(has_oracle(auditor, "sim.pin"));
}

TEST(InvariantAuditor, DetectsWrongMissAccounting) {
  FileCatalog catalog({5, 7});
  DiskCache cache(16, catalog);

  InvariantAuditor auditor(catalog, "forged");
  CacheMetrics metrics;
  const Request request{{0, 1}};
  auditor.on_job_start(request, cache);  // both files missing: 12 bytes
  cache.insert(0);
  cache.insert(1);
  // Forge: claim only 5 of the 12 missing bytes were missed.
  metrics.record_job(12, 5, 2, 0);
  auditor.on_job_serviced(request, cache, metrics);
  EXPECT_TRUE(has_oracle(auditor, "sim.accounting"));
}

TEST(InvariantAuditor, DetectsUnservicedResidencyGap) {
  FileCatalog catalog({5, 7});
  DiskCache cache(16, catalog);

  InvariantAuditor auditor(catalog, "forged");
  CacheMetrics metrics;
  const Request request{{0, 1}};
  auditor.on_job_start(request, cache);
  cache.insert(0);  // file 1 never loaded
  metrics.record_job(12, 12, 2, 0);
  auditor.on_job_serviced(request, cache, metrics);
  EXPECT_TRUE(has_oracle(auditor, "sim.residency"));
  // The missing load also breaks byte conservation.
  EXPECT_TRUE(has_oracle(auditor, "sim.accounting"));
}

TEST(InvariantAuditor, DetectsUnreportedEviction) {
  FileCatalog catalog({5, 7});
  DiskCache cache(12, catalog);
  cache.insert(0);

  InvariantAuditor auditor(catalog, "forged");
  CacheMetrics metrics;
  const Request first{{0}};
  auditor.on_job_start(first, cache);
  metrics.record_job(5, 0, 1, 1);
  auditor.on_job_serviced(first, cache, metrics);

  const Request second{{1}};
  auditor.on_job_start(second, cache);
  cache.evict(0);
  auditor.on_eviction(0, cache);
  cache.insert(1);
  // Forge: the eviction is never recorded in the metrics.
  metrics.record_job(7, 7, 1, 0);
  auditor.on_job_serviced(second, cache, metrics);
  EXPECT_TRUE(has_oracle(auditor, "sim.accounting"));
}

TEST(InvariantAuditor, DetectsPhantomEvictionCallback) {
  FileCatalog catalog({5});
  DiskCache cache(10, catalog);
  cache.insert(0);

  InvariantAuditor auditor(catalog, "forged");
  // Claimed eviction while the file is still resident.
  auditor.on_eviction(0, cache);
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations().front().oracle, "sim.eviction");
}

TEST(InvariantAuditor, DetectsVictimCountMismatchAtRunEnd) {
  FileCatalog catalog({5});
  DiskCache cache(10, catalog);

  InvariantAuditor auditor(catalog, "forged");
  SimulationResult result;
  result.victims = 3;  // auditor observed none
  auditor.on_run_complete(cache, result);
  EXPECT_TRUE(has_oracle(auditor, "sim.accounting"));
}

TEST(InvariantAuditor, DetectsUnserviceableMarkedOnFittingJob) {
  FileCatalog catalog({5});
  DiskCache cache(10, catalog);

  InvariantAuditor auditor(catalog, "forged");
  CacheMetrics metrics;
  const Request request{{0}};  // 5 bytes: fits in 10
  auditor.on_job_start(request, cache);
  metrics.record_unserviceable();
  auditor.on_job_serviced(request, cache, metrics);
  EXPECT_TRUE(has_oracle(auditor, "sim.accounting"));
}

}  // namespace
}  // namespace fbc::testing
