// End-to-end tests for the fuzzing loop: clean campaigns stay clean, an
// injected capacity bug is caught, shrunk small and replayable.
#include "testing/fuzzer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hpp"

namespace fbc::testing {
namespace {

TEST(Fuzzer, CleanCampaignReportsNoFailures) {
  FuzzConfig config;
  config.seed = 2026;
  config.iters = 5;
  config.policies = {"lru", "landlord", "optfb"};
  config.out_dir.clear();  // don't write files
  std::ostringstream log;
  const FuzzReport report = run_fuzz(config, log);
  EXPECT_TRUE(report.clean()) << log.str();
  EXPECT_EQ(report.iterations, 5u);
  EXPECT_EQ(report.select_instances, 5u);
  EXPECT_EQ(report.sim_runs, 15u);
}

TEST(Fuzzer, ModeFlagsDisableFamilies) {
  FuzzConfig config;
  config.seed = 3;
  config.iters = 3;
  config.policies = {"lru"};
  config.out_dir.clear();
  config.run_sim = false;
  std::ostringstream log;
  FuzzReport report = run_fuzz(config, log);
  EXPECT_EQ(report.select_instances, 3u);
  EXPECT_EQ(report.sim_runs, 0u);

  config.run_sim = true;
  config.run_select = false;
  report = run_fuzz(config, log);
  EXPECT_EQ(report.select_instances, 0u);
  EXPECT_EQ(report.sim_runs, 3u);
}

TEST(Fuzzer, InjectedBugIsCaughtShrunkAndReplayable) {
  FuzzConfig config;
  config.seed = 1;
  config.iters = 30;
  config.policies = {"underfree:lru"};
  config.out_dir = ::testing::TempDir();
  config.max_failures = 1;
  std::ostringstream log;
  const FuzzReport report = run_fuzz(config, log);
  ASSERT_EQ(report.failures.size(), 1u) << log.str();

  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.violation.oracle, "sim.policy-contract");
  EXPECT_EQ(failure.violation.subject, "underfree:lru");
  // The acceptance bar: a capacity bug shrinks to a tiny reproducer.
  EXPECT_LE(failure.shrunk_jobs, 5u);
  ASSERT_FALSE(failure.reproducer_path.empty());

  // The written reproducer is self-contained and still fails on replay.
  const Trace reproducer = load_trace(failure.reproducer_path);
  const std::vector<Violation> replayed = replay_reproducer(reproducer);
  ASSERT_FALSE(replayed.empty());
  EXPECT_TRUE(contains_failure(replayed, failure.violation));
}

TEST(Fuzzer, ReplayRejectsTracesWithoutProvenance) {
  Trace trace{FileCatalog({1}), {Request{{0}}}, {}, {}, {}};
  EXPECT_THROW((void)replay_reproducer(trace), std::runtime_error);
  trace.set_meta("kind", "nonsense");
  EXPECT_THROW((void)replay_reproducer(trace), std::runtime_error);
}

}  // namespace
}  // namespace fbc::testing
