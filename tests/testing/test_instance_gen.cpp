// Tests for the fuzzer's seeded instance generators and the select
// instance <-> trace serialization.
#include "testing/instance_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "workload/trace.hpp"

namespace fbc::testing {
namespace {

bool same_select(const SelectInstance& a, const SelectInstance& b) {
  if (a.capacity != b.capacity || a.values != b.values ||
      a.free_files != b.free_files || a.requests.size() != b.requests.size() ||
      a.catalog.count() != b.catalog.count()) {
    return false;
  }
  for (std::size_t r = 0; r < a.requests.size(); ++r) {
    if (a.requests[r].files != b.requests[r].files) return false;
  }
  for (std::size_t f = 0; f < a.catalog.count(); ++f) {
    if (a.catalog.size_of(static_cast<FileId>(f)) !=
        b.catalog.size_of(static_cast<FileId>(f))) {
      return false;
    }
  }
  return true;
}

TEST(InstanceGen, SelectDeterministicInSeed) {
  const SelectGenConfig config;
  Rng rng1(42);
  Rng rng2(42);
  const SelectInstance a = generate_select_instance(config, rng1);
  const SelectInstance b = generate_select_instance(config, rng2);
  EXPECT_TRUE(same_select(a, b));

  Rng rng3(43);
  const SelectInstance c = generate_select_instance(config, rng3);
  // Different seed: with these knob ranges a collision is (practically)
  // impossible; compare values as the cheapest structural fingerprint.
  EXPECT_FALSE(same_select(a, c));
}

TEST(InstanceGen, SelectRespectsConfigRanges) {
  SelectGenConfig config;
  config.min_files = 5;
  config.max_files = 8;
  config.min_requests = 3;
  config.max_requests = 6;
  config.max_bundle_files = 3;
  config.max_file_bytes = 16;
  config.max_value = 9;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const SelectInstance inst = generate_select_instance(config, rng);
    EXPECT_GE(inst.catalog.count(), config.min_files);
    EXPECT_LE(inst.catalog.count(), config.max_files);
    EXPECT_GE(inst.requests.size(), config.min_requests);
    EXPECT_LE(inst.requests.size(), config.max_requests);
    ASSERT_EQ(inst.values.size(), inst.requests.size());
    Bytes total = 0;
    for (std::size_t f = 0; f < inst.catalog.count(); ++f) {
      const Bytes size = inst.catalog.size_of(static_cast<FileId>(f));
      EXPECT_GE(size, config.min_file_bytes);
      EXPECT_LE(size, config.max_file_bytes);
      total += size;
    }
    EXPECT_LE(inst.capacity, total);
    for (const Request& request : inst.requests) {
      EXPECT_GE(request.files.size(), 1u);
      EXPECT_LE(request.files.size(), config.max_bundle_files);
      for (FileId id : request.files) EXPECT_TRUE(inst.catalog.valid(id));
    }
    for (double value : inst.values) {
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, static_cast<double>(config.max_value));
      EXPECT_EQ(value, std::floor(value)) << "values must be integral";
    }
    EXPECT_TRUE(std::is_sorted(inst.free_files.begin(),
                               inst.free_files.end()));
    for (FileId id : inst.free_files) EXPECT_TRUE(inst.catalog.valid(id));
  }
}

TEST(InstanceGen, HotSetKnobRaisesFileDegree) {
  SelectGenConfig hot;
  hot.hot_prob = 1.0;
  hot.hot_files = 2;
  hot.min_requests = hot.max_requests = 10;
  SelectGenConfig cold = hot;
  cold.hot_prob = 0.0;
  cold.min_files = cold.max_files = 20;

  std::uint64_t hot_degree_sum = 0;
  std::uint64_t cold_degree_sum = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng_hot(seed);
    Rng rng_cold(seed);
    const SelectInstance h = generate_select_instance(hot, rng_hot);
    const SelectInstance c = generate_select_instance(cold, rng_cold);
    const auto max_deg = [](const SelectInstance& inst) {
      std::uint32_t best = 0;
      for (std::uint32_t d : inst.degrees()) best = std::max(best, d);
      return best;
    };
    hot_degree_sum += max_deg(h);
    cold_degree_sum += max_deg(c);
  }
  EXPECT_GT(hot_degree_sum, cold_degree_sum);
}

TEST(InstanceGen, SimDeterministicAndValid) {
  const SimGenConfig config;
  Rng rng1(7);
  Rng rng2(7);
  const SimInstance a = generate_sim_instance(config, rng1);
  const SimInstance b = generate_sim_instance(config, rng2);
  EXPECT_EQ(a.trace.jobs, b.trace.jobs);
  EXPECT_EQ(a.config.cache_bytes, b.config.cache_bytes);
  EXPECT_EQ(a.config.queue_length, b.config.queue_length);

  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const SimInstance inst = generate_sim_instance(config, rng);
    EXPECT_GE(inst.trace.jobs.size(), config.min_jobs);
    EXPECT_LE(inst.trace.jobs.size(), config.max_jobs);
    EXPECT_GT(inst.config.cache_bytes, 0u);
    EXPECT_GE(inst.config.queue_length, 1u);
    EXPECT_LE(inst.config.queue_length, config.max_queue_length);
    EXPECT_LE(inst.config.warmup_jobs, config.max_warmup);
    for (const Request& job : inst.trace.jobs) {
      EXPECT_FALSE(job.files.empty());
      for (FileId id : job.files) EXPECT_TRUE(inst.trace.catalog.valid(id));
    }
  }
}

TEST(InstanceGen, SelectInstanceTraceRoundTrip) {
  Rng rng(99);
  const SelectInstance original =
      generate_select_instance(SelectGenConfig{}, rng);

  // In-memory meta round trip.
  const Trace direct = select_instance_to_trace(original);
  EXPECT_TRUE(same_select(original, select_instance_from_trace(direct)));

  // Full text serialization round trip.
  std::stringstream ss;
  write_trace(ss, direct);
  const Trace loaded = read_trace(ss);
  EXPECT_TRUE(same_select(original, select_instance_from_trace(loaded)));
}

TEST(InstanceGen, SelectInstanceFromTraceRejectsBadMeta) {
  Rng rng(5);
  const SelectInstance inst = generate_select_instance(SelectGenConfig{}, rng);
  const Trace good = select_instance_to_trace(inst);

  {
    Trace bad = good;
    bad.meta.erase(
        std::remove_if(bad.meta.begin(), bad.meta.end(),
                       [](const auto& kv) { return kv.first == "capacity"; }),
        bad.meta.end());
    EXPECT_THROW((void)select_instance_from_trace(bad), std::runtime_error);
  }
  {
    Trace bad = good;
    for (auto& [key, value] : bad.meta) {
      if (key == "values") value += " 3";  // one value too many
    }
    EXPECT_THROW((void)select_instance_from_trace(bad), std::runtime_error);
  }
  {
    Trace bad = good;
    for (auto& [key, value] : bad.meta) {
      if (key == "kind") value = "sim";
    }
    EXPECT_THROW((void)select_instance_from_trace(bad), std::runtime_error);
  }
}

}  // namespace
}  // namespace fbc::testing
