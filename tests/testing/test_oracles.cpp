// Tests for the differential select/simulation oracles.
#include "testing/oracles.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "testing/instance_gen.hpp"

namespace fbc::testing {
namespace {

SelectInstance seeded_instance(std::uint64_t seed) {
  Rng rng(seed);
  return generate_select_instance(SelectGenConfig{}, rng);
}

TEST(SelectOracles, CleanOnGeneratedInstances) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const SelectInstance inst = seeded_instance(seed);
    SelectOracleStats stats;
    const std::vector<Violation> violations =
        check_select_instance(inst, 0, &stats);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front().to_string();
    EXPECT_FALSE(stats.exact_truncated);
    EXPECT_GT(stats.exact_nodes, 0u);
  }
}

TEST(SelectOracles, TinyNodeBudgetReportsTruncation) {
  const SelectInstance inst = seeded_instance(3);
  SelectOracleStats stats;
  const std::vector<Violation> violations =
      check_select_instance(inst, 1, &stats);
  EXPECT_TRUE(stats.exact_truncated);
  // Ratio oracles are skipped under truncation: the only admissible
  // violations would be structural, and this instance has none.
  for (const Violation& v : violations) {
    EXPECT_NE(v.oracle, "select.bound") << v.to_string();
    EXPECT_NE(v.oracle, "select.exact-dominated") << v.to_string();
  }
}

TEST(SelectOracles, FailureMatchingIsByOracleAndSubject) {
  const Violation a{"select.bound", "basic", "detail one"};
  const Violation b{"select.bound", "basic", "other detail"};
  const Violation c{"select.bound", "seeded2", "detail one"};
  EXPECT_TRUE(same_failure(a, b));
  EXPECT_FALSE(same_failure(a, c));
  EXPECT_TRUE(contains_failure({c, b}, a));
  EXPECT_FALSE(contains_failure({c}, a));
}

TEST(SimOracles, CleanOnEveryRegisteredPolicy) {
  Rng rng(11);
  const SimInstance inst = generate_sim_instance(SimGenConfig{}, rng);
  for (const std::string& name : policy_names()) {
    const std::vector<Violation> violations =
        check_simulation(inst.trace, inst.config, name);
    EXPECT_TRUE(violations.empty())
        << name << ": " << violations.front().to_string();
  }
}

TEST(SimOracles, UnknownPolicyIsSetupViolation) {
  Rng rng(11);
  const SimInstance inst = generate_sim_instance(SimGenConfig{}, rng);
  const std::vector<Violation> violations =
      check_simulation(inst.trace, inst.config, "no-such-policy");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].oracle, "sim.setup");
}

TEST(SimOracles, UnderfreePolicyIsCaught) {
  // A trace engineered to require multi-victim evictions: bundles of two
  // files cycling through a catalog much larger than the cache.
  FileCatalog catalog({10, 10, 10, 10, 10, 10});
  std::vector<Request> jobs;
  for (int round = 0; round < 3; ++round) {
    jobs.push_back(Request{{0, 1}});
    jobs.push_back(Request{{2, 3}});
    jobs.push_back(Request{{4, 5}});
  }
  Trace trace{catalog, jobs, {}, {}, {}};
  SimulatorConfig config;
  config.cache_bytes = 25;  // fits one bundle + half of another

  EXPECT_TRUE(check_simulation(trace, config, "lru").empty());

  const std::vector<Violation> violations =
      check_simulation(trace, config, "underfree:lru");
  ASSERT_FALSE(violations.empty());
  EXPECT_TRUE(contains_failure(
      violations, Violation{"sim.policy-contract", "underfree:lru", ""}))
      << violations.front().to_string();
}

}  // namespace
}  // namespace fbc::testing
