// Tests for SRM service-order disciplines (FCFS vs shortest-bundle-first,
// paper §1.1).
#include <gtest/gtest.h>

#include "grid/mss.hpp"
#include "grid/srm.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

/// Zero-latency unit-bandwidth tier: staging time == bytes.
MassStorageSystem byte_clock_mss(const FileCatalog& catalog) {
  return MassStorageSystem({StorageTier{"t", 0.0, 1.0}}, catalog);
}

TEST(SrmOrder, SjfStartsSmallJobsFirst) {
  // Jobs arrive together: big (300 B), small (100 B). SJF serves the
  // small one first, cutting its response dramatically.
  FileCatalog catalog({300, 100});
  const auto mss = byte_clock_mss(catalog);
  SrmConfig config{.cache_bytes = 400,
                   .transfers = TransferModel{.max_parallel = 1}};
  config.order = ServiceOrder::ShortestBundleFirst;
  LruPolicy policy;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},
                            GridJob{Request({1}), 0.0, 1.0}};
  const SrmReport report = srm.run(jobs);
  // outcomes stay aligned with the input order.
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 0.0);     // small first
  EXPECT_DOUBLE_EQ(report.outcomes[1].finish_s, 101.0);
  EXPECT_DOUBLE_EQ(report.outcomes[0].start_s, 101.0);   // big after
  EXPECT_DOUBLE_EQ(report.outcomes[0].finish_s, 101.0 + 301.0);
}

TEST(SrmOrder, FcfsIsTheDefaultAndKeepsArrivalOrder) {
  FileCatalog catalog({300, 100});
  const auto mss = byte_clock_mss(catalog);
  SrmConfig config{.cache_bytes = 400,
                   .transfers = TransferModel{.max_parallel = 1}};
  LruPolicy policy;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},
                            GridJob{Request({1}), 0.0, 1.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_DOUBLE_EQ(report.outcomes[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 301.0);
}

TEST(SrmOrder, SjfDoesNotPeekAtUnarrivedJobs) {
  // A tiny job that arrives later must not jump ahead of an already
  // arrived bigger one (non-preemptive, no clairvoyance).
  FileCatalog catalog({200, 50});
  const auto mss = byte_clock_mss(catalog);
  SrmConfig config{.cache_bytes = 400,
                   .transfers = TransferModel{.max_parallel = 1}};
  config.order = ServiceOrder::ShortestBundleFirst;
  LruPolicy policy;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},
                            GridJob{Request({1}), 50.0, 1.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_DOUBLE_EQ(report.outcomes[0].start_s, 0.0);  // only arrival at t=0
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 201.0);
}

TEST(SrmOrder, SjfImprovesMeanResponseOnMixedSizes) {
  FileCatalog catalog;
  for (int i = 0; i < 4; ++i) catalog.add_file(400);  // big
  for (int i = 0; i < 4; ++i) catalog.add_file(50);   // small
  const auto mss = byte_clock_mss(catalog);
  std::vector<GridJob> jobs;
  for (FileId i = 0; i < 8; ++i) {
    jobs.push_back(GridJob{Request({i}), 0.0, 1.0});
  }
  auto mean_response = [&](ServiceOrder order) {
    SrmConfig config{.cache_bytes = 2000,
                     .transfers = TransferModel{.max_parallel = 1}};
    config.order = order;
    LruPolicy policy;
    StorageResourceManager srm(config, mss, policy);
    return srm.run(jobs).response_s.mean();
  };
  EXPECT_LT(mean_response(ServiceOrder::ShortestBundleFirst),
            mean_response(ServiceOrder::Fcfs));
}

TEST(SrmOrder, OutcomesAlignedWithInputUnderReordering) {
  FileCatalog catalog({300, 100, 200});
  const auto mss = byte_clock_mss(catalog);
  SrmConfig config{.cache_bytes = 600,
                   .transfers = TransferModel{.max_parallel = 1}};
  config.order = ServiceOrder::ShortestBundleFirst;
  LruPolicy policy;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 0.0},
                            GridJob{Request({1}), 0.0, 0.0},
                            GridJob{Request({2}), 0.0, 0.0}};
  const SrmReport report = srm.run(jobs);
  // Service order: 1 (100), 2 (200), 0 (300); bytes staged align by index.
  EXPECT_EQ(report.outcomes[0].bytes_staged, 300u);
  EXPECT_EQ(report.outcomes[1].bytes_staged, 100u);
  EXPECT_EQ(report.outcomes[2].bytes_staged, 200u);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(report.outcomes[2].start_s, 100.0);
  EXPECT_DOUBLE_EQ(report.outcomes[0].start_s, 300.0);
}

}  // namespace
}  // namespace fbc
