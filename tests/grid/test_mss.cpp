// Tests for the mass-storage-system tier model.
#include "grid/mss.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbc {
namespace {

TEST(StorageTier, FetchSecondsFormula) {
  StorageTier tier{"t", /*latency_s=*/2.0, /*bandwidth_bps=*/100.0};
  EXPECT_DOUBLE_EQ(tier.fetch_seconds(0), 2.0);
  EXPECT_DOUBLE_EQ(tier.fetch_seconds(500), 7.0);
}

TEST(DefaultTiers, ThreeTiersOrderedByLocality) {
  const auto tiers = default_tiers();
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers[0].name, "disk-pool");
  EXPECT_EQ(tiers[1].name, "local-tape");
  EXPECT_EQ(tiers[2].name, "remote-mss");
  // The disk pool must be strictly faster than the WAN for typical files.
  EXPECT_LT(tiers[0].fetch_seconds(100 * MiB),
            tiers[2].fetch_seconds(100 * MiB));
}

TEST(MassStorageSystem, DefaultsAllFilesToTierZero) {
  FileCatalog catalog({100, 200});
  MassStorageSystem mss(default_tiers(), catalog);
  EXPECT_EQ(mss.tier_count(), 3u);
  EXPECT_EQ(mss.tier_of(0), 0u);
  EXPECT_EQ(mss.tier_of(1), 0u);
}

TEST(MassStorageSystem, PlacementChangesFetchTime) {
  FileCatalog catalog({100 * MiB});
  MassStorageSystem mss(default_tiers(), catalog);
  const double fast = mss.fetch_seconds(0);
  mss.place_file(0, 2);
  EXPECT_EQ(mss.tier_of(0), 2u);
  const double slow = mss.fetch_seconds(0);
  EXPECT_GT(slow, fast);
}

TEST(MassStorageSystem, FetchSecondsUsesCatalogSizes) {
  FileCatalog catalog({1000});
  std::vector<StorageTier> tiers{StorageTier{"x", 1.0, 100.0}};
  MassStorageSystem mss(tiers, catalog);
  EXPECT_DOUBLE_EQ(mss.fetch_seconds(0), 1.0 + 10.0);
}

TEST(MassStorageSystem, Validation) {
  FileCatalog catalog({100});
  EXPECT_THROW(MassStorageSystem({}, catalog), std::invalid_argument);
  MassStorageSystem mss(default_tiers(), catalog);
  EXPECT_THROW(mss.place_file(5, 0), std::invalid_argument);
  EXPECT_THROW(mss.place_file(0, 9), std::invalid_argument);
  EXPECT_THROW((void)mss.tier_of(5), std::invalid_argument);
}

}  // namespace
}  // namespace fbc
