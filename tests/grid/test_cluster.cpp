// Tests for the cluster-of-independent-caches substrate.
#include "grid/cluster.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/opt_file_bundle.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(Cluster, ValidatesConfig) {
  FileCatalog catalog = unit_catalog(4);
  auto factory = [] { return std::make_unique<LruPolicy>(); };
  ClusterConfig config;
  config.nodes = 0;
  config.node_cache_bytes = 100;
  EXPECT_THROW(ClusterSimulator(config, catalog, factory),
               std::invalid_argument);
  config.nodes = 2;
  config.node_cache_bytes = 0;
  EXPECT_THROW(ClusterSimulator(config, catalog, factory),
               std::invalid_argument);
}

TEST(Cluster, RoundRobinPlacementIsModular) {
  FileCatalog catalog = unit_catalog(8);
  ClusterConfig config;
  config.nodes = 3;
  config.node_cache_bytes = 300;
  config.placement = Placement::RoundRobin;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  for (FileId id = 0; id < 8; ++id) {
    EXPECT_EQ(cluster.node_of(id), id % 3u);
  }
}

TEST(Cluster, HashPlacementCoversAllNodes) {
  FileCatalog catalog = unit_catalog(100);
  ClusterConfig config;
  config.nodes = 4;
  config.node_cache_bytes = 300;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  std::vector<int> counts(4, 0);
  for (FileId id = 0; id < 100; ++id) {
    const std::size_t node = cluster.node_of(id);
    ASSERT_LT(node, 4u);
    counts[node] += 1;
  }
  for (int c : counts) EXPECT_GT(c, 10);  // roughly balanced
}

TEST(Cluster, FilesLandOnTheirNode) {
  FileCatalog catalog = unit_catalog(6);
  ClusterConfig config;
  config.nodes = 2;
  config.node_cache_bytes = 400;
  config.placement = Placement::RoundRobin;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  std::vector<Request> jobs{Request({0, 1, 2, 3})};
  cluster.run(jobs);
  // Even ids on node 0, odd on node 1.
  EXPECT_TRUE(cluster.node_cache(0).contains(0));
  EXPECT_TRUE(cluster.node_cache(0).contains(2));
  EXPECT_FALSE(cluster.node_cache(0).contains(1));
  EXPECT_TRUE(cluster.node_cache(1).contains(1));
  EXPECT_TRUE(cluster.node_cache(1).contains(3));
}

TEST(Cluster, RequestHitNeedsEveryNodePart) {
  FileCatalog catalog = unit_catalog(4);
  ClusterConfig config;
  config.nodes = 2;
  config.node_cache_bytes = 200;
  config.placement = Placement::RoundRobin;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  // Job 1 loads {0,1}; job 2 displaces node-1's copy of 1 via {3};
  // the repeat of {0,1} is then only a partial hit.
  std::vector<Request> jobs{Request({0, 1}), Request({1, 3}),
                            Request({0, 1})};
  const ClusterResult result = cluster.run(jobs);
  EXPECT_EQ(result.metrics.jobs(), 3u);
  // {0,1} repeat: 0 still on node 0, 1 still on node 1 (both fit) -> hit.
  EXPECT_EQ(result.metrics.request_hits(), 1u);
}

TEST(Cluster, PerNodeMetricsSumToJobBytes) {
  FileCatalog catalog = unit_catalog(12);
  ClusterConfig config;
  config.nodes = 3;
  config.node_cache_bytes = 300;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  std::vector<Request> jobs;
  for (FileId i = 0; i < 50; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 12),
                            static_cast<FileId>((i * 5 + 1) % 12)}));
  }
  const ClusterResult result = cluster.run(jobs);
  Bytes node_requested = 0, node_missed = 0;
  for (const CacheMetrics& m : result.per_node) {
    node_requested += m.bytes_requested();
    node_missed += m.bytes_missed();
  }
  EXPECT_EQ(node_requested, result.metrics.bytes_requested());
  EXPECT_EQ(node_missed, result.metrics.bytes_missed());
}

TEST(Cluster, OversizedSubBundleIsUnserviceable) {
  FileCatalog catalog = unit_catalog(4);
  ClusterConfig config;
  config.nodes = 2;
  config.node_cache_bytes = 150;  // holds one file per node
  config.placement = Placement::RoundRobin;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  // {0, 2} both land on node 0: 200 bytes > 150 capacity.
  std::vector<Request> jobs{Request({0, 2}), Request({1})};
  const ClusterResult result = cluster.run(jobs);
  EXPECT_EQ(result.metrics.unserviceable(), 1u);
  EXPECT_EQ(result.metrics.jobs(), 1u);
}

TEST(Cluster, RunTwiceThrows) {
  FileCatalog catalog = unit_catalog(2);
  ClusterConfig config;
  config.nodes = 1;
  config.node_cache_bytes = 200;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  std::vector<Request> jobs{Request({0})};
  cluster.run(jobs);
  EXPECT_THROW(cluster.run(jobs), std::logic_error);
}

TEST(Cluster, WarmupSeparation) {
  FileCatalog catalog = unit_catalog(4);
  ClusterConfig config;
  config.nodes = 2;
  config.node_cache_bytes = 400;
  config.warmup_jobs = 1;
  ClusterSimulator cluster(config, catalog,
                           [] { return std::make_unique<LruPolicy>(); });
  std::vector<Request> jobs{Request({0, 1}), Request({0, 1})};
  const ClusterResult result = cluster.run(jobs);
  EXPECT_EQ(result.warmup.jobs(), 1u);
  EXPECT_EQ(result.metrics.jobs(), 1u);
  EXPECT_EQ(result.metrics.request_hits(), 1u);
}

TEST(Cluster, BundleAwareNodesBeatLruNodes) {
  // The paper's structured-bundle advantage survives partitioning: with
  // per-node OptFileBundle instances each node keeps its share of hot
  // bundles.
  FileCatalog catalog = unit_catalog(24);
  std::vector<Request> jobs;
  // Three hot 4-file bundles + cold singles.
  const std::vector<Request> hot{Request({0, 1, 2, 3}),
                                 Request({4, 5, 6, 7}),
                                 Request({8, 9, 10, 11})};
  for (int round = 0; round < 60; ++round) {
    jobs.push_back(hot[static_cast<std::size_t>(round) % 3]);
    jobs.push_back(
        Request({static_cast<FileId>(12 + (round * 7) % 12)}));
  }

  auto run_with = [&](auto factory) {
    ClusterConfig config;
    config.nodes = 2;
    config.node_cache_bytes = 500;
    config.warmup_jobs = 12;
    ClusterSimulator cluster(config, catalog, factory);
    return cluster.run(jobs).metrics;
  };
  const CacheMetrics lru = run_with(
      []() -> PolicyPtr { return std::make_unique<LruPolicy>(); });
  // Each node's policy sees sub-bundles; the catalog is shared.
  const FileCatalog& cat = catalog;
  const CacheMetrics optfb = run_with([&cat]() -> PolicyPtr {
    return std::make_unique<OptFileBundlePolicy>(cat);
  });
  EXPECT_GE(optfb.request_hit_ratio(), lru.request_hit_ratio());
}

}  // namespace
}  // namespace fbc
