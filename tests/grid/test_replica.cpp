// Tests for the ReplicaManager substrate.
#include "grid/replica.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "grid/srm.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

/// Origin: slow WAN; replica site: fast local disk with a budget.
std::vector<ReplicaSite> two_sites(Bytes replica_budget) {
  return {
      ReplicaSite{"origin", StorageTier{"wan", 2.0, 10.0 * MiB}, 0},
      ReplicaSite{"local", StorageTier{"disk", 0.05, 400.0 * MiB},
                  replica_budget},
  };
}

TEST(Replica, ValidatesConstruction) {
  FileCatalog catalog({100});
  EXPECT_THROW(ReplicaManager({}, catalog), std::invalid_argument);
}

TEST(Replica, OriginHoldsEverything) {
  FileCatalog catalog({100, 200});
  ReplicaManager manager(two_sites(1000), catalog);
  EXPECT_TRUE(manager.has_replica(0, 0));
  EXPECT_TRUE(manager.has_replica(1, 0));
  EXPECT_FALSE(manager.has_replica(0, 1));
  EXPECT_EQ(manager.best_site(0), 0u);
}

TEST(Replica, AddAndDropReplicas) {
  FileCatalog catalog({100, 200});
  ReplicaManager manager(two_sites(1000), catalog);
  manager.add_replica(0, 1);
  EXPECT_TRUE(manager.has_replica(0, 1));
  EXPECT_EQ(manager.replica_bytes(1), 100u);
  manager.add_replica(0, 1);  // idempotent
  EXPECT_EQ(manager.replica_bytes(1), 100u);
  manager.drop_replica(0, 1);
  EXPECT_FALSE(manager.has_replica(0, 1));
  EXPECT_EQ(manager.replica_bytes(1), 0u);
  manager.drop_replica(0, 1);  // no-op
  manager.drop_replica(0, 0);  // origin copies are permanent
  EXPECT_TRUE(manager.has_replica(0, 0));
}

TEST(Replica, BudgetEnforced) {
  FileCatalog catalog({600, 600});
  ReplicaManager manager(two_sites(1000), catalog);
  manager.add_replica(0, 1);
  EXPECT_THROW(manager.add_replica(1, 1), std::runtime_error);
}

TEST(Replica, FetchUsesCheapestSite) {
  FileCatalog catalog({100 * MiB});
  ReplicaManager manager(two_sites(1 * GiB), catalog);
  const double from_origin = manager.fetch_seconds(0);
  manager.add_replica(0, 1);
  const double from_replica = manager.fetch_seconds(0);
  EXPECT_LT(from_replica, from_origin);
  EXPECT_EQ(manager.best_site(0), 1u);
}

TEST(Replica, BadArgumentsThrow) {
  FileCatalog catalog({100});
  ReplicaManager manager(two_sites(1000), catalog);
  EXPECT_THROW((void)manager.has_replica(5, 0), std::invalid_argument);
  EXPECT_THROW((void)manager.has_replica(0, 9), std::invalid_argument);
  EXPECT_THROW(manager.add_replica(5, 1), std::invalid_argument);
  EXPECT_THROW((void)manager.replica_bytes(9), std::invalid_argument);
  EXPECT_THROW((void)manager.best_site(5), std::invalid_argument);
}

TEST(Replica, PopularityPlacementReplicatesHotFiles) {
  FileCatalog catalog({100, 100, 100, 100});
  ReplicaManager manager(two_sites(250), catalog);  // room for 2 files
  const std::vector<std::uint64_t> counts{5, 0, 9, 2};
  manager.replicate_by_popularity(counts);
  EXPECT_TRUE(manager.has_replica(2, 1));   // hottest
  EXPECT_TRUE(manager.has_replica(0, 1));   // second
  EXPECT_FALSE(manager.has_replica(3, 1));  // no room left
  EXPECT_FALSE(manager.has_replica(1, 1));  // cold tail never replicated
}

TEST(Replica, PopularityPlacementPrefersFasterSites) {
  FileCatalog catalog({100});
  std::vector<ReplicaSite> sites{
      ReplicaSite{"origin", StorageTier{"wan", 2.0, 10.0 * MiB}, 0},
      ReplicaSite{"slow", StorageTier{"tape", 8.0, 120.0 * MiB}, 1000},
      ReplicaSite{"fast", StorageTier{"disk", 0.05, 400.0 * MiB}, 1000},
  };
  ReplicaManager manager(sites, catalog);
  const std::vector<std::uint64_t> counts{3};
  manager.replicate_by_popularity(counts);
  EXPECT_TRUE(manager.has_replica(0, 2));   // landed on the fast site
  EXPECT_FALSE(manager.has_replica(0, 1));
}

TEST(Replica, FailedAddLeavesStateUntouched) {
  // A rejected replica (budget overflow) must not leak partial state:
  // occupancy, membership, and fetch routing all stay as they were.
  FileCatalog catalog({600, 600});
  ReplicaManager manager(two_sites(1000), catalog);
  manager.add_replica(0, 1);
  const double before = manager.fetch_seconds(1);
  EXPECT_THROW(manager.add_replica(1, 1), std::runtime_error);
  EXPECT_EQ(manager.replica_bytes(1), 600u);
  EXPECT_FALSE(manager.has_replica(1, 1));
  EXPECT_EQ(manager.best_site(1), 0u);
  EXPECT_DOUBLE_EQ(manager.fetch_seconds(1), before);
  // The freed budget from a drop can then be reused.
  manager.drop_replica(0, 1);
  manager.add_replica(1, 1);
  EXPECT_EQ(manager.best_site(1), 1u);
}

TEST(Replica, DroppedReplicaFallsBackToOriginLatency) {
  // Losing a replica (site failure / eviction) silently reroutes fetches
  // to the origin at WAN cost -- the caller never sees an error.
  FileCatalog catalog({100 * MiB});
  ReplicaManager manager(two_sites(1 * GiB), catalog);
  const double origin_cost = manager.fetch_seconds(0);
  manager.add_replica(0, 1);
  ASSERT_LT(manager.fetch_seconds(0), origin_cost);
  manager.drop_replica(0, 1);
  EXPECT_EQ(manager.best_site(0), 0u);
  EXPECT_DOUBLE_EQ(manager.fetch_seconds(0), origin_cost);
}

TEST(Replica, SlowerReplicaNeverWorsensFetchTime) {
  // A replica on a site slower than the origin exists but is never the
  // best site: fetch routing picks the cheapest copy, not any copy.
  FileCatalog catalog({100 * MiB});
  std::vector<ReplicaSite> sites{
      ReplicaSite{"origin", StorageTier{"disk", 0.05, 400.0 * MiB}, 0},
      ReplicaSite{"slow", StorageTier{"tape", 8.0, 120.0 * MiB}, 1 * GiB},
  };
  ReplicaManager manager(sites, catalog);
  const double origin_cost = manager.fetch_seconds(0);
  manager.add_replica(0, 1);
  EXPECT_EQ(manager.best_site(0), 0u);
  EXPECT_DOUBLE_EQ(manager.fetch_seconds(0), origin_cost);
}

TEST(Replica, PopularityPlacementSkipsOversizedFilesButContinues) {
  // The hottest file exceeds the whole replica budget; the greedy pass
  // must move on and still replicate the next-hottest files that fit.
  FileCatalog catalog({900, 100, 100});
  ReplicaManager manager(two_sites(250), catalog);
  const std::vector<std::uint64_t> counts{50, 9, 5};
  manager.replicate_by_popularity(counts);
  EXPECT_FALSE(manager.has_replica(0, 1));
  EXPECT_TRUE(manager.has_replica(1, 1));
  EXPECT_TRUE(manager.has_replica(2, 1));
  EXPECT_EQ(manager.replica_bytes(1), 200u);
}

TEST(Replica, PopularityPlacementIsIdempotent) {
  // Re-running placement with the same counts must keep existing replicas
  // and not double-charge the budget.
  FileCatalog catalog({100, 100});
  ReplicaManager manager(two_sites(250), catalog);
  const std::vector<std::uint64_t> counts{7, 3};
  manager.replicate_by_popularity(counts);
  const Bytes used = manager.replica_bytes(1);
  manager.replicate_by_popularity(counts);
  EXPECT_EQ(manager.replica_bytes(1), used);
  EXPECT_TRUE(manager.has_replica(0, 1));
  EXPECT_TRUE(manager.has_replica(1, 1));
}

TEST(Replica, SrmIntegrationReplicationCutsResponseTime) {
  // The SRM works against a ReplicaManager exactly like against an MSS;
  // replicating the hot files shortens staging.
  FileCatalog catalog;
  for (int i = 0; i < 6; ++i) catalog.add_file(100 * MiB);
  std::vector<GridJob> jobs;
  for (int round = 0; round < 10; ++round) {
    jobs.push_back(GridJob{Request({0, 1}), 0.0, 1.0});
    jobs.push_back(
        GridJob{Request({static_cast<FileId>(2 + round % 4)}), 0.0, 1.0});
  }
  std::vector<std::uint64_t> counts{10, 10, 3, 3, 2, 2};

  auto run = [&](bool replicate) {
    ReplicaManager manager(two_sites(300 * MiB), catalog);
    if (replicate) manager.replicate_by_popularity(counts);
    LruPolicy policy;
    SrmConfig config{.cache_bytes = 250 * MiB};  // thrashes: repeated fetch
    StorageResourceManager srm(config, manager, policy);
    return srm.run(jobs).response_s.mean();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace fbc
