// Tests for the parallel-stream transfer scheduler.
#include "grid/transfer.hpp"

#include <gtest/gtest.h>

#include "grid/mss.hpp"

namespace fbc {
namespace {

/// One tier with zero latency and bandwidth 1 byte/s: fetch time == size.
MassStorageSystem simple_mss(const FileCatalog& catalog) {
  return MassStorageSystem({StorageTier{"t", 0.0, 1.0}}, catalog);
}

TEST(Transfer, EmptySetCostsNothing) {
  FileCatalog catalog({10});
  const auto mss = simple_mss(catalog);
  TransferModel model;
  EXPECT_DOUBLE_EQ(model.stage_seconds({}, mss), 0.0);
}

TEST(Transfer, SerialSumsDurations) {
  FileCatalog catalog({10, 20, 30});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 1};
  const std::vector<FileId> files{0, 1, 2};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 60.0);
}

TEST(Transfer, PerfectlyParallel) {
  FileCatalog catalog({10, 10, 10});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 3};
  const std::vector<FileId> files{0, 1, 2};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 10.0);
}

TEST(Transfer, LptMakespanKnownInstance) {
  // Durations {7, 5, 4, 3, 1} on 2 streams: LPT assigns 7+3, 5+4+1 ->
  // makespan 10.
  FileCatalog catalog({7, 5, 4, 3, 1});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 2};
  const std::vector<FileId> files{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 10.0);
}

TEST(Transfer, MakespanAtLeastLongestFile) {
  FileCatalog catalog({100, 1, 1, 1});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 4};
  const std::vector<FileId> files{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 100.0);
}

TEST(Transfer, MoreStreamsNeverSlower) {
  FileCatalog catalog;
  for (Bytes i = 0; i < 12; ++i) catalog.add_file(10 + 7 * (i % 4));
  const auto mss = simple_mss(catalog);
  std::vector<FileId> files;
  for (FileId id = 0; id < 12; ++id) files.push_back(id);
  double prev = 1e18;
  for (std::size_t streams = 1; streams <= 6; ++streams) {
    TransferModel model{.max_parallel = streams};
    const double t = model.stage_seconds(files, mss);
    EXPECT_LE(t, prev + 1e-9);
    prev = t;
  }
}

TEST(Transfer, ZeroParallelTreatedAsOne) {
  FileCatalog catalog({10, 20});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 0};
  const std::vector<FileId> files{0, 1};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 30.0);
}

}  // namespace
}  // namespace fbc
