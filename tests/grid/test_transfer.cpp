// Tests for the parallel-stream transfer scheduler.
#include "grid/transfer.hpp"

#include <gtest/gtest.h>

#include "grid/mss.hpp"
#include "grid/replica.hpp"

namespace fbc {
namespace {

/// One tier with zero latency and bandwidth 1 byte/s: fetch time == size.
MassStorageSystem simple_mss(const FileCatalog& catalog) {
  return MassStorageSystem({StorageTier{"t", 0.0, 1.0}}, catalog);
}

TEST(Transfer, EmptySetCostsNothing) {
  FileCatalog catalog({10});
  const auto mss = simple_mss(catalog);
  TransferModel model;
  EXPECT_DOUBLE_EQ(model.stage_seconds({}, mss), 0.0);
}

TEST(Transfer, SerialSumsDurations) {
  FileCatalog catalog({10, 20, 30});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 1};
  const std::vector<FileId> files{0, 1, 2};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 60.0);
}

TEST(Transfer, PerfectlyParallel) {
  FileCatalog catalog({10, 10, 10});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 3};
  const std::vector<FileId> files{0, 1, 2};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 10.0);
}

TEST(Transfer, LptMakespanKnownInstance) {
  // Durations {7, 5, 4, 3, 1} on 2 streams: LPT assigns 7+3, 5+4+1 ->
  // makespan 10.
  FileCatalog catalog({7, 5, 4, 3, 1});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 2};
  const std::vector<FileId> files{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 10.0);
}

TEST(Transfer, MakespanAtLeastLongestFile) {
  FileCatalog catalog({100, 1, 1, 1});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 4};
  const std::vector<FileId> files{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 100.0);
}

TEST(Transfer, MoreStreamsNeverSlower) {
  FileCatalog catalog;
  for (Bytes i = 0; i < 12; ++i) catalog.add_file(10 + 7 * (i % 4));
  const auto mss = simple_mss(catalog);
  std::vector<FileId> files;
  for (FileId id = 0; id < 12; ++id) files.push_back(id);
  double prev = 1e18;
  for (std::size_t streams = 1; streams <= 6; ++streams) {
    TransferModel model{.max_parallel = streams};
    const double t = model.stage_seconds(files, mss);
    EXPECT_LE(t, prev + 1e-9);
    prev = t;
  }
}

TEST(Transfer, ZeroParallelTreatedAsOne) {
  FileCatalog catalog({10, 20});
  const auto mss = simple_mss(catalog);
  TransferModel model{.max_parallel = 0};
  const std::vector<FileId> files{0, 1};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 30.0);
}

TEST(Transfer, PerFileLatencyIsPaidOncePerFilePerStream) {
  // Huge bandwidth makes transfers latency-bound: four fetches of 10 s
  // latency each across two streams still cost two rounds of latency.
  FileCatalog catalog({1, 1, 1, 1});
  MassStorageSystem mss({StorageTier{"tape", 10.0, 1e12}}, catalog);
  TransferModel model{.max_parallel = 2};
  const std::vector<FileId> files{0, 1, 2, 3};
  EXPECT_NEAR(model.stage_seconds(files, mss), 20.0, 1e-6);
}

TEST(Transfer, MixedTierPlacementUsesEachFilesOwnTier) {
  // File 0 stays on the fast disk tier; file 1 is placed on slow tape.
  // The serial stage time must be the sum of the two tier-specific costs,
  // proving per-file placement (not a single blended rate) is honored.
  FileCatalog catalog({1000, 1000});
  const StorageTier disk{"disk", 0.0, 100.0};  // 10 s per file
  const StorageTier tape{"tape", 50.0, 100.0};  // 60 s per file
  MassStorageSystem mss({disk, tape}, catalog);
  mss.place_file(1, 1);
  EXPECT_DOUBLE_EQ(mss.fetch_seconds(0), 10.0);
  EXPECT_DOUBLE_EQ(mss.fetch_seconds(1), 60.0);
  TransferModel model{.max_parallel = 1};
  const std::vector<FileId> files{0, 1};
  EXPECT_DOUBLE_EQ(model.stage_seconds(files, mss), 70.0);
  // With two streams the tape fetch dominates the makespan.
  TransferModel wide{.max_parallel = 2};
  EXPECT_DOUBLE_EQ(wide.stage_seconds(files, mss), 60.0);
}

TEST(Transfer, ReplicationShortensBundleStaging) {
  // The transfer scheduler works against any StorageBackend: replicating
  // a bundle's files onto a fast site cuts its staging makespan.
  FileCatalog catalog({100 * MiB, 100 * MiB, 100 * MiB});
  std::vector<ReplicaSite> sites{
      ReplicaSite{"origin", StorageTier{"wan", 2.0, 10.0 * MiB}, 0},
      ReplicaSite{"local", StorageTier{"disk", 0.05, 400.0 * MiB}, 1 * GiB},
  };
  ReplicaManager manager(sites, catalog);
  TransferModel model{.max_parallel = 2};
  const std::vector<FileId> files{0, 1, 2};
  const double before = model.stage_seconds(files, manager);
  manager.add_replica(0, 1);
  manager.add_replica(1, 1);
  manager.add_replica(2, 1);
  const double after = model.stage_seconds(files, manager);
  EXPECT_LT(after, before);
  // All three replicated fetches beat even one WAN fetch.
  EXPECT_LT(after, sites[0].tier.fetch_seconds(100 * MiB));
}

}  // namespace
}  // namespace fbc
