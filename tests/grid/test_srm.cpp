// Tests for the StorageResourceManager timed service loop.
#include "grid/srm.hpp"

#include "grid/mss.hpp"

#include <gtest/gtest.h>

#include "policies/lru.hpp"

namespace fbc {
namespace {

/// Zero-latency unit-bandwidth tier: staging time == bytes.
MassStorageSystem byte_clock_mss(const FileCatalog& catalog) {
  return MassStorageSystem({StorageTier{"t", 0.0, 1.0}}, catalog);
}

TEST(Srm, SingleJobTimeline) {
  FileCatalog catalog({100, 50});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 200,
                   .transfers = TransferModel{.max_parallel = 1}};
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{
      GridJob{Request({0, 1}), /*arrival_s=*/5.0, /*service_s=*/10.0}};
  const SrmReport report = srm.run(jobs);
  ASSERT_EQ(report.outcomes.size(), 1u);
  const JobOutcome& o = report.outcomes[0];
  EXPECT_DOUBLE_EQ(o.start_s, 5.0);
  EXPECT_DOUBLE_EQ(o.staged_s, 5.0 + 150.0);  // serial staging of 150 bytes
  EXPECT_DOUBLE_EQ(o.finish_s, 165.0);
  EXPECT_EQ(o.bytes_staged, 150u);
  EXPECT_FALSE(o.request_hit);
  EXPECT_DOUBLE_EQ(report.response_s.mean(), 160.0);
}

TEST(Srm, SecondIdenticalJobIsAHit) {
  FileCatalog catalog({100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 100};
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},
                            GridJob{Request({0}), 0.0, 1.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_FALSE(report.outcomes[0].request_hit);
  EXPECT_TRUE(report.outcomes[1].request_hit);
  EXPECT_EQ(report.request_hits, 1u);
  // Job 2 queues behind job 1 (single server) and stages nothing.
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, report.outcomes[0].finish_s);
  EXPECT_DOUBLE_EQ(report.outcomes[1].finish_s,
                   report.outcomes[0].finish_s + 1.0);
}

TEST(Srm, ServerIdlesUntilArrival) {
  FileCatalog catalog({10});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 100};
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},
                            GridJob{Request({0}), 100.0, 1.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 100.0);
}

TEST(Srm, ParallelStagingShortensResponse) {
  FileCatalog catalog({100, 100, 100});
  const auto mss = byte_clock_mss(catalog);
  SrmConfig serial{.cache_bytes = 300,
                   .transfers = TransferModel{.max_parallel = 1}};
  SrmConfig parallel{.cache_bytes = 300,
                     .transfers = TransferModel{.max_parallel = 3}};
  std::vector<GridJob> jobs{GridJob{Request({0, 1, 2}), 0.0, 0.0}};
  LruPolicy p1, p2;
  const double serial_time =
      StorageResourceManager(serial, mss, p1).run(jobs).makespan_s;
  const double parallel_time =
      StorageResourceManager(parallel, mss, p2).run(jobs).makespan_s;
  EXPECT_DOUBLE_EQ(serial_time, 300.0);
  EXPECT_DOUBLE_EQ(parallel_time, 100.0);
}

TEST(Srm, EvictionKeepsCapacityInvariant) {
  FileCatalog catalog({100, 100, 100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 200};
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs;
  for (FileId i = 0; i < 4; ++i) {
    jobs.push_back(GridJob{Request({i}), 0.0, 0.0});
  }
  srm.run(jobs);
  EXPECT_LE(srm.cache().used_bytes(), srm.cache().capacity());
}

TEST(Srm, FileAtATimeStagesSerially) {
  FileCatalog catalog({100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 200,
                   .transfers = TransferModel{.max_parallel = 2}};
  StorageResourceManager srm(config, mss, policy);
  GridJob job{Request({0, 1}), 0.0, 0.0};
  job.model = ServiceModel::FileAtATime;
  const SrmReport report = srm.run(std::vector<GridJob>{job});
  // One file at a time cannot exploit the two streams: 100 + 100.
  EXPECT_DOUBLE_EQ(report.outcomes[0].staged_s, 200.0);
  EXPECT_EQ(report.outcomes[0].bytes_staged, 200u);
}

TEST(Srm, UnserviceableJobSkipped) {
  FileCatalog catalog({500});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 100};
  StorageResourceManager srm(config, mss, policy);
  const SrmReport report =
      srm.run(std::vector<GridJob>{GridJob{Request({0}), 0.0, 1.0}});
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].bytes_staged, 0u);
  EXPECT_EQ(report.response_s.count(), 0u);  // not counted as serviced
}

TEST(Srm, ThroughputComputation) {
  FileCatalog catalog({3600});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 3600};
  StorageResourceManager srm(config, mss, policy);
  const SrmReport report =
      srm.run(std::vector<GridJob>{GridJob{Request({0}), 0.0, 0.0}});
  // One job finishing at t = 3600 s -> exactly 1 job/hour.
  EXPECT_DOUBLE_EQ(report.throughput_jobs_per_hour(), 1.0);
}

TEST(SrmReport, EmptyThroughputIsZero) {
  SrmReport report;
  EXPECT_DOUBLE_EQ(report.throughput_jobs_per_hour(), 0.0);
}

}  // namespace
}  // namespace fbc
