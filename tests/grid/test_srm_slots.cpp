// Tests for the multi-slot SRM: overlapping jobs, pinned working sets and
// the feasibility wait.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/opt_file_bundle.hpp"
#include "grid/srm.hpp"

#include "grid/mss.hpp"
#include "policies/lru.hpp"

namespace fbc {
namespace {

/// Zero-latency unit-bandwidth tier: staging time == bytes.
MassStorageSystem byte_clock_mss(const FileCatalog& catalog) {
  return MassStorageSystem({StorageTier{"t", 0.0, 1.0}}, catalog);
}

TEST(SrmSlots, RejectsZeroSlots) {
  FileCatalog catalog({100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 100};
  config.service_slots = 0;
  EXPECT_THROW(StorageResourceManager(config, mss, policy),
               std::invalid_argument);
}

TEST(SrmSlots, TwoSlotsOverlapService) {
  FileCatalog catalog({100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 200};
  config.service_slots = 2;
  StorageResourceManager srm(config, mss, policy);
  // Both jobs arrive at t=0; with two slots they stage concurrently.
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 10.0},
                            GridJob{Request({1}), 0.0, 10.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_DOUBLE_EQ(report.outcomes[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(report.makespan_s, 110.0);  // not 220: overlapped
}

TEST(SrmSlots, SingleSlotStillSerializes) {
  FileCatalog catalog({100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 200};  // service_slots defaults to 1
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 10.0},
                            GridJob{Request({1}), 0.0, 10.0}};
  const SrmReport report = srm.run(jobs);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 110.0);
  EXPECT_DOUBLE_EQ(report.makespan_s, 220.0);
}

TEST(SrmSlots, InFlightWorkingSetSurvivesEviction) {
  // Slot A runs a long job over {0,1}; slot B churns through other files
  // forcing evictions. {0,1} must remain resident the whole time.
  FileCatalog catalog({100, 100, 100, 100, 100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 400};
  config.service_slots = 2;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs;
  jobs.push_back(GridJob{Request({0, 1}), 0.0, /*service_s=*/100000.0});
  for (FileId f = 2; f < 6; ++f) {
    jobs.push_back(GridJob{Request({f}), 0.0, 1.0});
  }
  // Churn again to force a second round of evictions.
  for (FileId f = 2; f < 6; ++f) {
    jobs.push_back(GridJob{Request({f}), 0.0, 1.0});
  }
  const SrmReport report = srm.run(jobs);
  EXPECT_EQ(report.outcomes.size(), 9u);
  // LRU would gladly have evicted the long job's files -- pinning saved
  // them (and the run completed without a contract violation).
  EXPECT_TRUE(srm.cache().contains(0));
  EXPECT_TRUE(srm.cache().contains(1));
}

TEST(SrmSlots, JobWaitsWhenPinsBlockItsBundle) {
  // Slot A pins 300 of 400 bytes until t=1000+; a 200-byte bundle cannot
  // start until A completes even though a slot is free.
  FileCatalog catalog({100, 100, 100, 100, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 400,
                   .transfers = TransferModel{.max_parallel = 1}};
  config.service_slots = 2;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{
      GridJob{Request({0, 1, 2}), 0.0, /*service_s=*/700.0},
      GridJob{Request({3, 4}), 0.0, /*service_s=*/1.0},
  };
  const SrmReport report = srm.run(jobs);
  // Job 1: stage 300s, service 700s -> finish 1000. Job 2 needs 200 bytes
  // alongside 300 pinned: 500 > 400, so it waits until t=1000.
  EXPECT_DOUBLE_EQ(report.outcomes[0].finish_s, 1000.0);
  EXPECT_DOUBLE_EQ(report.outcomes[1].start_s, 1000.0);
}

TEST(SrmSlots, ImpossiblePinConflictThrows) {
  // A bundle that can never fit alongside a job that never finishes within
  // the stream is detected (here: two jobs whose pins together exceed the
  // cache and no third completion to wait for -- constructed by making the
  // first job's pins alone exceed what the second can coexist with, while
  // the first is the ONLY running job and its completion resolves it; a
  // genuinely impossible case needs the bundle itself oversized, which is
  // handled by the unserviceable path instead). So: oversized bundles are
  // skipped, pin-waits always resolve.
  FileCatalog catalog({500, 100});
  const auto mss = byte_clock_mss(catalog);
  LruPolicy policy;
  SrmConfig config{.cache_bytes = 400};
  config.service_slots = 2;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs{GridJob{Request({0}), 0.0, 1.0},   // oversized
                            GridJob{Request({1}), 0.0, 1.0}};  // fine
  const SrmReport report = srm.run(jobs);
  EXPECT_EQ(report.response_s.count(), 1u);  // only job 2 serviced
}

TEST(SrmSlots, OptFileBundleWorksUnderConcurrency) {
  // OptFileBundle's reorganizing evictions must respect other slots' pins.
  FileCatalog catalog;
  for (int i = 0; i < 12; ++i) catalog.add_file(100);
  const auto mss = byte_clock_mss(catalog);
  OptFileBundlePolicy policy(catalog);
  SrmConfig config{.cache_bytes = 500};
  config.service_slots = 3;
  StorageResourceManager srm(config, mss, policy);
  std::vector<GridJob> jobs;
  for (int i = 0; i < 40; ++i) {
    const FileId a = static_cast<FileId>(i % 12);
    const FileId b = static_cast<FileId>((i * 5 + 2) % 12);
    jobs.push_back(GridJob{Request({a, b}), static_cast<double>(i) * 10.0,
                           /*service_s=*/250.0});
  }
  const SrmReport report = srm.run(jobs);  // throws on pin violations
  EXPECT_EQ(report.outcomes.size(), 40u);
  EXPECT_LE(srm.cache().used_bytes(), srm.cache().capacity());
}

}  // namespace
}  // namespace fbc
