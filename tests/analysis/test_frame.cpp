// Tests for the ResultFrame mini-dataframe.
#include "analysis/frame.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace fbc {
namespace {

ResultFrame sample_frame() {
  ResultFrame frame({"policy", "seed", "byte_miss"});
  frame.add_row({std::string("optfb"), std::int64_t{1}, 0.10});
  frame.add_row({std::string("optfb"), std::int64_t{2}, 0.20});
  frame.add_row({std::string("landlord"), std::int64_t{1}, 0.30});
  frame.add_row({std::string("landlord"), std::int64_t{2}, 0.50});
  return frame;
}

TEST(Frame, CellConversions) {
  EXPECT_EQ(cell_to_string(Cell{std::string("abc")}), "abc");
  EXPECT_EQ(cell_to_string(Cell{0.25}), "0.25");
  EXPECT_EQ(cell_to_string(Cell{std::int64_t{42}}), "42");
  EXPECT_DOUBLE_EQ(cell_to_double(Cell{0.25}), 0.25);
  EXPECT_DOUBLE_EQ(cell_to_double(Cell{std::int64_t{42}}), 42.0);
  EXPECT_THROW((void)cell_to_double(Cell{std::string("abc")}),
               std::invalid_argument);
}

TEST(Frame, ConstructionAndAccess) {
  const ResultFrame frame = sample_frame();
  EXPECT_EQ(frame.rows(), 4u);
  EXPECT_EQ(frame.cols(), 3u);
  EXPECT_EQ(frame.column_index("byte_miss"), 2u);
  EXPECT_THROW((void)frame.column_index("nope"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(cell_to_double(frame.at(1, "byte_miss")), 0.20);
  EXPECT_EQ(cell_to_string(frame.at(2, "policy")), "landlord");
}

TEST(Frame, RejectsBadShapes) {
  EXPECT_THROW(ResultFrame({}), std::invalid_argument);
  ResultFrame frame({"a", "b"});
  EXPECT_THROW(frame.add_row({Cell{1.0}}), std::invalid_argument);
}

TEST(Frame, Filter) {
  const ResultFrame optfb = sample_frame().filter("policy", "optfb");
  EXPECT_EQ(optfb.rows(), 2u);
  for (std::size_t r = 0; r < optfb.rows(); ++r) {
    EXPECT_EQ(cell_to_string(optfb.at(r, "policy")), "optfb");
  }
  EXPECT_EQ(sample_frame().filter("policy", "nothing").rows(), 0u);
}

TEST(Frame, AggregateMeanMinMaxCount) {
  const ResultFrame agg = sample_frame().aggregate(
      {"policy"}, "byte_miss", {Agg::Mean, Agg::Min, Agg::Max, Agg::Count});
  ASSERT_EQ(agg.rows(), 2u);
  // First-appearance order: optfb then landlord.
  EXPECT_EQ(cell_to_string(agg.at(0, "policy")), "optfb");
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "byte_miss_mean")), 0.15);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "byte_miss_min")), 0.10);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(1, "byte_miss_mean")), 0.40);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(1, "byte_miss_max")), 0.50);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "byte_miss_count")), 2.0);
}

TEST(Frame, AggregateByMultipleKeys) {
  ResultFrame frame({"policy", "pop", "x"});
  frame.add_row({std::string("a"), std::string("u"), 1.0});
  frame.add_row({std::string("a"), std::string("z"), 3.0});
  frame.add_row({std::string("a"), std::string("u"), 5.0});
  const ResultFrame agg = frame.aggregate({"policy", "pop"}, "x", {Agg::Mean});
  ASSERT_EQ(agg.rows(), 2u);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "x_mean")), 3.0);  // (1+5)/2
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(1, "x_mean")), 3.0);  // z group
}

TEST(Frame, AggregateValidation) {
  EXPECT_THROW((void)sample_frame().aggregate({"policy"}, "byte_miss", {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)sample_frame().aggregate({"policy"}, "policy", {Agg::Mean}),
      std::invalid_argument);  // text column is not numeric
}

TEST(Frame, AggregateQuantiles) {
  ResultFrame frame({"g", "x"});
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    frame.add_row({std::string("a"), v});
  }
  const ResultFrame agg =
      frame.aggregate({"g"}, "x", {Agg::Median, Agg::P95});
  ASSERT_EQ(agg.rows(), 1u);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "x_median")), 3.0);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "x_p95")), 4.8);
}

TEST(Frame, SortByNumericAndText) {
  ResultFrame frame = sample_frame();
  frame.sort_by("byte_miss");
  EXPECT_DOUBLE_EQ(cell_to_double(frame.at(0, "byte_miss")), 0.10);
  EXPECT_DOUBLE_EQ(cell_to_double(frame.at(3, "byte_miss")), 0.50);
  frame.sort_by("policy");
  EXPECT_EQ(cell_to_string(frame.at(0, "policy")), "landlord");
}

TEST(Frame, Printing) {
  std::ostringstream text, csv;
  sample_frame().print(text);
  sample_frame().print_csv(csv);
  EXPECT_NE(text.str().find("byte_miss"), std::string::npos);
  EXPECT_NE(text.str().find("landlord"), std::string::npos);
  EXPECT_NE(csv.str().find("policy,seed,byte_miss\n"), std::string::npos);
}

}  // namespace
}  // namespace fbc
