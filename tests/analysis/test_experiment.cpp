// Tests for the parallel experiment runner.
#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

namespace fbc {
namespace {

TEST(ExperimentGrid, CrossProduct) {
  ExperimentGrid grid;
  grid.add_factor("a", {"1", "2", "3"});
  grid.add_factor("b", {"x", "y"});
  EXPECT_EQ(grid.combinations(), 6u);
  const auto points = grid.enumerate();
  ASSERT_EQ(points.size(), 6u);
  // Last factor varies fastest.
  EXPECT_EQ(points[0].at("a"), "1");
  EXPECT_EQ(points[0].at("b"), "x");
  EXPECT_EQ(points[1].at("b"), "y");
  EXPECT_EQ(points[5].at("a"), "3");
  EXPECT_EQ(points[5].at("b"), "y");
  // All combinations distinct.
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& p : points) seen.emplace(p.at("a"), p.at("b"));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ExperimentGrid, EmptyGridIsOnePoint) {
  ExperimentGrid grid;
  EXPECT_EQ(grid.combinations(), 1u);
  EXPECT_EQ(grid.enumerate().size(), 1u);
}

TEST(ExperimentGrid, Validation) {
  ExperimentGrid grid;
  EXPECT_THROW(grid.add_factor("a", {}), std::invalid_argument);
  grid.add_factor("a", {"1"});
  EXPECT_THROW(grid.add_factor("a", {"2"}), std::invalid_argument);
}

TEST(RunExperiment, ShapeAndDeterminism) {
  ExperimentGrid grid;
  grid.add_factor("policy", {"p", "q"});
  ExperimentOptions options;
  options.repetitions = 3;
  options.master_seed = 7;
  options.threads = 2;

  auto trial = [](const ExperimentPoint& point, std::uint64_t seed) {
    const double bias = point.at("policy") == "p" ? 0.0 : 100.0;
    return Measurements{{"value", bias + static_cast<double>(seed % 10)}};
  };
  const ResultFrame a = run_experiment(grid, options, trial);
  const ResultFrame b = run_experiment(grid, options, trial);

  EXPECT_EQ(a.rows(), 6u);
  EXPECT_EQ(a.columns(),
            (std::vector<std::string>{"policy", "seed", "value"}));
  // Bit-identical across runs despite threading.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(cell_to_string(a.at(r, "policy")),
              cell_to_string(b.at(r, "policy")));
    EXPECT_DOUBLE_EQ(cell_to_double(a.at(r, "value")),
                     cell_to_double(b.at(r, "value")));
    EXPECT_EQ(cell_to_string(a.at(r, "seed")),
              cell_to_string(b.at(r, "seed")));
  }
  // Rows are combination-major: first three rows are policy p.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cell_to_string(a.at(r, "policy")), "p");
  }
}

TEST(RunExperiment, SeedsAreDistinct) {
  ExperimentGrid grid;
  grid.add_factor("f", {"a", "b"});
  ExperimentOptions options;
  options.repetitions = 4;
  const ResultFrame frame = run_experiment(
      grid, options, [](const ExperimentPoint&, std::uint64_t seed) {
        return Measurements{{"s", static_cast<double>(seed)}};
      });
  std::set<std::string> seeds;
  for (std::size_t r = 0; r < frame.rows(); ++r) {
    seeds.insert(cell_to_string(frame.at(r, "seed")));
  }
  EXPECT_EQ(seeds.size(), frame.rows());
}

TEST(RunExperiment, AggregationPipeline) {
  ExperimentGrid grid;
  grid.add_factor("policy", {"p", "q"});
  ExperimentOptions options;
  options.repetitions = 5;
  const ResultFrame frame = run_experiment(
      grid, options, [](const ExperimentPoint& point, std::uint64_t) {
        return Measurements{
            {"metric", point.at("policy") == "p" ? 1.0 : 3.0}};
      });
  const ResultFrame agg =
      frame.aggregate({"policy"}, "metric", {Agg::Mean, Agg::Count});
  ASSERT_EQ(agg.rows(), 2u);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "metric_mean")), 1.0);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(1, "metric_mean")), 3.0);
  EXPECT_DOUBLE_EQ(cell_to_double(agg.at(0, "metric_count")), 5.0);
}

TEST(RunExperiment, MultipleMeasurements) {
  ExperimentGrid grid;
  const ResultFrame frame = run_experiment(
      grid, {.repetitions = 2}, [](const ExperimentPoint&, std::uint64_t) {
        return Measurements{{"x", 1.0}, {"y", 2.0}};
      });
  EXPECT_EQ(frame.cols(), 3u);  // seed, x, y (no factors)
  EXPECT_DOUBLE_EQ(cell_to_double(frame.at(0, "y")), 2.0);
}

TEST(RunExperiment, Validation) {
  ExperimentGrid grid;
  EXPECT_THROW((void)run_experiment(grid, {.repetitions = 0},
                                    [](const ExperimentPoint&,
                                       std::uint64_t) {
                                      return Measurements{};
                                    }),
               std::invalid_argument);
}

TEST(RunExperiment, MismatchedMeasurementsRejected) {
  ExperimentGrid grid;
  grid.add_factor("f", {"a", "b"});
  std::atomic<int> calls{0};
  EXPECT_THROW(
      (void)run_experiment(grid, {.repetitions = 1},
                           [&calls](const ExperimentPoint&, std::uint64_t) {
                             const int n = calls++;
                             return n == 0 ? Measurements{{"x", 1.0}}
                                           : Measurements{{"z", 1.0}};
                           }),
      std::runtime_error);
}

TEST(RunExperiment, TrialExceptionPropagates) {
  ExperimentGrid grid;
  grid.add_factor("f", {"a"});
  EXPECT_THROW((void)run_experiment(
                   grid, {.repetitions = 1},
                   [](const ExperimentPoint&, std::uint64_t) -> Measurements {
                     throw std::runtime_error("trial failed");
                   }),
               std::runtime_error);
}

}  // namespace
}  // namespace fbc
