// RemoteShard connection-pool tests against a live loopback daemon: the
// checkout/checkin reuse path, the remote_pool_cap bound (checkins past
// the cap drop the socket instead of growing the pool without limit --
// the idle-pool leak fix), invalidate_pool() clearing poisoned sockets
// while leaving the shard usable, and wire-level acquire/release parity
// with a LocalShard.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/shard.hpp"
#include "grid/mss.hpp"
#include "service/daemon.hpp"
#include "service/server.hpp"

namespace fbc::cluster {
namespace {

using service::AcquireResult;
using service::AcquireStatus;
using service::BundleDaemon;
using service::BundleServer;
using service::ServiceConfig;

/// A real shard daemon on an ephemeral loopback port.
struct DaemonFixture {
  FileCatalog catalog;
  std::unique_ptr<MassStorageSystem> mss;
  std::unique_ptr<BundleServer> server;
  std::unique_ptr<BundleDaemon> daemon;
};

DaemonFixture make_daemon(std::size_t files) {
  DaemonFixture fixture;
  std::vector<Bytes> sizes(files, 100);
  fixture.catalog = FileCatalog(std::move(sizes));
  fixture.mss =
      std::make_unique<MassStorageSystem>(default_tiers(), fixture.catalog);
  ServiceConfig config;
  config.cache_bytes = 4000;
  config.time_scale = 0.0;
  fixture.server = std::make_unique<BundleServer>(config, *fixture.mss);
  fixture.daemon = std::make_unique<BundleDaemon>(*fixture.server, 0, 4);
  return fixture;
}

TEST(RemoteShard, AcquireReleaseRoundTripsOverTheWire) {
  DaemonFixture fixture = make_daemon(8);
  RemoteShard shard(fixture.daemon->port());
  const AcquireResult r = shard.acquire(Request({1, 2}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  EXPECT_EQ(shard.stats().active_leases, 1u);
  EXPECT_TRUE(shard.release(r.lease));
  EXPECT_EQ(shard.stats().active_leases, 0u);
  shard.close();
}

TEST(RemoteShard, SerialCallsReuseOnePooledConnection) {
  DaemonFixture fixture = make_daemon(8);
  RemoteShard shard(fixture.daemon->port());
  for (int i = 0; i < 5; ++i) (void)shard.stats();
  // One connection dialed, checked out and back five times over.
  EXPECT_EQ(shard.idle_connections(), 1u);
  EXPECT_EQ(fixture.daemon->connections_accepted(), 1u);
  shard.close();
}

TEST(RemoteShard, IdlePoolIsBoundedByCap) {
  DaemonFixture fixture = make_daemon(8);
  constexpr std::size_t kCap = 2;
  RemoteShard shard(fixture.daemon->port(), false, kCap);
  // Many concurrent callers force the pool past the cap: each one checks
  // a connection out (dialing fresh when the pool is empty) and checks
  // it back in. Whatever the interleaving, checkins past the cap must
  // drop the socket rather than grow the pool.
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shard, &ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < 20; ++i) (void)shard.stats();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(shard.idle_connections(), kCap);
  shard.close();
}

TEST(RemoteShard, InvalidatePoolDropsIdleConnectionsButShardStaysUsable) {
  DaemonFixture fixture = make_daemon(8);
  RemoteShard shard(fixture.daemon->port());
  (void)shard.stats();
  ASSERT_EQ(shard.idle_connections(), 1u);
  shard.invalidate_pool();
  EXPECT_EQ(shard.idle_connections(), 0u);
  // The next call dials a fresh socket and works.
  EXPECT_EQ(shard.stats().requests, 0u);
  EXPECT_EQ(fixture.daemon->connections_accepted(), 2u);
  shard.close();
}

TEST(RemoteShard, ThrowsNetErrorWhenDaemonIsGone) {
  std::uint16_t port;
  {
    DaemonFixture fixture = make_daemon(4);
    port = fixture.daemon->port();
    RemoteShard warm(port);
    (void)warm.stats();
  }  // daemon torn down
  RemoteShard shard(port);
  EXPECT_THROW((void)shard.stats(), service::NetError);
  EXPECT_THROW((void)shard.acquire(Request({0})), service::NetError);
}

}  // namespace
}  // namespace fbc::cluster
