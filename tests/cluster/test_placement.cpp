// Placement tests: parse/print round-trips, plan determinism, the
// file-by-file partition invariants of hash placement, the single-shard
// fast path and spill fallback of affinity placement, and ring sanity
// (every shard actually receives files).
#include "cluster/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace fbc::cluster {
namespace {

FileCatalog sized_catalog(std::size_t count, Bytes each = 100) {
  std::vector<Bytes> sizes(count, each);
  return FileCatalog(std::move(sizes));
}

ClusterConfig hash_config(std::uint32_t shards) {
  ClusterConfig config;
  config.shards = shards;
  config.placement = PlacementMode::HashFile;
  config.vnodes = 16;
  return config;
}

ClusterConfig affinity_config(std::uint32_t shards) {
  ClusterConfig config = hash_config(shards);
  config.placement = PlacementMode::BundleAffinity;
  return config;
}

TEST(PlacementMode, ParseAndPrint) {
  EXPECT_EQ(parse_placement("hash"), PlacementMode::HashFile);
  EXPECT_EQ(parse_placement("affinity"), PlacementMode::BundleAffinity);
  EXPECT_THROW((void)parse_placement("random"), std::invalid_argument);
  EXPECT_STREQ(to_string(PlacementMode::HashFile), "hash");
  EXPECT_STREQ(to_string(PlacementMode::BundleAffinity), "affinity");
}

TEST(Placement, RejectsDegenerateConfig) {
  FileCatalog catalog = sized_catalog(4);
  ClusterConfig config = hash_config(0);
  EXPECT_THROW((Placement{config, catalog, 1000}), std::invalid_argument);
  config.shards = 2;
  config.vnodes = 0;
  EXPECT_THROW((Placement{config, catalog, 1000}), std::invalid_argument);
}

TEST(Placement, PlanIsDeterministicAcrossInstances) {
  FileCatalog catalog = sized_catalog(32);
  for (const ClusterConfig& config : {hash_config(4), affinity_config(4)}) {
    Placement a(config, catalog, 1000);
    Placement b(config, catalog, 1000);
    for (FileId id = 0; id < 32; ++id)
      EXPECT_EQ(a.file_shard(id), b.file_shard(id));
    const Request request({1, 5, 9, 20, 31});
    const PlacementPlan pa = a.plan(request);
    const PlacementPlan pb = b.plan(request);
    ASSERT_EQ(pa.parts.size(), pb.parts.size());
    for (std::size_t i = 0; i < pa.parts.size(); ++i) {
      EXPECT_EQ(pa.parts[i].shard, pb.parts[i].shard);
      EXPECT_EQ(pa.parts[i].request.files, pb.parts[i].request.files);
    }
  }
}

TEST(Placement, HashPlanPartitionsTheBundle) {
  FileCatalog catalog = sized_catalog(64);
  Placement placement(hash_config(4), catalog, 1000);
  Request request({0, 3, 7, 11, 23, 42, 63});
  const PlacementPlan plan = placement.plan(request);

  // Parts are in strictly increasing shard order and each file sits on
  // its ring home; the union is exactly the bundle.
  std::vector<FileId> covered;
  std::uint32_t last_shard = 0;
  bool first = true;
  for (const SubRequest& part : plan.parts) {
    if (!first) EXPECT_GT(part.shard, last_shard);
    first = false;
    last_shard = part.shard;
    EXPECT_LT(part.shard, 4u);
    EXPECT_FALSE(part.request.files.empty());
    for (FileId id : part.request.files) {
      EXPECT_EQ(placement.file_shard(id), part.shard);
      covered.push_back(id);
    }
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, request.files);
}

TEST(Placement, HashRingUsesEveryShard) {
  FileCatalog catalog = sized_catalog(512);
  Placement placement(hash_config(4), catalog, 1000);
  std::set<std::uint32_t> used;
  for (FileId id = 0; id < 512; ++id) used.insert(placement.file_shard(id));
  EXPECT_EQ(used.size(), 4u);
}

TEST(Placement, AffinitySmallBundleIsSingleShard) {
  FileCatalog catalog = sized_catalog(32);
  ClusterConfig config = affinity_config(4);
  config.spill_threshold = 0.5;
  // 3 files x 100 B = 300 <= 0.5 * 1000: stays whole.
  Placement placement(config, catalog, 1000);
  const Request request({2, 9, 17});
  const PlacementPlan plan = placement.plan(request);
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_FALSE(plan.split());
  EXPECT_EQ(plan.parts.front().shard, placement.bundle_home(request));
  EXPECT_EQ(plan.parts.front().request.files, request.files);
}

TEST(Placement, AffinityCoLocatesIdenticalBundles) {
  FileCatalog catalog = sized_catalog(32);
  Placement placement(affinity_config(4), catalog, 100000);
  const Request a({2, 9, 17});
  const Request b({2, 9, 17});
  EXPECT_EQ(placement.bundle_home(a), placement.bundle_home(b));
}

TEST(Placement, AffinitySpillsOversizedBundleToHashPartition) {
  FileCatalog catalog = sized_catalog(32);
  ClusterConfig config = affinity_config(4);
  config.spill_threshold = 0.5;
  // 6 files x 100 B = 600 > 0.5 * 1000: scatters like hash placement.
  Placement affinity(config, catalog, 1000);
  Placement hash(hash_config(4), catalog, 1000);
  const Request request({0, 5, 10, 15, 20, 25});
  const PlacementPlan spilled = affinity.plan(request);
  const PlacementPlan partitioned = hash.plan(request);
  ASSERT_EQ(spilled.parts.size(), partitioned.parts.size());
  for (std::size_t i = 0; i < spilled.parts.size(); ++i) {
    EXPECT_EQ(spilled.parts[i].shard, partitioned.parts[i].shard);
    EXPECT_EQ(spilled.parts[i].request.files,
              partitioned.parts[i].request.files);
  }
}

TEST(Placement, SingleShardClusterNeverScatters) {
  FileCatalog catalog = sized_catalog(16);
  for (const ClusterConfig& base : {hash_config(1), affinity_config(1)}) {
    ClusterConfig config = base;
    config.spill_threshold = 0.01;  // would spill on any bigger cluster
    Placement placement(config, catalog, 1000);
    const Request request({0, 4, 8, 12});
    const PlacementPlan plan = placement.plan(request);
    ASSERT_EQ(plan.parts.size(), 1u);
    EXPECT_EQ(plan.parts.front().shard, 0u);
    EXPECT_EQ(plan.parts.front().request.files, request.files);
  }
}

}  // namespace
}  // namespace fbc::cluster
