// Shard-failure tests for the ClusterRouter: the down/recover state
// machine (K consecutive NetErrors mark a shard down, a probe brings it
// back), degraded placement (requests re-route to live shards, affinity
// falls back to its hash partition), the scatter-release fix (one dead
// shard no longer strands the other parts), deferred releases flushing
// on recovery, stats/metrics surviving a dead shard, and the
// FaultInjectionShard test double itself.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "grid/mss.hpp"
#include "service/net.hpp"
#include "service/server.hpp"

namespace fbc::cluster {
namespace {

using service::AcquireResult;
using service::AcquireStatus;
using service::BundleServer;
using service::ServiceConfig;

/// A router over N real in-process shards, each behind a kill/revive
/// wrapper; all state owned here.
struct FaultyCluster {
  FileCatalog catalog;
  std::unique_ptr<MassStorageSystem> mss;
  std::vector<std::unique_ptr<BundleServer>> servers;
  std::vector<FaultInjectionShard*> faulty;  ///< aliases, router owns
  std::unique_ptr<ClusterRouter> router;

  BundleServer& server(std::size_t i) { return *servers[i]; }
  void kill(std::size_t i) { faulty[i]->kill(); }
  void revive(std::size_t i) { faulty[i]->revive(); }
};

FaultyCluster make_cluster(const ClusterConfig& config, std::size_t files,
                           const ServiceConfig& service_base) {
  FaultyCluster cluster;
  std::vector<Bytes> sizes(files, 100);
  cluster.catalog = FileCatalog(std::move(sizes));
  cluster.mss =
      std::make_unique<MassStorageSystem>(default_tiers(), cluster.catalog);
  std::vector<std::unique_ptr<Shard>> shards;
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    ServiceConfig service = service_base;
    service.shard_id = s;
    cluster.servers.push_back(
        std::make_unique<BundleServer>(service, *cluster.mss));
    shards.push_back(std::make_unique<FaultInjectionShard>(
        std::make_unique<LocalShard>(*cluster.servers.back())));
    cluster.faulty.push_back(
        static_cast<FaultInjectionShard*>(shards.back().get()));
  }
  cluster.router = std::make_unique<ClusterRouter>(
      config, cluster.catalog, service_base.cache_bytes, std::move(shards));
  return cluster;
}

ServiceConfig small_service() {
  ServiceConfig config;
  config.cache_bytes = 2000;
  config.time_scale = 0.0;
  return config;
}

/// down_threshold = 1 and a probe interval far past any test's runtime:
/// one NetError marks the shard down and it stays planned-around until
/// an explicit probe() -- no wall-clock dependence in assertions.
ClusterConfig faulty_config(std::uint32_t shards, PlacementMode placement) {
  ClusterConfig config;
  config.shards = shards;
  config.placement = placement;
  config.vnodes = 16;
  config.down_threshold = 1;
  config.probe_ms = 3'600'000;
  return config;
}

/// First file the placement maps to `shard`.
FileId file_on_shard(const Placement& placement, std::uint32_t shard,
                     std::size_t files) {
  for (FileId id = 0; id < files; ++id)
    if (placement.file_shard(id) == shard) return id;
  ADD_FAILURE() << "no file maps to shard " << shard;
  return 0;
}

std::uint64_t counter(const service::MetricsSnapshot& metrics,
                      const std::string& name) {
  for (const auto& [counter_name, value] : metrics.counters)
    if (counter_name == name) return value;
  return 0;
}

TEST(FaultInjectionShard, KillMakesEveryCallThrowUntilRevive) {
  ServiceConfig service = small_service();
  FileCatalog catalog(std::vector<Bytes>{100, 100});
  MassStorageSystem mss(default_tiers(), catalog);
  BundleServer server(service, mss);
  FaultInjectionShard shard(std::make_unique<LocalShard>(server));

  EXPECT_FALSE(shard.killed());
  const AcquireResult before = shard.acquire(Request({0}));
  EXPECT_EQ(before.status, AcquireStatus::Ok);

  shard.kill();
  EXPECT_TRUE(shard.killed());
  EXPECT_THROW((void)shard.acquire(Request({1})), service::NetError);
  EXPECT_THROW((void)shard.release(before.lease), service::NetError);
  EXPECT_THROW((void)shard.stats(), service::NetError);
  EXPECT_THROW((void)shard.metrics(), service::NetError);

  shard.revive();
  EXPECT_FALSE(shard.killed());
  EXPECT_TRUE(shard.release(before.lease));
  EXPECT_EQ(shard.stats().requests, 1u);
}

TEST(Failover, ConsecutiveNetErrorsMarkShardDownThenProbeRecovers) {
  ClusterConfig config = faulty_config(3, PlacementMode::HashFile);
  config.down_threshold = 3;
  FaultyCluster cluster = make_cluster(config, 48, small_service());
  cluster.kill(1);

  const FileId victim = file_on_shard(cluster.router->placement(), 1, 48);
  // Each acquire attempts the healthy-looking shard 1, eats the
  // NetError, and reroutes; the third failure crosses the threshold.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(cluster.router->shard_down(1));
    const AcquireResult r = cluster.router->acquire(Request({victim}));
    EXPECT_EQ(r.status, AcquireStatus::Ok);
    EXPECT_TRUE(cluster.router->release(r.lease));
  }
  EXPECT_TRUE(cluster.router->shard_down(1));
  EXPECT_EQ(cluster.router->down_count(), 1u);
  EXPECT_EQ(cluster.router->info().shards_down, 1u);

  // Probing while still dead keeps it down; after revive it comes back.
  EXPECT_FALSE(cluster.router->probe(1));
  EXPECT_TRUE(cluster.router->shard_down(1));
  cluster.revive(1);
  EXPECT_TRUE(cluster.router->probe(1));
  EXPECT_FALSE(cluster.router->shard_down(1));
  EXPECT_EQ(cluster.router->down_count(), 0u);

  const service::MetricsSnapshot metrics = cluster.router->metrics();
  EXPECT_EQ(counter(metrics, "grid.shard.down"), 1u);
  EXPECT_EQ(counter(metrics, "grid.shard.recovered"), 1u);
  EXPECT_GE(counter(metrics, "grid.acquire.rerouted"), 3u);
}

TEST(Failover, AcquireReroutesAroundDeadShardAndCountsIt) {
  FaultyCluster cluster = make_cluster(
      faulty_config(3, PlacementMode::HashFile), 48, small_service());
  const FileId victim = file_on_shard(cluster.router->placement(), 2, 48);
  cluster.kill(2);

  const AcquireResult r = cluster.router->acquire(Request({victim}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  // The file is resident on some *live* shard now, not on the dead home.
  EXPECT_EQ(cluster.server(2).stats().requests, 0u);
  EXPECT_EQ(cluster.server(0).stats().requests +
                cluster.server(1).stats().requests,
            1u);
  EXPECT_GE(counter(cluster.router->metrics(), "grid.acquire.rerouted"), 1u);
  EXPECT_TRUE(cluster.router->release(r.lease));

  // Once marked down (threshold 1), later acquires plan around the dead
  // shard up front -- no second NetError round trip.
  EXPECT_TRUE(cluster.router->shard_down(2));
  const AcquireResult again = cluster.router->acquire(Request({victim}));
  ASSERT_EQ(again.status, AcquireStatus::Ok);
  EXPECT_TRUE(cluster.router->release(again.lease));
}

TEST(Failover, AffinityHomeDownFallsBackToHashPartition) {
  ClusterConfig config = faulty_config(3, PlacementMode::BundleAffinity);
  FaultyCluster cluster = make_cluster(config, 48, small_service());
  // Find a bundle homed on shard 0 under affinity.
  Request probe_request({0, 1});
  const PlacementPlan before = cluster.router->placement().plan(probe_request);
  ASSERT_EQ(before.parts.size(), 1u);
  const std::uint32_t home = before.parts[0].shard;

  cluster.kill(home);
  const AcquireResult r = cluster.router->acquire(probe_request);
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  EXPECT_EQ(cluster.server(home).stats().requests, 0u);
  EXPECT_GE(counter(cluster.router->metrics(), "grid.acquire.rerouted"), 1u);
  EXPECT_TRUE(cluster.router->release(r.lease));
}

TEST(Failover, AllShardsDownReturnsShardsDownStatus) {
  FaultyCluster cluster = make_cluster(
      faulty_config(2, PlacementMode::HashFile), 16, small_service());
  cluster.kill(0);
  cluster.kill(1);
  const AcquireResult r = cluster.router->acquire(Request({3}));
  EXPECT_EQ(r.status, AcquireStatus::ShardsDown);
  EXPECT_EQ(counter(cluster.router->metrics(), "grid.acquire.no_shard"), 1u);
  // Both shards are marked down after their first failed attempt.
  EXPECT_EQ(cluster.router->down_count(), 2u);
}

TEST(Failover, ScatterReleaseSurvivesDeadShardAndReleasesLiveParts) {
  // Regression for the scatter-release leak: release() used to erase the
  // scatter entry, then die on the first NetError -- every later part
  // stayed pinned forever with no record of it. Now all parts are
  // walked, live parts are released, and the dead shard's part is
  // deferred until recovery.
  FaultyCluster cluster = make_cluster(
      faulty_config(4, PlacementMode::HashFile), 64, small_service());
  const Placement& placement = cluster.router->placement();
  const Request bundle({file_on_shard(placement, 0, 64),
                        file_on_shard(placement, 1, 64),
                        file_on_shard(placement, 2, 64),
                        file_on_shard(placement, 3, 64)});
  const AcquireResult r = cluster.router->acquire(bundle);
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  ASSERT_EQ(cluster.router->scatter_leases(), 1u);
  for (std::size_t s = 0; s < 4; ++s)
    ASSERT_EQ(cluster.server(s).stats().active_leases, 1u);

  cluster.kill(2);
  EXPECT_TRUE(cluster.router->release(r.lease));
  EXPECT_EQ(cluster.router->scatter_leases(), 0u);
  // Every live part came home; only the dead shard's part is parked.
  EXPECT_EQ(cluster.server(0).stats().active_leases, 0u);
  EXPECT_EQ(cluster.server(1).stats().active_leases, 0u);
  EXPECT_EQ(cluster.server(3).stats().active_leases, 0u);
  EXPECT_EQ(cluster.router->pending_releases(), 1u);
  const service::MetricsSnapshot metrics = cluster.router->metrics();
  EXPECT_EQ(counter(metrics, "grid.release.partial"), 1u);
  EXPECT_EQ(counter(metrics, "grid.release.deferred"), 1u);

  // Recovery flushes the deferred part; nothing stays pinned anywhere.
  cluster.revive(2);
  EXPECT_TRUE(cluster.router->probe(2));
  EXPECT_EQ(cluster.router->pending_releases(), 0u);
  EXPECT_EQ(cluster.server(2).stats().active_leases, 0u);
  for (std::size_t s = 0; s < 4; ++s)
    EXPECT_TRUE(cluster.server(s).audit().empty());
}

TEST(Failover, SingleShardReleaseIsDeferredAndFlushedOnRecovery) {
  FaultyCluster cluster = make_cluster(
      faulty_config(3, PlacementMode::HashFile), 48, small_service());
  const FileId victim = file_on_shard(cluster.router->placement(), 1, 48);
  const AcquireResult r = cluster.router->acquire(Request({victim}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);

  cluster.kill(1);
  // The release is accepted (deferred), not reported as unknown.
  EXPECT_TRUE(cluster.router->release(r.lease));
  EXPECT_EQ(cluster.router->pending_releases(), 1u);
  EXPECT_EQ(cluster.server(1).stats().active_leases, 1u);

  cluster.revive(1);
  EXPECT_TRUE(cluster.router->probe(1));
  EXPECT_EQ(cluster.router->pending_releases(), 0u);
  EXPECT_EQ(cluster.server(1).stats().active_leases, 0u);
  EXPECT_TRUE(cluster.server(1).audit().empty());
}

TEST(Failover, StatsAndMetricsSkipDeadShardInsteadOfThrowing) {
  // Regression: one dead shard used to take the whole cluster snapshot
  // down with it (fbcctl stats --watch died mid-restart).
  FaultyCluster cluster = make_cluster(
      faulty_config(3, PlacementMode::HashFile), 48, small_service());
  const AcquireResult r = cluster.router->acquire(Request({0, 1, 2, 3}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);

  cluster.kill(1);
  service::ServiceStats stats{};
  EXPECT_NO_THROW(stats = cluster.router->stats());
  service::MetricsSnapshot metrics{};
  EXPECT_NO_THROW(metrics = cluster.router->metrics());
  // The skip is flagged, not silent.
  EXPECT_GE(counter(cluster.router->metrics(), "grid.stats.partial"), 2u);
  // Live shards still report: the cluster capacity covers two of three.
  EXPECT_EQ(stats.capacity_bytes, 2u * 2000u);

  cluster.revive(1);
  EXPECT_TRUE(cluster.router->probe(1));
  EXPECT_EQ(cluster.router->stats().capacity_bytes, 3u * 2000u);
  EXPECT_TRUE(cluster.router->release(r.lease));
}

TEST(Failover, RecoveredShardServesAgainWithoutRerouting) {
  FaultyCluster cluster = make_cluster(
      faulty_config(3, PlacementMode::HashFile), 48, small_service());
  const FileId victim = file_on_shard(cluster.router->placement(), 0, 48);
  cluster.kill(0);
  const AcquireResult while_down = cluster.router->acquire(Request({victim}));
  ASSERT_EQ(while_down.status, AcquireStatus::Ok);
  EXPECT_TRUE(cluster.router->release(while_down.lease));
  ASSERT_TRUE(cluster.router->shard_down(0));

  cluster.revive(0);
  EXPECT_TRUE(cluster.router->probe(0));
  const std::uint64_t rerouted_before =
      counter(cluster.router->metrics(), "grid.acquire.rerouted");
  const AcquireResult after = cluster.router->acquire(Request({victim}));
  ASSERT_EQ(after.status, AcquireStatus::Ok);
  // Home shard takes the request again; the reroute counter is flat.
  EXPECT_GE(cluster.server(0).stats().requests, 1u);
  EXPECT_EQ(counter(cluster.router->metrics(), "grid.acquire.rerouted"),
            rerouted_before);
  EXPECT_TRUE(cluster.router->release(after.lease));
}

}  // namespace
}  // namespace fbc::cluster
