// ClusterRouter tests: construction validation, single-shard lease
// tagging, scatter/gather lease conjunction, the partial-grant rollback
// regression (one shard QueueFull => no shard left pinned), release of
// unknown leases, merged stats/metrics, close semantics, and a
// concurrent scatter/gather stress run with live per-shard audit threads.
#include "cluster/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/shard.hpp"
#include "grid/mss.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

namespace fbc::cluster {
namespace {

using service::AcquireResult;
using service::AcquireStatus;
using service::BundleServer;
using service::ServiceConfig;

constexpr int kShardShift = 56;

/// A router over N real in-process shards, all state owned here.
struct Cluster {
  FileCatalog catalog;
  std::unique_ptr<MassStorageSystem> mss;
  std::vector<std::unique_ptr<BundleServer>> servers;
  std::unique_ptr<ClusterRouter> router;

  BundleServer& server(std::size_t i) { return *servers[i]; }
};

Cluster make_cluster(const ClusterConfig& config, std::size_t files,
                     const ServiceConfig& service_base) {
  Cluster cluster;
  std::vector<Bytes> sizes(files, 100);
  cluster.catalog = FileCatalog(std::move(sizes));
  cluster.mss =
      std::make_unique<MassStorageSystem>(default_tiers(), cluster.catalog);
  std::vector<std::unique_ptr<Shard>> shards;
  for (std::uint32_t s = 0; s < config.shards; ++s) {
    ServiceConfig service = service_base;
    service.shard_id = s;
    cluster.servers.push_back(
        std::make_unique<BundleServer>(service, *cluster.mss));
    shards.push_back(std::make_unique<LocalShard>(*cluster.servers.back()));
  }
  cluster.router = std::make_unique<ClusterRouter>(
      config, cluster.catalog, service_base.cache_bytes, std::move(shards));
  return cluster;
}

ServiceConfig small_service() {
  ServiceConfig config;
  config.cache_bytes = 2000;
  config.time_scale = 0.0;
  return config;
}

ClusterConfig hash_cluster(std::uint32_t shards) {
  ClusterConfig config;
  config.shards = shards;
  config.placement = PlacementMode::HashFile;
  config.vnodes = 16;
  return config;
}

/// First file the placement maps to `shard` (the catalogs here are large
/// enough that every shard owns at least one file).
FileId file_on_shard(const Placement& placement, std::uint32_t shard,
                     std::size_t files) {
  for (FileId id = 0; id < files; ++id)
    if (placement.file_shard(id) == shard) return id;
  ADD_FAILURE() << "no file maps to shard " << shard;
  return 0;
}

/// Two files guaranteed to live on different shards.
Request cross_shard_request(const Placement& placement, std::size_t files) {
  const FileId a = file_on_shard(placement, 0, files);
  for (FileId id = 0; id < files; ++id)
    if (placement.file_shard(id) != 0) return Request({a, id});
  ADD_FAILURE() << "all files map to shard 0";
  return Request({a});
}

std::uint64_t counter_value(const service::MetricsSnapshot& metrics,
                            const std::string& name) {
  for (const auto& [counter, value] : metrics.counters)
    if (counter == name) return value;
  return 0;
}

TEST(ClusterRouter, RejectsMismatchedShardVector) {
  Cluster cluster = make_cluster(hash_cluster(2), 16, small_service());
  ClusterConfig config = hash_cluster(3);  // says 3, but only 2 shards given
  std::vector<std::unique_ptr<Shard>> shards;
  shards.push_back(std::make_unique<LocalShard>(cluster.server(0)));
  shards.push_back(std::make_unique<LocalShard>(cluster.server(1)));
  EXPECT_THROW((ClusterRouter{config, cluster.catalog, 2000,
                              std::move(shards)}),
               std::invalid_argument);
}

TEST(ClusterRouter, SingleShardLeaseCarriesShardTag) {
  ClusterConfig config;
  config.shards = 4;
  config.placement = PlacementMode::BundleAffinity;
  config.vnodes = 16;
  Cluster cluster = make_cluster(config, 32, small_service());

  const Request request({1, 2});
  const std::uint32_t home = cluster.router->placement().bundle_home(request);
  const AcquireResult result = cluster.router->acquire(request);
  ASSERT_EQ(result.status, AcquireStatus::Ok);
  EXPECT_EQ(result.lease >> kShardShift, home + 1);
  // The grant landed on the home shard and nowhere else.
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(cluster.server(s).stats().active_leases, s == home ? 1u : 0u);
  EXPECT_EQ(cluster.router->scatter_leases(), 0u);  // stateless fast path

  EXPECT_TRUE(cluster.router->release(result.lease));
  EXPECT_FALSE(cluster.router->release(result.lease));  // double release
  EXPECT_EQ(cluster.server(home).stats().active_leases, 0u);
}

TEST(ClusterRouter, ScatterGathersAcrossShards) {
  Cluster cluster = make_cluster(hash_cluster(4), 64, small_service());
  const Request request =
      cross_shard_request(cluster.router->placement(), 64);

  const AcquireResult result = cluster.router->acquire(request);
  ASSERT_EQ(result.status, AcquireStatus::Ok);
  EXPECT_EQ(result.lease >> kShardShift, 0u);  // scatter tag
  EXPECT_EQ(cluster.router->scatter_leases(), 1u);

  const service::MetricsSnapshot metrics = cluster.router->metrics();
  EXPECT_EQ(counter_value(metrics, "grid.acquire.scatter"), 1u);
  EXPECT_EQ(counter_value(metrics, "grid.acquire.single"), 0u);
  // Each touched shard granted one sub-lease.
  EXPECT_EQ(cluster.router->stats().leases_granted, 2u);

  EXPECT_TRUE(cluster.router->release(result.lease));
  EXPECT_EQ(cluster.router->scatter_leases(), 0u);
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(cluster.server(s).stats().active_leases, 0u);
  EXPECT_FALSE(cluster.router->release(result.lease));  // id was retired
  EXPECT_GE(counter_value(cluster.router->metrics(), "grid.release.unknown"),
            1u);
}

TEST(ClusterRouter, ScatterHitIsConjunctionOfSliceHits) {
  Cluster cluster = make_cluster(hash_cluster(4), 64, small_service());
  const Request request =
      cross_shard_request(cluster.router->placement(), 64);
  const AcquireResult miss = cluster.router->acquire(request);
  ASSERT_EQ(miss.status, AcquireStatus::Ok);
  EXPECT_FALSE(miss.request_hit);
  const AcquireResult hit = cluster.router->acquire(request);
  ASSERT_EQ(hit.status, AcquireStatus::Ok);
  EXPECT_TRUE(hit.request_hit);  // every slice resident now
  EXPECT_TRUE(cluster.router->release(miss.lease));
  EXPECT_TRUE(cluster.router->release(hit.lease));
}

TEST(ClusterRouter, PartialGrantRollsBackEveryPinnedShard) {
  // The ISSUE regression: a scatter acquire whose second shard refuses
  // (QueueFull) must release the first shard's sub-lease -- no shard may
  // be left pinned by a failed cluster grant.
  ServiceConfig service = small_service();
  service.max_queue = 1;
  Cluster cluster = make_cluster(hash_cluster(2), 64, service);
  const Placement& placement = cluster.router->placement();
  const Request request = cross_shard_request(placement, 64);
  // Canonicalization may reorder the files; block the non-first shard so
  // the scatter's *first* sub-acquire succeeds and the second bounces.
  const std::uint32_t blocked =
      std::max(placement.file_shard(request.files[0]),
               placement.file_shard(request.files[1]));

  // Fill the blocked shard's only queue slot with a paused single-file
  // acquire so the scatter's sub-acquire bounces with QueueFull.
  cluster.server(blocked).set_admission_paused(true);
  const FileId filler = file_on_shard(placement, blocked, 64);
  std::atomic<bool> filler_done{false};
  AcquireResult filler_result;
  std::thread filler_thread([&] {
    filler_result = cluster.server(blocked).acquire(Request({filler}));
    filler_done.store(true);
  });
  for (int i = 0; i < 2000 && cluster.server(blocked).stats().queue_depth < 1;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(cluster.server(blocked).stats().queue_depth, 1u);

  const AcquireResult result = cluster.router->acquire(request);
  EXPECT_EQ(result.status, AcquireStatus::QueueFull);
  EXPECT_EQ(result.lease, 0u);
  EXPECT_FALSE(result.request_hit);

  // Nothing stays pinned anywhere and the router kept no scatter state.
  EXPECT_EQ(cluster.router->scatter_leases(), 0u);
  for (std::uint32_t s = 0; s < 2; ++s) {
    const service::ServiceStats stats = cluster.server(s).stats();
    EXPECT_EQ(stats.active_leases, 0u) << "shard " << s << " left pinned";
    EXPECT_EQ(stats.leases_granted, stats.leases_released)
        << "shard " << s << " grant/release imbalance";
  }
  EXPECT_EQ(counter_value(cluster.router->metrics(), "grid.acquire.rollback"),
            1u);

  cluster.server(blocked).set_admission_paused(false);
  filler_thread.join();
  ASSERT_TRUE(filler_done.load());
  if (filler_result.status == AcquireStatus::Ok)
    cluster.server(blocked).release(filler_result.lease);
  for (std::uint32_t s = 0; s < 2; ++s)
    EXPECT_TRUE(cluster.server(s).audit().empty());
}

TEST(ClusterRouter, ReleaseRejectsForeignLeases) {
  Cluster cluster = make_cluster(hash_cluster(2), 16, small_service());
  // Scatter tag with an id the router never issued.
  EXPECT_FALSE(cluster.router->release(12345));
  // Single-shard tag pointing past the last shard.
  EXPECT_FALSE(cluster.router->release((LeaseId{9} << kShardShift) | 1));
  EXPECT_EQ(counter_value(cluster.router->metrics(), "grid.release.unknown"),
            2u);
}

TEST(ClusterRouter, EmptyRequestIsInvalid) {
  Cluster cluster = make_cluster(hash_cluster(2), 16, small_service());
  const AcquireResult result =
      cluster.router->acquire(Request(std::vector<FileId>{}));
  EXPECT_EQ(result.status, AcquireStatus::InvalidRequest);
  EXPECT_EQ(result.lease, 0u);
}

TEST(ClusterRouter, StatsSumShardsAndCapacity) {
  Cluster cluster = make_cluster(hash_cluster(2), 64, small_service());
  const Request request =
      cross_shard_request(cluster.router->placement(), 64);
  const AcquireResult result = cluster.router->acquire(request);
  ASSERT_EQ(result.status, AcquireStatus::Ok);
  const service::ServiceStats merged = cluster.router->stats();
  EXPECT_EQ(merged.capacity_bytes, 2u * 2000u);
  EXPECT_EQ(merged.requests, cluster.server(0).stats().requests +
                                 cluster.server(1).stats().requests);
  EXPECT_EQ(merged.active_leases, 2u);  // one sub-lease per touched shard
  EXPECT_TRUE(cluster.router->release(result.lease));
}

TEST(ClusterRouter, CloseFailsFutureAcquires) {
  Cluster cluster = make_cluster(hash_cluster(2), 16, small_service());
  cluster.router->close();
  const AcquireResult result = cluster.router->acquire(Request({1}));
  EXPECT_EQ(result.status, AcquireStatus::Closed);
}

TEST(ClusterRouter, InfoReportsRouterRole) {
  Cluster cluster = make_cluster(hash_cluster(3), 16, small_service());
  const service::EndpointInfo info = cluster.router->info();
  EXPECT_EQ(info.role, service::EndpointRole::Router);
  EXPECT_EQ(info.shard_count, 3u);
  EXPECT_FALSE(cluster.router->legacy_wire());
}

TEST(ClusterRouter, ConcurrentScatterGatherStressWithLiveAudits) {
  // 8 workers hammer a 4-shard hash cluster with random cross-shard
  // bundles while one audit thread per shard re-checks the lease/cache
  // invariants mid-flight. Everything must drain clean: no audit
  // violation (live or final), no leaked scatter lease, no stuck pin.
  ServiceConfig service = small_service();
  service.cache_bytes = 4000;
  Cluster cluster = make_cluster(hash_cluster(4), 64, service);

  std::atomic<bool> stop{false};
  std::atomic<int> live_violations{0};
  std::vector<std::thread> auditors;
  for (std::uint32_t s = 0; s < 4; ++s) {
    auditors.emplace_back([&cluster, &stop, &live_violations, s] {
      while (!stop.load()) {
        if (!cluster.server(s).audit().empty()) live_violations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  std::atomic<int> failed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&cluster, &failed, w] {
      Rng rng(0x57a4e55ULL + static_cast<std::uint64_t>(w));
      std::vector<service::LeaseId> held;
      for (int iter = 0; iter < 200; ++iter) {
        const std::size_t picks = 1 + rng.index(4);
        std::vector<FileId> files;
        for (std::size_t p = 0; p < picks; ++p)
          files.push_back(static_cast<FileId>(rng.index(64)));
        const AcquireResult result =
            cluster.router->acquire(Request(std::move(files)));
        if (result.status == AcquireStatus::Ok) {
          held.push_back(result.lease);
        } else if (result.status != AcquireStatus::QueueFull &&
                   result.status != AcquireStatus::TimedOut) {
          failed.fetch_add(1);
        }
        // Keep at most two leases pinned so the cluster never wedges.
        while (held.size() > 2) {
          if (!cluster.router->release(held.front())) failed.fetch_add(1);
          held.erase(held.begin());
        }
      }
      for (service::LeaseId lease : held)
        if (!cluster.router->release(lease)) failed.fetch_add(1);
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true);
  for (std::thread& t : auditors) t.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(live_violations.load(), 0);
  EXPECT_EQ(cluster.router->scatter_leases(), 0u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(cluster.server(s).audit().empty()) << "shard " << s;
    EXPECT_EQ(cluster.server(s).stats().active_leases, 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace fbc::cluster
