// merge_stats / merge_metrics tests: field-wise sums, name-wise counter
// addition with sorted output, and exact histogram merges -- the merged
// snapshot must equal what one server seeing both streams would record.
#include "cluster/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/histogram.hpp"

namespace fbc::cluster {
namespace {

service::ServiceStats sample_stats(std::uint64_t base) {
  service::ServiceStats stats;
  stats.requests = base + 1;
  stats.request_hits = base + 2;
  stats.rejected_full = base + 3;
  stats.timed_out = base + 4;
  stats.unserviceable = base + 5;
  stats.invalid = base + 6;
  stats.transfer_retries = base + 7;
  stats.transfer_failures = base + 8;
  stats.leases_granted = base + 9;
  stats.leases_released = base + 10;
  stats.active_leases = base + 11;
  stats.queue_depth = base + 12;
  stats.evictions = base + 13;
  stats.bytes_requested = base + 14;
  stats.bytes_missed = base + 15;
  stats.bytes_evicted = base + 16;
  stats.used_bytes = base + 17;
  stats.capacity_bytes = base + 18;
  stats.resident_files = base + 19;
  return stats;
}

TEST(MergeStats, SumsEveryField) {
  const std::vector<service::ServiceStats> shards = {sample_stats(0),
                                                     sample_stats(100)};
  const service::ServiceStats merged = merge_stats(shards);
  const service::ServiceStats expected = sample_stats(0);
  EXPECT_EQ(merged.requests, expected.requests + 101);
  EXPECT_EQ(merged.request_hits, expected.request_hits + 102);
  EXPECT_EQ(merged.rejected_full, expected.rejected_full + 103);
  EXPECT_EQ(merged.timed_out, expected.timed_out + 104);
  EXPECT_EQ(merged.unserviceable, expected.unserviceable + 105);
  EXPECT_EQ(merged.invalid, expected.invalid + 106);
  EXPECT_EQ(merged.transfer_retries, expected.transfer_retries + 107);
  EXPECT_EQ(merged.transfer_failures, expected.transfer_failures + 108);
  EXPECT_EQ(merged.leases_granted, expected.leases_granted + 109);
  EXPECT_EQ(merged.leases_released, expected.leases_released + 110);
  EXPECT_EQ(merged.active_leases, expected.active_leases + 111);
  EXPECT_EQ(merged.queue_depth, expected.queue_depth + 112);
  EXPECT_EQ(merged.evictions, expected.evictions + 113);
  EXPECT_EQ(merged.bytes_requested, expected.bytes_requested + 114);
  EXPECT_EQ(merged.bytes_missed, expected.bytes_missed + 115);
  EXPECT_EQ(merged.bytes_evicted, expected.bytes_evicted + 116);
  EXPECT_EQ(merged.used_bytes, expected.used_bytes + 117);
  EXPECT_EQ(merged.capacity_bytes, expected.capacity_bytes + 118);
  EXPECT_EQ(merged.resident_files, expected.resident_files + 119);
}

TEST(MergeStats, EmptyAndSingleton) {
  const std::vector<service::ServiceStats> none;
  EXPECT_EQ(merge_stats(none).requests, 0u);
  const std::vector<service::ServiceStats> one = {sample_stats(7)};
  EXPECT_EQ(merge_stats(one).requests, sample_stats(7).requests);
}

TEST(MergeMetrics, AddsCountersNameWiseAndSorts) {
  service::MetricsSnapshot a;
  a.counters = {{"acquire.total", 3}, {"evict.total", 1}};
  service::MetricsSnapshot b;
  b.counters = {{"acquire.total", 4}, {"release.total", 2}};
  const std::vector<service::MetricsSnapshot> shards = {a, b};
  const service::MetricsSnapshot merged = merge_metrics(shards);
  ASSERT_EQ(merged.counters.size(), 3u);
  EXPECT_EQ(merged.counters[0].first, "acquire.total");
  EXPECT_EQ(merged.counters[0].second, 7u);
  EXPECT_EQ(merged.counters[1].first, "evict.total");
  EXPECT_EQ(merged.counters[1].second, 1u);
  EXPECT_EQ(merged.counters[2].first, "release.total");
  EXPECT_EQ(merged.counters[2].second, 2u);
}

TEST(MergeMetrics, MergesHistogramsExactly) {
  obs::Histogram left;
  left.record(10);
  left.record(20);
  obs::Histogram right;
  right.record(30);
  service::MetricsSnapshot a;
  a.histograms.push_back({"queue.wait", left});
  service::MetricsSnapshot b;
  b.histograms.push_back({"queue.wait", right});
  b.histograms.push_back({"stage.seconds", right});
  const std::vector<service::MetricsSnapshot> shards = {a, b};
  const service::MetricsSnapshot merged = merge_metrics(shards);
  ASSERT_EQ(merged.histograms.size(), 2u);
  EXPECT_EQ(merged.histograms[0].name, "queue.wait");
  EXPECT_EQ(merged.histograms[0].hist.count(), 3u);
  EXPECT_EQ(merged.histograms[0].hist.max(), 30u);
  EXPECT_EQ(merged.histograms[1].name, "stage.seconds");
  EXPECT_EQ(merged.histograms[1].hist.count(), 1u);
}

}  // namespace
}  // namespace fbc::cluster
