// Tests for end-to-end workload generation.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace fbc {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.seed = 42;
  config.cache_bytes = 1 * GiB;
  config.num_files = 200;
  config.min_file_bytes = 1 * MiB;
  config.max_file_frac = 0.01;
  config.num_requests = 100;
  config.min_bundle_files = 1;
  config.max_bundle_files = 5;
  config.num_jobs = 2000;
  return config;
}

TEST(Workload, ShapesMatchConfig) {
  const Workload w = generate_workload(small_config());
  EXPECT_EQ(w.catalog.count(), 200u);
  EXPECT_EQ(w.pool.size(), 100u);
  EXPECT_EQ(w.jobs.size(), 2000u);
  EXPECT_EQ(w.job_index.size(), 2000u);
  for (std::size_t idx : w.job_index) EXPECT_LT(idx, w.pool.size());
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    EXPECT_EQ(w.jobs[j], w.pool[w.job_index[j]]);
  }
}

TEST(Workload, FileSizesFollowCacheFraction) {
  const WorkloadConfig config = small_config();
  const Workload w = generate_workload(config);
  const Bytes max_allowed = static_cast<Bytes>(
      config.max_file_frac * static_cast<double>(config.cache_bytes));
  for (FileId id = 0; id < w.catalog.count(); ++id) {
    EXPECT_GE(w.catalog.size_of(id), config.min_file_bytes);
    EXPECT_LE(w.catalog.size_of(id), max_allowed);
  }
}

TEST(Workload, BundlesFitInCache) {
  const WorkloadConfig config = small_config();
  const Workload w = generate_workload(config);
  for (const Request& r : w.pool) {
    EXPECT_LE(w.catalog.request_bytes(r), config.cache_bytes);
  }
}

TEST(Workload, DeterministicForSameSeed) {
  const Workload a = generate_workload(small_config());
  const Workload b = generate_workload(small_config());
  EXPECT_EQ(a.job_index, b.job_index);
  EXPECT_EQ(a.pool, b.pool);
  ASSERT_EQ(a.catalog.count(), b.catalog.count());
  for (FileId id = 0; id < a.catalog.count(); ++id) {
    EXPECT_EQ(a.catalog.size_of(id), b.catalog.size_of(id));
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig c1 = small_config(), c2 = small_config();
  c2.seed = 43;
  EXPECT_NE(generate_workload(c1).job_index, generate_workload(c2).job_index);
}

TEST(Workload, ZipfSkewsJobFrequencies) {
  WorkloadConfig config = small_config();
  config.popularity = Popularity::Zipf;
  config.zipf_alpha = 1.0;
  config.num_jobs = 20000;
  const Workload w = generate_workload(config);

  std::map<std::size_t, std::size_t> counts;
  for (std::size_t idx : w.job_index) counts[idx] += 1;
  std::size_t max_count = 0;
  for (const auto& [idx, count] : counts) max_count = std::max(max_count, count);
  // Under Zipf(1) over 100 requests, the most popular one gets ~19% of
  // draws; uniform would give ~1%. 8% is a safe discriminator.
  EXPECT_GT(static_cast<double>(max_count) / static_cast<double>(config.num_jobs),
            0.08);
}

TEST(Workload, UniformKeepsFrequenciesFlat) {
  WorkloadConfig config = small_config();
  config.num_jobs = 20000;
  const Workload w = generate_workload(config);
  std::map<std::size_t, std::size_t> counts;
  for (std::size_t idx : w.job_index) counts[idx] += 1;
  for (const auto& [idx, count] : counts) {
    EXPECT_LT(count, 400u) << "pool entry " << idx << " drawn too often";
  }
}

TEST(Workload, MeanRequestBytesAndCacheUnits) {
  const Workload w = generate_workload(small_config());
  const double mean = w.mean_request_bytes();
  EXPECT_GT(mean, 0.0);
  const double per_cache = w.requests_per_cache(1 * GiB);
  EXPECT_NEAR(per_cache, static_cast<double>(1 * GiB) / mean, 1e-6);
}

TEST(Workload, RejectsBadConfigs) {
  WorkloadConfig config = small_config();
  config.cache_bytes = 0;
  EXPECT_THROW((void)generate_workload(config), std::invalid_argument);
  config = small_config();
  config.max_file_frac = 0.0;
  EXPECT_THROW((void)generate_workload(config), std::invalid_argument);
  config = small_config();
  config.max_file_frac = 1.5;
  EXPECT_THROW((void)generate_workload(config), std::invalid_argument);
  config = small_config();
  config.max_bundle_frac = 0.0;
  EXPECT_THROW((void)generate_workload(config), std::invalid_argument);
}

TEST(PopularityToString, Names) {
  EXPECT_EQ(to_string(Popularity::Uniform), "uniform");
  EXPECT_EQ(to_string(Popularity::Zipf), "zipf");
}

}  // namespace
}  // namespace fbc
