// Tests for request (bundle) pool generation.
#include "workload/request_pool.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

namespace fbc {
namespace {

FileCatalog catalog_of(std::size_t n, Bytes each) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(each);
  return catalog;
}

TEST(RequestPool, GeneratesDistinctCanonicalBundles) {
  FileCatalog catalog = catalog_of(100, 10);
  RequestPoolConfig config;
  config.num_requests = 50;
  config.min_files = 2;
  config.max_files = 6;
  Rng rng(1);
  const auto pool = generate_request_pool(config, catalog, rng);
  EXPECT_EQ(pool.size(), 50u);
  std::unordered_set<Request, RequestHash> seen;
  for (const Request& r : pool) {
    EXPECT_TRUE(r.is_canonical());
    EXPECT_GE(r.size(), 2u);
    EXPECT_LE(r.size(), 6u);
    EXPECT_TRUE(seen.insert(r).second) << "duplicate bundle " << r.to_string();
    for (FileId id : r.files) EXPECT_LT(id, 100u);
  }
}

TEST(RequestPool, RespectsByteCap) {
  FileCatalog catalog = catalog_of(100, 10);
  RequestPoolConfig config;
  config.num_requests = 100;
  config.min_files = 1;
  config.max_files = 10;
  config.max_bundle_bytes = 35;  // at most 3 files of 10 bytes
  Rng rng(2);
  const auto pool = generate_request_pool(config, catalog, rng);
  for (const Request& r : pool) {
    EXPECT_LE(catalog.request_bytes(r), 35u);
    EXPECT_GE(r.size(), 1u);
  }
}

TEST(RequestPool, TinySpaceReturnsFewerDistinct) {
  FileCatalog catalog = catalog_of(3, 10);
  RequestPoolConfig config;
  config.num_requests = 100;  // only 3 single-file bundles exist
  config.min_files = 1;
  config.max_files = 1;
  Rng rng(3);
  const auto pool = generate_request_pool(config, catalog, rng);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(RequestPool, DeterministicForSameSeed) {
  FileCatalog catalog = catalog_of(50, 10);
  RequestPoolConfig config;
  config.num_requests = 20;
  config.min_files = 1;
  config.max_files = 5;
  Rng rng1(7), rng2(7);
  EXPECT_EQ(generate_request_pool(config, catalog, rng1),
            generate_request_pool(config, catalog, rng2));
}

TEST(RequestPool, RejectsBadConfigs) {
  FileCatalog catalog = catalog_of(10, 10);
  Rng rng(1);
  RequestPoolConfig config;
  config.num_requests = 0;
  EXPECT_THROW((void)generate_request_pool(config, catalog, rng),
               std::invalid_argument);
  config.num_requests = 1;
  config.min_files = 0;
  EXPECT_THROW((void)generate_request_pool(config, catalog, rng),
               std::invalid_argument);
  config.min_files = 5;
  config.max_files = 3;
  EXPECT_THROW((void)generate_request_pool(config, catalog, rng),
               std::invalid_argument);
  config.min_files = 1;
  config.max_files = 11;  // > catalog size
  EXPECT_THROW((void)generate_request_pool(config, catalog, rng),
               std::invalid_argument);
}

TEST(RequestPool, LoneOversizedFilesAreAvoided) {
  // One file is larger than the cap; bundles should never consist of it
  // alone (and trimming keeps at least one file).
  FileCatalog catalog;
  catalog.add_file(100);  // oversize
  for (int i = 0; i < 20; ++i) catalog.add_file(5);
  RequestPoolConfig config;
  config.num_requests = 30;
  config.min_files = 1;
  config.max_files = 4;
  config.max_bundle_bytes = 20;
  Rng rng(11);
  const auto pool = generate_request_pool(config, catalog, rng);
  for (const Request& r : pool) {
    EXPECT_LE(catalog.request_bytes(r), 20u);
    EXPECT_FALSE(r.contains(0)) << "oversize file survived trimming";
  }
}

}  // namespace
}  // namespace fbc
