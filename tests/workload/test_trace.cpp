// Tests for trace text serialization.
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "workload/workload.hpp"

namespace fbc {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.catalog.add_file(100);
  trace.catalog.add_file(200);
  trace.catalog.add_file(300);
  trace.jobs.push_back(Request({0, 2}));
  trace.jobs.push_back(Request({1}));
  trace.jobs.push_back(Request({0, 1, 2}));
  return trace;
}

TEST(Trace, StreamRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream ss;
  write_trace(ss, original);
  const Trace loaded = read_trace(ss);
  ASSERT_EQ(loaded.catalog.count(), original.catalog.count());
  for (FileId id = 0; id < original.catalog.count(); ++id) {
    EXPECT_EQ(loaded.catalog.size_of(id), original.catalog.size_of(id));
  }
  EXPECT_EQ(loaded.jobs, original.jobs);
}

TEST(Trace, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path =
      (std::filesystem::temp_directory_path() / "fbc_trace_test.txt").string();
  save_trace(path, original);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.jobs, original.jobs);
  std::remove(path.c_str());
}

TEST(Trace, GeneratedWorkloadRoundTrips) {
  WorkloadConfig config;
  config.cache_bytes = 100 * MiB;
  config.num_files = 50;
  config.num_requests = 30;
  config.num_jobs = 500;
  const Workload w = generate_workload(config);
  Trace trace{w.catalog, w.jobs, {}, {}, {}};
  std::stringstream ss;
  write_trace(ss, trace);
  const Trace loaded = read_trace(ss);
  EXPECT_EQ(loaded.jobs, trace.jobs);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a comment\n\nfbc-trace v1\n# another\nfiles 1\n\n64\n"
     << "jobs 1\n# job follows\n2 0 0\n";
  const Trace trace = read_trace(ss);
  EXPECT_EQ(trace.catalog.count(), 1u);
  // Duplicate ids canonicalize away.
  EXPECT_EQ(trace.jobs.front(), Request({0}));
}

TEST(Trace, BadMagicRejected) {
  std::stringstream ss("not-a-trace\nfiles 0\njobs 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, OutOfRangeFileIdRejected) {
  std::stringstream ss("fbc-trace v1\nfiles 1\n64\njobs 1\n1 5\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, TruncatedFileTableRejected) {
  std::stringstream ss("fbc-trace v1\nfiles 3\n64\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, TruncatedJobListRejected) {
  std::stringstream ss("fbc-trace v1\nfiles 1\n64\njobs 2\n1 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, JobRowCountMismatchRejected) {
  std::stringstream short_row("fbc-trace v1\nfiles 2\n64\n64\njobs 1\n2 0\n");
  EXPECT_THROW((void)read_trace(short_row), std::runtime_error);
  std::stringstream long_row(
      "fbc-trace v1\nfiles 2\n64\n64\njobs 1\n1 0 1\n");
  EXPECT_THROW((void)read_trace(long_row), std::runtime_error);
}

TEST(Trace, ZeroSizeFileRejected) {
  std::stringstream ss("fbc-trace v1\nfiles 1\n0\njobs 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, EmptyJobRejected) {
  std::stringstream ss("fbc-trace v1\nfiles 1\n64\njobs 1\n0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(Trace, MissingFileRejectedOnLoad) {
  EXPECT_THROW((void)load_trace("/nonexistent/path/trace.txt"), std::runtime_error);
}

TEST(TraceV2, TimedRoundTrip) {
  Trace original = sample_trace();
  original.arrival_s = {0.0, 12.5, 30.0};
  original.service_s = {1.0, 2.5, 0.0};
  ASSERT_TRUE(original.is_timed());
  std::stringstream ss;
  write_trace(ss, original);
  EXPECT_NE(ss.str().find("fbc-trace v2"), std::string::npos);
  const Trace loaded = read_trace(ss);
  EXPECT_TRUE(loaded.is_timed());
  EXPECT_EQ(loaded.jobs, original.jobs);
  EXPECT_EQ(loaded.arrival_s, original.arrival_s);
  EXPECT_EQ(loaded.service_s, original.service_s);
}

TEST(TraceV2, UntimedStaysV1) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  EXPECT_NE(ss.str().find("fbc-trace v1"), std::string::npos);
  EXPECT_FALSE(read_trace(ss).is_timed());
}

TEST(TraceV2, MissingTimingPrefixRejected) {
  std::stringstream ss("fbc-trace v2\nfiles 1\n64\njobs 1\n1 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceV2, DecreasingArrivalsRejected) {
  std::stringstream ss(
      "fbc-trace v2\nfiles 1\n64\njobs 2\n10 1 1 0\n5 1 1 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceV2, NegativeServiceRejected) {
  std::stringstream ss("fbc-trace v2\nfiles 1\n64\njobs 1\n0 -1 1 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceV2, PartialTimingVectorsAreNotTimed) {
  Trace trace = sample_trace();
  trace.arrival_s = {0.0};  // wrong length
  EXPECT_FALSE(trace.is_timed());
}

TEST(TraceV3, MetaRoundTripPreservesOrderAndDuplicates) {
  Trace original = sample_trace();
  original.set_meta("kind", "sim");
  original.set_meta("policy", "underfree:lru");
  original.set_meta("detail", "victims freed insufficient space");
  original.set_meta("note", "spaces  inside values survive");
  original.set_meta("note", "second entry under the same key");

  std::stringstream ss;
  write_trace(ss, original);
  EXPECT_NE(ss.str().find("fbc-trace v3"), std::string::npos);
  const Trace loaded = read_trace(ss);
  EXPECT_EQ(loaded.jobs, original.jobs);
  EXPECT_EQ(loaded.meta, original.meta);
  // meta_value returns the first entry under a duplicated key.
  ASSERT_NE(loaded.meta_value("note"), nullptr);
  EXPECT_EQ(*loaded.meta_value("note"), "spaces  inside values survive");
  EXPECT_EQ(loaded.meta_value("missing"), nullptr);
}

TEST(TraceV3, TimedTraceWithMetaRoundTrips) {
  Trace original = sample_trace();
  original.arrival_s = {0.0, 2.0, 7.5};
  original.service_s = {1.0, 0.5, 3.0};
  original.set_meta("oracle", "sim.accounting");

  std::stringstream ss;
  write_trace(ss, original);
  EXPECT_NE(ss.str().find("fbc-trace v3"), std::string::npos);
  const Trace loaded = read_trace(ss);
  EXPECT_TRUE(loaded.is_timed());
  EXPECT_EQ(loaded.arrival_s, original.arrival_s);
  EXPECT_EQ(loaded.service_s, original.service_s);
  // The reserved wire flag `timed` is consumed by the parser, not
  // surfaced: the meta section round-trips exactly as written.
  EXPECT_EQ(loaded.meta, original.meta);
}

TEST(TraceV3, EmptyMetaValueRoundTrips) {
  Trace original = sample_trace();
  original.set_meta("empty", "");
  std::stringstream ss;
  write_trace(ss, original);
  const Trace loaded = read_trace(ss);
  ASSERT_NE(loaded.meta_value("empty"), nullptr);
  EXPECT_EQ(*loaded.meta_value("empty"), "");
}

TEST(TraceV3, MalformedMetaEntriesRejectedOnWrite) {
  Trace bad_key = sample_trace();
  bad_key.set_meta("", "value");
  std::stringstream ss;
  EXPECT_THROW(write_trace(ss, bad_key), std::invalid_argument);

  Trace spaced_key = sample_trace();
  spaced_key.set_meta("two tokens", "value");
  EXPECT_THROW(write_trace(ss, spaced_key), std::invalid_argument);

  Trace newline_value = sample_trace();
  newline_value.set_meta("key", "line one\nline two");
  EXPECT_THROW(write_trace(ss, newline_value), std::invalid_argument);
}

TEST(TraceV3, RejectedWriteEmitsNothing) {
  // A throw after the magic line would leave a header-only stub that
  // read_trace rejects -- fuzz reproducers hit exactly this when an
  // oracle detail carried a newline. Validation must precede output.
  Trace newline_value = sample_trace();
  newline_value.set_meta("key", "line one\nline two");
  std::stringstream ss;
  EXPECT_THROW(write_trace(ss, newline_value), std::invalid_argument);
  EXPECT_EQ(ss.str(), "");
}

TEST(TraceV3, TruncatedMetaSectionRejected) {
  std::stringstream ss(
      "fbc-trace v3\nmeta 2\nkind select\nfiles 1\n64\njobs 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceV3, EmptyMetaTableAccepted) {
  std::stringstream ss("fbc-trace v3\nmeta 0\nfiles 1\n64\njobs 1\n1 0\n");
  const Trace trace = read_trace(ss);
  EXPECT_TRUE(trace.meta.empty());
  EXPECT_EQ(trace.jobs.front(), Request({0}));
}

TEST(TraceV3, MissingMetaHeaderRejected) {
  std::stringstream ss("fbc-trace v3\nfiles 1\n64\njobs 1\n1 0\n");
  EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceV3, ReservedTimedFlagDrivesJobParsing) {
  std::stringstream ss(
      "fbc-trace v3\nmeta 2\ntimed 1\nsource synthetic\n"
      "files 1\n64\njobs 1\n0.5 1.5 1 0\n");
  const Trace trace = read_trace(ss);
  EXPECT_TRUE(trace.is_timed());
  ASSERT_EQ(trace.meta.size(), 1u);  // `timed` consumed, `source` kept
  EXPECT_EQ(trace.meta[0].first, "source");
}

}  // namespace
}  // namespace fbc
