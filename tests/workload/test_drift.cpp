// Tests for non-stationary (drifting) popularity in workload generation.
#include <gtest/gtest.h>

#include <map>

#include "workload/workload.hpp"

namespace fbc {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig config;
  config.seed = 9;
  config.cache_bytes = 10 * MiB;
  config.num_files = 100;
  config.min_file_bytes = 10 * KiB;
  config.num_requests = 50;
  config.num_jobs = 8000;
  config.popularity = Popularity::Zipf;
  return config;
}

/// Occurrences of pool entry `idx` within [begin, end) of the stream.
std::size_t count_in_range(const Workload& w, std::size_t idx,
                           std::size_t begin, std::size_t end) {
  std::size_t count = 0;
  for (std::size_t j = begin; j < end; ++j) count += (w.job_index[j] == idx);
  return count;
}

TEST(Drift, ZeroPeriodIsStationary) {
  WorkloadConfig with_field = base_config();
  with_field.drift_period_jobs = 0;
  WorkloadConfig plain = base_config();
  EXPECT_EQ(generate_workload(with_field).job_index,
            generate_workload(plain).job_index);
}

TEST(Drift, DriftChangesTheStream) {
  WorkloadConfig drifting = base_config();
  drifting.drift_period_jobs = 1000;
  drifting.drift_rotate = 10;
  EXPECT_NE(generate_workload(drifting).job_index,
            generate_workload(base_config()).job_index);
}

TEST(Drift, HotSetRotatesOverTime) {
  WorkloadConfig config = base_config();
  config.drift_period_jobs = 2000;
  config.drift_rotate = 10;
  const Workload w = generate_workload(config);

  // The most popular entry of the first quarter should lose most of its
  // share by the last quarter (its rank rotated away).
  std::map<std::size_t, std::size_t> first_counts;
  for (std::size_t j = 0; j < 2000; ++j) first_counts[w.job_index[j]] += 1;
  std::size_t hot = 0, hot_count = 0;
  for (const auto& [idx, count] : first_counts) {
    if (count > hot_count) {
      hot = idx;
      hot_count = count;
    }
  }
  const std::size_t early = count_in_range(w, hot, 0, 2000);
  const std::size_t late = count_in_range(w, hot, 6000, 8000);
  EXPECT_GT(early, 200u);          // genuinely hot at the start
  EXPECT_LT(late * 3, early);      // cooled down by at least 3x
}

TEST(Drift, StillDrawsOnlyPoolEntries) {
  WorkloadConfig config = base_config();
  config.drift_period_jobs = 100;
  config.drift_rotate = 7;
  const Workload w = generate_workload(config);
  for (std::size_t idx : w.job_index) ASSERT_LT(idx, w.pool.size());
}

TEST(Drift, Deterministic) {
  WorkloadConfig config = base_config();
  config.drift_period_jobs = 500;
  config.drift_rotate = 5;
  EXPECT_EQ(generate_workload(config).job_index,
            generate_workload(config).job_index);
}

}  // namespace
}  // namespace fbc
