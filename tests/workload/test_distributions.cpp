// Tests for the alias sampler, Zipf and uniform popularity distributions.
#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fbc {
namespace {

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

TEST(AliasSampler, NormalizesProbabilities) {
  AliasSampler s(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.75);
  EXPECT_EQ(s.size(), 2u);
}

TEST(AliasSampler, EmpiricalFrequenciesMatch) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler s(weights);
  Rng rng(77);
  std::array<int, 4> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[s.sample(rng)] += 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = s.probability(i);
    const double observed = static_cast<double>(counts[i]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "outcome " << i;
  }
}

TEST(AliasSampler, DegenerateSingleOutcome) {
  AliasSampler s(std::vector<double>{5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightOutcomeNeverSampled) {
  AliasSampler s(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(s.sample(rng), 1u);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, ProbabilitiesAreMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.0);
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_GT(zipf.probability(i - 1), zipf.probability(i));
  }
}

TEST(ZipfSampler, ProbabilityRatiosFollowPowerLaw) {
  ZipfSampler zipf(100, 1.0);
  // P(1)/P(2) == 2, P(1)/P(10) == 10 for alpha = 1.
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(9), 10.0, 1e-9);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(zipf.probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfSampler, EmpiricalHeadDominates) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(123);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) head += (zipf.sample(rng) < 10);
  // With alpha=1, n=1000: P(rank < 10) ~ H(10)/H(1000) ~ 2.93/7.49 ~ 0.39.
  const double observed = static_cast<double>(head) / n;
  EXPECT_NEAR(observed, 0.39, 0.03);
}

TEST(UniformIndexSampler, Basics) {
  EXPECT_THROW(UniformIndexSampler(0), std::invalid_argument);
  UniformIndexSampler s(5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.probability(3), 0.2);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(s.sample(rng), 5u);
}

// Property sweep: alias tables stay exact for random weight vectors.
class AliasProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AliasProperty, ProbabilitiesSumToOne) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(200);
  std::vector<double> weights(n);
  for (double& w : weights) w = rng.uniform_double(0.0, 10.0);
  weights[rng.index(n)] += 1.0;  // ensure at least one positive
  AliasSampler s(weights);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += s.probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // And sampling never produces out-of-range outcomes.
  for (int i = 0; i < 1000; ++i) ASSERT_LT(s.sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace fbc
