// Tests for the HENP / climate / bitmap-index scenario generators.
#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fbc {
namespace {

TEST(HenpScenario, LayoutAndBundleStructure) {
  HenpConfig config;
  config.num_runs = 4;
  config.num_attributes = 10;
  config.num_templates = 5;
  config.min_template_attrs = 2;
  config.max_template_attrs = 4;
  config.num_jobs = 100;
  const Workload w = generate_henp_workload(config);

  EXPECT_EQ(w.catalog.count(), 40u);  // runs x attributes
  EXPECT_LE(w.pool.size(), 20u);      // runs x templates (minus dup merges)
  EXPECT_EQ(w.jobs.size(), 100u);

  // Each bundle's files all belong to a single run (vertical partitioning
  // of one run's events).
  for (const Request& r : w.pool) {
    EXPECT_GE(r.size(), 2u);
    EXPECT_LE(r.size(), 4u);
    const std::size_t run = r.files.front() / config.num_attributes;
    for (FileId id : r.files) {
      EXPECT_EQ(id / config.num_attributes, run) << r.to_string();
    }
  }
}

TEST(HenpScenario, RunScalingKeepsSizesPositive) {
  HenpConfig config;
  config.num_runs = 3;
  config.num_attributes = 5;
  config.min_template_attrs = 2;
  config.max_template_attrs = 4;
  config.num_jobs = 10;
  const Workload w = generate_henp_workload(config);
  for (FileId id = 0; id < w.catalog.count(); ++id) {
    EXPECT_GT(w.catalog.size_of(id), 0u);
  }
}

TEST(HenpScenario, Deterministic) {
  HenpConfig config;
  config.num_jobs = 50;
  EXPECT_EQ(generate_henp_workload(config).job_index,
            generate_henp_workload(config).job_index);
}

TEST(HenpScenario, RejectsBadConfig) {
  HenpConfig config;
  config.num_runs = 0;
  EXPECT_THROW((void)generate_henp_workload(config), std::invalid_argument);
  config = HenpConfig{};
  config.min_template_attrs = 5;
  config.max_template_attrs = 3;
  EXPECT_THROW((void)generate_henp_workload(config), std::invalid_argument);
}

TEST(ClimateScenario, BundlesAreContiguousChunkRanges) {
  ClimateConfig config;
  config.num_variables = 6;
  config.num_chunks = 10;
  config.num_groups = 4;
  config.min_group_vars = 1;
  config.max_group_vars = 3;
  config.max_range_chunks = 3;
  config.num_jobs = 100;
  const Workload w = generate_climate_workload(config);

  EXPECT_EQ(w.catalog.count(), 60u);  // variables x chunks
  EXPECT_FALSE(w.pool.empty());

  for (const Request& r : w.pool) {
    // Partition the bundle per variable and check each variable's chunks
    // form one contiguous range, identical across the group's variables.
    std::unordered_set<std::size_t> vars;
    std::size_t min_chunk = config.num_chunks, max_chunk = 0;
    for (FileId id : r.files) {
      vars.insert(id / config.num_chunks);
      const std::size_t chunk = id % config.num_chunks;
      min_chunk = std::min(min_chunk, chunk);
      max_chunk = std::max(max_chunk, chunk);
    }
    const std::size_t width = max_chunk - min_chunk + 1;
    EXPECT_LE(width, config.max_range_chunks);
    EXPECT_EQ(r.size(), vars.size() * width)
        << "bundle is not (group x contiguous range): " << r.to_string();
  }
}

TEST(ClimateScenario, Deterministic) {
  ClimateConfig config;
  config.num_jobs = 50;
  EXPECT_EQ(generate_climate_workload(config).job_index,
            generate_climate_workload(config).job_index);
}

TEST(ClimateScenario, RejectsBadConfig) {
  ClimateConfig config;
  config.max_range_chunks = 0;
  EXPECT_THROW((void)generate_climate_workload(config), std::invalid_argument);
  config = ClimateConfig{};
  config.max_group_vars = config.num_variables + 1;
  EXPECT_THROW((void)generate_climate_workload(config), std::invalid_argument);
}

TEST(BitmapScenario, QueriesAreContiguousBinRuns) {
  BitmapConfig config;
  config.num_attributes = 5;
  config.bins_per_attribute = 8;
  config.max_query_attrs = 2;
  config.max_range_bins = 3;
  config.num_query_pool = 50;
  config.num_jobs = 100;
  const Workload w = generate_bitmap_workload(config);

  EXPECT_EQ(w.catalog.count(), 40u);  // attributes x bins
  EXPECT_FALSE(w.pool.empty());

  for (const Request& r : w.pool) {
    // Group files per attribute; each group must be a contiguous bin run
    // of width <= max_range_bins.
    std::unordered_set<std::size_t> attrs;
    for (FileId id : r.files) attrs.insert(id / config.bins_per_attribute);
    EXPECT_LE(attrs.size(), config.max_query_attrs);
    for (std::size_t attr : attrs) {
      std::vector<std::size_t> bins;
      for (FileId id : r.files) {
        if (id / config.bins_per_attribute == attr)
          bins.push_back(id % config.bins_per_attribute);
      }
      // Canonical request order makes bins sorted already.
      EXPECT_LE(bins.size(), config.max_range_bins);
      for (std::size_t k = 1; k < bins.size(); ++k) {
        EXPECT_EQ(bins[k], bins[k - 1] + 1)
            << "non-contiguous bin run in " << r.to_string();
      }
    }
  }
}

TEST(BitmapScenario, CenterBinsAreDenser) {
  // The triangular compressed-size profile should make center bins larger
  // than edge bins on average.
  BitmapConfig config;
  config.num_attributes = 30;
  config.bins_per_attribute = 21;
  config.num_query_pool = 10;
  config.num_jobs = 10;
  const Workload w = generate_bitmap_workload(config);
  double center_sum = 0.0, edge_sum = 0.0;
  for (std::size_t attr = 0; attr < config.num_attributes; ++attr) {
    center_sum += static_cast<double>(
        w.catalog.size_of(static_cast<FileId>(attr * 21 + 10)));
    edge_sum += static_cast<double>(
        w.catalog.size_of(static_cast<FileId>(attr * 21)));
  }
  EXPECT_GT(center_sum, edge_sum);
}

TEST(BitmapScenario, Deterministic) {
  BitmapConfig config;
  config.num_jobs = 50;
  EXPECT_EQ(generate_bitmap_workload(config).job_index,
            generate_bitmap_workload(config).job_index);
}

TEST(BitmapScenario, RejectsBadConfig) {
  BitmapConfig config;
  config.num_attributes = 0;
  EXPECT_THROW((void)generate_bitmap_workload(config), std::invalid_argument);
  config = BitmapConfig{};
  config.max_range_bins = config.bins_per_attribute + 1;
  EXPECT_THROW((void)generate_bitmap_workload(config), std::invalid_argument);
}

TEST(Scenarios, JobsAreDrawnFromThePool) {
  const Workload w = generate_henp_workload(HenpConfig{});
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    ASSERT_LT(w.job_index[j], w.pool.size());
    EXPECT_EQ(w.jobs[j], w.pool[w.job_index[j]]);
  }
}

}  // namespace
}  // namespace fbc
