// Tests for file pool (catalog) generation.
#include "workload/file_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace fbc {
namespace {

TEST(FilePool, UniformSizesWithinBounds) {
  FilePoolConfig config;
  config.num_files = 500;
  config.min_bytes = 10;
  config.max_bytes = 100;
  Rng rng(1);
  const FileCatalog catalog = generate_file_pool(config, rng);
  EXPECT_EQ(catalog.count(), 500u);
  for (FileId id = 0; id < 500; ++id) {
    EXPECT_GE(catalog.size_of(id), 10u);
    EXPECT_LE(catalog.size_of(id), 100u);
  }
}

TEST(FilePool, UniformCoversTheRange) {
  FilePoolConfig config;
  config.num_files = 2000;
  config.min_bytes = 1;
  config.max_bytes = 10;
  Rng rng(2);
  const FileCatalog catalog = generate_file_pool(config, rng);
  Bytes lo = 10, hi = 1;
  for (FileId id = 0; id < catalog.count(); ++id) {
    lo = std::min(lo, catalog.size_of(id));
    hi = std::max(hi, catalog.size_of(id));
  }
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 10u);
}

TEST(FilePool, FixedModel) {
  FilePoolConfig config;
  config.num_files = 10;
  config.min_bytes = 42;
  config.max_bytes = 100;
  config.model = FileSizeModel::Fixed;
  Rng rng(3);
  const FileCatalog catalog = generate_file_pool(config, rng);
  for (FileId id = 0; id < 10; ++id) EXPECT_EQ(catalog.size_of(id), 42u);
}

TEST(FilePool, LogNormalClampedToBounds) {
  FilePoolConfig config;
  config.num_files = 2000;
  config.min_bytes = 100;
  config.max_bytes = 10000;
  config.model = FileSizeModel::LogNormal;
  config.lognormal_sigma = 2.0;  // wide: clamping will trigger
  Rng rng(4);
  const FileCatalog catalog = generate_file_pool(config, rng);
  for (FileId id = 0; id < catalog.count(); ++id) {
    EXPECT_GE(catalog.size_of(id), 100u);
    EXPECT_LE(catalog.size_of(id), 10000u);
  }
}

TEST(FilePool, DeterministicForSameSeed) {
  FilePoolConfig config;
  config.num_files = 100;
  config.min_bytes = 1;
  config.max_bytes = 1000;
  Rng rng1(99), rng2(99);
  const FileCatalog a = generate_file_pool(config, rng1);
  const FileCatalog b = generate_file_pool(config, rng2);
  ASSERT_EQ(a.count(), b.count());
  for (FileId id = 0; id < a.count(); ++id) {
    EXPECT_EQ(a.size_of(id), b.size_of(id));
  }
}

TEST(FilePool, RejectsBadConfigs) {
  Rng rng(1);
  FilePoolConfig config;
  config.num_files = 0;
  EXPECT_THROW((void)generate_file_pool(config, rng), std::invalid_argument);
  config.num_files = 1;
  config.min_bytes = 0;
  EXPECT_THROW((void)generate_file_pool(config, rng), std::invalid_argument);
  config.min_bytes = 100;
  config.max_bytes = 50;
  EXPECT_THROW((void)generate_file_pool(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace fbc
