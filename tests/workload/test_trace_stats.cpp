// Tests for trace statistics.
#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/workload.hpp"

namespace fbc {
namespace {

Trace hand_trace() {
  Trace trace;
  trace.catalog.add_file(100);  // 0
  trace.catalog.add_file(200);  // 1
  trace.catalog.add_file(300);  // 2
  trace.catalog.add_file(400);  // 3: never used
  trace.jobs = {Request({0, 1}), Request({0, 1}), Request({0, 2}),
                Request({2})};
  return trace;
}

TEST(TraceStats, FileTable) {
  const TraceStats stats = compute_trace_stats(hand_trace());
  EXPECT_EQ(stats.file_count, 4u);
  EXPECT_EQ(stats.total_file_bytes, 1000u);
  EXPECT_DOUBLE_EQ(stats.file_bytes.mean(), 250.0);
  EXPECT_DOUBLE_EQ(stats.file_bytes.min(), 100.0);
  EXPECT_DOUBLE_EQ(stats.file_bytes.max(), 400.0);
}

TEST(TraceStats, BundleShapes) {
  const TraceStats stats = compute_trace_stats(hand_trace());
  EXPECT_EQ(stats.job_count, 4u);
  EXPECT_DOUBLE_EQ(stats.bundle_files.mean(), (2 + 2 + 2 + 1) / 4.0);
  EXPECT_DOUBLE_EQ(stats.bundle_bytes.mean(),
                   (300 + 300 + 400 + 300) / 4.0);
}

TEST(TraceStats, PopularityAndDistinctness) {
  const TraceStats stats = compute_trace_stats(hand_trace());
  EXPECT_EQ(stats.distinct_requests, 3u);  // {0,1} twice
  EXPECT_EQ(stats.top_request_count, 2u);
}

TEST(TraceStats, DegreesAndUnusedFiles) {
  const TraceStats stats = compute_trace_stats(hand_trace());
  // Distinct requests: {0,1}, {0,2}, {2}. Degrees: f0=2, f1=1, f2=2, f3=0.
  EXPECT_EQ(stats.max_file_degree, 2u);
  EXPECT_EQ(stats.unused_files, 1u);
  EXPECT_DOUBLE_EQ(stats.file_degree.mean(), (2 + 1 + 2) / 3.0);
  EXPECT_EQ(stats.touched_bytes, 600u);  // files 0, 1, 2
}

TEST(TraceStats, EmptyTrace) {
  Trace trace;
  trace.catalog.add_file(10);
  const TraceStats stats = compute_trace_stats(trace);
  EXPECT_EQ(stats.job_count, 0u);
  EXPECT_EQ(stats.distinct_requests, 0u);
  EXPECT_EQ(stats.top_request_count, 0u);
  EXPECT_EQ(stats.unused_files, 1u);
  EXPECT_EQ(stats.touched_bytes, 0u);
}

TEST(TraceStats, ZipfSkewShowsInTopDecile) {
  WorkloadConfig config;
  config.cache_bytes = 10 * MiB;
  config.num_files = 100;
  config.min_file_bytes = 10 * KiB;
  config.num_requests = 100;
  config.num_jobs = 5000;

  config.popularity = Popularity::Uniform;
  const Workload uniform = generate_workload(config);
  config.popularity = Popularity::Zipf;
  const Workload zipf = generate_workload(config);

  const TraceStats u =
      compute_trace_stats(Trace{uniform.catalog, uniform.jobs, {}, {}, {}});
  const TraceStats z = compute_trace_stats(Trace{zipf.catalog, zipf.jobs, {}, {}, {}});
  EXPECT_NEAR(u.top_decile_job_share, 0.1, 0.03);
  EXPECT_GT(z.top_decile_job_share, 0.4);
}

TEST(TraceStats, PrintMentionsKeyRows) {
  std::ostringstream oss;
  print_trace_stats(oss, compute_trace_stats(hand_trace()));
  const std::string out = oss.str();
  EXPECT_NE(out.find("max file degree d"), std::string::npos);
  EXPECT_NE(out.find("distinct requests"), std::string::npos);
  EXPECT_NE(out.find("jobs"), std::string::npos);
}

}  // namespace
}  // namespace fbc
