// Serving-tool plumbing tests: the RetryBudget that caps cumulative
// QueueFull backoff at the per-request timeout (the fbcload retry
// regression), and the flag -> ServiceConfig mapping both serving tools
// share (the surface fbclint L003 audits).
#include "tools/serving_common.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fbc::tools {
namespace {

TEST(RetryBudget, HonorsTheServerHintWithinBudget) {
  RetryBudget budget(100);
  EXPECT_EQ(budget.next_delay(30), std::optional<std::uint64_t>(30));
  EXPECT_EQ(budget.remaining_ms(), 70u);
}

TEST(RetryBudget, ZeroHintStillYieldsAtLeastOneMillisecond) {
  // A zero retry_after_ms hint must not turn the client into a busy
  // spinner against a loaded server.
  RetryBudget budget(10);
  EXPECT_EQ(budget.next_delay(0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(budget.remaining_ms(), 9u);
}

TEST(RetryBudget, LastDelayIsClampedToWhatIsLeft) {
  RetryBudget budget(40);
  EXPECT_EQ(budget.next_delay(25), std::optional<std::uint64_t>(25));
  // Hint exceeds the 15ms left: sleep only the remainder...
  EXPECT_EQ(budget.next_delay(25), std::optional<std::uint64_t>(15));
  // ...then give up instead of sleeping past the request timeout.
  EXPECT_EQ(budget.next_delay(25), std::nullopt);
  EXPECT_EQ(budget.remaining_ms(), 0u);
}

TEST(RetryBudget, ZeroTimeoutNeverRetries) {
  RetryBudget budget(0);
  EXPECT_EQ(budget.next_delay(1), std::nullopt);
}

TEST(RetryBudget, CumulativeSleepNeverExceedsTheTimeout) {
  // The regression this class exists for: N attempts x a deep-queue hint
  // must not sleep N * hint. Whatever hints the server hands out, the
  // total sleep is bounded by the construction-time budget.
  constexpr std::uint64_t kTimeoutMs = 250;
  RetryBudget budget(kTimeoutMs);
  std::uint64_t slept = 0;
  std::size_t attempts = 0;
  const std::uint32_t hints[] = {0, 90, 7, 1000, 90, 90, 90};
  for (std::size_t i = 0;; i = (i + 1) % std::size(hints)) {
    const std::optional<std::uint64_t> delay = budget.next_delay(hints[i]);
    if (!delay.has_value()) break;
    slept += *delay;
    ++attempts;
    ASSERT_LT(attempts, 1000u) << "budget failed to exhaust";
  }
  EXPECT_EQ(slept, kTimeoutMs);  // budget spent exactly, never exceeded
  EXPECT_EQ(budget.remaining_ms(), 0u);
}

TEST(ServingCommon, ServiceFlagsMapOntoEveryConfigField) {
  CliParser cli("test", "flag mapping");
  add_service_options(cli);
  cli.parse({"--cache=2MiB", "--policy=lru", "--max-queue=9",
             "--order=value", "--timeout-ms=1234", "--max-retries=5",
             "--retry-backoff-ms=20", "--fail-prob=0.25", "--time-scale=0",
             "--streams=2", "--seed=77", "--retry-cap-ms=500",
             "--span-capacity=32", "--engine=reference",
             "--admission-batch=3", "--lease-shards=5", "--no-coalesce",
             "--shadow-diff", "--legacy-wire"});
  const service::ServiceConfig config = service_config_from_cli(cli);
  EXPECT_EQ(config.cache_bytes, 2u * MiB);
  EXPECT_EQ(config.policy, "lru");
  EXPECT_EQ(config.max_queue, 9u);
  EXPECT_EQ(config.order, service::AdmitOrder::ValueDensity);
  EXPECT_EQ(config.timeout_ms, 1234u);
  EXPECT_EQ(config.max_retries, 5u);
  EXPECT_EQ(config.retry_backoff_ms, 20u);
  EXPECT_DOUBLE_EQ(config.transfer_fail_prob, 0.25);
  EXPECT_EQ(config.transfer_streams, 2u);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.retry_after_cap_ms, 500u);
  EXPECT_EQ(config.span_capacity, 32u);
  EXPECT_EQ(config.engine, SelectEngine::Reference);
  EXPECT_EQ(config.admission_batch, 3u);
  EXPECT_EQ(config.lease_shards, 5u);
  EXPECT_FALSE(config.coalesce);
  EXPECT_TRUE(config.shadow_diff);
  EXPECT_TRUE(config.legacy_wire);
  // --shadow-diff must install the enginediff policy factory, or the
  // flag would silently do nothing at the server.
  EXPECT_TRUE(static_cast<bool>(config.policy_factory));
}

TEST(ServingCommon, DefaultsKeepTheOptimizedServingPath) {
  CliParser cli("test", "defaults");
  add_service_options(cli);
  cli.parse(std::vector<std::string>{});
  const service::ServiceConfig config = service_config_from_cli(cli);
  EXPECT_EQ(config.engine, SelectEngine::Incremental);
  EXPECT_GT(config.admission_batch, 1u);
  EXPECT_GT(config.lease_shards, 1u);
  EXPECT_TRUE(config.coalesce);
  EXPECT_FALSE(config.shadow_diff);
  EXPECT_FALSE(config.legacy_wire);
  EXPECT_FALSE(static_cast<bool>(config.policy_factory));
}

}  // namespace
}  // namespace fbc::tools
