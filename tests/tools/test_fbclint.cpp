// Regression tests pinning fbclint's L001 view-lifetime rule against a
// minimized reconstruction of the PR 1 dangling-span bug (a temporary
// degrees() vector bound to OptCacheSelect's stored span parameter).
// These drive the rule engine directly through fbclint_lib so a refactor
// of the linter cannot silently lose the one bug class it was built for.
#include "fbclint/lexer.hpp"
#include "fbclint/model.hpp"
#include "fbclint/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fbclint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Lexes the PR 1 fixture pair (API header + bug translation unit) into a
/// project model, exactly as `fbclint src` would.
ProjectModel pr1_model() {
  const std::string root = std::string(FBCLINT_FIXTURE_DIR) + "/case1";
  std::vector<SourceFile> files;
  for (const char* rel : {"/src/core/select.hpp", "/src/core/dangling.cpp"}) {
    const std::string path = root + rel;
    files.push_back(lex_file(path, slurp(path)));
  }
  return build_model(std::move(files));
}

bool has_diag_at(const std::vector<Diagnostic>& diags, const char* rule,
                 const char* path_suffix, int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line &&
           d.path.size() >= std::string(path_suffix).size() &&
           d.path.compare(d.path.size() - std::string(path_suffix).size(),
                          std::string::npos, path_suffix) == 0;
  });
}

TEST(FbclintL001, ModelSeesOwningDegreesAndViewSignatures) {
  const ProjectModel model = pr1_model();
  // degrees() returns std::vector by value -> owning returner.
  EXPECT_TRUE(model.owning_returners.count("degrees"));
  // OptCacheSelect's ctor takes the span in parameter slot 1, run_select
  // in slot 0.
  ASSERT_TRUE(model.view_sigs.count("OptCacheSelect"));
  EXPECT_TRUE(model.view_sigs.at("OptCacheSelect").count(1));
  ASSERT_TRUE(model.view_sigs.count("run_select"));
  EXPECT_TRUE(model.view_sigs.at("run_select").count(0));
}

TEST(FbclintL001, FlagsPr1ConstructorShape) {
  // The exact PR 1 shape: `OptCacheSelect selector(catalog,
  // history.degrees());` -- a temporary bound to a stored span.
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  EXPECT_TRUE(has_diag_at(diags, "L001", "src/core/dangling.cpp", 10))
      << "L001 no longer catches the PR 1 constructor shape";
}

TEST(FbclintL001, FlagsDirectCallShape) {
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  EXPECT_TRUE(has_diag_at(diags, "L001", "src/core/dangling.cpp", 15))
      << "L001 no longer catches a temporary passed straight to a "
         "span-taking function";
}

TEST(FbclintL001, DoesNotFlagTheShippedFix) {
  // PR 1's fix binds the owning value to a named local first; flagging it
  // would make the rule unusable.
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.line, 21) << d.message;
    EXPECT_NE(d.line, 22) << d.message;
    EXPECT_NE(d.line, 23) << d.message;
  }
  // And exactly the two seeded sites fire -- no noise.
  EXPECT_EQ(diags.size(), 2u);
}

TEST(FbclintL001, AmbiguousNamesAreNotFlagged) {
  // A name declared BOTH as owning-returning and view-returning (the
  // production RequestHistory::degrees() returns a span while a test
  // generator returns a vector) must drop out of owning_returners --
  // otherwise safe call sites get flagged through name collision.
  const std::string header =
      "#pragma once\n"
      "#include <span>\n"
      "#include <vector>\n"
      "std::vector<int> degrees();\n"
      "std::span<const int> degrees2();\n"
      "struct Other { std::span<const int> degrees(); };\n"
      "void consume(std::span<const int> values);\n";
  const std::string unit =
      "#include \"api.hpp\"\n"
      "void f() { consume(degrees()); }\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/api.hpp", header));
  files.push_back(lex_file("src/use.cpp", unit));
  const ProjectModel model = build_model(std::move(files));
  EXPECT_FALSE(model.owning_returners.count("degrees"));
  EXPECT_TRUE(rule_view_lifetime(model).empty());
}

TEST(FbclintL001, SuppressionCommentSilencesTheRule) {
  const std::string header =
      "#pragma once\n"
      "#include <span>\n"
      "#include <vector>\n"
      "std::vector<int> make();\n"
      "void consume(std::span<const int> values);\n";
  const std::string unit =
      "#include \"api.hpp\"\n"
      "// fbclint:ignore(L001) -- consume() copies before returning\n"
      "void f() { consume(make()); }\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/api.hpp", header));
  files.push_back(lex_file("src/use.cpp", unit));
  const ProjectModel model = build_model(std::move(files));

  std::vector<Diagnostic> diags = rule_view_lifetime(model);
  ASSERT_EQ(diags.size(), 1u);  // fires before suppression is applied

  const Markers markers = collect_markers(model);
  EXPECT_TRUE(apply_suppressions(std::move(diags), markers).empty());
}

/// Lexes the case3 lock-discipline fixture pair into a project model.
ProjectModel case3_model() {
  const std::string root = std::string(FBCLINT_FIXTURE_DIR) + "/case3";
  std::vector<SourceFile> files;
  for (const char* rel : {"/src/grid/locks.hpp", "/src/grid/hier.hpp"}) {
    const std::string path = root + rel;
    files.push_back(lex_file(path, slurp(path)));
  }
  return build_model(std::move(files));
}

/// Lexes the case2 service fixture (anchors + codec + wire docs on disk)
/// into a project model, as `fbclint <fixture>/case2` would.
ProjectModel case2_model() {
  const std::string root = std::string(FBCLINT_FIXTURE_DIR) + "/case2";
  std::vector<SourceFile> files;
  for (const char* rel :
       {"/src/service/server.hpp", "/src/service/server.cpp",
        "/src/service/protocol.hpp", "/src/service/protocol.cpp"}) {
    const std::string path = root + rel;
    files.push_back(lex_file(path, slurp(path)));
  }
  return build_model(std::move(files));
}

TEST(FbclintL007, ModelParsesLockAnnotations) {
  const ProjectModel model = case3_model();
  const LockInfo* table = nullptr;
  const LockInfo* stats = nullptr;
  const LockInfo* journal = nullptr;
  for (const LockInfo& lock : model.locks) {
    if (lock.name == "table_mu_") table = &lock;
    if (lock.name == "stats_mu_") stats = &lock;
    if (lock.name == "journal_mu_") journal = &lock;
  }
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->level, 10);
  EXPECT_EQ(table->owner, "Store");
  ASSERT_EQ(table->guards.size(), 1u);
  EXPECT_EQ(table->guards[0], "items_");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->level, 40);
  // journal_mu_ carries both the annotation level and the drifted
  // OrderedMutex constructor literal.
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(journal->level, 20);
  EXPECT_EQ(journal->ctor_level, 30);

  ASSERT_TRUE(model.fn_locks.count("count_locked"));
  EXPECT_TRUE(model.fn_locks.at("count_locked").needs.count("table_mu_"));
  ASSERT_TRUE(model.fn_locks.count("compact"));
  EXPECT_TRUE(model.fn_locks.at("compact").excludes.count("table_mu_"));
  ASSERT_TRUE(model.fn_locks.count("flush_all"));
  EXPECT_TRUE(model.fn_locks.at("flush_all").blocking);
}

TEST(FbclintL007, CatchesEverySeededDisciplineViolation) {
  const ProjectModel model = case3_model();
  const std::vector<Diagnostic> diags = rule_lock_discipline(model);
  // locks.hpp: inversion, recursion, guard-coverage gap, sleep under
  // lock, requires violation, excludes violation.
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 49));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 57));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 63));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 70));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 78));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/locks.hpp", 87));
  // hier.hpp: fbc:blocking call under a lock, annotation/initializer
  // drift.
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/hier.hpp", 29));
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/grid/hier.hpp", 36));
  // ...and nothing else: the clean methods (put, wait_nonempty,
  // merge_stats, size) stay silent.
  EXPECT_EQ(diags.size(), 8u);
}

TEST(FbclintL007, FlagsRepoStyleOrderedMutexInversion) {
  // The repo idiom: fbc::OrderedMutex members with matching
  // fbc:lock-level annotations. bad() acquires 40 then 10 -- exactly the
  // obs_mu_ -> mu_ inversion the rule exists to catch; good() is the
  // same pair in hierarchy order and must not fire.
  const std::string header =
      "#pragma once\n"
      "#include <mutex>\n"
      "#include \"util/ordered_mutex.hpp\"\n"
      "struct S {\n"
      "  void good() {\n"
      "    std::lock_guard<fbc::OrderedMutex> a(mu_);\n"
      "    std::lock_guard<fbc::OrderedMutex> b(obs_mu_);\n"
      "  }\n"
      "  void bad() {\n"
      "    std::lock_guard<fbc::OrderedMutex> a(obs_mu_);\n"
      "    std::lock_guard<fbc::OrderedMutex> b(mu_);\n"
      "  }\n"
      "  // fbc:lock-level(10)\n"
      "  mutable fbc::OrderedMutex mu_{10, \"S::mu_\"};\n"
      "  // fbc:lock-level(40)\n"
      "  mutable fbc::OrderedMutex obs_mu_{40, \"S::obs_mu_\"};\n"
      "};\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/s.hpp", header));
  const ProjectModel model = build_model(std::move(files));
  const std::vector<Diagnostic> diags = rule_lock_discipline(model);
  ASSERT_EQ(diags.size(), 1u) << (diags.empty() ? "" : diags[0].message);
  EXPECT_TRUE(has_diag_at(diags, "L007", "src/s.hpp", 11));
}

TEST(FbclintL007, UnlockRelockKeepsTrackingTheGuard) {
  // The BundleServer::acquire() shape that produced the rule's only two
  // repo false positives during bring-up: unique_lock, explicit
  // unlock(), a sleep while NOT holding the lock, relock(), then a call
  // requiring the lock. All four steps are legal and must stay silent.
  const std::string header =
      "#pragma once\n"
      "#include <mutex>\n"
      "#include <thread>\n"
      "struct S {\n"
      "  void drain() {\n"
      "    std::unique_lock<std::mutex> lock(mu_);\n"
      "    step_locked();\n"
      "    lock.unlock();\n"
      "    std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "    lock.lock();\n"
      "    step_locked();\n"
      "  }\n"
      "  // fbc:requires(mu_)\n"
      "  void step_locked();\n"
      "  // fbc:lock-level(10)\n"
      "  std::mutex mu_;\n"
      "};\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/s.hpp", header));
  const ProjectModel model = build_model(std::move(files));
  const std::vector<Diagnostic> diags = rule_lock_discipline(model);
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].message);
}

TEST(FbclintL008, CatchesEverySeededCoherenceGap) {
  const ProjectModel model = case2_model();
  const std::vector<Diagnostic> diags = rule_wire_coherence(model);
  // protocol.hpp: missing | 2 | Pong | doc row, StatsReply field-count
  // drift at the struct line, and the evictions field both unset by
  // stats() and unnamed by the codec (two diags on the field's line).
  EXPECT_TRUE(has_diag_at(diags, "L008", "service/protocol.hpp", 10));
  EXPECT_TRUE(has_diag_at(diags, "L008", "service/protocol.hpp", 18));
  EXPECT_TRUE(has_diag_at(diags, "L008", "service/protocol.hpp", 22));
  EXPECT_EQ(std::count_if(diags.begin(), diags.end(),
                          [](const Diagnostic& d) { return d.line == 22; }),
            2)
      << "evictions should draw one stats() diag and one codec diag";
  // server.cpp: the undocumented svc.hold_us metric literal.
  EXPECT_TRUE(has_diag_at(diags, "L008", "service/server.cpp", 34));
  EXPECT_EQ(diags.size(), 5u);
}

}  // namespace
}  // namespace fbclint
