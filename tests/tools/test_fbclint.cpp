// Regression tests pinning fbclint's L001 view-lifetime rule against a
// minimized reconstruction of the PR 1 dangling-span bug (a temporary
// degrees() vector bound to OptCacheSelect's stored span parameter).
// These drive the rule engine directly through fbclint_lib so a refactor
// of the linter cannot silently lose the one bug class it was built for.
#include "fbclint/lexer.hpp"
#include "fbclint/model.hpp"
#include "fbclint/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fbclint {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Lexes the PR 1 fixture pair (API header + bug translation unit) into a
/// project model, exactly as `fbclint src` would.
ProjectModel pr1_model() {
  const std::string root = std::string(FBCLINT_FIXTURE_DIR) + "/case1";
  std::vector<SourceFile> files;
  for (const char* rel : {"/src/core/select.hpp", "/src/core/dangling.cpp"}) {
    const std::string path = root + rel;
    files.push_back(lex_file(path, slurp(path)));
  }
  return build_model(std::move(files));
}

bool has_diag_at(const std::vector<Diagnostic>& diags, const char* rule,
                 const char* path_suffix, int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line &&
           d.path.size() >= std::string(path_suffix).size() &&
           d.path.compare(d.path.size() - std::string(path_suffix).size(),
                          std::string::npos, path_suffix) == 0;
  });
}

TEST(FbclintL001, ModelSeesOwningDegreesAndViewSignatures) {
  const ProjectModel model = pr1_model();
  // degrees() returns std::vector by value -> owning returner.
  EXPECT_TRUE(model.owning_returners.count("degrees"));
  // OptCacheSelect's ctor takes the span in parameter slot 1, run_select
  // in slot 0.
  ASSERT_TRUE(model.view_sigs.count("OptCacheSelect"));
  EXPECT_TRUE(model.view_sigs.at("OptCacheSelect").count(1));
  ASSERT_TRUE(model.view_sigs.count("run_select"));
  EXPECT_TRUE(model.view_sigs.at("run_select").count(0));
}

TEST(FbclintL001, FlagsPr1ConstructorShape) {
  // The exact PR 1 shape: `OptCacheSelect selector(catalog,
  // history.degrees());` -- a temporary bound to a stored span.
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  EXPECT_TRUE(has_diag_at(diags, "L001", "src/core/dangling.cpp", 10))
      << "L001 no longer catches the PR 1 constructor shape";
}

TEST(FbclintL001, FlagsDirectCallShape) {
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  EXPECT_TRUE(has_diag_at(diags, "L001", "src/core/dangling.cpp", 15))
      << "L001 no longer catches a temporary passed straight to a "
         "span-taking function";
}

TEST(FbclintL001, DoesNotFlagTheShippedFix) {
  // PR 1's fix binds the owning value to a named local first; flagging it
  // would make the rule unusable.
  const ProjectModel model = pr1_model();
  const std::vector<Diagnostic> diags = rule_view_lifetime(model);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.line, 21) << d.message;
    EXPECT_NE(d.line, 22) << d.message;
    EXPECT_NE(d.line, 23) << d.message;
  }
  // And exactly the two seeded sites fire -- no noise.
  EXPECT_EQ(diags.size(), 2u);
}

TEST(FbclintL001, AmbiguousNamesAreNotFlagged) {
  // A name declared BOTH as owning-returning and view-returning (the
  // production RequestHistory::degrees() returns a span while a test
  // generator returns a vector) must drop out of owning_returners --
  // otherwise safe call sites get flagged through name collision.
  const std::string header =
      "#pragma once\n"
      "#include <span>\n"
      "#include <vector>\n"
      "std::vector<int> degrees();\n"
      "std::span<const int> degrees2();\n"
      "struct Other { std::span<const int> degrees(); };\n"
      "void consume(std::span<const int> values);\n";
  const std::string unit =
      "#include \"api.hpp\"\n"
      "void f() { consume(degrees()); }\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/api.hpp", header));
  files.push_back(lex_file("src/use.cpp", unit));
  const ProjectModel model = build_model(std::move(files));
  EXPECT_FALSE(model.owning_returners.count("degrees"));
  EXPECT_TRUE(rule_view_lifetime(model).empty());
}

TEST(FbclintL001, SuppressionCommentSilencesTheRule) {
  const std::string header =
      "#pragma once\n"
      "#include <span>\n"
      "#include <vector>\n"
      "std::vector<int> make();\n"
      "void consume(std::span<const int> values);\n";
  const std::string unit =
      "#include \"api.hpp\"\n"
      "// fbclint:ignore(L001) -- consume() copies before returning\n"
      "void f() { consume(make()); }\n";
  std::vector<SourceFile> files;
  files.push_back(lex_file("src/api.hpp", header));
  files.push_back(lex_file("src/use.cpp", unit));
  const ProjectModel model = build_model(std::move(files));

  std::vector<Diagnostic> diags = rule_view_lifetime(model);
  ASSERT_EQ(diags.size(), 1u);  // fires before suppression is applied

  const Markers markers = collect_markers(model);
  EXPECT_TRUE(apply_suppressions(std::move(diags), markers).empty());
}

}  // namespace
}  // namespace fbclint
