// Metamorphic properties of the whole simulation stack: transformations
// of the input with predictable effects on the output. These catch subtle
// accounting bugs that example-based tests miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

struct Scenario {
  FileCatalog catalog;
  std::vector<Request> jobs;
};

Scenario make_scenario(std::uint64_t seed, Bytes size_scale = 1) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = 4 * MiB;
  config.num_files = 120;
  config.min_file_bytes = 2 * KiB;
  config.max_file_frac = 0.02;
  config.num_requests = 80;
  config.max_bundle_files = 5;
  config.num_jobs = 800;
  config.popularity = Popularity::Zipf;
  const Workload w = generate_workload(config);
  Scenario setup;
  for (Bytes s : w.catalog.sizes()) setup.catalog.add_file(s * size_scale);
  setup.jobs = w.jobs;
  return setup;
}

CacheMetrics run(const Scenario& setup, Bytes cache_bytes,
                 const std::string& policy_name) {
  PolicyContext context;
  context.catalog = &setup.catalog;
  context.jobs = setup.jobs;
  PolicyPtr policy = make_policy(policy_name, context);
  SimulatorConfig config{.cache_bytes = cache_bytes};
  return simulate(config, setup.catalog, *policy, setup.jobs).metrics;
}

class Metamorphic : public ::testing::TestWithParam<const char*> {};

TEST_P(Metamorphic, ScalingAllSizesScalesBytesNotHits) {
  // Multiplying every file size and the cache capacity by the same factor
  // must leave hit counts identical and scale byte counters exactly.
  const Scenario base = make_scenario(11);
  const Scenario scaled = make_scenario(11, /*size_scale=*/3);
  const CacheMetrics a = run(base, 4 * MiB, GetParam());
  const CacheMetrics b = run(scaled, 12 * MiB, GetParam());
  EXPECT_EQ(a.request_hits(), b.request_hits());
  EXPECT_EQ(a.file_hits(), b.file_hits());
  EXPECT_EQ(a.bytes_requested() * 3, b.bytes_requested());
  EXPECT_EQ(a.bytes_missed() * 3, b.bytes_missed());
  EXPECT_EQ(a.evictions(), b.evictions());
}

TEST_P(Metamorphic, CacheAsLargeAsDataMissesOnlyCold) {
  // With capacity >= total catalog bytes, every file is fetched at most
  // once: bytes_missed equals the bytes of distinct files touched.
  const Scenario setup = make_scenario(12);
  const CacheMetrics m =
      run(setup, setup.catalog.total_bytes(), GetParam());
  std::vector<bool> touched(setup.catalog.count(), false);
  Bytes cold_bytes = 0;
  for (const Request& r : setup.jobs) {
    for (FileId id : r.files) {
      if (!touched[id]) {
        touched[id] = true;
        cold_bytes += setup.catalog.size_of(id);
      }
    }
  }
  EXPECT_EQ(m.bytes_missed(), cold_bytes) << GetParam();
  EXPECT_EQ(m.evictions(), 0u) << GetParam();
}

TEST_P(Metamorphic, DuplicatingEveryJobOnlyAddsHits) {
  // Serving each job twice in a row: the duplicate is always a full hit,
  // so bytes_missed is unchanged and request hits grow by the number of
  // duplicates.
  const Scenario setup = make_scenario(13);
  Scenario doubled;
  for (Bytes s : setup.catalog.sizes()) doubled.catalog.add_file(s);
  for (const Request& r : setup.jobs) {
    doubled.jobs.push_back(r);
    doubled.jobs.push_back(r);
  }
  const CacheMetrics single = run(setup, 4 * MiB, GetParam());
  const CacheMetrics twice = run(doubled, 4 * MiB, GetParam());
  EXPECT_EQ(twice.bytes_missed(), single.bytes_missed()) << GetParam();
  EXPECT_EQ(twice.request_hits(),
            single.request_hits() + setup.jobs.size())
      << GetParam();
}

TEST_P(Metamorphic, PrefixMissesAreAPrefixOfTheWhole) {
  // Running only the first half of the stream produces exactly the same
  // counters as the first half of the full run (online property: the
  // policy cannot peek ahead). Holds for every online policy; the
  // clairvoyant lookahead is excluded from the suite's parameter list.
  const Scenario setup = make_scenario(14);
  Scenario half = setup;
  half.jobs.resize(setup.jobs.size() / 2);
  const CacheMetrics whole_half_view = [&] {
    PolicyContext context;
    context.catalog = &setup.catalog;
    context.jobs = setup.jobs;
    PolicyPtr policy = make_policy(GetParam(), context);
    SimulatorConfig config{.cache_bytes = 4 * MiB};
    Simulator sim(config, setup.catalog, *policy);
    // Run only the prefix through the same simulator instance.
    return sim.run(std::span<const Request>(setup.jobs)
                       .first(setup.jobs.size() / 2))
        .metrics;
  }();
  const CacheMetrics prefix = run(half, 4 * MiB, GetParam());
  EXPECT_EQ(prefix.bytes_missed(), whole_half_view.bytes_missed())
      << GetParam();
  EXPECT_EQ(prefix.request_hits(), whole_half_view.request_hits())
      << GetParam();
}

TEST_P(Metamorphic, ByteConservation) {
  // Bytes resident at the end == bytes loaded - bytes evicted.
  const Scenario setup = make_scenario(15);
  PolicyContext context;
  context.catalog = &setup.catalog;
  context.jobs = setup.jobs;
  PolicyPtr policy = make_policy(GetParam(), context);
  SimulatorConfig config{.cache_bytes = 4 * MiB};
  Simulator sim(config, setup.catalog, *policy);
  const SimulationResult result = sim.run(setup.jobs);
  const CacheMetrics& m = result.metrics;
  const Bytes loaded = m.bytes_missed() + m.bytes_prefetched();
  EXPECT_EQ(sim.cache().used_bytes(), loaded - m.bytes_evicted())
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Policies, Metamorphic,
                         ::testing::Values("optfb", "optfb-basic",
                                           "landlord", "lru", "lfu", "fifo",
                                           "gds-unit", "gdsf"));

}  // namespace
}  // namespace fbc
