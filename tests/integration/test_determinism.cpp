// Reproducibility: identical configurations produce bit-identical
// workloads and metrics, end to end.
#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

WorkloadConfig config_for(std::uint64_t seed) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = 16 * MiB;
  config.num_files = 150;
  config.min_file_bytes = 32 * KiB;
  config.max_file_frac = 0.02;
  config.num_requests = 80;
  config.max_bundle_files = 5;
  config.num_jobs = 1000;
  config.popularity = Popularity::Zipf;
  return config;
}

struct MetricsSnapshot {
  std::uint64_t jobs, hits;
  Bytes requested, missed, prefetched, evicted;
  bool operator==(const MetricsSnapshot&) const = default;
};

MetricsSnapshot run(std::uint64_t seed, const std::string& policy_name,
                    std::size_t queue) {
  const Workload w = generate_workload(config_for(seed));
  PolicyContext context;
  context.catalog = &w.catalog;
  context.jobs = w.jobs;
  context.seed = seed;
  PolicyPtr policy = make_policy(policy_name, context);
  SimulatorConfig config{.cache_bytes = 16 * MiB, .queue_length = queue};
  const CacheMetrics m =
      simulate(config, w.catalog, *policy, w.jobs).metrics;
  return MetricsSnapshot{m.jobs(),         m.request_hits(),
                         m.bytes_requested(), m.bytes_missed(),
                         m.bytes_prefetched(), m.bytes_evicted()};
}

class DeterminismByPolicy : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismByPolicy, TwoRunsAreIdentical) {
  EXPECT_EQ(run(1, GetParam(), 1), run(1, GetParam(), 1));
}

TEST_P(DeterminismByPolicy, QueueModeIsAlsoDeterministic) {
  EXPECT_EQ(run(2, GetParam(), 10), run(2, GetParam(), 10));
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismByPolicy,
                         ::testing::Values("optfb", "optfb-full", "landlord",
                                           "lru", "lfu", "gds-unit",
                                           "random", "lookahead"));

TEST(Determinism, DifferentSeedsProduceDifferentStreams) {
  EXPECT_NE(run(1, "landlord", 1), run(2, "landlord", 1));
}

TEST(Determinism, JobsConservedAcrossQueueLengths) {
  for (std::size_t q : {std::size_t{1}, std::size_t{5}, std::size_t{50}}) {
    const MetricsSnapshot snapshot = run(3, "optfb", q);
    EXPECT_EQ(snapshot.jobs, 1000u) << "queue " << q;
    EXPECT_EQ(snapshot.requested, run(3, "optfb", 1).requested)
        << "total requested bytes must not depend on service order";
  }
}

}  // namespace
}  // namespace fbc
