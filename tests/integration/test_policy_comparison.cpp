// Cross-policy comparison sanity: every registered policy completes the
// same trace, and the orderings the paper relies on hold.
#include <gtest/gtest.h>

#include <map>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

const Workload& shared_workload() {
  static const Workload w = [] {
    WorkloadConfig config;
    config.seed = 555;
    config.cache_bytes = 32 * MiB;
    config.num_files = 200;
    config.min_file_bytes = 64 * KiB;
    config.max_file_frac = 0.02;
    config.num_requests = 120;
    config.max_bundle_files = 6;
    config.num_jobs = 2000;
    config.popularity = Popularity::Zipf;
    return generate_workload(config);
  }();
  return w;
}

CacheMetrics run(const std::string& name, std::size_t queue_length = 1) {
  const Workload& w = shared_workload();
  PolicyContext context;
  context.catalog = &w.catalog;
  context.jobs = w.jobs;
  context.history_window_jobs = 300;
  PolicyPtr policy = make_policy(name, context);
  SimulatorConfig config{.cache_bytes = 32 * MiB,
                         .queue_length = queue_length,
                         .warmup_jobs = 200};
  return simulate(config, w.catalog, *policy, w.jobs).metrics;
}

TEST(PolicyComparison, EveryRegisteredPolicyCompletesTheTrace) {
  for (const std::string& name : policy_names()) {
    if (name == "optfb-seeded2") continue;  // quadratic; covered in bench
    const CacheMetrics m = run(name);
    EXPECT_EQ(m.jobs(), 1800u) << name;
    EXPECT_GT(m.byte_miss_ratio(), 0.0) << name;
    EXPECT_LE(m.byte_miss_ratio(), 1.0 + 1e-9) << name;
  }
}

TEST(PolicyComparison, OptFbVariantsBeatRandom) {
  const double random_miss = run("random").byte_miss_ratio();
  for (const std::string name : {"optfb", "optfb-basic"}) {
    EXPECT_LT(run(name).byte_miss_ratio(), random_miss) << name;
  }
}

TEST(PolicyComparison, OptFbBeatsClassicBaselines) {
  // The paper's comparison target is Landlord; recency- and
  // randomness-based policies fall with it.
  const double optfb = run("optfb").byte_miss_ratio();
  for (const std::string name : {"landlord", "lru", "random"}) {
    EXPECT_LT(optfb, run(name).byte_miss_ratio()) << name;
  }
}

TEST(PolicyComparison, OptFbCompetitiveWithFrequencyBaselines) {
  // LFU with an unbounded global frequency history is a strong per-file
  // policy under stationary Zipf popularity; OptFileBundle must stay in
  // the same band while strictly beating Landlord (checked above).
  const double optfb = run("optfb").byte_miss_ratio();
  EXPECT_LT(optfb, run("lfu").byte_miss_ratio() * 1.15);
  EXPECT_LT(optfb, run("gds-unit").byte_miss_ratio() * 1.15);
}

TEST(PolicyComparison, HistoryTruncationIsNearlyFree) {
  // Fig. 5: cache-resident truncation performs like the full history.
  const double resident = run("optfb").byte_miss_ratio();
  const double full = run("optfb-full").byte_miss_ratio();
  const double window = run("optfb-window").byte_miss_ratio();
  EXPECT_NEAR(resident, full, 0.12);
  EXPECT_NEAR(resident, window, 0.12);
}

TEST(PolicyComparison, ResortAtLeastAsGoodAsBasicOnAverage) {
  // The paper's "Note" improvement should not hurt.
  const double basic = run("optfb-basic").byte_miss_ratio();
  const double resort = run("optfb").byte_miss_ratio();
  EXPECT_LE(resort, basic + 0.03);
}

}  // namespace
}  // namespace fbc
