// Stress: long randomized runs across every online policy, queue mode
// and cache pressure level, asserting the global invariants that every
// other test checks only locally. Sized to stay within a few seconds.
#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

struct StressCase {
  const char* policy;
  std::size_t queue_length;
  QueueMode mode;
  double cache_scale;
};

class Stress : public ::testing::TestWithParam<StressCase> {};

TEST_P(Stress, LongRunHoldsAllInvariants) {
  const StressCase& sc = GetParam();
  WorkloadConfig wconfig;
  wconfig.seed = 0xbeef;
  wconfig.cache_bytes = 8 * MiB;
  wconfig.num_files = 400;
  wconfig.min_file_bytes = 4 * KiB;
  wconfig.max_file_frac = 0.03;
  wconfig.num_requests = 500;
  wconfig.max_bundle_files = 7;
  wconfig.num_jobs = 6000;
  wconfig.popularity = Popularity::Zipf;
  wconfig.drift_period_jobs = 1500;  // non-stationary for extra churn
  wconfig.drift_rotate = 40;
  const Workload w = generate_workload(wconfig);

  PolicyContext context;
  context.catalog = &w.catalog;
  context.jobs = w.jobs;
  context.seed = 0xbeef;
  PolicyPtr policy = make_policy(sc.policy, context);

  SimulatorConfig config{
      .cache_bytes = static_cast<Bytes>(
          sc.cache_scale * static_cast<double>(wconfig.cache_bytes)),
      .queue_length = sc.queue_length,
      .warmup_jobs = 500,
      .queue_mode = sc.mode};
  Simulator sim(config, w.catalog, *policy);
  const SimulationResult result = sim.run(w.jobs);  // throws on violations

  CacheMetrics all = result.warmup;
  all.merge(result.metrics);
  EXPECT_EQ(all.jobs() + all.unserviceable(), w.jobs.size());
  EXPECT_LE(sim.cache().used_bytes(), sim.cache().capacity());
  EXPECT_GE(all.byte_hit_ratio(), 0.0);
  EXPECT_LE(all.byte_miss_ratio(), 1.0 + 1e-12);
  EXPECT_LE(all.file_hits(), all.files_requested());
  // Byte conservation across the whole run.
  EXPECT_EQ(sim.cache().used_bytes(),
            all.bytes_missed() + all.bytes_prefetched() - all.bytes_evicted());
}

INSTANTIATE_TEST_SUITE_P(
    Mix, Stress,
    ::testing::Values(
        StressCase{"optfb", 1, QueueMode::Batch, 1.0},
        StressCase{"optfb", 25, QueueMode::Batch, 0.5},
        StressCase{"optfb", 25, QueueMode::Sliding, 1.0},
        StressCase{"optfb-full", 1, QueueMode::Batch, 1.0},
        StressCase{"optfb-bytes", 10, QueueMode::Sliding, 2.0},
        StressCase{"landlord", 1, QueueMode::Batch, 1.0},
        StressCase{"landlord", 25, QueueMode::Sliding, 0.5},
        StressCase{"lru-2", 1, QueueMode::Batch, 1.0},
        StressCase{"gdsf", 25, QueueMode::Batch, 1.0},
        StressCase{"fifo", 1, QueueMode::Batch, 0.5},
        StressCase{"random", 10, QueueMode::Sliding, 1.0}));

}  // namespace
}  // namespace fbc
