// End-to-end engine equivalence: the same trace replayed through two
// *independent* simulators -- one OptFileBundle policy per selection
// engine -- must produce identical externally observable behavior, not
// just identical metrics totals. A SequenceRecorder observer captures the
// full per-job event stream (hit/miss outcome, bytes missed, eviction
// order, cache occupancy after service) and the two recordings are
// compared element by element, with an InvariantAuditor attached to both
// runs so a divergence cannot hide behind an accounting bug.
//
// This complements tests/core/test_incremental_select.cpp, which compares
// the engines decision by decision inside ONE simulator via the lock-step
// adapter: here each engine drives its own cache, so any drift compounds
// and must still never appear.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "testing/audit.hpp"
#include "testing/instance_gen.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

using testing::InvariantAuditor;
using testing::SimGenConfig;
using testing::SimInstance;

/// One externally visible event. Evictions are recorded in execution
/// order between the enclosing job's start and completion.
struct Event {
  enum Kind { JobServiced, Eviction } kind = JobServiced;
  std::string request;   ///< JobServiced: the bundle serviced
  FileId victim = 0;     ///< Eviction: the file evicted
  bool hit = false;      ///< JobServiced: whole bundle was resident
  Bytes bytes_missed = 0;
  Bytes used_after = 0;  ///< cache occupancy after the event

  bool operator==(const Event&) const = default;
};

/// Records the event stream of one simulation; chains to an
/// InvariantAuditor so the standard invariants are audited on the side.
class SequenceRecorder : public SimulationObserver {
 public:
  SequenceRecorder(const FileCatalog& catalog, std::string subject)
      : auditor_(catalog, std::move(subject)) {}

  void on_job_start(const Request& request, const DiskCache& cache) override {
    auditor_.on_job_start(request, cache);
    missed_before_ = 0;
    for (FileId id : request.files) {
      if (!cache.contains(id)) missed_before_ += cache.catalog().size_of(id);
    }
  }

  void on_eviction(FileId id, const DiskCache& cache) override {
    auditor_.on_eviction(id, cache);
    Event event;
    event.kind = Event::Eviction;
    event.victim = id;
    event.used_after = cache.used_bytes();
    events_.push_back(std::move(event));
  }

  void on_job_serviced(const Request& request, const DiskCache& cache,
                       const CacheMetrics& metrics) override {
    auditor_.on_job_serviced(request, cache, metrics);
    Event event;
    event.kind = Event::JobServiced;
    event.request = request.to_string();
    event.hit = missed_before_ == 0;
    event.bytes_missed = missed_before_;
    event.used_after = cache.used_bytes();
    events_.push_back(std::move(event));
  }

  void on_run_complete(const DiskCache& cache,
                       const SimulationResult& result) override {
    auditor_.on_run_complete(cache, result);
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const InvariantAuditor& auditor() const noexcept {
    return auditor_;
  }

 private:
  InvariantAuditor auditor_;
  std::vector<Event> events_;
  Bytes missed_before_ = 0;
};

std::string describe(const Event& e) {
  if (e.kind == Event::Eviction) {
    return "evict file " + std::to_string(e.victim) + " (used " +
           std::to_string(e.used_after) + ")";
  }
  return std::string(e.hit ? "hit " : "miss ") + e.request + " (missed " +
         std::to_string(e.bytes_missed) + ", used " +
         std::to_string(e.used_after) + ")";
}

/// Replays `jobs` under `policy_name` with the given engine in its own
/// simulator and returns the recorded sequence + metrics.
struct Replay {
  std::vector<Event> events;
  CacheMetrics metrics;
  std::uint64_t decisions = 0;
};

Replay replay(const FileCatalog& catalog, std::span<const Request> jobs,
              const SimulatorConfig& sim, const std::string& policy_name,
              SelectEngine engine, std::uint64_t seed) {
  PolicyContext context;
  context.catalog = &catalog;
  context.jobs = jobs;
  context.seed = seed;
  context.select_engine = engine;
  PolicyPtr policy = make_policy(policy_name, context);

  SequenceRecorder recorder(catalog, policy->name());
  const SimulationResult result =
      simulate(sim, catalog, *policy, jobs, &recorder);
  EXPECT_TRUE(recorder.auditor().violations().empty())
      << policy->name() << ": "
      << recorder.auditor().violations().front().to_string();

  Replay out;
  out.events = recorder.events();
  out.metrics = result.metrics;
  out.metrics.merge(result.warmup);
  out.decisions = result.decisions;
  return out;
}

void expect_identical(const Replay& ref, const Replay& inc,
                      const std::string& label) {
  EXPECT_EQ(ref.decisions, inc.decisions) << label;
  ASSERT_EQ(ref.events.size(), inc.events.size()) << label;
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    ASSERT_EQ(ref.events[i], inc.events[i])
        << label << ": first divergence at event " << i << ": reference "
        << describe(ref.events[i]) << " vs incremental "
        << describe(inc.events[i]);
  }
  EXPECT_EQ(ref.metrics.bytes_missed(), inc.metrics.bytes_missed()) << label;
  EXPECT_EQ(ref.metrics.request_hits(), inc.metrics.request_hits()) << label;
  EXPECT_EQ(ref.metrics.evictions(), inc.metrics.evictions()) << label;
  EXPECT_EQ(ref.metrics.bytes_evicted(), inc.metrics.bytes_evicted()) << label;
  EXPECT_EQ(ref.metrics.bytes_prefetched(), inc.metrics.bytes_prefetched())
      << label;
}

void check_policy_on(const Trace& trace, const SimulatorConfig& sim,
                     const std::string& policy_name, const std::string& label) {
  const Replay ref = replay(trace.catalog, trace.jobs, sim, policy_name,
                            SelectEngine::Reference, 0x5eed);
  const Replay inc = replay(trace.catalog, trace.jobs, sim, policy_name,
                            SelectEngine::Incremental, 0x5eed);
  expect_identical(ref, inc, label + "/" + policy_name);
}

Trace workload_trace(std::uint64_t seed, std::size_t jobs) {
  WorkloadConfig config;
  config.seed = seed;
  config.cache_bytes = 3 * MiB;
  config.num_files = 100;
  config.min_file_bytes = 16 * KiB;
  config.max_file_frac = 0.05;
  config.num_requests = 120;
  config.max_bundle_files = 6;
  config.num_jobs = jobs;
  config.popularity = Popularity::Zipf;
  const Workload w = generate_workload(config);
  Trace trace;
  trace.catalog = w.catalog;
  trace.jobs = w.jobs;
  return trace;
}

TEST(EngineEquivalence, IdenticalSequencesOnZipfWorkload) {
  const Trace trace = workload_trace(21, 500);
  SimulatorConfig sim{.cache_bytes = 3 * MiB};
  for (const char* policy :
       {"optfb", "optfb-basic", "optfb-seeded2", "optfb-bytes"}) {
    check_policy_on(trace, sim, policy, "zipf");
  }
}

TEST(EngineEquivalence, IdenticalSequencesWithPrefetchingHistories) {
  // optfb-full / optfb-window prefetch selected-but-missing files
  // (Algorithm 2 step 3 verbatim): the eviction/occupancy stream includes
  // speculative loads, and the incremental engine learns of them only via
  // on_prefetched.
  const Trace trace = workload_trace(22, 400);
  SimulatorConfig sim{.cache_bytes = 3 * MiB};
  check_policy_on(trace, sim, "optfb-full", "prefetch");
  check_policy_on(trace, sim, "optfb-window", "prefetch");
}

TEST(EngineEquivalence, IdenticalSequencesUnderQueueScheduling) {
  // Batched and sliding queues route decisions through choose_next();
  // service *order* itself would diverge if the engines ranked queued
  // requests differently.
  const Trace trace = workload_trace(23, 400);
  for (QueueMode mode : {QueueMode::Batch, QueueMode::Sliding}) {
    SimulatorConfig sim{.cache_bytes = 3 * MiB, .queue_length = 4,
                        .warmup_jobs = 0, .queue_mode = mode};
    check_policy_on(trace, sim, "optfb",
                    mode == QueueMode::Batch ? "batch" : "sliding");
  }
}

TEST(EngineEquivalence, IdenticalSequencesOnFuzzedTraces) {
  // The fuzzer's generator covers the awkward corners: undersized caches,
  // unserviceable bundles, warm-up prefixes, tiny catalogs.
  Rng master(77);
  for (std::uint64_t iter = 0; iter < 20; ++iter) {
    Rng rng(master.derive_seed(iter));
    const SimInstance instance = generate_sim_instance(SimGenConfig{}, rng);
    check_policy_on(instance.trace, instance.config,
                    iter % 2 == 0 ? "optfb" : "optfb-full",
                    "fuzz" + std::to_string(iter));
  }
}

}  // namespace
}  // namespace fbc
