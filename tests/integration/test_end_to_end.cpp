// End-to-end integration: generated workloads driven through the full
// simulator with real policies, checking metric consistency and the
// paper's headline claim (OptFileBundle beats Landlord).
#include <gtest/gtest.h>

#include "cache/simulator.hpp"
#include "core/opt_file_bundle.hpp"
#include "core/registry.hpp"
#include "policies/landlord.hpp"
#include "workload/scenarios.hpp"
#include "workload/workload.hpp"

namespace fbc {
namespace {

WorkloadConfig medium_config(Popularity popularity) {
  WorkloadConfig config;
  config.seed = 2026;
  config.cache_bytes = 64 * MiB;
  config.num_files = 300;
  config.min_file_bytes = 64 * KiB;
  config.max_file_frac = 0.01;
  config.num_requests = 200;
  config.min_bundle_files = 1;
  config.max_bundle_files = 8;
  config.num_jobs = 3000;
  config.popularity = popularity;
  return config;
}

CacheMetrics run_policy(const Workload& w, Bytes cache_bytes,
                        const std::string& name) {
  PolicyContext context;
  context.catalog = &w.catalog;
  context.jobs = w.jobs;
  PolicyPtr policy = make_policy(name, context);
  SimulatorConfig config{.cache_bytes = cache_bytes,
                         .queue_length = 1,
                         .warmup_jobs = w.jobs.size() / 10};
  return simulate(config, w.catalog, *policy, w.jobs).metrics;
}

TEST(EndToEnd, MetricIdentitiesHoldForAllPolicies) {
  const Workload w = generate_workload(medium_config(Popularity::Zipf));
  for (const std::string name :
       {"optfb", "landlord", "lru", "lfu", "gds-unit", "random"}) {
    const CacheMetrics m = run_policy(w, 64 * MiB, name);
    EXPECT_EQ(m.jobs(), w.jobs.size() - w.jobs.size() / 10) << name;
    EXPECT_GE(m.byte_miss_ratio(), 0.0) << name;
    EXPECT_LE(m.byte_miss_ratio(), 1.0 + 1e-9) << name;
    EXPECT_GE(m.request_hit_ratio(), 0.0) << name;
    EXPECT_LE(m.request_hit_ratio(), 1.0) << name;
    EXPECT_LE(m.file_hits(), m.files_requested()) << name;
    EXPECT_LE(m.bytes_missed(), m.bytes_requested()) << name;
    EXPECT_EQ(m.unserviceable(), 0u) << name;
  }
}

TEST(EndToEnd, OptFileBundleBeatsLandlordOnZipf) {
  // The paper's headline (Figs. 6-8): OptFileBundle's byte miss ratio is
  // consistently below Landlord's, most clearly under Zipf popularity.
  const Workload w = generate_workload(medium_config(Popularity::Zipf));
  const double optfb = run_policy(w, 64 * MiB, "optfb").byte_miss_ratio();
  const double landlord =
      run_policy(w, 64 * MiB, "landlord").byte_miss_ratio();
  EXPECT_LT(optfb, landlord);
}

TEST(EndToEnd, OptFileBundleBeatsLandlordOnUniform) {
  const Workload w = generate_workload(medium_config(Popularity::Uniform));
  const double optfb = run_policy(w, 64 * MiB, "optfb").byte_miss_ratio();
  const double landlord =
      run_policy(w, 64 * MiB, "landlord").byte_miss_ratio();
  EXPECT_LT(optfb, landlord);
}

TEST(EndToEnd, ZipfMissesLessThanUniform) {
  // Skewed popularity is easier to cache for both policies (paper §5.3).
  const Workload zipf = generate_workload(medium_config(Popularity::Zipf));
  const Workload uniform =
      generate_workload(medium_config(Popularity::Uniform));
  for (const std::string name : {"optfb", "landlord"}) {
    const double z = run_policy(zipf, 64 * MiB, name).byte_miss_ratio();
    const double u = run_policy(uniform, 64 * MiB, name).byte_miss_ratio();
    EXPECT_LT(z, u) << name;
  }
}

TEST(EndToEnd, BiggerCacheNeverHurtsOptFb) {
  const Workload w = generate_workload(medium_config(Popularity::Zipf));
  const double small = run_policy(w, 32 * MiB, "optfb").byte_miss_ratio();
  const double large = run_policy(w, 128 * MiB, "optfb").byte_miss_ratio();
  EXPECT_LE(large, small + 0.02);  // allow small-sample noise
}

TEST(EndToEnd, QueueingImprovesZipf) {
  // Fig. 9(b): longer admission queues lower the byte miss ratio under
  // Zipf (highest-relative-value-first scheduling).
  const Workload w = generate_workload(medium_config(Popularity::Zipf));
  auto run_with_queue = [&](std::size_t q) {
    OptFileBundlePolicy policy(w.catalog);
    SimulatorConfig config{.cache_bytes = 64 * MiB,
                           .queue_length = q,
                           .warmup_jobs = w.jobs.size() / 10};
    return simulate(config, w.catalog, policy, w.jobs)
        .metrics.byte_miss_ratio();
  };
  const double q1 = run_with_queue(1);
  const double q50 = run_with_queue(50);
  EXPECT_LE(q50, q1 + 0.02);
}

TEST(EndToEnd, ScenarioWorkloadsRunCleanly) {
  // The three domain scenarios drive the whole stack without contract
  // violations and with sane metrics.
  HenpConfig henp;
  henp.num_jobs = 800;
  const Workload hw = generate_henp_workload(henp);
  ClimateConfig climate;
  climate.num_jobs = 800;
  const Workload cw = generate_climate_workload(climate);
  BitmapConfig bitmap;
  bitmap.num_jobs = 800;
  const Workload bw = generate_bitmap_workload(bitmap);

  for (const Workload* w : {&hw, &cw, &bw}) {
    const Bytes cache = std::max<Bytes>(w->catalog.total_bytes() / 4, 1);
    OptFileBundlePolicy policy(w->catalog);
    SimulatorConfig config{.cache_bytes = cache};
    const SimulationResult result =
        simulate(config, w->catalog, policy, w->jobs);
    EXPECT_EQ(result.metrics.jobs() + result.metrics.unserviceable(),
              w->jobs.size());
    EXPECT_GT(result.metrics.request_hit_ratio(), 0.0);
  }
}

TEST(EndToEnd, OptFbStructuredWorkloadAdvantage) {
  // On the structured HENP workload (fixed analysis templates), bundle
  // awareness should clearly beat per-file Landlord.
  HenpConfig henp;
  henp.num_jobs = 2000;
  const Workload w = generate_henp_workload(henp);
  const Bytes cache = w.catalog.total_bytes() / 5;

  OptFileBundlePolicy optfb(w.catalog);
  SimulatorConfig config{.cache_bytes = cache,
                         .queue_length = 1,
                         .warmup_jobs = 200};
  const double optfb_miss =
      simulate(config, w.catalog, optfb, w.jobs).metrics.byte_miss_ratio();

  LandlordPolicy landlord;
  SimulatorConfig config2{.cache_bytes = cache,
                          .queue_length = 1,
                          .warmup_jobs = 200};
  const double landlord_miss =
      simulate(config2, w.catalog, landlord, w.jobs)
          .metrics.byte_miss_ratio();
  EXPECT_LT(optfb_miss, landlord_miss);
}

}  // namespace
}  // namespace fbc
