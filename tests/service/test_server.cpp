// BundleServer tests: admission semantics (hit/miss, validation,
// unserviceable), backpressure, timeouts, transfer failure injection with
// bounded retries, admission-order policies, and close() semantics.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <string_view>
#include <thread>
#include <vector>

#include "grid/mss.hpp"

namespace fbc::service {
namespace {

/// Catalog with file i of size (i+1)*100 bytes.
FileCatalog sized_catalog(std::size_t count) {
  std::vector<Bytes> sizes;
  sizes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) sizes.push_back((i + 1) * 100);
  return FileCatalog(std::move(sizes));
}

/// Polls the server until its queue depth reaches `depth` (test ordering
/// helper; bounded so a broken server fails rather than hangs).
void wait_for_queue_depth(const BundleServer& server, std::uint64_t depth) {
  for (int i = 0; i < 2000; ++i) {
    if (server.stats().queue_depth >= depth) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "queue depth never reached " << depth;
}

TEST(BundleServer, RejectsBadConfig) {
  FileCatalog catalog = sized_catalog(3);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.max_queue = 0;
  EXPECT_THROW((BundleServer{config, mss}), std::invalid_argument);
  config.max_queue = 4;
  config.policy = "no-such-policy";
  EXPECT_THROW((BundleServer{config, mss}), std::invalid_argument);
}

TEST(BundleServer, ParseAdmitOrder) {
  EXPECT_EQ(parse_admit_order("fifo"), AdmitOrder::Fifo);
  EXPECT_EQ(parse_admit_order("value"), AdmitOrder::ValueDensity);
  EXPECT_THROW((void)parse_admit_order("lifo"), std::invalid_argument);
}

TEST(BundleServer, MissThenHitThenRelease) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  BundleServer server(config, mss);

  const AcquireResult miss = server.acquire(Request({0, 1}));
  ASSERT_EQ(miss.status, AcquireStatus::Ok);
  EXPECT_FALSE(miss.request_hit);
  EXPECT_NE(miss.lease, 0u);

  const AcquireResult hit = server.acquire(Request({0, 1}));
  ASSERT_EQ(hit.status, AcquireStatus::Ok);
  EXPECT_TRUE(hit.request_hit);
  EXPECT_NE(hit.lease, miss.lease);

  EXPECT_TRUE(server.release(miss.lease));
  EXPECT_TRUE(server.release(hit.lease));
  EXPECT_FALSE(server.release(miss.lease));  // double release
  EXPECT_FALSE(server.release(12345));       // unknown lease

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.request_hits, 1u);
  EXPECT_EQ(stats.active_leases, 0u);
  EXPECT_EQ(stats.used_bytes, 300u);  // files stay resident after release
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, RejectsInvalidAndUnserviceable) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 600;
  BundleServer server(config, mss);

  EXPECT_EQ(server.acquire(Request{}).status, AcquireStatus::InvalidRequest);
  EXPECT_EQ(server.acquire(Request({99})).status,
            AcquireStatus::InvalidRequest);
  // Files 3+4 total 900 bytes > 600-byte cache: never serviceable.
  EXPECT_EQ(server.acquire(Request({3, 4})).status,
            AcquireStatus::Unserviceable);

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.unserviceable, 1u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST(BundleServer, QueueFullBackpressure) {
  FileCatalog catalog({600, 600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.max_queue = 1;
  config.timeout_ms = 5000;
  BundleServer server(config, mss);

  // Hold file 0 leased: only 400 free, nothing evictable.
  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);

  // One waiter occupies the whole queue...
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);

  // ...so the next acquire is rejected with a retry hint, not queued.
  const AcquireResult rejected = server.acquire(Request({2}));
  EXPECT_EQ(rejected.status, AcquireStatus::QueueFull);
  EXPECT_GT(rejected.retry_after_ms, 0u);

  EXPECT_TRUE(server.release(held.lease));
  const AcquireResult unblocked = blocked.get();
  EXPECT_EQ(unblocked.status, AcquireStatus::Ok);
  EXPECT_EQ(server.stats().rejected_full, 1u);
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, TimesOutWhenPinnedBytesNeverFree) {
  FileCatalog catalog({600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.timeout_ms = 50;
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);

  // {1} needs 600 bytes; only 400 free and the lease pins the rest.
  const AcquireResult timed_out = server.acquire(Request({1}));
  EXPECT_EQ(timed_out.status, AcquireStatus::TimedOut);
  EXPECT_EQ(server.stats().timed_out, 1u);
  EXPECT_EQ(server.stats().queue_depth, 0u);  // waiter left the queue
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, TransferFailureExhaustsBoundedRetries) {
  FileCatalog catalog = sized_catalog(3);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.transfer_fail_prob = 1.0;  // every attempt fails
  config.max_retries = 2;
  config.retry_backoff_ms = 1;
  BundleServer server(config, mss);

  const AcquireResult failed = server.acquire(Request({0}));
  EXPECT_EQ(failed.status, AcquireStatus::TransferFailed);
  EXPECT_EQ(failed.retries, 2u);  // retried max_retries times, then gave up

  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.transfer_failures, 1u);
  EXPECT_EQ(stats.transfer_retries, 2u);
  EXPECT_EQ(stats.requests, 0u);      // never admitted
  EXPECT_EQ(stats.used_bytes, 0u);    // failed attempts touch nothing
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, TransferRetriesCanSucceed) {
  FileCatalog catalog = sized_catalog(3);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.transfer_fail_prob = 0.5;
  config.max_retries = 64;  // practically always succeeds eventually
  config.retry_backoff_ms = 1;
  config.seed = 7;
  BundleServer server(config, mss);

  const AcquireResult result = server.acquire(Request({0, 1}));
  ASSERT_EQ(result.status, AcquireStatus::Ok);
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.transfer_failures, 0u);
  EXPECT_EQ(stats.transfer_retries, result.retries);
  EXPECT_TRUE(server.audit().empty());
}

// Shared shape for the admission-order tests. Catalog:
//   file0 = 600 (held lease), file1 = 500 (W1's bundle, 0% resident),
//   file2 = 500 (W2's missing file), file3 = 100 (resident, in W2's
//   bundle, so W2 is ~17% resident by bytes).
// With capacity 1000 and {0} leased, both waiters are blocked (500
// missing > 300 free + 100 evictable); once the lease is released both
// could be admitted, so the configured order alone decides who goes
// first -- and whoever wins pins enough bytes to keep the loser queued
// until a second release.
struct OrderFixture {
  FileCatalog catalog{{600, 500, 500, 100}};
  MassStorageSystem mss{default_tiers(), catalog};
  std::unique_ptr<BundleServer> server;

  explicit OrderFixture(AdmitOrder order) {
    ServiceConfig config;
    config.cache_bytes = 1000;
    config.order = order;
    config.timeout_ms = 20000;
    server = std::make_unique<BundleServer>(config, mss);
    // Make file3 resident but unpinned.
    const AcquireResult warm = server->acquire(Request({3}));
    if (warm.status != AcquireStatus::Ok || !server->release(warm.lease))
      throw std::runtime_error("order fixture warm-up failed");
  }
};

TEST(BundleServer, ValueDensityAdmitsCheapestBundleFirst) {
  OrderFixture fx(AdmitOrder::ValueDensity);
  BundleServer& server = *fx.server;

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);

  auto w1 = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);
  auto w2 = std::async(std::launch::async, [&server] {
    return server.acquire(Request({2, 3}));
  });
  wait_for_queue_depth(server, 2);

  ASSERT_TRUE(server.release(held.lease));
  // W2 arrived later but is partially resident: ValueDensity admits it
  // first while W1 keeps waiting on W2's pinned bytes.
  const AcquireResult dense = w2.get();
  ASSERT_EQ(dense.status, AcquireStatus::Ok);
  EXPECT_EQ(server.stats().queue_depth, 1u);  // W1 is still waiting

  ASSERT_TRUE(server.release(dense.lease));
  const AcquireResult sparse = w1.get();
  ASSERT_EQ(sparse.status, AcquireStatus::Ok);
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, FifoAdmitsInArrivalOrder) {
  OrderFixture fx(AdmitOrder::Fifo);
  BundleServer& server = *fx.server;

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);

  auto w1 = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);
  auto w2 = std::async(std::launch::async, [&server] {
    return server.acquire(Request({2, 3}));
  });
  wait_for_queue_depth(server, 2);

  ASSERT_TRUE(server.release(held.lease));
  // FIFO ignores W2's resident advantage: W1 arrived first, W1 goes
  // first, W2 stays queued behind W1's lease.
  const AcquireResult first = w1.get();
  ASSERT_EQ(first.status, AcquireStatus::Ok);
  EXPECT_EQ(server.stats().queue_depth, 1u);  // W2 is still waiting

  ASSERT_TRUE(server.release(first.lease));
  const AcquireResult second = w2.get();
  ASSERT_EQ(second.status, AcquireStatus::Ok);
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, CloseWakesQueuedWaiters) {
  FileCatalog catalog({600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.timeout_ms = 20000;
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);

  server.close();
  EXPECT_EQ(blocked.get().status, AcquireStatus::Closed);
  EXPECT_EQ(server.acquire(Request({1})).status, AcquireStatus::Closed);
  // Existing leases stay valid across close.
  EXPECT_TRUE(server.release(held.lease));
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, QueueWaitMetricCountsOvertakingAdmissions) {
  FileCatalog catalog({600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.timeout_ms = 20000;
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);
  ASSERT_TRUE(server.release(held.lease));
  ASSERT_EQ(blocked.get().status, AcquireStatus::Ok);
  // The blocked request watched zero other admissions but still counts
  // as one serviced job.
  EXPECT_EQ(server.stats().requests, 2u);
}

// Regression for the retry-after truncation bug: the hint is computed in
// 64 bits (backoff * (1 + queue depth)) and used to be static_cast down
// to the u32 wire field. backoff = 2^31 with one waiter made the hint
// exactly 2^32, which truncated to retry_after_ms == 0 -- "retry
// immediately", the worst possible backpressure signal.
TEST(BundleServer, RetryAfterSaturatesInsteadOfWrapping) {
  FileCatalog catalog({600, 600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.max_queue = 1;
  config.timeout_ms = 5000;
  config.retry_backoff_ms = 2147483648u;  // 2^31
  config.retry_after_cap_ms = 0;          // uncapped: saturate at u32 max
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);

  const AcquireResult rejected = server.acquire(Request({2}));
  ASSERT_EQ(rejected.status, AcquireStatus::QueueFull);
  EXPECT_EQ(rejected.retry_after_ms,
            std::numeric_limits<std::uint32_t>::max());

  EXPECT_TRUE(server.release(held.lease));
  EXPECT_EQ(blocked.get().status, AcquireStatus::Ok);
}

TEST(BundleServer, RetryAfterHonorsConfiguredCap) {
  FileCatalog catalog({600, 600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.max_queue = 1;
  config.timeout_ms = 5000;
  config.retry_backoff_ms = 2147483648u;
  config.retry_after_cap_ms = 1234;
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);

  const AcquireResult rejected = server.acquire(Request({2}));
  ASSERT_EQ(rejected.status, AcquireStatus::QueueFull);
  EXPECT_EQ(rejected.retry_after_ms, 1234u);

  EXPECT_TRUE(server.release(held.lease));
  EXPECT_EQ(blocked.get().status, AcquireStatus::Ok);
}

TEST(BundleServer, MetricsTieToStatsWhenQuiescent) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  BundleServer server(config, mss);

  const AcquireResult miss = server.acquire(Request({0, 1}));
  ASSERT_EQ(miss.status, AcquireStatus::Ok);
  const AcquireResult hit = server.acquire(Request({0, 1}));
  ASSERT_EQ(hit.status, AcquireStatus::Ok);
  ASSERT_TRUE(server.release(miss.lease));
  ASSERT_EQ(server.acquire(Request{}).status, AcquireStatus::InvalidRequest);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.stats, server.stats());

  const auto counter = [&m](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : m.counters)
      if (n == name) return v;
    return 0;
  };
  EXPECT_EQ(counter("acquire.ok"), m.stats.requests);
  EXPECT_EQ(counter("acquire.invalid"), m.stats.invalid);
  EXPECT_EQ(counter("release.ok"), m.stats.leases_released);
  EXPECT_EQ(m.stats.requests, 2u);
  EXPECT_EQ(m.stats.leases_released, 1u);

  const auto histogram = [&m](std::string_view name) -> const obs::Histogram* {
    for (const auto& named : m.histograms)
      if (named.name == name) return &named.hist;
    return nullptr;
  };
  // Every acquire.* duration histogram holds exactly one observation per
  // granted request; lease.hold_us one per release.
  for (const char* name : {"acquire.fetch_us", "acquire.queue_depth",
                           "acquire.queue_us", "acquire.reserve_us",
                           "acquire.total_us"}) {
    const obs::Histogram* h = histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), m.stats.requests) << name;
  }
  const obs::Histogram* hold = histogram("lease.hold_us");
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(hold->count(), m.stats.leases_released);

  // Export order is lexicographic by name (the wire decoder enforces
  // strictly increasing names).
  for (std::size_t i = 1; i < m.histograms.size(); ++i)
    EXPECT_LT(m.histograms[i - 1].name, m.histograms[i].name);
  for (std::size_t i = 1; i < m.counters.size(); ++i)
    EXPECT_LT(m.counters[i - 1].first, m.counters[i].first);
}

TEST(BundleServer, SpansRecordPerRequestStages) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.span_capacity = 16;
  BundleServer server(config, mss);

  const AcquireResult miss = server.acquire(Request({0, 1}));
  ASSERT_EQ(miss.status, AcquireStatus::Ok);
  const AcquireResult hit = server.acquire(Request({0, 1}));
  ASSERT_EQ(hit.status, AcquireStatus::Ok);
  ASSERT_TRUE(server.release(hit.lease));

  const std::vector<obs::ServingSpan> spans = server.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LT(spans[0].request_id, spans[1].request_id);  // monotonic ids
  for (const obs::ServingSpan& s : spans) {
    EXPECT_EQ(s.status, static_cast<std::uint8_t>(AcquireStatus::Ok));
    EXPECT_EQ(s.files, 2u);
    EXPECT_EQ(s.bundle_bytes, 300u);
    EXPECT_GE(s.total_us, s.queue_us);
  }
  EXPECT_EQ(spans[0].missing_bytes, 300u);  // cold miss fetched everything
  EXPECT_EQ(spans[1].missing_bytes, 0u);    // full hit fetched nothing
}

TEST(BundleServer, SpanCapacityZeroDisablesTheRing) {
  FileCatalog catalog = sized_catalog(3);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.span_capacity = 0;
  BundleServer server(config, mss);

  const AcquireResult r = server.acquire(Request({0}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  EXPECT_TRUE(server.spans().empty());
  // The histograms still record; only the raw span ring is disabled.
  const MetricsSnapshot m = server.metrics();
  for (const auto& named : m.histograms) {
    if (named.name == "acquire.total_us") {
      EXPECT_EQ(named.hist.count(), 1u);
    }
  }
}

TEST(BundleServer, QueueFullSpanAndCounter) {
  FileCatalog catalog({600, 600, 600});
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.max_queue = 1;
  config.timeout_ms = 5000;
  BundleServer server(config, mss);

  const AcquireResult held = server.acquire(Request({0}));
  ASSERT_EQ(held.status, AcquireStatus::Ok);
  auto blocked = std::async(std::launch::async, [&server] {
    return server.acquire(Request({1}));
  });
  wait_for_queue_depth(server, 1);
  ASSERT_EQ(server.acquire(Request({2})).status, AcquireStatus::QueueFull);
  EXPECT_TRUE(server.release(held.lease));
  ASSERT_EQ(blocked.get().status, AcquireStatus::Ok);

  const MetricsSnapshot m = server.metrics();
  std::uint64_t queue_full = 0;
  for (const auto& [n, v] : m.counters)
    if (n == "acquire.queue_full") queue_full = v;
  EXPECT_EQ(queue_full, m.stats.rejected_full);
  EXPECT_EQ(queue_full, 1u);

  bool saw_rejection_span = false;
  for (const obs::ServingSpan& s : server.spans()) {
    if (s.status == static_cast<std::uint8_t>(AcquireStatus::QueueFull)) {
      saw_rejection_span = true;
      EXPECT_EQ(s.fetch_us, 0u);  // rejected before any staging
    }
  }
  EXPECT_TRUE(saw_rejection_span);
}

TEST(BundleServer, PausedAdmissionQueuesWithoutAdmitting) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  BundleServer server(config, mss);

  server.set_admission_paused(true);
  EXPECT_TRUE(server.admission_paused());
  auto waiter = std::async(std::launch::async, [&server] {
    return server.acquire(Request({0}));
  });
  wait_for_queue_depth(server, 1);
  // Nothing may be admitted while paused, even though the bundle fits.
  EXPECT_EQ(waiter.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  EXPECT_EQ(server.stats().requests, 0u);

  server.set_admission_paused(false);
  EXPECT_FALSE(server.admission_paused());
  EXPECT_EQ(waiter.get().status, AcquireStatus::Ok);
  EXPECT_EQ(server.stats().requests, 1u);
}

TEST(BundleServer, BatchedDrainAdmitsTheWholeQueueInOnePass) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.admission_batch = 8;
  BundleServer server(config, mss);

  // Park three disjoint single-file acquires in the queue, then resume:
  // whichever waiter drains first admits all three under one lock hold.
  server.set_admission_paused(true);
  std::vector<std::future<AcquireResult>> waiters;
  for (FileId id = 0; id < 3; ++id) {
    waiters.push_back(std::async(std::launch::async, [&server, id] {
      return server.acquire(Request({id}));
    }));
  }
  wait_for_queue_depth(server, 3);
  server.set_admission_paused(false);
  for (auto& waiter : waiters)
    EXPECT_EQ(waiter.get().status, AcquireStatus::Ok);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.stats.requests, 3u);
  const obs::Histogram* batch = nullptr;
  for (const auto& named : m.histograms)
    if (named.name == "admit.batch_size") batch = &named.hist;
  ASSERT_NE(batch, nullptr);
  // Every grant is counted by exactly one drain pass...
  EXPECT_EQ(batch->sum(), m.stats.requests);
  // ...and the parked queue drained as one batch, not three serial
  // passes -- the lock-amortization the batching exists for.
  EXPECT_EQ(batch->max(), 3u);
  EXPECT_GE(batch->count(), 1u);
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServer, SpanStageTimingsSurviveBatchedAdmission) {
  // Spans are stamped by the draining thread (which may not be the
  // waiter's own under batching); stage timings must still be coherent.
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.admission_batch = 8;
  config.span_capacity = 16;
  BundleServer server(config, mss);

  server.set_admission_paused(true);
  std::vector<std::future<AcquireResult>> waiters;
  for (FileId id = 0; id < 3; ++id) {
    waiters.push_back(std::async(std::launch::async, [&server, id] {
      return server.acquire(Request({id}));
    }));
  }
  wait_for_queue_depth(server, 3);
  server.set_admission_paused(false);
  for (auto& waiter : waiters)
    ASSERT_EQ(waiter.get().status, AcquireStatus::Ok);

  const std::vector<obs::ServingSpan> spans = server.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (const obs::ServingSpan& s : spans) {
    EXPECT_EQ(s.status, static_cast<std::uint8_t>(AcquireStatus::Ok));
    EXPECT_EQ(s.files, 1u);
    // All three sat parked in the paused queue for milliseconds, so the
    // queue stage cannot have collapsed to zero...
    EXPECT_GT(s.queue_us, 0u);
    // ...and the stage boundaries stamped by the draining thread must
    // still nest inside the waiter's own end-to-end measurement.
    EXPECT_GE(s.total_us, s.queue_us);
  }
  // Histogram counts tie to stats even when admissions were batched.
  const MetricsSnapshot m = server.metrics();
  for (const auto& named : m.histograms) {
    if (named.name == "acquire.queue_us" || named.name == "acquire.total_us")
      EXPECT_EQ(named.hist.count(), m.stats.requests) << named.name;
  }
}

TEST(BundleServer, SerialAdmissionBatchRecordsSingletonPasses) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.admission_batch = 1;  // the pre-batching serial server
  BundleServer server(config, mss);

  server.set_admission_paused(true);
  std::vector<std::future<AcquireResult>> waiters;
  for (FileId id = 0; id < 3; ++id) {
    waiters.push_back(std::async(std::launch::async, [&server, id] {
      return server.acquire(Request({id}));
    }));
  }
  wait_for_queue_depth(server, 3);
  server.set_admission_paused(false);
  for (auto& waiter : waiters)
    EXPECT_EQ(waiter.get().status, AcquireStatus::Ok);

  const MetricsSnapshot m = server.metrics();
  const obs::Histogram* batch = nullptr;
  for (const auto& named : m.histograms)
    if (named.name == "admit.batch_size") batch = &named.hist;
  ASSERT_NE(batch, nullptr);
  // admission_batch=1 must never admit more than one waiter per pass.
  EXPECT_EQ(batch->max(), 1u);
  EXPECT_EQ(batch->sum(), m.stats.requests);
  EXPECT_EQ(batch->count(), 3u);
}

TEST(BundleServer, ResidentFilesSnapshotIsSortedAndMatchesStats) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  BundleServer server(config, mss);

  const AcquireResult r = server.acquire(Request({3, 0, 1}));
  ASSERT_EQ(r.status, AcquireStatus::Ok);
  const std::vector<FileId> resident = server.resident_files();
  EXPECT_EQ(resident, (std::vector<FileId>{0, 1, 3}));
  EXPECT_EQ(resident.size(), server.stats().resident_files);
}

}  // namespace
}  // namespace fbc::service
