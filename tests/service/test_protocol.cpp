// Wire-protocol tests: every message type round-trips through one frame,
// and malformed frames (truncated, oversized, trailing garbage, unknown
// tags) raise ProtocolError instead of decoding junk.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fbc::service {
namespace {

/// Encodes one frame and decodes it back through header + payload.
Message round_trip(const Message& message) {
  std::vector<std::uint8_t> frame;
  encode_frame(message, &frame);
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  const FrameHeader header =
      decode_header({frame.data(), kFrameHeaderBytes});
  EXPECT_EQ(header.payload_len, frame.size() - kFrameHeaderBytes);
  EXPECT_EQ(header.type, message_type(message));
  return decode_payload(header.type,
                        {frame.data() + kFrameHeaderBytes,
                         frame.size() - kFrameHeaderBytes});
}

TEST(Protocol, AcquireRequestRoundTrips) {
  AcquireRequestMsg msg;
  msg.cookie = 0xdeadbeefcafe1234ULL;
  msg.files = {7, 0, 4294967295u, 12};
  const Message decoded = round_trip(msg);
  const auto& out = std::get<AcquireRequestMsg>(decoded);
  EXPECT_EQ(out.cookie, msg.cookie);
  EXPECT_EQ(out.files, msg.files);
}

TEST(Protocol, AcquireRequestEmptyBundleRoundTrips) {
  const Message decoded = round_trip(AcquireRequestMsg{1, {}});
  EXPECT_TRUE(std::get<AcquireRequestMsg>(decoded).files.empty());
}

TEST(Protocol, AcquireReplyRoundTrips) {
  AcquireReplyMsg msg;
  msg.cookie = 99;
  msg.status = AcquireStatus::QueueFull;
  msg.lease = 0x1122334455667788ULL;
  msg.retry_after_ms = 250;
  msg.retries = 3;
  msg.request_hit = 1;
  const Message decoded = round_trip(msg);
  const auto& out = std::get<AcquireReplyMsg>(decoded);
  EXPECT_EQ(out.cookie, 99u);
  EXPECT_EQ(out.status, AcquireStatus::QueueFull);
  EXPECT_EQ(out.lease, msg.lease);
  EXPECT_EQ(out.retry_after_ms, 250u);
  EXPECT_EQ(out.retries, 3u);
  EXPECT_EQ(out.request_hit, 1u);
}

TEST(Protocol, ReleasePairRoundTrips) {
  const Message request = round_trip(ReleaseRequestMsg{0xabcdef01ULL});
  EXPECT_EQ(std::get<ReleaseRequestMsg>(request).lease, 0xabcdef01ULL);
  const Message reply = round_trip(ReleaseReplyMsg{1});
  EXPECT_EQ(std::get<ReleaseReplyMsg>(reply).ok, 1u);
}

TEST(Protocol, StatsPairRoundTrips) {
  EXPECT_TRUE(std::holds_alternative<StatsRequestMsg>(
      round_trip(StatsRequestMsg{})));

  ServiceStats stats;
  stats.requests = 1;
  stats.request_hits = 2;
  stats.rejected_full = 3;
  stats.timed_out = 4;
  stats.unserviceable = 5;
  stats.invalid = 6;
  stats.transfer_retries = 7;
  stats.transfer_failures = 8;
  stats.leases_granted = 9;
  stats.leases_released = 10;
  stats.active_leases = 11;
  stats.queue_depth = 12;
  stats.evictions = 13;
  stats.bytes_requested = 14;
  stats.bytes_missed = 15;
  stats.bytes_evicted = 16;
  stats.used_bytes = 17;
  stats.capacity_bytes = 18;
  stats.resident_files = 19;
  const Message decoded = round_trip(StatsReplyMsg{stats});
  const auto& out = std::get<StatsReplyMsg>(decoded);
  EXPECT_EQ(out.stats.requests, 1u);
  EXPECT_EQ(out.stats.transfer_failures, 8u);
  EXPECT_EQ(out.stats.queue_depth, 12u);
  EXPECT_EQ(out.stats.resident_files, 19u);
  EXPECT_EQ(out.stats.capacity_bytes, 18u);
}

TEST(Protocol, MessageTypeMatchesVariantOrder) {
  const Message messages[] = {AcquireRequestMsg{}, AcquireReplyMsg{},
                              ReleaseRequestMsg{}, ReleaseReplyMsg{},
                              StatsRequestMsg{},   StatsReplyMsg{}};
  const MsgType expected[] = {MsgType::AcquireRequest, MsgType::AcquireReply,
                              MsgType::ReleaseRequest, MsgType::ReleaseReply,
                              MsgType::StatsRequest,   MsgType::StatsReply};
  for (std::size_t i = 0; i < std::size(messages); ++i)
    EXPECT_EQ(message_type(messages[i]), expected[i]);
}

TEST(Protocol, HeaderRejectsUnknownType) {
  const std::uint8_t frame[kFrameHeaderBytes] = {0, 0, 0, 0, 99};
  EXPECT_THROW((void)decode_header({frame, sizeof frame}), ProtocolError);
  const std::uint8_t zero[kFrameHeaderBytes] = {0, 0, 0, 0, 0};
  EXPECT_THROW((void)decode_header({zero, sizeof zero}), ProtocolError);
}

TEST(Protocol, HeaderRejectsOversizedPayload) {
  std::vector<std::uint8_t> frame;
  encode_frame(ReleaseRequestMsg{1}, &frame);
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  frame[0] = static_cast<std::uint8_t>(huge);
  frame[1] = static_cast<std::uint8_t>(huge >> 8);
  frame[2] = static_cast<std::uint8_t>(huge >> 16);
  frame[3] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_THROW((void)decode_header({frame.data(), kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsTruncation) {
  std::vector<std::uint8_t> frame;
  encode_frame(AcquireRequestMsg{42, {1, 2, 3}}, &frame);
  // Chop the last file id off the payload.
  EXPECT_THROW((void)decode_payload(
                   MsgType::AcquireRequest,
                   {frame.data() + kFrameHeaderBytes,
                    frame.size() - kFrameHeaderBytes - 4}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsTrailingBytes) {
  std::vector<std::uint8_t> frame;
  encode_frame(ReleaseRequestMsg{7}, &frame);
  frame.push_back(0);  // trailing garbage
  EXPECT_THROW((void)decode_payload(MsgType::ReleaseRequest,
                                    {frame.data() + kFrameHeaderBytes,
                                     frame.size() - kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsAbsurdFileCount) {
  // Hand-build an AcquireRequest payload whose count field promises more
  // files than the frame cap allows.
  std::vector<std::uint8_t> payload(12, 0);
  payload[8] = 0xff;
  payload[9] = 0xff;
  payload[10] = 0xff;
  payload[11] = 0xff;
  EXPECT_THROW((void)decode_payload(MsgType::AcquireRequest,
                                    {payload.data(), payload.size()}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsUnknownAcquireStatus) {
  std::vector<std::uint8_t> frame;
  encode_frame(AcquireReplyMsg{}, &frame);
  frame[kFrameHeaderBytes + 8] = 200;  // status byte past the cookie
  EXPECT_THROW((void)decode_payload(MsgType::AcquireReply,
                                    {frame.data() + kFrameHeaderBytes,
                                     frame.size() - kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, EnumNamesAreStable) {
  EXPECT_STREQ(to_string(MsgType::StatsReply), "StatsReply");
  EXPECT_STREQ(to_string(AcquireStatus::QueueFull), "queue-full");
  EXPECT_STREQ(to_string(AcquireStatus::Ok), "ok");
}

}  // namespace
}  // namespace fbc::service
