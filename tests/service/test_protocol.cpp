// Wire-protocol tests: every message type round-trips through one frame,
// and malformed frames (truncated, oversized, trailing garbage, unknown
// tags) raise ProtocolError instead of decoding junk.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace fbc::service {
namespace {

/// Encodes one frame and decodes it back through header + payload.
Message round_trip(const Message& message) {
  std::vector<std::uint8_t> frame;
  encode_frame(message, &frame);
  EXPECT_GE(frame.size(), kFrameHeaderBytes);
  const FrameHeader header =
      decode_header({frame.data(), kFrameHeaderBytes});
  EXPECT_EQ(header.payload_len, frame.size() - kFrameHeaderBytes);
  EXPECT_EQ(header.type, message_type(message));
  return decode_payload(header.type,
                        {frame.data() + kFrameHeaderBytes,
                         frame.size() - kFrameHeaderBytes});
}

TEST(Protocol, AcquireRequestRoundTrips) {
  AcquireRequestMsg msg;
  msg.cookie = 0xdeadbeefcafe1234ULL;
  msg.files = {7, 0, 4294967295u, 12};
  const Message decoded = round_trip(msg);
  const auto& out = std::get<AcquireRequestMsg>(decoded);
  EXPECT_EQ(out.cookie, msg.cookie);
  EXPECT_EQ(out.files, msg.files);
}

TEST(Protocol, AcquireRequestEmptyBundleRoundTrips) {
  const Message decoded = round_trip(AcquireRequestMsg{1, {}});
  EXPECT_TRUE(std::get<AcquireRequestMsg>(decoded).files.empty());
}

TEST(Protocol, AcquireReplyRoundTrips) {
  AcquireReplyMsg msg;
  msg.cookie = 99;
  msg.status = AcquireStatus::QueueFull;
  msg.lease = 0x1122334455667788ULL;
  msg.retry_after_ms = 250;
  msg.retries = 3;
  msg.request_hit = 1;
  const Message decoded = round_trip(msg);
  const auto& out = std::get<AcquireReplyMsg>(decoded);
  EXPECT_EQ(out.cookie, 99u);
  EXPECT_EQ(out.status, AcquireStatus::QueueFull);
  EXPECT_EQ(out.lease, msg.lease);
  EXPECT_EQ(out.retry_after_ms, 250u);
  EXPECT_EQ(out.retries, 3u);
  EXPECT_EQ(out.request_hit, 1u);
}

TEST(Protocol, ReleasePairRoundTrips) {
  const Message request = round_trip(ReleaseRequestMsg{0xabcdef01ULL});
  EXPECT_EQ(std::get<ReleaseRequestMsg>(request).lease, 0xabcdef01ULL);
  const Message reply = round_trip(ReleaseReplyMsg{1});
  EXPECT_EQ(std::get<ReleaseReplyMsg>(reply).ok, 1u);
}

TEST(Protocol, StatsPairRoundTrips) {
  EXPECT_TRUE(std::holds_alternative<StatsRequestMsg>(
      round_trip(StatsRequestMsg{})));

  ServiceStats stats;
  stats.requests = 1;
  stats.request_hits = 2;
  stats.rejected_full = 3;
  stats.timed_out = 4;
  stats.unserviceable = 5;
  stats.invalid = 6;
  stats.transfer_retries = 7;
  stats.transfer_failures = 8;
  stats.leases_granted = 9;
  stats.leases_released = 10;
  stats.active_leases = 11;
  stats.queue_depth = 12;
  stats.evictions = 13;
  stats.bytes_requested = 14;
  stats.bytes_missed = 15;
  stats.bytes_evicted = 16;
  stats.used_bytes = 17;
  stats.capacity_bytes = 18;
  stats.resident_files = 19;
  const Message decoded = round_trip(StatsReplyMsg{stats});
  const auto& out = std::get<StatsReplyMsg>(decoded);
  EXPECT_EQ(out.stats.requests, 1u);
  EXPECT_EQ(out.stats.transfer_failures, 8u);
  EXPECT_EQ(out.stats.queue_depth, 12u);
  EXPECT_EQ(out.stats.resident_files, 19u);
  EXPECT_EQ(out.stats.capacity_bytes, 18u);
}

TEST(Protocol, MessageTypeMatchesVariantOrder) {
  const Message messages[] = {AcquireRequestMsg{}, AcquireReplyMsg{},
                              ReleaseRequestMsg{}, ReleaseReplyMsg{},
                              StatsRequestMsg{},   StatsReplyMsg{},
                              MetricsRequestMsg{}, MetricsReplyMsg{}};
  const MsgType expected[] = {MsgType::AcquireRequest, MsgType::AcquireReply,
                              MsgType::ReleaseRequest, MsgType::ReleaseReply,
                              MsgType::StatsRequest,   MsgType::StatsReply,
                              MsgType::MetricsRequest, MsgType::MetricsReply};
  for (std::size_t i = 0; i < std::size(messages); ++i)
    EXPECT_EQ(message_type(messages[i]), expected[i]);
}

TEST(Protocol, MetricsRequestRoundTrips) {
  EXPECT_TRUE(std::holds_alternative<MetricsRequestMsg>(
      round_trip(MetricsRequestMsg{})));
}

TEST(Protocol, MetricsReplyRoundTrips) {
  MetricsSnapshot m;
  m.stats.requests = 7;
  m.stats.leases_granted = 7;
  m.stats.capacity_bytes = 1 << 30;
  m.counters = {{"acquire.ok", 7}, {"release.ok", 5}};
  obs::Histogram queue;
  for (std::uint64_t v : {0u, 12u, 900u, 13u}) queue.record(v);
  obs::Histogram hold;
  hold.record(1u << 20);
  m.histograms.push_back({"acquire.queue_us", queue});
  m.histograms.push_back({"lease.hold_us", hold});

  const Message decoded = round_trip(MetricsReplyMsg{m});
  const auto& out = std::get<MetricsReplyMsg>(decoded);
  EXPECT_EQ(out.metrics, m);  // exact: stats, counters and histograms
}

TEST(Protocol, MetricsReplyEmptySectionsRoundTrip) {
  const Message decoded = round_trip(MetricsReplyMsg{});
  const auto& out = std::get<MetricsReplyMsg>(decoded);
  EXPECT_TRUE(out.metrics.counters.empty());
  EXPECT_TRUE(out.metrics.histograms.empty());
}

namespace metrics_wire {

/// Payload bytes of an encoded MetricsReply carrying `m`.
std::vector<std::uint8_t> payload_of(const MetricsSnapshot& m) {
  std::vector<std::uint8_t> frame;
  encode_frame(MetricsReplyMsg{m}, &frame);
  return {frame.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
          frame.end()};
}

Message decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload(MsgType::MetricsReply,
                        {payload.data(), payload.size()});
}

/// Snapshot with no counters and one single-sample histogram "h"
/// (value 100, bucket 7). Fixed wire offsets inside the payload:
///   [0,152)  stats (19 x u64)
///   152      counter count (u32) == 0
///   156      histogram count (u8) == 1
///   157      name length (u8) == 1, 158 name byte 'h'
///   159      sum u64, 167 min u64, 175 max u64
///   183      nonzero bucket count (u8) == 1
///   184      bucket index (u8) == 7, 185 bucket count u64 == 1
MetricsSnapshot one_histogram() {
  MetricsSnapshot m;
  obs::Histogram h;
  h.record(100);
  m.histograms.push_back({"h", h});
  return m;
}

}  // namespace metrics_wire

TEST(Protocol, MetricsRejectsCounterNamesOutOfOrder) {
  MetricsSnapshot m;
  m.counters = {{"b", 1}, {"a", 2}};  // decoder requires strict order
  EXPECT_THROW((void)metrics_wire::decode(metrics_wire::payload_of(m)),
               ProtocolError);
  m.counters = {{"dup", 1}, {"dup", 2}};  // duplicates are also rejected
  EXPECT_THROW((void)metrics_wire::decode(metrics_wire::payload_of(m)),
               ProtocolError);
}

TEST(Protocol, MetricsRejectsHistogramNamesOutOfOrder) {
  MetricsSnapshot m;
  obs::Histogram h;
  h.record(1);
  m.histograms.push_back({"b", h});
  m.histograms.push_back({"a", h});
  EXPECT_THROW((void)metrics_wire::decode(metrics_wire::payload_of(m)),
               ProtocolError);
}

TEST(Protocol, MetricsEncoderRejectsOverCapSections) {
  MetricsSnapshot counters;
  for (std::size_t i = 0; i <= kMaxMetricsCounters; ++i)
    counters.counters.emplace_back("c" + std::to_string(i), i);
  std::vector<std::uint8_t> frame;
  EXPECT_THROW(encode_frame(MetricsReplyMsg{counters}, &frame), ProtocolError);

  MetricsSnapshot hists;
  obs::Histogram h;
  h.record(1);
  for (std::size_t i = 0; i <= kMaxMetricsHistograms; ++i)
    hists.histograms.push_back({"h" + std::to_string(i), h});
  frame.clear();
  EXPECT_THROW(encode_frame(MetricsReplyMsg{hists}, &frame), ProtocolError);
}

TEST(Protocol, MetricsEncoderRejectsBadNames) {
  MetricsSnapshot m;
  m.counters = {{"has space", 1}};  // 0x20 is outside graphic ASCII
  std::vector<std::uint8_t> frame;
  EXPECT_THROW(encode_frame(MetricsReplyMsg{m}, &frame), ProtocolError);
}

TEST(Protocol, MetricsRejectsBadBucketIndex) {
  auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[184] = 70;  // >= kHistogramBuckets
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);
}

TEST(Protocol, MetricsRejectsZeroBucketCount) {
  auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  for (std::size_t i = 185; i < 193; ++i) payload[i] = 0;
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);
}

TEST(Protocol, MetricsRejectsInconsistentHistogramState) {
  // min claims bucket 1 while the only occupied bucket is 7: the decode
  // funnels through Histogram::from_state, which must refuse.
  auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[167] = 1;
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);

  // sum below the bucket-occupancy floor is equally impossible.
  payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[159] = 1;
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);
}

TEST(Protocol, MetricsRejectsBadNameByteOnDecode) {
  auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[158] = 0x20;  // space: outside graphic ASCII
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);
}

TEST(Protocol, MetricsRejectsTruncationAndTrailingBytes) {
  const auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  for (std::size_t cut : {std::size_t{1}, std::size_t{9}, std::size_t{40}}) {
    ASSERT_LT(cut, payload.size());
    EXPECT_THROW(
        (void)decode_payload(MsgType::MetricsReply,
                             {payload.data(), payload.size() - cut}),
        ProtocolError);
  }
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW((void)metrics_wire::decode(trailing), ProtocolError);
}

TEST(Protocol, MetricsRejectsOverCapCountsOnDecode) {
  auto payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[152] = 0xff;  // counter count -> 0xffff -> over kMaxMetricsCounters
  payload[153] = 0xff;
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);

  payload = metrics_wire::payload_of(metrics_wire::one_histogram());
  payload[156] = 0xff;  // histogram count over kMaxMetricsHistograms
  EXPECT_THROW((void)metrics_wire::decode(payload), ProtocolError);
}

TEST(Protocol, HeaderRejectsUnknownType) {
  const std::uint8_t frame[kFrameHeaderBytes] = {0, 0, 0, 0, 99};
  EXPECT_THROW((void)decode_header({frame, sizeof frame}), ProtocolError);
  const std::uint8_t zero[kFrameHeaderBytes] = {0, 0, 0, 0, 0};
  EXPECT_THROW((void)decode_header({zero, sizeof zero}), ProtocolError);
}

TEST(Protocol, HeaderRejectsOversizedPayload) {
  std::vector<std::uint8_t> frame;
  encode_frame(ReleaseRequestMsg{1}, &frame);
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  frame[0] = static_cast<std::uint8_t>(huge);
  frame[1] = static_cast<std::uint8_t>(huge >> 8);
  frame[2] = static_cast<std::uint8_t>(huge >> 16);
  frame[3] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_THROW((void)decode_header({frame.data(), kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsTruncation) {
  std::vector<std::uint8_t> frame;
  encode_frame(AcquireRequestMsg{42, {1, 2, 3}}, &frame);
  // Chop the last file id off the payload.
  EXPECT_THROW((void)decode_payload(
                   MsgType::AcquireRequest,
                   {frame.data() + kFrameHeaderBytes,
                    frame.size() - kFrameHeaderBytes - 4}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsTrailingBytes) {
  std::vector<std::uint8_t> frame;
  encode_frame(ReleaseRequestMsg{7}, &frame);
  frame.push_back(0);  // trailing garbage
  EXPECT_THROW((void)decode_payload(MsgType::ReleaseRequest,
                                    {frame.data() + kFrameHeaderBytes,
                                     frame.size() - kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsAbsurdFileCount) {
  // Hand-build an AcquireRequest payload whose count field promises more
  // files than the frame cap allows.
  std::vector<std::uint8_t> payload(12, 0);
  payload[8] = 0xff;
  payload[9] = 0xff;
  payload[10] = 0xff;
  payload[11] = 0xff;
  EXPECT_THROW((void)decode_payload(MsgType::AcquireRequest,
                                    {payload.data(), payload.size()}),
               ProtocolError);
}

TEST(Protocol, PayloadRejectsUnknownAcquireStatus) {
  std::vector<std::uint8_t> frame;
  encode_frame(AcquireReplyMsg{}, &frame);
  frame[kFrameHeaderBytes + 8] = 200;  // status byte past the cookie
  EXPECT_THROW((void)decode_payload(MsgType::AcquireReply,
                                    {frame.data() + kFrameHeaderBytes,
                                     frame.size() - kFrameHeaderBytes}),
               ProtocolError);
}

TEST(Protocol, EnumNamesAreStable) {
  EXPECT_STREQ(to_string(MsgType::StatsReply), "StatsReply");
  EXPECT_STREQ(to_string(AcquireStatus::QueueFull), "queue-full");
  EXPECT_STREQ(to_string(AcquireStatus::Ok), "ok");
}

}  // namespace
}  // namespace fbc::service
