// End-to-end daemon tests over real loopback sockets: the wire protocol
// round-trips through BundleDaemon/BundleClient, concurrent clients are
// served correctly, dead connections get their leases reclaimed, and
// malformed frames drop only the offending connection.
#include "service/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "grid/mss.hpp"
#include "service/client.hpp"
#include "util/rng.hpp"

namespace fbc::service {
namespace {

/// Daemon over a 10-file catalog on an ephemeral port.
struct DaemonFixture {
  FileCatalog catalog{{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}};
  MassStorageSystem mss{default_tiers(), catalog};
  std::unique_ptr<BundleServer> server;
  std::unique_ptr<BundleDaemon> daemon;

  explicit DaemonFixture(Bytes cache_bytes = 3000, std::size_t workers = 4) {
    ServiceConfig config;
    config.cache_bytes = cache_bytes;
    config.timeout_ms = 20000;
    server = std::make_unique<BundleServer>(config, mss);
    daemon = std::make_unique<BundleDaemon>(*server, /*port=*/0, workers);
  }
};

TEST(BundleDaemon, BindsEphemeralPortAndStops) {
  DaemonFixture fx;
  EXPECT_NE(fx.daemon->port(), 0);
  fx.daemon->stop();
  fx.daemon->stop();  // idempotent
}

TEST(BundleDaemon, AcquireReleaseStatsRoundTrip) {
  DaemonFixture fx;
  BundleClient client(fx.daemon->port());

  const AcquireResult miss = client.acquire({0, 1, 2});
  ASSERT_EQ(miss.status, AcquireStatus::Ok);
  EXPECT_FALSE(miss.request_hit);
  EXPECT_NE(miss.lease, 0u);

  const AcquireResult hit = client.acquire({0, 1, 2});
  ASSERT_EQ(hit.status, AcquireStatus::Ok);
  EXPECT_TRUE(hit.request_hit);

  EXPECT_TRUE(client.release(miss.lease));
  EXPECT_TRUE(client.release(hit.lease));
  EXPECT_FALSE(client.release(99999));

  const ServiceStats stats = client.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.request_hits, 1u);
  EXPECT_EQ(stats.active_leases, 0u);
  EXPECT_EQ(stats.used_bytes, 600u);
  EXPECT_TRUE(fx.server->audit().empty());
}

TEST(BundleDaemon, InvalidRequestOverTheWire) {
  DaemonFixture fx;
  BundleClient client(fx.daemon->port());
  EXPECT_EQ(client.acquire({}).status, AcquireStatus::InvalidRequest);
  EXPECT_EQ(client.acquire({12345}).status, AcquireStatus::InvalidRequest);
}

TEST(BundleDaemon, ConcurrentClientsAllSucceed) {
  DaemonFixture fx(/*cache_bytes=*/2000, /*workers=*/6);
  constexpr int kClients = 6;
  constexpr int kRequests = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(kClients), 0);
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fx, &failures, c] {
      BundleClient client(fx.daemon->port());
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < kRequests; ++i) {
        std::vector<FileId> files;
        const std::size_t count = rng.uniform_u64(1, 3);
        for (std::size_t f = 0; f < count; ++f)
          files.push_back(static_cast<FileId>(rng.uniform_u64(0, 4)));
        const AcquireResult r = client.acquire(files);
        if (r.status != AcquireStatus::Ok || !client.release(r.lease))
          ++failures[static_cast<std::size_t>(c)];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t c = 0; c < failures.size(); ++c)
    EXPECT_EQ(failures[c], 0) << c;

  const ServiceStats stats = fx.server->stats();
  EXPECT_EQ(stats.requests, kClients * kRequests);
  EXPECT_EQ(stats.active_leases, 0u);
  EXPECT_EQ(fx.daemon->connections_accepted(), kClients);
  EXPECT_TRUE(fx.server->audit().empty());
}

TEST(BundleDaemon, ReclaimsLeasesOfDeadConnections) {
  DaemonFixture fx;
  {
    BundleClient client(fx.daemon->port());
    const AcquireResult r = client.acquire({0, 1});
    ASSERT_EQ(r.status, AcquireStatus::Ok);
    EXPECT_EQ(fx.server->stats().active_leases, 1u);
    // Client goes away without releasing.
  }
  // The daemon must unpin the dead client's bundle.
  for (int i = 0; i < 2000 && fx.server->stats().active_leases > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fx.server->stats().active_leases, 0u);
  EXPECT_EQ(fx.daemon->leases_reclaimed(), 1u);
  EXPECT_TRUE(fx.server->audit().empty());
}

TEST(BundleDaemon, MalformedFrameDropsOnlyThatConnection) {
  DaemonFixture fx;
  {
    // Raw connection sending an unknown message type.
    UniqueFd raw = connect_loopback(fx.daemon->port());
    const std::uint8_t bogus[kFrameHeaderBytes] = {0, 0, 0, 0, 42};
    ASSERT_TRUE(write_full(raw.get(), bogus, sizeof bogus));
    // The daemon closes the connection: next read sees EOF.
    std::uint8_t byte = 0;
    EXPECT_FALSE(read_full(raw.get(), &byte, 1));
  }
  // A well-behaved client is unaffected.
  BundleClient client(fx.daemon->port());
  const AcquireResult r = client.acquire({4});
  EXPECT_EQ(r.status, AcquireStatus::Ok);
  EXPECT_TRUE(client.release(r.lease));
}

TEST(BundleDaemon, ReplyTypeFromClientIsRejected) {
  DaemonFixture fx;
  UniqueFd raw = connect_loopback(fx.daemon->port());
  ASSERT_TRUE(send_message(raw.get(), ReleaseReplyMsg{1}));
  std::uint8_t byte = 0;
  EXPECT_FALSE(read_full(raw.get(), &byte, 1));  // connection dropped
}

TEST(BundleDaemon, StopWakesBlockedClients) {
  DaemonFixture fx(/*cache_bytes=*/1000);
  BundleClient holder(fx.daemon->port());
  const AcquireResult held = holder.acquire({5});  // 600 B pinned
  ASSERT_EQ(held.status, AcquireStatus::Ok);

  std::thread blocked_client([&fx] {
    try {
      BundleClient client(fx.daemon->port());
      // 900 B cannot fit next to the pinned 600 B: blocks server-side.
      const AcquireResult r = client.acquire({8});
      EXPECT_EQ(r.status, AcquireStatus::Closed);
    } catch (const std::exception&) {
      // The daemon may tear the connection down before the reply frame:
      // also an acceptable way to unblock.
    }
  });
  // Wait until the request is queued, then shut everything down.
  for (int i = 0; i < 2000 && fx.server->stats().queue_depth == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fx.server->stats().queue_depth, 1u);
  fx.daemon->stop();
  blocked_client.join();
}

}  // namespace
}  // namespace fbc::service
