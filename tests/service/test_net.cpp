// FrameReader tests over a Unix socketpair: burst decoding (many frames
// from one write, one recv), the syscall-free buffered_next drain, the
// non-blocking try_next state machine, and mid-frame EOF handling. These
// pin the buffered transport the batched serving loop relies on --
// legacy_wire bypasses this reader entirely, so its behavior is part of
// the bench baseline/optimized contract.
#include "service/net.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "service/protocol.hpp"

namespace fbc::service {
namespace {

/// Connected stream pair; frames written to `a` are read from `b`.
struct SocketPair {
  UniqueFd a;
  UniqueFd b;

  SocketPair() {
    int sv[2] = {-1, -1};
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
      throw NetError("socketpair failed");
    a = UniqueFd(sv[0]);
    b = UniqueFd(sv[1]);
  }
};

AcquireRequestMsg acquire_msg(std::uint64_t cookie) {
  AcquireRequestMsg msg;
  msg.cookie = cookie;
  msg.files = {1, 2, 3};
  return msg;
}

std::uint64_t cookie_of(const Message& message) {
  return std::get<AcquireRequestMsg>(message).cookie;
}

TEST(FrameReader, DecodesBackToBackFramesFromOneWrite) {
  SocketPair pair;
  // Three frames, one write: the reader must split the burst correctly.
  std::vector<std::uint8_t> burst;
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie)
    encode_frame(Message{acquire_msg(cookie)}, &burst);
  ASSERT_TRUE(write_full(pair.a.get(), burst.data(), burst.size()));
  pair.a.reset();  // clean EOF after the burst

  FrameReader reader;
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie) {
    const std::optional<Message> message = reader.next(pair.b.get());
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(cookie_of(*message), cookie);
    EXPECT_EQ(std::get<AcquireRequestMsg>(*message).files,
              (std::vector<FileId>{1, 2, 3}));
  }
  EXPECT_FALSE(reader.next(pair.b.get()).has_value());  // EOF at boundary
}

TEST(FrameReader, BufferedNextDrainsTheBurstWithoutTouchingTheSocket) {
  SocketPair pair;
  std::vector<std::uint8_t> burst;
  for (std::uint64_t cookie = 1; cookie <= 3; ++cookie)
    encode_frame(Message{acquire_msg(cookie)}, &burst);
  ASSERT_TRUE(write_full(pair.a.get(), burst.data(), burst.size()));

  FrameReader reader;
  // The first blocking read pulls everything the kernel has -- on a
  // local socketpair that is the whole burst -- so the remaining frames
  // come out of the buffer without another syscall.
  const std::optional<Message> first = reader.next(pair.b.get());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cookie_of(*first), 1u);

  Message out;
  ASSERT_TRUE(reader.buffered_next(&out));
  EXPECT_EQ(cookie_of(out), 2u);
  ASSERT_TRUE(reader.buffered_next(&out));
  EXPECT_EQ(cookie_of(out), 3u);
  // Burst exhausted: buffered_next reports "nothing complete" instead of
  // blocking or probing the socket.
  EXPECT_FALSE(reader.buffered_next(&out));
}

TEST(FrameReader, TryNextReportsEmptyGotAndEof) {
  SocketPair pair;
  FrameReader reader;
  Message out;

  // Nothing written yet: Empty, not a block.
  EXPECT_EQ(reader.try_next(pair.b.get(), &out), TryRecv::Empty);

  ASSERT_TRUE(send_message(pair.a.get(), Message{acquire_msg(42)}));
  EXPECT_EQ(reader.try_next(pair.b.get(), &out), TryRecv::Got);
  EXPECT_EQ(cookie_of(out), 42u);
  EXPECT_EQ(reader.try_next(pair.b.get(), &out), TryRecv::Empty);

  pair.a.reset();
  EXPECT_EQ(reader.try_next(pair.b.get(), &out), TryRecv::Eof);
}

TEST(FrameReader, MidFrameEofThrows) {
  SocketPair pair;
  std::vector<std::uint8_t> frame;
  encode_frame(Message{acquire_msg(7)}, &frame);
  // Truncate inside the payload: the peer committed to a frame it never
  // finished, which is a transport error, not a clean EOF.
  ASSERT_GT(frame.size(), kFrameHeaderBytes + 2);
  ASSERT_TRUE(
      write_full(pair.a.get(), frame.data(), kFrameHeaderBytes + 2));
  pair.a.reset();

  FrameReader reader;
  EXPECT_THROW((void)reader.next(pair.b.get()), NetError);
}

TEST(FrameReader, AgreesWithUnbufferedRecvMessage) {
  // legacy_wire uses recv_message directly; both decoders must agree on
  // the same bytes.
  SocketPair buffered;
  SocketPair legacy;
  const Message message{acquire_msg(99)};
  ASSERT_TRUE(send_message(buffered.a.get(), message));
  ASSERT_TRUE(send_message(legacy.a.get(), message));

  FrameReader reader;
  const std::optional<Message> via_reader = reader.next(buffered.b.get());
  const std::optional<Message> via_recv = recv_message(legacy.b.get());
  ASSERT_TRUE(via_reader.has_value());
  ASSERT_TRUE(via_recv.has_value());
  EXPECT_EQ(std::get<AcquireRequestMsg>(*via_reader).cookie,
            std::get<AcquireRequestMsg>(*via_recv).cookie);
  EXPECT_EQ(std::get<AcquireRequestMsg>(*via_reader).files,
            std::get<AcquireRequestMsg>(*via_recv).files);
}

}  // namespace
}  // namespace fbc::service
