// Hello-protocol tests: HelloRequest/HelloReply wire round-trips, and
// end-to-end identity discovery against live daemons -- a standalone fbcd
// shard answers role=shard with its configured shard_id, and a BundleDaemon
// fronting a ClusterRouter answers role=router with the shard count.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "grid/mss.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace fbc::service {
namespace {

Message round_trip(const Message& message) {
  std::vector<std::uint8_t> frame;
  encode_frame(message, &frame);
  const FrameHeader header = decode_header({frame.data(), kFrameHeaderBytes});
  EXPECT_EQ(header.type, message_type(message));
  return decode_payload(header.type, {frame.data() + kFrameHeaderBytes,
                                      frame.size() - kFrameHeaderBytes});
}

FileCatalog sized_catalog(std::size_t count) {
  std::vector<Bytes> sizes(count, 100);
  return FileCatalog(std::move(sizes));
}

TEST(Hello, RequestRoundTrips) {
  const Message decoded = round_trip(HelloRequestMsg{});
  EXPECT_TRUE(std::holds_alternative<HelloRequestMsg>(decoded));
}

TEST(Hello, ReplyRoundTrips) {
  HelloReplyMsg msg;
  msg.role = EndpointRole::Router;
  msg.shard_id = 3;
  msg.shard_count = 8;
  msg.shards_down = 2;
  const Message decoded = round_trip(msg);
  const auto& out = std::get<HelloReplyMsg>(decoded);
  EXPECT_EQ(out.role, EndpointRole::Router);
  EXPECT_EQ(out.shard_id, 3u);
  EXPECT_EQ(out.shard_count, 8u);
  EXPECT_EQ(out.shards_down, 2u);
}

TEST(Hello, ReplyRejectsMoreDownThanShards) {
  HelloReplyMsg msg;
  msg.role = EndpointRole::Router;
  msg.shard_count = 2;
  msg.shards_down = 3;
  std::vector<std::uint8_t> frame;
  encode_frame(msg, &frame);
  const FrameHeader header = decode_header({frame.data(), kFrameHeaderBytes});
  EXPECT_THROW(
      (void)decode_payload(header.type, {frame.data() + kFrameHeaderBytes,
                                         frame.size() - kFrameHeaderBytes}),
      ProtocolError);
}

TEST(Hello, StandaloneShardReportsItsId) {
  FileCatalog catalog = sized_catalog(4);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  config.shard_id = 5;
  BundleServer server(config, mss);
  BundleDaemon daemon(server, 0, 2);
  BundleClient client(daemon.port());
  const HelloReplyMsg hello = client.hello();
  EXPECT_EQ(hello.role, EndpointRole::Shard);
  EXPECT_EQ(hello.shard_id, 5u);
  EXPECT_EQ(hello.shard_count, 1u);
}

TEST(Hello, RouterReportsShardCount) {
  FileCatalog catalog = sized_catalog(16);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1000;
  std::vector<std::unique_ptr<BundleServer>> servers;
  std::vector<std::unique_ptr<cluster::Shard>> shards;
  for (std::uint32_t s = 0; s < 3; ++s) {
    ServiceConfig shard_config = config;
    shard_config.shard_id = s;
    servers.push_back(std::make_unique<BundleServer>(shard_config, mss));
    shards.push_back(std::make_unique<cluster::LocalShard>(*servers.back()));
  }
  cluster::ClusterConfig cluster_config;
  cluster_config.shards = 3;
  cluster_config.vnodes = 16;
  cluster::ClusterRouter router(cluster_config, catalog, config.cache_bytes,
                                std::move(shards));
  BundleDaemon daemon(router, 0, 2);
  BundleClient client(daemon.port());
  const HelloReplyMsg hello = client.hello();
  EXPECT_EQ(hello.role, EndpointRole::Router);
  EXPECT_EQ(hello.shard_id, 0u);
  EXPECT_EQ(hello.shard_count, 3u);
  EXPECT_EQ(hello.shards_down, 0u);  // healthy fleet

  // The wire path still serves leases through the router.
  const AcquireResult result = client.acquire({1, 2});
  ASSERT_EQ(result.status, AcquireStatus::Ok);
  EXPECT_TRUE(client.release(result.lease));
}

}  // namespace
}  // namespace fbc::service
