// FetchCoalescer tests: single-flight semantics at the unit level
// (waiters block until the overlapping transfer completes, refcounted
// in-flight files, fast path on no overlap) and at the server level (N
// concurrent misses on one bundle cost exactly one MSS transfer).
#include "service/coalesce.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string_view>
#include <thread>
#include <vector>

#include "grid/mss.hpp"
#include "service/server.hpp"

namespace fbc::service {
namespace {

TEST(FetchCoalescer, FastPathWithoutOverlapDoesNotCount) {
  FetchCoalescer coalescer;
  const std::vector<FileId> files = {1, 2};
  const CoalesceWait wait = coalescer.wait_for(files);
  EXPECT_EQ(wait.waited_files, 0u);
  EXPECT_EQ(coalescer.transfers(), 0u);
  EXPECT_EQ(coalescer.coalesced_waits(), 0u);
  EXPECT_EQ(coalescer.in_flight(), 0u);
}

TEST(FetchCoalescer, WaitersBlockUntilTheTransferCompletes) {
  FetchCoalescer coalescer;
  const std::vector<FileId> staged = {1, 2};
  coalescer.begin_fetch(staged);
  EXPECT_EQ(coalescer.transfers(), 1u);
  EXPECT_EQ(coalescer.in_flight(), 2u);

  std::atomic<int> woke{0};
  std::vector<std::future<CoalesceWait>> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.push_back(std::async(std::launch::async, [&coalescer, &woke] {
      const std::vector<FileId> bundle = {2, 3};  // overlaps on file 2 only
      const CoalesceWait wait = coalescer.wait_for(bundle);
      woke.fetch_add(1, std::memory_order_relaxed);
      return wait;
    }));
  }
  // Every waiter registers in coalesced_waits() before parking; once all
  // three have, none may return until complete_fetch.
  for (int i = 0; i < 2000 && coalescer.coalesced_waits() < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(coalescer.coalesced_waits(), 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(woke.load(), 0);

  coalescer.complete_fetch(staged);
  for (auto& waiter : waiters) {
    const CoalesceWait wait = waiter.get();
    EXPECT_EQ(wait.waited_files, 1u);  // only file 2 overlapped
  }
  EXPECT_EQ(woke.load(), 3);
  EXPECT_EQ(coalescer.transfers(), 1u);
  EXPECT_EQ(coalescer.coalesced_waits(), 3u);
  EXPECT_EQ(coalescer.in_flight(), 0u);
}

TEST(FetchCoalescer, WaitSpansEveryOverlappingTransfer) {
  FetchCoalescer coalescer;
  const std::vector<FileId> first = {1};
  const std::vector<FileId> second = {2};
  coalescer.begin_fetch(first);
  coalescer.begin_fetch(second);
  EXPECT_EQ(coalescer.transfers(), 2u);

  std::atomic<bool> returned{false};
  auto waiter = std::async(std::launch::async, [&coalescer, &returned] {
    const std::vector<FileId> bundle = {1, 2};
    const CoalesceWait wait = coalescer.wait_for(bundle);
    returned.store(true);
    return wait;
  });
  // coalesced_waits() increments before the wait parks, so this pins
  // "the waiter saw BOTH transfers in flight" without a timing guess.
  for (int i = 0; i < 2000 && coalescer.coalesced_waits() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(coalescer.coalesced_waits(), 1u);
  // Completing one of the two transfers must not release the waiter.
  coalescer.complete_fetch(first);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());

  coalescer.complete_fetch(second);
  EXPECT_EQ(waiter.get().waited_files, 2u);
  EXPECT_EQ(coalescer.coalesced_waits(), 1u);
}

TEST(FetchCoalescer, InFlightCountsAreRefcounted) {
  FetchCoalescer coalescer;
  const std::vector<FileId> file = {5};
  coalescer.begin_fetch(file);
  coalescer.begin_fetch(file);  // defensive double-stage of the same file
  EXPECT_EQ(coalescer.in_flight(), 1u);
  coalescer.complete_fetch(file);
  // One owner still staging: the file stays in flight.
  EXPECT_EQ(coalescer.in_flight(), 1u);
  coalescer.complete_fetch(file);
  EXPECT_EQ(coalescer.in_flight(), 0u);
}

/// Catalog with file i of size (i+1)*100 bytes.
FileCatalog sized_catalog(std::size_t count) {
  std::vector<Bytes> sizes;
  sizes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) sizes.push_back((i + 1) * 100);
  return FileCatalog(std::move(sizes));
}

std::uint64_t counter_value(const MetricsSnapshot& m, std::string_view name) {
  for (const auto& [n, v] : m.counters)
    if (n == name) return v;
  return 0;
}

void wait_for_queue_depth(const BundleServer& server, std::uint64_t depth) {
  for (int i = 0; i < 2000; ++i) {
    if (server.stats().queue_depth >= depth) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "queue depth never reached " << depth;
}

/// N concurrent misses on one bundle: pause admission so all N queue up,
/// resume, and check that exactly ONE MSS transfer was issued -- the
/// first admission reserves (and stages) the missing files, the others
/// see them resident and coalesce.
void run_shared_miss(bool coalesce) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  config.coalesce = coalesce;
  BundleServer server(config, mss);

  server.set_admission_paused(true);
  constexpr int kClients = 4;
  std::vector<std::future<AcquireResult>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::async(std::launch::async, [&server] {
      return server.acquire(Request({0, 1}));
    }));
  }
  wait_for_queue_depth(server, kClients);
  server.set_admission_paused(false);

  std::vector<AcquireResult> results;
  for (auto& client : clients) results.push_back(client.get());
  int hits = 0;
  for (const AcquireResult& r : results) {
    ASSERT_EQ(r.status, AcquireStatus::Ok);
    if (r.request_hit) ++hits;
    EXPECT_TRUE(server.release(r.lease));
  }
  // The first admission fetched both files; every later one found them
  // resident (two-phase reserve) and counted as a hit.
  EXPECT_EQ(hits, kClients - 1);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.stats.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(counter_value(m, "fetch.transfers"), 1u);
  EXPECT_EQ(counter_value(m, "acquire.ok"),
            static_cast<std::uint64_t>(kClients));
  // The coalesced-wait histogram and counter move in lock-step whatever
  // the fetch/grant interleaving was; with coalescing off both stay 0.
  std::uint64_t coalesce_count = 0;
  for (const auto& named : m.histograms)
    if (named.name == "acquire.coalesce_us") coalesce_count = named.hist.count();
  EXPECT_EQ(counter_value(m, "acquire.coalesced"), coalesce_count);
  if (!coalesce) EXPECT_EQ(coalesce_count, 0u);
  EXPECT_TRUE(server.audit().empty());
}

TEST(BundleServerCoalesce, ConcurrentMissesShareOneTransfer) {
  run_shared_miss(/*coalesce=*/true);
}

TEST(BundleServerCoalesce, DisablingCoalesceKeepsTransferDedup) {
  // Transfer dedup comes from the two-phase reserve, not the coalescer:
  // with coalescing off there is still exactly one transfer, only the
  // wait-for-arrival guarantee is gone.
  run_shared_miss(/*coalesce=*/false);
}

TEST(BundleServerCoalesce, DistinctBundlesStillTransferIndependently) {
  FileCatalog catalog = sized_catalog(5);
  MassStorageSystem mss(default_tiers(), catalog);
  ServiceConfig config;
  config.cache_bytes = 1500;
  BundleServer server(config, mss);

  const AcquireResult a = server.acquire(Request({0}));
  ASSERT_EQ(a.status, AcquireStatus::Ok);
  const AcquireResult b = server.acquire(Request({1}));
  ASSERT_EQ(b.status, AcquireStatus::Ok);

  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(counter_value(m, "fetch.transfers"), 2u);
}

}  // namespace
}  // namespace fbc::service
