// Lease tests: counted pinning through LeaseTable, the cache-enforced
// lease invariant (evicting a leased file throws), and a concurrent
// stress run proving no admission ever evicts a leased file.
#include "service/lease.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "grid/mss.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

namespace fbc::service {
namespace {

FileCatalog small_catalog() { return FileCatalog({100, 200, 300, 400, 500}); }

TEST(LeaseTable, GrantPinsAndReleaseUnpins) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  ASSERT_TRUE(cache.insert(0));
  ASSERT_TRUE(cache.insert(1));

  LeaseTable leases;
  const LeaseId lease = leases.grant(Request({0, 1}), cache);
  EXPECT_EQ(lease, 1u);
  EXPECT_TRUE(cache.pinned(0));
  EXPECT_TRUE(cache.pinned(1));
  EXPECT_EQ(leases.active(), 1u);
  EXPECT_EQ(leases.granted(), 1u);
  EXPECT_TRUE(leases.covers(0));
  EXPECT_FALSE(leases.covers(2));
  ASSERT_NE(leases.bundle(lease), nullptr);
  EXPECT_EQ(*leases.bundle(lease), Request({0, 1}));

  EXPECT_TRUE(leases.release(lease, cache));
  EXPECT_FALSE(cache.pinned(0));
  EXPECT_EQ(leases.active(), 0u);
  EXPECT_EQ(leases.granted(), 1u);  // granted never decreases
  EXPECT_EQ(leases.bundle(lease), nullptr);
}

TEST(LeaseTable, ReleaseUnknownIdReturnsFalse) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  LeaseTable leases;
  EXPECT_FALSE(leases.release(1, cache));
  ASSERT_TRUE(cache.insert(0));
  const LeaseId lease = leases.grant(Request({0}), cache);
  EXPECT_TRUE(leases.release(lease, cache));
  EXPECT_FALSE(leases.release(lease, cache));  // double release
}

TEST(LeaseTable, OverlappingLeasesStackPins) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  ASSERT_TRUE(cache.insert(0));
  ASSERT_TRUE(cache.insert(1));
  ASSERT_TRUE(cache.insert(2));

  LeaseTable leases;
  const LeaseId a = leases.grant(Request({0, 1}), cache);
  const LeaseId b = leases.grant(Request({1, 2}), cache);
  EXPECT_NE(a, b);

  // File 1 is covered by both leases: releasing one must keep it pinned.
  EXPECT_TRUE(leases.release(a, cache));
  EXPECT_FALSE(cache.pinned(0));
  EXPECT_TRUE(cache.pinned(1));
  EXPECT_TRUE(cache.pinned(2));
  EXPECT_TRUE(leases.covers(1));
  EXPECT_FALSE(leases.covers(0));

  EXPECT_TRUE(leases.release(b, cache));
  EXPECT_FALSE(cache.pinned(1));
}

TEST(LeaseTable, EvictingLeasedFileThrows) {
  // The lease invariant lives in the cache layer: a leased (pinned) file
  // cannot be evicted no matter who asks.
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  ASSERT_TRUE(cache.insert(0));
  LeaseTable leases;
  const LeaseId lease = leases.grant(Request({0}), cache);
  EXPECT_THROW((void)cache.evict(0), std::runtime_error);
  EXPECT_TRUE(leases.release(lease, cache));
  EXPECT_TRUE(cache.evict(0));
}

TEST(LeaseTable, ReleaseAllDropsEveryPin) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  ASSERT_TRUE(cache.insert(0));
  ASSERT_TRUE(cache.insert(1));
  LeaseTable leases;
  (void)leases.grant(Request({0, 1}), cache);
  (void)leases.grant(Request({1}), cache);
  leases.release_all(cache);
  EXPECT_EQ(leases.active(), 0u);
  EXPECT_FALSE(cache.pinned(0));
  EXPECT_FALSE(cache.pinned(1));
}

TEST(ShardedLeaseTable, GrantTakeCoversAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{16}}) {
    SCOPED_TRACE(shards);
    ShardedLeaseTable leases(shards);
    EXPECT_GE(leases.shard_count(), 1u);

    const LeaseId a = leases.grant(Request({0, 1}));
    const LeaseId b = leases.grant(Request({1, 2}));
    EXPECT_EQ(a, 1u);  // ids are dense from 1 regardless of sharding
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(leases.active(), 2u);
    EXPECT_EQ(leases.granted(), 2u);

    EXPECT_TRUE(leases.covers(0));
    EXPECT_EQ(leases.cover_count(1), 2u);  // overlap stacks counts
    EXPECT_EQ(leases.cover_count(3), 0u);
    ASSERT_TRUE(leases.bundle(a).has_value());
    EXPECT_EQ(*leases.bundle(a), Request({0, 1}));
    EXPECT_FALSE(leases.bundle(99).has_value());
    EXPECT_EQ(leases.snapshot().size(), 2u);

    const std::optional<Request> taken = leases.take(a);
    ASSERT_TRUE(taken.has_value());
    EXPECT_EQ(*taken, Request({0, 1}));
    EXPECT_FALSE(leases.take(a).has_value());  // double take
    EXPECT_FALSE(leases.covers(0));
    EXPECT_EQ(leases.cover_count(1), 1u);  // b still covers file 1
    EXPECT_EQ(leases.active(), 1u);
    EXPECT_EQ(leases.granted(), 2u);  // granted never decreases

    const std::vector<Request> remaining = leases.take_all();
    ASSERT_EQ(remaining.size(), 1u);
    EXPECT_EQ(remaining[0], Request({1, 2}));
    EXPECT_EQ(leases.active(), 0u);
    EXPECT_FALSE(leases.covers(2));
    EXPECT_TRUE(leases.snapshot().empty());
  }
}

TEST(ShardedLeaseTable, ConcurrentGrantTakeKeepsCountsConsistent) {
  // Grant/take churn from several threads with concurrent covers() reads:
  // the per-shard locking must keep every counter exact (this test also
  // backs the CI thread-sanitizer leg for the sharded table).
  ShardedLeaseTable leases(4);
  constexpr int kThreads = 4;
  constexpr int kIterations = 500;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  std::thread reader([&leases, &done] {
    while (!done.load()) {
      for (FileId id = 0; id < 8; ++id) (void)leases.covers(id);
      (void)leases.snapshot();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&leases, &failures, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIterations; ++i) {
        std::vector<FileId> files;
        const std::size_t count = rng.uniform_u64(1, 3);
        for (std::size_t f = 0; f < count; ++f)
          files.push_back(static_cast<FileId>(rng.uniform_u64(0, 7)));
        const Request request(std::move(files));
        const LeaseId id = leases.grant(request);
        for (FileId file : request.files)
          if (leases.cover_count(file) == 0) ++failures;
        const std::optional<Request> taken = leases.take(id);
        if (!taken.has_value() || !(*taken == request)) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(leases.active(), 0u);
  EXPECT_EQ(leases.granted(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  for (FileId id = 0; id < 8; ++id) EXPECT_EQ(leases.cover_count(id), 0u);
  EXPECT_TRUE(leases.snapshot().empty());
}

// Concurrent lease-invariant stress: hammer a small, heavily contended
// BundleServer from several threads while a checker thread continuously
// audits. If any admission path could evict a leased file, the cache
// would throw (failing an acquire) or the audit would report violations.
TEST(LeaseInvariant, ConcurrentAcquireReleaseNeverEvictsLeasedFiles) {
  // 10 files of 100..1000 bytes; cache fits only ~25% of total.
  FileCatalog catalog(
      {100, 200, 300, 400, 500, 600, 700, 800, 900, 1000});
  MassStorageSystem mss(default_tiers(), catalog);

  ServiceConfig config;
  config.cache_bytes = 1500;
  config.policy = "optfb";
  config.max_queue = 64;
  config.timeout_ms = 20000;
  BundleServer server(config, mss);

  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &failures, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIterations; ++i) {
        std::vector<FileId> files;
        // Only files 0..4 (100..500 B): any 3-file bundle fits the
        // 1500 B cache, yet concurrent leases still fight for space.
        const std::size_t count = rng.uniform_u64(1, 3);
        for (std::size_t f = 0; f < count; ++f)
          files.push_back(static_cast<FileId>(rng.uniform_u64(0, 4)));
        const AcquireResult r = server.acquire(Request(std::move(files)));
        if (r.status != AcquireStatus::Ok) {
          ++failures;
          continue;
        }
        if (!server.release(r.lease)) ++failures;
      }
    });
  }

  std::atomic<bool> done{false};
  std::thread auditor([&server, &done] {
    while (!done.load()) {
      EXPECT_TRUE(server.audit().empty());
      std::this_thread::yield();
    }
  });

  for (std::thread& t : threads) t.join();
  done.store(true);
  auditor.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = server.stats();
  EXPECT_EQ(stats.requests, kThreads * kIterations);
  EXPECT_EQ(stats.active_leases, 0u);
  EXPECT_EQ(stats.leases_granted, stats.leases_released);
  EXPECT_TRUE(server.audit().empty());
}

}  // namespace
}  // namespace fbc::service
