// Tests for FileCatalog.
#include "cache/catalog.hpp"

#include <gtest/gtest.h>

namespace fbc {
namespace {

TEST(FileCatalog, AddAssignsDenseIds) {
  FileCatalog catalog;
  EXPECT_EQ(catalog.add_file(100), 0u);
  EXPECT_EQ(catalog.add_file(200), 1u);
  EXPECT_EQ(catalog.add_file(300), 2u);
  EXPECT_EQ(catalog.count(), 3u);
}

TEST(FileCatalog, SizeLookup) {
  FileCatalog catalog({10, 20, 30});
  EXPECT_EQ(catalog.size_of(0), 10u);
  EXPECT_EQ(catalog.size_of(2), 30u);
  EXPECT_TRUE(catalog.valid(2));
  EXPECT_FALSE(catalog.valid(3));
  EXPECT_FALSE(catalog.valid(kInvalidFileId));
}

TEST(FileCatalog, BundleBytes) {
  FileCatalog catalog({10, 20, 30, 40});
  const std::vector<FileId> bundle{0, 2, 3};
  EXPECT_EQ(catalog.bundle_bytes(bundle), 80u);
  EXPECT_EQ(catalog.bundle_bytes(std::vector<FileId>{}), 0u);
}

TEST(FileCatalog, RequestBytes) {
  FileCatalog catalog({10, 20, 30});
  EXPECT_EQ(catalog.request_bytes(Request({0, 1})), 30u);
}

TEST(FileCatalog, TotalBytes) {
  FileCatalog catalog({1, 2, 3});
  EXPECT_EQ(catalog.total_bytes(), 6u);
  EXPECT_EQ(FileCatalog{}.total_bytes(), 0u);
}

TEST(FileCatalog, SizesView) {
  FileCatalog catalog({5, 6});
  const auto view = catalog.sizes();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 5u);
  EXPECT_EQ(view[1], 6u);
}

}  // namespace
}  // namespace fbc
