// Tests for DiskCache: residency, byte accounting, capacity enforcement,
// pinning, and a randomized invariant sweep.
#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace fbc {
namespace {

FileCatalog small_catalog() { return FileCatalog({100, 200, 300, 400, 500}); }

TEST(DiskCache, StartsEmpty) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  EXPECT_EQ(cache.capacity(), 1000u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.free_bytes(), 1000u);
  EXPECT_EQ(cache.file_count(), 0u);
  EXPECT_FALSE(cache.contains(0));
}

TEST(DiskCache, RejectsZeroCapacity) {
  FileCatalog catalog = small_catalog();
  EXPECT_THROW(DiskCache(0, catalog), std::invalid_argument);
}

TEST(DiskCache, InsertAndEvictTrackBytes) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  EXPECT_TRUE(cache.insert(0));  // 100
  EXPECT_TRUE(cache.insert(2));  // 300
  EXPECT_EQ(cache.used_bytes(), 400u);
  EXPECT_EQ(cache.file_count(), 2u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(1));

  EXPECT_TRUE(cache.evict(0));
  EXPECT_EQ(cache.used_bytes(), 300u);
  EXPECT_FALSE(cache.contains(0));
}

TEST(DiskCache, DoubleInsertAndEvictAreNoOps) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  EXPECT_TRUE(cache.insert(1));
  EXPECT_FALSE(cache.insert(1));
  EXPECT_EQ(cache.used_bytes(), 200u);
  EXPECT_TRUE(cache.evict(1));
  EXPECT_FALSE(cache.evict(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(DiskCache, InsertBeyondCapacityThrows) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(350, catalog);
  cache.insert(2);  // 300
  EXPECT_THROW(cache.insert(0), std::runtime_error);  // 100 > 50 free
  EXPECT_EQ(cache.used_bytes(), 300u);
}

TEST(DiskCache, InsertUnknownFileThrows) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  EXPECT_THROW(cache.insert(99), std::invalid_argument);
}

TEST(DiskCache, PinnedFilesCannotBeEvicted) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  cache.insert(0);
  cache.pin(0);
  EXPECT_TRUE(cache.pinned(0));
  EXPECT_THROW(cache.evict(0), std::runtime_error);
  cache.unpin(0);
  EXPECT_FALSE(cache.pinned(0));
  EXPECT_TRUE(cache.evict(0));
}

TEST(DiskCache, PinIsCounted) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  cache.insert(0);
  cache.pin(0);
  cache.pin(0);
  cache.unpin(0);
  EXPECT_TRUE(cache.pinned(0));
  cache.unpin(0);
  EXPECT_FALSE(cache.pinned(0));
}

TEST(DiskCache, MissingFilesAndSupports) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  cache.insert(0);
  cache.insert(2);
  const Request r({0, 1, 2, 3});
  EXPECT_EQ(cache.missing_files(r), (std::vector<FileId>{1, 3}));
  EXPECT_EQ(cache.missing_bytes(r), 600u);
  EXPECT_FALSE(cache.supports(r));
  EXPECT_TRUE(cache.supports(Request({0, 2})));
  EXPECT_TRUE(cache.supports(Request{}));
}

TEST(DiskCache, ResidentFilesView) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1000, catalog);
  cache.insert(1);
  cache.insert(3);
  auto resident = cache.resident_files();
  std::vector<FileId> sorted(resident.begin(), resident.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<FileId>{1, 3}));
}

TEST(DiskCache, ClearSparesPinned) {
  FileCatalog catalog = small_catalog();
  DiskCache cache(1500, catalog);
  cache.insert(0);
  cache.insert(1);
  cache.insert(2);
  cache.pin(1);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.used_bytes(), 200u);
}

// Randomized invariant sweep: arbitrary insert/evict sequences keep byte
// accounting and the resident list consistent.
class DiskCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskCacheProperty, RandomOpsPreserveInvariants) {
  Rng rng(GetParam());
  FileCatalog catalog;
  for (int i = 0; i < 50; ++i) catalog.add_file(rng.uniform_u64(1, 100));
  DiskCache cache(2000, catalog);

  for (int step = 0; step < 2000; ++step) {
    const FileId id = static_cast<FileId>(rng.index(catalog.count()));
    if (rng.bernoulli(0.5)) {
      if (catalog.size_of(id) <= cache.free_bytes()) {
        cache.insert(id);
      }
    } else {
      cache.evict(id);
    }
    // Invariant: used == sum of resident sizes, count matches view size.
    Bytes expected = 0;
    for (FileId f : cache.resident_files()) expected += catalog.size_of(f);
    ASSERT_EQ(cache.used_bytes(), expected);
    ASSERT_EQ(cache.file_count(), cache.resident_files().size());
    ASSERT_LE(cache.used_bytes(), cache.capacity());
    // Membership view agrees with contains().
    for (FileId f : cache.resident_files()) ASSERT_TRUE(cache.contains(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskCacheProperty,
                         ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
}  // namespace fbc
