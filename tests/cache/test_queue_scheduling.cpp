// Tests for admission-queue scheduling: batch vs sliding drain, queue-wait
// accounting, and aging-based lockout avoidance (paper §5.2-§5.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "cache/simulator.hpp"
#include "core/opt_file_bundle.hpp"

namespace fbc {
namespace {

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

/// FCFS policy that records service order (inherits default choose_next).
class RecordingPolicy : public ReplacementPolicy {
 public:
  std::string name() const override { return "recording"; }
  void on_job_arrival(const Request& r, const DiskCache&) override {
    served.push_back(r);
  }
  std::vector<FileId> select_victims(const Request& request, Bytes needed,
                                     const DiskCache& cache) override {
    std::vector<FileId> victims;
    Bytes freed = 0;
    for (FileId id : cache.resident_files()) {
      if (freed >= needed) break;
      if (request.contains(id) || cache.pinned(id)) continue;
      victims.push_back(id);
      freed += cache.catalog().size_of(id);
    }
    return victims;
  }
  std::vector<Request> served;
};

/// Serves the queued request with the largest first file id; with a
/// sliding queue this permanently starves small ids.
class GreedyMaxPolicy : public RecordingPolicy {
 public:
  using ReplacementPolicy::choose_next;
  std::size_t choose_next(std::span<const Request> queue,
                          const DiskCache&) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (queue[i].files.front() > queue[best].files.front()) best = i;
    }
    return best;
  }
};

TEST(QueueScheduling, FcfsWaitsAreZero) {
  FileCatalog catalog = unit_catalog(6);
  RecordingPolicy policy;
  SimulatorConfig config{.cache_bytes = 600};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 6; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_DOUBLE_EQ(result.metrics.mean_queue_wait(), 0.0);
  EXPECT_DOUBLE_EQ(result.metrics.max_queue_wait(), 0.0);
}

TEST(QueueScheduling, SlidingModeServesEveryJob) {
  FileCatalog catalog = unit_catalog(10);
  RecordingPolicy policy;
  SimulatorConfig config{.cache_bytes = 1000,
                         .queue_length = 4,
                         .queue_mode = QueueMode::Sliding};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 10; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 10u);
  EXPECT_EQ(policy.served.size(), 10u);
}

TEST(QueueScheduling, SlidingRefillsAfterEachService) {
  // With sliding drain and a reverse-ish scheduler, later stream entries
  // become eligible earlier than in batch mode. GreedyMaxPolicy on the
  // stream 0..5 (queue 3): picks 2, refills 3; picks 3, refills 4; ...
  FileCatalog catalog = unit_catalog(6);
  GreedyMaxPolicy policy;
  SimulatorConfig config{.cache_bytes = 600,
                         .queue_length = 3,
                         .queue_mode = QueueMode::Sliding};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 6; ++i) jobs.push_back(Request({i}));
  simulate(config, catalog, policy, jobs);
  std::vector<Request> expected{Request({2}), Request({3}), Request({4}),
                                Request({5}), Request({1}), Request({0})};
  EXPECT_EQ(policy.served, expected);
}

TEST(QueueScheduling, BatchModeBoundsWaitByBatch) {
  // In batch mode every batch drains fully, so no job can wait more than
  // 2 * (queue_length - 1) services past its FCFS position.
  FileCatalog catalog = unit_catalog(12);
  GreedyMaxPolicy policy;
  SimulatorConfig config{.cache_bytes = 1200,
                         .queue_length = 4,
                         .queue_mode = QueueMode::Batch};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 12; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_LE(result.metrics.max_queue_wait(), 6.0);
}

TEST(QueueScheduling, SlidingLockoutShowsInMaxWait) {
  // Job {0} is the lowest-id request in a long stream; GreedyMaxPolicy
  // starves it until the stream runs dry.
  FileCatalog catalog = unit_catalog(40);
  GreedyMaxPolicy policy;
  SimulatorConfig config{.cache_bytes = 4000,
                         .queue_length = 5,
                         .queue_mode = QueueMode::Sliding};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 40; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  // {0} is served last: it waited through all 39 other services.
  EXPECT_EQ(policy.served.back(), Request({0}));
  EXPECT_GE(result.metrics.max_queue_wait(), 39.0);
}

TEST(QueueScheduling, AgingBoundsOptFbWaits) {
  // A popular request dominates an unpopular one under pure value order;
  // aging caps the unpopular request's wait.
  FileCatalog catalog = unit_catalog(4);
  // Stream: rare {2,3} early, then a long run of popular {0,1}. Both
  // bundles have the same adjusted size, so once {0,1} accumulates any
  // popularity the rare request always ranks below it.
  std::vector<Request> jobs;
  jobs.push_back(Request({0, 1}));
  jobs.push_back(Request({0, 1}));
  jobs.push_back(Request({2, 3}));  // the rare one
  for (int i = 0; i < 40; ++i) jobs.push_back(Request({0, 1}));

  auto max_wait_with_aging = [&](double aging) {
    OptFileBundleConfig pconfig;
    pconfig.aging_factor = aging;
    OptFileBundlePolicy policy(catalog, pconfig);
    SimulatorConfig config{.cache_bytes = 400,
                           .queue_length = 5,
                           .queue_mode = QueueMode::Sliding};
    return simulate(config, catalog, policy, jobs).metrics.max_queue_wait();
  };
  const double without = max_wait_with_aging(0.0);
  const double with = max_wait_with_aging(2.0);
  EXPECT_LT(with, without);
}

TEST(QueueScheduling, AgingMonotoneReducesLockout) {
  // Same stream as AgingBoundsOptFbWaits: stronger aging never makes the
  // worst wait longer, and a strong factor beats pure value order.
  FileCatalog catalog = unit_catalog(4);
  std::vector<Request> jobs;
  jobs.push_back(Request({0, 1}));
  jobs.push_back(Request({0, 1}));
  jobs.push_back(Request({2, 3}));  // the rare one
  for (int i = 0; i < 40; ++i) jobs.push_back(Request({0, 1}));

  auto max_wait_with_aging = [&](double aging) {
    OptFileBundleConfig pconfig;
    pconfig.aging_factor = aging;
    OptFileBundlePolicy policy(catalog, pconfig);
    SimulatorConfig config{.cache_bytes = 400,
                           .queue_length = 5,
                           .queue_mode = QueueMode::Sliding};
    return simulate(config, catalog, policy, jobs).metrics.max_queue_wait();
  };
  const double none = max_wait_with_aging(0.0);
  const double weak = max_wait_with_aging(0.5);
  const double strong = max_wait_with_aging(4.0);
  EXPECT_LE(weak, none);
  EXPECT_LE(strong, weak);
  EXPECT_LT(strong, none);
  // Strong aging promotes the rare request within a few refills instead
  // of letting it sit until the popular run ends.
  EXPECT_LE(strong, 10.0);
}

TEST(QueueScheduling, SlidingServesEveryDuplicateOfAStarvedRequest) {
  // Duplicates of the starving request must each be serviced once -- a
  // scheduler that conflates identical queued requests would drop some.
  FileCatalog catalog = unit_catalog(20);
  GreedyMaxPolicy policy;
  SimulatorConfig config{.cache_bytes = 2000,
                         .queue_length = 4,
                         .queue_mode = QueueMode::Sliding};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 18; ++i) {
    jobs.push_back(i % 3 == 0 ? Request({0}) : Request({i}));
  }
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), jobs.size());
  EXPECT_EQ(policy.served.size(), jobs.size());
  const auto zeros = static_cast<std::size_t>(
      std::count(policy.served.begin(), policy.served.end(), Request({0})));
  EXPECT_EQ(zeros, 6u);
}

TEST(QueueScheduling, SlidingQueueLengthNeverExceeded) {
  // The sliding drain must top the queue up to at most queue_length.
  class QueueLenPolicy : public RecordingPolicy {
   public:
    using ReplacementPolicy::choose_next;
    std::size_t choose_next(std::span<const Request> queue,
                            const DiskCache&) override {
      max_seen = std::max(max_seen, queue.size());
      return 0;
    }
    std::size_t max_seen = 0;
  };
  FileCatalog catalog = unit_catalog(15);
  QueueLenPolicy policy;
  SimulatorConfig config{.cache_bytes = 1500,
                         .queue_length = 4,
                         .queue_mode = QueueMode::Sliding};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 15; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 15u);
  EXPECT_LE(policy.max_seen, 4u);
  EXPECT_GE(policy.max_seen, 2u);  // the queue really was batched
}

TEST(QueueScheduling, WaitsMergeAcrossMetrics) {
  CacheMetrics a, b;
  a.record_queue_wait(2.0);
  b.record_queue_wait(6.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean_queue_wait(), 4.0);
  EXPECT_DOUBLE_EQ(a.max_queue_wait(), 6.0);
}

}  // namespace
}  // namespace fbc
