// Tests for the Simulator driver: the service protocol, metric accounting,
// warm-up separation, policy-contract enforcement and the batched queue.
#include "cache/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "policies/lru.hpp"

namespace fbc {
namespace {

/// Evicts resident non-requested files in ascending id order. Predictable
/// for scripted assertions.
class AscendingPolicy : public ReplacementPolicy {
 public:
  std::string name() const override { return "ascending"; }
  std::vector<FileId> select_victims(const Request& request, Bytes needed,
                                     const DiskCache& cache) override {
    std::vector<FileId> resident(cache.resident_files().begin(),
                                 cache.resident_files().end());
    std::sort(resident.begin(), resident.end());
    std::vector<FileId> victims;
    Bytes freed = 0;
    for (FileId id : resident) {
      if (freed >= needed) break;
      if (request.contains(id)) continue;
      victims.push_back(id);
      freed += cache.catalog().size_of(id);
    }
    return victims;
  }
};

/// A policy that misbehaves in a configurable way, to test contract checks.
class MisbehavingPolicy : public ReplacementPolicy {
 public:
  enum class Mode { EvictRequested, EvictNonResident, FreeTooLittle };
  explicit MisbehavingPolicy(Mode mode) : mode_(mode) {}
  std::string name() const override { return "misbehaving"; }
  std::vector<FileId> select_victims(const Request& request, Bytes,
                                     const DiskCache& cache) override {
    switch (mode_) {
      case Mode::EvictRequested:
        return {request.files.front()};
      case Mode::EvictNonResident: {
        for (FileId id = 0; id < cache.catalog().count(); ++id) {
          if (!cache.contains(id) && !request.contains(id)) return {id};
        }
        return {};
      }
      case Mode::FreeTooLittle:
        return {};
    }
    return {};
  }

 private:
  Mode mode_;
};

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(Simulator, ColdMissesThenHit) {
  FileCatalog catalog = unit_catalog(4);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 400};
  std::vector<Request> jobs{Request({0, 1}), Request({2}), Request({0, 1})};
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 3u);
  EXPECT_EQ(result.metrics.request_hits(), 1u);  // the repeat of {0,1}
  EXPECT_EQ(result.metrics.bytes_requested(), 500u);
  EXPECT_EQ(result.metrics.bytes_missed(), 300u);
  EXPECT_EQ(result.decisions, 0u);  // everything fit without eviction
}

TEST(Simulator, EvictionPathFreesSpace) {
  FileCatalog catalog = unit_catalog(5);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 300};  // holds 3 unit files
  std::vector<Request> jobs{Request({0, 1, 2}), Request({3, 4})};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_EQ(result.decisions, 1u);
  EXPECT_EQ(result.victims, 2u);  // evicted files 0 and 1
  EXPECT_TRUE(sim.cache().contains(2));
  EXPECT_TRUE(sim.cache().contains(3));
  EXPECT_TRUE(sim.cache().contains(4));
  EXPECT_EQ(result.metrics.evictions(), 2u);
  EXPECT_EQ(result.metrics.bytes_evicted(), 200u);
}

TEST(Simulator, PartialHitAccounting) {
  FileCatalog catalog = unit_catalog(3);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs{Request({0}), Request({0, 1})};
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.file_hits(), 1u);       // file 0 on job 2
  EXPECT_EQ(result.metrics.files_requested(), 3u);
  EXPECT_EQ(result.metrics.bytes_missed(), 200u);  // 100 + 100
}

TEST(Simulator, UnserviceableRequestIsSkipped) {
  FileCatalog catalog = unit_catalog(5);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 250};
  std::vector<Request> jobs{Request({0, 1, 2}),  // 300 > 250: skipped
                            Request({3})};
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.unserviceable(), 1u);
  EXPECT_EQ(result.metrics.jobs(), 1u);
}

TEST(Simulator, WarmupJobsRecordedSeparately) {
  FileCatalog catalog = unit_catalog(4);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 400, .queue_length = 1,
                         .warmup_jobs = 2};
  std::vector<Request> jobs{Request({0}), Request({1}), Request({0}),
                            Request({1})};
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.warmup.jobs(), 2u);
  EXPECT_EQ(result.metrics.jobs(), 2u);
  // Post-warm-up jobs are all hits.
  EXPECT_EQ(result.metrics.request_hits(), 2u);
  EXPECT_EQ(result.warmup.request_hits(), 0u);
}

TEST(Simulator, ContractEvictRequestedThrows) {
  FileCatalog catalog = unit_catalog(4);
  MisbehavingPolicy policy(MisbehavingPolicy::Mode::EvictRequested);
  SimulatorConfig config{.cache_bytes = 200};
  std::vector<Request> jobs{Request({0, 1}), Request({1, 2})};
  EXPECT_THROW(simulate(config, catalog, policy, jobs),
               PolicyContractViolation);
}

TEST(Simulator, ContractEvictNonResidentThrows) {
  FileCatalog catalog = unit_catalog(5);
  MisbehavingPolicy policy(MisbehavingPolicy::Mode::EvictNonResident);
  SimulatorConfig config{.cache_bytes = 200};
  std::vector<Request> jobs{Request({0, 1}), Request({2, 3})};
  EXPECT_THROW(simulate(config, catalog, policy, jobs),
               PolicyContractViolation);
}

TEST(Simulator, ContractFreeTooLittleThrows) {
  FileCatalog catalog = unit_catalog(4);
  MisbehavingPolicy policy(MisbehavingPolicy::Mode::FreeTooLittle);
  SimulatorConfig config{.cache_bytes = 200};
  std::vector<Request> jobs{Request({0, 1}), Request({2, 3})};
  EXPECT_THROW(simulate(config, catalog, policy, jobs),
               PolicyContractViolation);
}

TEST(Simulator, RunTwiceThrows) {
  FileCatalog catalog = unit_catalog(2);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 200};
  std::vector<Request> jobs{Request({0})};
  Simulator sim(config, catalog, policy);
  sim.run(jobs);
  EXPECT_THROW(sim.run(jobs), std::logic_error);
}

TEST(Simulator, ZeroQueueLengthRejected) {
  FileCatalog catalog = unit_catalog(2);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 200, .queue_length = 0};
  EXPECT_THROW(Simulator(config, catalog, policy), std::invalid_argument);
}

/// Policy that serves the queue in reverse order (last queued first) and
/// records the order in which jobs were actually serviced.
class ReversePolicy : public AscendingPolicy {
 public:
  using ReplacementPolicy::choose_next;
  std::size_t choose_next(std::span<const Request> queue,
                          const DiskCache&) override {
    return queue.size() - 1;
  }
  void on_job_arrival(const Request& request, const DiskCache&) override {
    served.push_back(request);
  }
  std::vector<Request> served;
};

TEST(Simulator, QueueModeServesEveryJob) {
  FileCatalog catalog = unit_catalog(6);
  AscendingPolicy policy;
  SimulatorConfig config{.cache_bytes = 600, .queue_length = 4};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 6; ++i) jobs.push_back(Request({i}));
  const SimulationResult result = simulate(config, catalog, policy, jobs);
  EXPECT_EQ(result.metrics.jobs(), 6u);
}

TEST(Simulator, QueueModeHonorsChooseNext) {
  // Five jobs, queue of 3: the first batch {0,1,2} is drained in reverse,
  // then the remaining batch {3,4} in reverse.
  FileCatalog catalog = unit_catalog(5);
  ReversePolicy policy;
  SimulatorConfig config{.cache_bytes = 100, .queue_length = 3};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 5; ++i) jobs.push_back(Request({i}));
  simulate(config, catalog, policy, jobs);
  std::vector<Request> expected{Request({2}), Request({1}), Request({0}),
                                Request({4}), Request({3})};
  EXPECT_EQ(policy.served, expected);
}

/// Policy whose choose_next returns an out-of-range index.
class BadChooserPolicy : public AscendingPolicy {
 public:
  using ReplacementPolicy::choose_next;
  std::size_t choose_next(std::span<const Request> queue,
                          const DiskCache&) override {
    return queue.size();  // out of range
  }
};

TEST(Simulator, QueueModeValidatesChooseNext) {
  FileCatalog catalog = unit_catalog(2);
  BadChooserPolicy policy;
  SimulatorConfig config{.cache_bytes = 200, .queue_length = 2};
  std::vector<Request> jobs{Request({0}), Request({1})};
  EXPECT_THROW(simulate(config, catalog, policy, jobs),
               PolicyContractViolation);
}

TEST(Simulator, CapacityNeverExceededUnderChurn) {
  FileCatalog catalog;
  for (Bytes i = 0; i < 20; ++i) catalog.add_file(50 + 10 * (i % 5));
  LruPolicy policy;
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs;
  for (FileId i = 0; i < 100; ++i) {
    jobs.push_back(Request({static_cast<FileId>(i % 20),
                            static_cast<FileId>((i * 7) % 20)}));
  }
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_EQ(result.metrics.jobs(), 100u);
  EXPECT_LE(sim.cache().used_bytes(), sim.cache().capacity());
}

}  // namespace
}  // namespace fbc
