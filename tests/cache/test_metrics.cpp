// Tests for CacheMetrics counters and derived ratios.
#include "cache/metrics.hpp"

#include <gtest/gtest.h>

namespace fbc {
namespace {

TEST(CacheMetrics, EmptyRatiosAreZero) {
  CacheMetrics m;
  EXPECT_EQ(m.jobs(), 0u);
  EXPECT_DOUBLE_EQ(m.request_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.byte_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.file_hit_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(m.avg_bytes_moved_per_job(), 0.0);
}

TEST(CacheMetrics, HitAndMissAccounting) {
  CacheMetrics m;
  m.record_job(/*requested=*/100, /*missed=*/0, /*files=*/2, /*hits=*/2);
  m.record_job(/*requested=*/100, /*missed=*/60, /*files=*/2, /*hits=*/1);
  EXPECT_EQ(m.jobs(), 2u);
  EXPECT_EQ(m.request_hits(), 1u);
  EXPECT_DOUBLE_EQ(m.request_hit_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.request_miss_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(m.file_hit_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(m.byte_miss_ratio(), 60.0 / 200.0);
  EXPECT_DOUBLE_EQ(m.byte_hit_ratio(), 1.0 - 60.0 / 200.0);
  EXPECT_DOUBLE_EQ(m.avg_bytes_moved_per_job(), 30.0);
}

TEST(CacheMetrics, RatioIdentities) {
  CacheMetrics m;
  m.record_job(500, 123, 5, 3);
  m.record_job(300, 0, 1, 1);
  m.record_job(700, 700, 4, 0);
  EXPECT_DOUBLE_EQ(m.request_hit_ratio() + m.request_miss_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(m.byte_hit_ratio() + m.byte_miss_ratio(), 1.0);
  EXPECT_GE(m.byte_miss_ratio(), 0.0);
  EXPECT_LE(m.byte_miss_ratio(), 1.0);
}

TEST(CacheMetrics, PrefetchCountsAsMovedBytesNotAsMisses) {
  CacheMetrics m;
  m.record_job(1000, 200, 2, 1);
  m.record_prefetch(300);
  EXPECT_EQ(m.bytes_prefetched(), 300u);
  // The paper's byte miss ratio is demand-only (§1.2)...
  EXPECT_DOUBLE_EQ(m.byte_miss_ratio(), 200.0 / 1000.0);
  // ...while total traffic counts the speculative loads too.
  EXPECT_DOUBLE_EQ(m.moved_bytes_ratio(), 500.0 / 1000.0);
  EXPECT_DOUBLE_EQ(m.avg_bytes_moved_per_job(), 500.0);
}

TEST(CacheMetrics, EvictionCounters) {
  CacheMetrics m;
  m.record_eviction(100);
  m.record_eviction(250);
  EXPECT_EQ(m.evictions(), 2u);
  EXPECT_EQ(m.bytes_evicted(), 350u);
}

TEST(CacheMetrics, UnserviceableCounter) {
  CacheMetrics m;
  m.record_unserviceable();
  m.record_unserviceable();
  EXPECT_EQ(m.unserviceable(), 2u);
  EXPECT_EQ(m.jobs(), 0u);  // skipped jobs are not serviced jobs
}

TEST(CacheMetrics, MergeAddsEverything) {
  CacheMetrics a, b;
  a.record_job(100, 50, 2, 1);
  a.record_eviction(10);
  b.record_job(200, 0, 3, 3);
  b.record_prefetch(5);
  b.record_unserviceable();
  a.merge(b);
  EXPECT_EQ(a.jobs(), 2u);
  EXPECT_EQ(a.request_hits(), 1u);
  EXPECT_EQ(a.bytes_requested(), 300u);
  EXPECT_EQ(a.bytes_missed(), 50u);
  EXPECT_EQ(a.bytes_prefetched(), 5u);
  EXPECT_EQ(a.evictions(), 1u);
  EXPECT_EQ(a.unserviceable(), 1u);
  EXPECT_EQ(a.files_requested(), 5u);
  EXPECT_EQ(a.file_hits(), 4u);
}

TEST(CacheMetrics, SummaryMentionsKeyFields) {
  CacheMetrics m;
  m.record_job(100, 50, 1, 0);
  const std::string s = m.summary();
  EXPECT_NE(s.find("jobs=1"), std::string::npos);
  EXPECT_NE(s.find("byte_miss="), std::string::npos);
}

}  // namespace
}  // namespace fbc
