// Tests for Request canonicalization, identity and hashing.
#include "cache/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace fbc {
namespace {

TEST(Request, CanonicalizeSortsAndDedups) {
  Request r({5, 3, 5, 1, 3});
  EXPECT_EQ(r.files, (std::vector<FileId>{1, 3, 5}));
  EXPECT_TRUE(r.is_canonical());
  EXPECT_EQ(r.size(), 3u);
}

TEST(Request, EmptyIsCanonical) {
  Request r;
  EXPECT_TRUE(r.is_canonical());
  EXPECT_TRUE(r.empty());
}

TEST(Request, IsCanonicalDetectsViolations) {
  Request r;
  r.files = {3, 1};  // bypass the constructor on purpose
  EXPECT_FALSE(r.is_canonical());
  r.files = {1, 1};
  EXPECT_FALSE(r.is_canonical());
  r.files = {1, 2, 9};
  EXPECT_TRUE(r.is_canonical());
}

TEST(Request, ContainsUsesBinarySearch) {
  Request r({10, 20, 30});
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(30));
  EXPECT_FALSE(r.contains(15));
  EXPECT_FALSE(r.contains(0));
}

TEST(Request, IdentityIsTheCanonicalSet) {
  EXPECT_EQ(Request({1, 2, 3}), Request({3, 2, 1}));
  EXPECT_EQ(Request({1, 1, 2}), Request({2, 1}));
  EXPECT_NE(Request({1, 2}), Request({1, 2, 3}));
}

TEST(RequestHash, EqualRequestsHashEqual) {
  RequestHash h;
  EXPECT_EQ(h(Request({4, 7, 9})), h(Request({9, 7, 4})));
}

TEST(RequestHash, DistinctRequestsUsuallyDiffer) {
  RequestHash h;
  std::unordered_set<std::size_t> hashes;
  for (FileId a = 0; a < 30; ++a) {
    for (FileId b = a + 1; b < 30; ++b) {
      hashes.insert(h(Request({a, b})));
    }
  }
  // 435 pairs; a couple of collisions would be tolerable, mass collisions
  // indicate a broken hash.
  EXPECT_GT(hashes.size(), 425u);
}

TEST(RequestHash, WorksAsUnorderedMapKey) {
  std::unordered_set<Request, RequestHash> set;
  set.insert(Request({1, 2}));
  set.insert(Request({2, 1}));  // duplicate
  set.insert(Request({3}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Request({1, 2})));
}

TEST(Request, ToStringFormat) {
  EXPECT_EQ(Request{}.to_string(), "{}");
  EXPECT_EQ(Request({7}).to_string(), "{7}");
  EXPECT_EQ(Request({3, 1}).to_string(), "{1, 3}");
}

TEST(HashFileSpan, MatchesRequestHash) {
  Request r({2, 4, 6});
  EXPECT_EQ(hash_file_span(r.files), RequestHash{}(r));
}

}  // namespace
}  // namespace fbc
