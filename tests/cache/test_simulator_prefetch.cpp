// Tests for the simulator's prefetch admission path: speculative loads
// requested by a policy are admitted only into free space, never evict,
// and are charged to the prefetch counters.
#include <gtest/gtest.h>

#include "cache/simulator.hpp"

namespace fbc {
namespace {

/// FCFS-evicting policy that requests a fixed prefetch list after every
/// serviced job.
class PrefetchingPolicy : public ReplacementPolicy {
 public:
  std::string name() const override { return "prefetching-stub"; }

  std::vector<FileId> select_victims(const Request& request, Bytes needed,
                                     const DiskCache& cache) override {
    std::vector<FileId> victims;
    Bytes freed = 0;
    for (FileId id : cache.resident_files()) {
      if (freed >= needed) break;
      if (request.contains(id) || cache.pinned(id)) continue;
      victims.push_back(id);
      freed += cache.catalog().size_of(id);
    }
    return victims;
  }

  std::vector<FileId> prefetch(const Request&, const DiskCache&) override {
    return wanted;
  }

  std::vector<FileId> wanted;
};

FileCatalog unit_catalog(std::size_t n) {
  FileCatalog catalog;
  for (std::size_t i = 0; i < n; ++i) catalog.add_file(100);
  return catalog;
}

TEST(SimulatorPrefetch, LoadsIntoFreeSpaceAndCharges) {
  FileCatalog catalog = unit_catalog(4);
  PrefetchingPolicy policy;
  policy.wanted = {2, 3};
  SimulatorConfig config{.cache_bytes = 400};
  std::vector<Request> jobs{Request({0})};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_TRUE(sim.cache().contains(2));
  EXPECT_TRUE(sim.cache().contains(3));
  EXPECT_EQ(result.metrics.bytes_prefetched(), 200u);
  // Demand metrics are unaffected.
  EXPECT_EQ(result.metrics.bytes_missed(), 100u);
  EXPECT_DOUBLE_EQ(result.metrics.byte_miss_ratio(), 1.0);
}

TEST(SimulatorPrefetch, NeverEvictsToMakeRoom) {
  FileCatalog catalog = unit_catalog(4);
  PrefetchingPolicy policy;
  policy.wanted = {2, 3};
  SimulatorConfig config{.cache_bytes = 200};  // room for job + 1 prefetch
  std::vector<Request> jobs{Request({0})};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(sim.cache().contains(2));   // fit in the leftover 100
  EXPECT_FALSE(sim.cache().contains(3));  // skipped, not forced
  EXPECT_EQ(result.metrics.bytes_prefetched(), 100u);
  EXPECT_EQ(result.metrics.evictions(), 0u);
}

TEST(SimulatorPrefetch, AlreadyResidentIsFree) {
  FileCatalog catalog = unit_catalog(3);
  PrefetchingPolicy policy;
  policy.wanted = {0};  // will already be resident
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs{Request({0}), Request({1})};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  EXPECT_EQ(result.metrics.bytes_prefetched(), 0u);
}

TEST(SimulatorPrefetch, PrefetchedFilesServeLaterHits) {
  FileCatalog catalog = unit_catalog(3);
  PrefetchingPolicy policy;
  policy.wanted = {1, 2};
  SimulatorConfig config{.cache_bytes = 300};
  std::vector<Request> jobs{Request({0}), Request({1, 2})};
  Simulator sim(config, catalog, policy);
  const SimulationResult result = sim.run(jobs);
  // The second job's whole bundle was prefetched by the first.
  EXPECT_EQ(result.metrics.request_hits(), 1u);
}

}  // namespace
}  // namespace fbc
