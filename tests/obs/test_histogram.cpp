// Tests for the log2-bucket Histogram: bucket mapping, exact merge
// algebra, quantile bracketing against util/stats::quantile, and
// from_state validation (the wire decoder's consistency gate).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fbc::obs {
namespace {

TEST(HistogramBuckets, IndexMapping) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            64u);
}

TEST(HistogramBuckets, BoundsAreInclusiveAndAdjacent) {
  EXPECT_EQ(Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_lower(i), Histogram::bucket_upper(i - 1) + 1)
        << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
  }
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  for (std::uint64_t v : {7u, 0u, 130u, 7u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 144u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 130u);
  EXPECT_DOUBLE_EQ(h.mean(), 36.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // the 0
  EXPECT_EQ(h.bucket_count(3), 2u);  // both 7s
  EXPECT_EQ(h.bucket_count(8), 1u);  // 130 in [128, 256)
}

TEST(Histogram, MergeIsExact) {
  Histogram a, b, whole;
  for (std::uint64_t v : {1u, 5u, 9u}) {
    a.record(v);
    whole.record(v);
  }
  for (std::uint64_t v : {0u, 1000u}) {
    b.record(v);
    whole.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a, whole);
}

TEST(Histogram, MergeAssociativeAndCommutativeFuzzed) {
  Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    Histogram parts[3];
    Histogram whole;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t v =
          rng.uniform_u64(0, 1) == 0
              ? rng.uniform_u64(0, 100)
              : rng.uniform_u64(0, std::numeric_limits<std::uint32_t>::max());
      parts[rng.uniform_u64(0, 2)].record(v);
      whole.record(v);
    }
    // (a + b) + c
    Histogram left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    // c + (b + a)
    Histogram right = parts[2];
    Histogram inner = parts[1];
    inner.merge(parts[0]);
    right.merge(inner);
    EXPECT_EQ(left, right);
    EXPECT_EQ(left, whole);
  }
}

TEST(Histogram, MergeWithEmptySides) {
  Histogram a, empty;
  a.record(42);
  Histogram a_copy = a;
  a.merge(empty);
  EXPECT_EQ(a, a_copy);
  empty.merge(a_copy);
  EXPECT_EQ(empty, a_copy);
}

TEST(Histogram, QuantileBoundsBracketExactQuantileFuzzed) {
  // The headline guarantee: for any sample and any q, the exact
  // linear-interpolation quantile (util/stats::quantile over the raw
  // values) lies within [lower, upper] of quantile_bounds(q), and the
  // point estimate lies in the same bracket.
  Rng rng(23);
  for (int round = 0; round < 40; ++round) {
    Histogram h;
    std::vector<double> raw;
    const int n = static_cast<int>(rng.uniform_u64(1, 400));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = rng.uniform_u64(0, 1u << rng.uniform_u64(0, 31));
      h.record(v);
      raw.push_back(static_cast<double>(v));
    }
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const double exact = quantile(raw, q);
      const QuantileEstimate bounds = h.quantile_bounds(q);
      EXPECT_LE(static_cast<double>(bounds.lower), exact)
          << "n=" << n << " q=" << q;
      EXPECT_GE(static_cast<double>(bounds.upper), exact)
          << "n=" << n << " q=" << q;
      EXPECT_GE(bounds.estimate, static_cast<double>(bounds.lower));
      EXPECT_LE(bounds.estimate, static_cast<double>(bounds.upper));
    }
  }
}

TEST(Histogram, EmptyQuantileIsNaN) {
  Histogram h;
  const QuantileEstimate bounds = h.quantile_bounds(0.5);
  EXPECT_EQ(bounds.lower, 0u);
  EXPECT_EQ(bounds.upper, 0u);
  EXPECT_TRUE(std::isnan(bounds.estimate));
  EXPECT_TRUE(std::isnan(h.quantile(0.99)));
}

TEST(Histogram, StateRoundTrip) {
  Histogram h;
  for (std::uint64_t v : {0u, 3u, 3u, 900u, 1u << 20}) h.record(v);
  const auto back = Histogram::from_state(h.state());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);

  const auto empty = Histogram::from_state(Histogram{}.state());
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(HistogramFromState, RejectsInconsistentState) {
  Histogram h;
  h.record(10);
  h.record(100);

  {
    HistogramState s = h.state();
    s.min = 3;  // bucket_index(3) != lowest occupied bucket
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
  {
    HistogramState s = h.state();
    s.max = 40;  // bucket_index(40) != highest occupied bucket
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
  {
    HistogramState s = h.state();
    s.min = 100;
    s.max = 10;  // min > max
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
  {
    HistogramState s = h.state();
    s.sum = 5;  // below the bucket-occupancy floor (8 + 64)
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
  {
    HistogramState s = h.state();
    s.sum = 100000;  // above the bucket-occupancy ceiling (15 + 127)
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
  {
    HistogramState s;  // all-zero buckets but a nonzero sum
    s.sum = 1;
    EXPECT_FALSE(Histogram::from_state(s).has_value());
  }
}

}  // namespace
}  // namespace fbc::obs
