// Tests for SpanRecorder: ring-buffer semantics (oldest-first eviction,
// zero-capacity disable, drop accounting) and a concurrent stress test
// that the TSan job runs to prove the locking is sound.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace fbc::obs {
namespace {

ServingSpan span_with_id(std::uint64_t id) {
  ServingSpan s;
  s.request_id = id;
  s.total_us = id * 10;
  return s;
}

TEST(SpanRecorder, UnderfilledKeepsInsertionOrder) {
  SpanRecorder rec(8);
  for (std::uint64_t id = 1; id <= 3; ++id) rec.record(span_with_id(id));
  const std::vector<ServingSpan> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id)
    EXPECT_EQ(snap[id - 1].request_id, id);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.capacity(), 8u);
}

TEST(SpanRecorder, WrapEvictsOldestFirst) {
  SpanRecorder rec(4);
  for (std::uint64_t id = 1; id <= 10; ++id) rec.record(span_with_id(id));
  const std::vector<ServingSpan> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // The four most recent, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(snap[i].request_id, 7 + i);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(SpanRecorder, ZeroCapacityDisablesStorageButCounts) {
  SpanRecorder rec(0);
  for (std::uint64_t id = 1; id <= 5; ++id) rec.record(span_with_id(id));
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 5u);
  EXPECT_EQ(rec.capacity(), 0u);
}

TEST(SpanRecorder, ConcurrentRecordAndSnapshotStress) {
  // Hammer the recorder from several writer threads while readers take
  // snapshots; the TSan CI job turns any locking mistake into a failure.
  // Invariants checked: snapshots are internally consistent (bounded
  // size, every span is one some writer produced) and the final count
  // equals the total number of records issued.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  SpanRecorder rec(64);

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&rec, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const auto id = static_cast<std::uint64_t>(w) * kPerWriter +
                        static_cast<std::uint64_t>(i) + 1;
        rec.record(span_with_id(id));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 200; ++i) {
        const std::vector<ServingSpan> snap = rec.snapshot();
        EXPECT_LE(snap.size(), 64u);
        for (const ServingSpan& s : snap) {
          EXPECT_GE(s.request_id, 1u);
          EXPECT_LE(s.request_id,
                    static_cast<std::uint64_t>(kWriters) * kPerWriter);
          EXPECT_EQ(s.total_us, s.request_id * 10);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const std::vector<ServingSpan> final_snap = rec.snapshot();
  EXPECT_EQ(final_snap.size(), 64u);
  EXPECT_EQ(rec.dropped(), rec.recorded() - 64u);
}

}  // namespace
}  // namespace fbc::obs
