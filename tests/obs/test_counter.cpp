// Tests for CounterRegistry: add/value semantics, exact merge, and the
// deterministic sorted snapshot the wire encoder depends on.
#include "obs/counter.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace fbc::obs {
namespace {

TEST(CounterRegistry, AddAndValue) {
  CounterRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.value("acquire.ok"), 0u);
  reg.add("acquire.ok");
  reg.add("acquire.ok", 4);
  reg.add("release.ok", 2);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.value("acquire.ok"), 5u);
  EXPECT_EQ(reg.value("release.ok"), 2u);
}

TEST(CounterRegistry, SnapshotIsSortedByName) {
  CounterRegistry reg;
  reg.add("zeta", 1);
  reg.add("alpha", 2);
  reg.add("mid", 3);
  const std::vector<CounterSample> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], CounterSample("alpha", 2));
  EXPECT_EQ(snap[1], CounterSample("mid", 3));
  EXPECT_EQ(snap[2], CounterSample("zeta", 1));
}

TEST(CounterRegistry, MergeIsExact) {
  CounterRegistry a, b, whole;
  a.add("shared", 3);
  a.add("only_a", 1);
  b.add("shared", 4);
  b.add("only_b", 9);
  for (const auto& [name, v] :
       std::vector<CounterSample>{{"shared", 7}, {"only_a", 1}, {"only_b", 9}})
    whole.add(name, v);
  a.merge(b);
  EXPECT_EQ(a.snapshot(), whole.snapshot());
  // Merging an empty registry is a no-op; merging into one adopts.
  CounterRegistry empty;
  a.merge(empty);
  EXPECT_EQ(a.snapshot(), whole.snapshot());
  empty.merge(whole);
  EXPECT_EQ(empty.snapshot(), whole.snapshot());
}

}  // namespace
}  // namespace fbc::obs
