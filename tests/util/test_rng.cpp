// Tests for the deterministic RNG stack (SplitMix64, Xoshiro256**, and the
// derived sampling helpers).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace fbc {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs of the canonical splitmix64 for seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm(), 0x06C45D188009454FULL);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(42, 42), 42u);
}

TEST(Rng, UniformU64FullRangeDoesNotHang) {
  Rng rng(7);
  // Just exercise the span == max path.
  (void)rng.uniform_u64(0, std::numeric_limits<std::uint64_t>::max());
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(99);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[rng.uniform_u64(0, 9)] += 1;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);  // within 10%
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<int> original = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(11);
  std::vector<int> empty;
  rng.shuffle(std::span<int>(empty));
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(std::span<int>(one));
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Rng, ShuffleMovesElements) {
  // Over many shuffles of [0..9], element 0 should land everywhere.
  std::set<int> positions;
  for (int trial = 0; trial < 200; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial));
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(std::span<int>(v));
    positions.insert(static_cast<int>(
        std::find(v.begin(), v.end(), 0) - v.begin()));
  }
  EXPECT_EQ(positions.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementBasics) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(13);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(Rng, SampleWithoutReplacementCoversAllElements) {
  // Sampling 1 of 10 many times should hit all ten values.
  std::set<std::size_t> seen;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.sample_without_replacement(10, 1).front());
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DeriveSeedProducesDistinctStreams) {
  Rng parent(21);
  const std::uint64_t s1 = parent.derive_seed(0);
  const std::uint64_t s2 = parent.derive_seed(1);
  EXPECT_NE(s1, s2);
  Rng a(s1), b(s2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

// Property sweep: bounded uniforms stay in range for many (seed, range)
// combinations.
class RngRangeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeProperty, BoundedDrawsStayInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t lo = rng.uniform_u64(0, 1000);
    const std::uint64_t hi = lo + rng.uniform_u64(0, 1000);
    const std::uint64_t v = rng.uniform_u64(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngRangeProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace fbc
