// Concurrency stress tests for the sweep thread pool, written to be run
// under ThreadSanitizer in CI: many producer threads hammering submit()
// while workers drain, shutdown racing in-flight work, exceptions crossing
// the future boundary, and nested parallel_for contention.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <thread>
#include <vector>

namespace fbc {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersAllTasksRun) {
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksEach = 250;

  ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<std::size_t>>> futures(kProducers);

  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed, &futures, p] {
      futures[p].reserve(kTasksEach);
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        futures[p].push_back(pool.submit([&executed, p, t] {
          executed.fetch_add(1, std::memory_order_relaxed);
          return p * kTasksEach + t;
        }));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  for (std::size_t p = 0; p < kProducers; ++p)
    for (std::size_t t = 0; t < kTasksEach; ++t)
      EXPECT_EQ(futures[p][t].get(), p * kTasksEach + t);
  EXPECT_EQ(executed.load(), kProducers * kTasksEach);
}

TEST(ThreadPoolStress, DestructorDrainsPendingTasks) {
  // Queue far more tasks than workers, then destroy the pool immediately:
  // every accepted task must still run (graceful drain, not abandonment).
  constexpr std::size_t kTasks = 500;
  std::atomic<std::size_t> executed{0};
  {
    ThreadPool pool(2);
    for (std::size_t t = 0; t < kTasks; ++t)
      pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolStress, SubmitDuringShutdownThrows) {
  // Pin the lone worker on a blocker task so the destructor cannot finish,
  // start destruction on a side thread, and keep submitting until the
  // stopping_ flag is observed as a throw. Every submit happens while the
  // destructor body is still running (the worker is blocked), so the pool
  // object is alive for the whole loop.
  std::atomic<bool> release_blocker{false};
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* alive = pool.get();
  pool->submit([&release_blocker] {
    while (!release_blocker.load(std::memory_order_acquire))
      std::this_thread::yield();
  });

  std::thread destroyer([&pool] { pool.reset(); });
  bool threw = false;
  std::size_t accepted = 0;
  while (!threw) {
    try {
      alive->submit([] {});
      ++accepted;
    } catch (const std::runtime_error&) {
      threw = true;
    }
    std::this_thread::yield();
  }
  release_blocker.store(true, std::memory_order_release);
  destroyer.join();
  EXPECT_TRUE(threw);
  // Tasks accepted before shutdown began are drained, not dropped; nothing
  // to assert beyond clean completion under TSan.
  (void)accepted;
}

TEST(ThreadPoolStress, TrySubmitReturnsFutureWhileRunning) {
  ThreadPool pool(2);
  auto future = pool.try_submit([] { return 41 + 1; });
  ASSERT_TRUE(future.has_value());
  EXPECT_EQ(future->get(), 42);
}

TEST(ThreadPoolStress, TrySubmitDuringShutdownReturnsNullopt) {
  // Same shape as SubmitDuringShutdownThrows, but the non-throwing entry
  // point must signal rejection with nullopt instead of an exception --
  // this is what fbcd's acceptor relies on during stop().
  std::atomic<bool> release_blocker{false};
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* alive = pool.get();
  pool->submit([&release_blocker] {
    while (!release_blocker.load(std::memory_order_acquire))
      std::this_thread::yield();
  });

  std::thread destroyer([&pool] { pool.reset(); });
  std::size_t accepted = 0;
  std::vector<std::future<int>> futures;
  for (;;) {
    std::optional<std::future<int>> maybe;
    EXPECT_NO_THROW(maybe = alive->try_submit([] { return 5; }));
    if (!maybe.has_value()) break;  // shutdown observed, never a throw
    futures.push_back(std::move(*maybe));
    ++accepted;
    std::this_thread::yield();
  }
  release_blocker.store(true, std::memory_order_release);
  destroyer.join();
  // Every accepted task was drained before destruction completed.
  for (auto& future : futures) EXPECT_EQ(future.get(), 5);
  (void)accepted;
}

TEST(ThreadPoolStress, TaskExceptionsPropagateThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 3 == 0) throw std::runtime_error("task failed");
      return i;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      EXPECT_THROW(futures[static_cast<std::size_t>(i)].get(),
                   std::runtime_error);
    } else {
      EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
    }
  }
  // The pool must stay usable after tasks have thrown.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolStress, ParallelForUnderContention) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 10000;
  std::vector<std::size_t> out(kItems, 0);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(kItems,
                      [&out](std::size_t i) { out[i] += i; });
  }
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(out[i], 5 * i);
}

TEST(ThreadPoolStress, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Subsequent work still runs.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(32, [&count](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32u);
}

}  // namespace
}  // namespace fbc
