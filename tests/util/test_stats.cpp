// Tests for RunningStats, quantiles and number formatting.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace fbc {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population var 4,
  // sample var 32/7.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(-10.0, 10.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform_double());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, ClampsQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 2.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(FormatDouble, TrimsAndRounds) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(13.0), "13");
  EXPECT_EQ(format_double(0.123456, 3), "0.123");
  EXPECT_EQ(format_double(1234567.0, 3), "1.23e+06");
}

}  // namespace
}  // namespace fbc
