// Tests for RunningStats, quantiles and number formatting.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace fbc {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  // Values 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population var 4,
  // sample var 32/7.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(-10.0, 10.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeMatchesSequentialUnderFuzzedSplits) {
  // Partition one stream into a random number of shards at random
  // boundaries, merge the shards in order, and require the result to be
  // indistinguishable from the single-pass accumulator.
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    const int n = static_cast<int>(rng.uniform_u64(20, 500));
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      values.push_back(rng.uniform_double(-1e6, 1e6));

    RunningStats whole;
    for (double v : values) whole.add(v);

    const int shards = static_cast<int>(rng.uniform_u64(1, 8));
    RunningStats merged;
    std::size_t at = 0;
    for (int s = 0; s < shards; ++s) {
      RunningStats shard;
      const std::size_t end =
          s + 1 == shards
              ? values.size()
              : std::min(values.size(),
                         at + static_cast<std::size_t>(rng.uniform_u64(
                                  0, static_cast<std::uint64_t>(n))));
      for (; at < end; ++at) shard.add(values[at]);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-6);
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-6 * std::max(1.0, whole.variance()));
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
  }
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform_double());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, ClampsQ) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 2.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
}

TEST(Quantile, EmptyReturnsNaN) {
  // Total function: an empty sample must NOT be UB (the old
  // assert-guarded version dereferenced sorted.front() under NDEBUG).
  EXPECT_TRUE(std::isnan(quantile(std::vector<double>{}, 0.5)));
  EXPECT_TRUE(std::isnan(quantile(std::vector<double>{}, 0.0)));
  EXPECT_TRUE(std::isnan(quantile(std::vector<double>{}, 1.0)));
}

TEST(Quantile, TwoElements) {
  const std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 20.0);
}

TEST(QuantileRank, Convention) {
  EXPECT_DOUBLE_EQ(quantile_rank(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_rank(1, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(quantile_rank(101, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(quantile_rank(100, 0.95), 94.05);
  EXPECT_DOUBLE_EQ(quantile_rank(5, -1.0), 0.0);  // q clamped
  EXPECT_DOUBLE_EQ(quantile_rank(5, 2.0), 4.0);
}

TEST(Quantile, CrossImplementationRegression) {
  // Pins the project-wide percentile semantics against the nearest-rank
  // variant fbcload used to carry: for 1..100, linear interpolation gives
  // p95 = 95.05 where nearest-rank reported 96. If this test starts
  // failing, someone reintroduced a second percentile convention.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(quantile(v, 0.95), 95.05);
  EXPECT_DOUBLE_EQ(quantile(v, 0.50), 50.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.99), 99.01);
  EXPECT_NE(quantile(v, 0.95), 96.0);  // the old nearest-rank answer
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(FormatDouble, TrimsAndRounds) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(13.0), "13");
  EXPECT_EQ(format_double(0.123456, 3), "0.123");
  EXPECT_EQ(format_double(1234567.0, 3), "1.23e+06");
}

}  // namespace
}  // namespace fbc
