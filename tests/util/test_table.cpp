// Tests for the aligned text table and CSV output.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace fbc {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsOverlongRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  // Should print without throwing and contain the lone cell.
  EXPECT_NE(t.to_string().find("1"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "x"});
  t.add_row({"longest-name", "1"});
  t.add_row({"n", "22"});
  const std::string out = t.to_string();
  std::istringstream iss(out);
  std::string header, rule, row1, row2;
  std::getline(iss, header);
  std::getline(iss, rule);
  std::getline(iss, row1);
  std::getline(iss, row2);
  // The second column starts at the same offset in every row.
  EXPECT_EQ(row1.find(" 1"), row1.size() - 2);
  const auto col2 = std::string("longest-name").size() + 2;
  EXPECT_EQ(row1.substr(col2), "1");
  EXPECT_EQ(row2.substr(col2), "22");
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "note"});
  t.add_row({"plain", "hello"});
  t.add_row({"with,comma", "say \"hi\""});
  std::ostringstream oss;
  t.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name,note\n"), std::string::npos);
  EXPECT_NE(out.find("plain,hello\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\",\"say \"\"hi\"\"\"\n"), std::string::npos);
}

TEST(TextTable, EmptyTableStillPrintsHeader) {
  TextTable t({"only"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace fbc
