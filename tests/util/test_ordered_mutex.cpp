// Tests for the OrderedMutex runtime lock-hierarchy checker
// (util/ordered_mutex). The violation tests install a handler through the
// set_lock_violation_handler() seam so they can observe the offending
// pair without dying; the death test leaves the default abort handler in
// place and pins the FBC_LOCK_CHECK failure mode end to end -- a
// deliberate obs_mu_(40) -> mu_(10) inversion must kill the process with
// both lock names in the message. None of the locals here carry
// fbc:lock-level annotations, so fbclint L007 (which checks the same
// discipline statically) stays silent on this file by design.
#include "util/ordered_mutex.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>

namespace fbc {
namespace {

struct Violation {
  bool fired = false;
  std::string held_name;
  int held_level = 0;
  std::string acquiring_name;
  int acquiring_level = 0;
};

// The handler seam takes a plain function pointer, so the capture goes
// through a file-scope slot instead of a lambda capture.
Violation g_violation;  // NOLINT(*-non-const-global-variables)

void record_violation(const char* held_name, int held_level,
                      const char* acquiring_name, int acquiring_level) {
  g_violation.fired = true;
  g_violation.held_name = held_name;
  g_violation.held_level = held_level;
  g_violation.acquiring_name = acquiring_name;
  g_violation.acquiring_level = acquiring_level;
}

/// Enables checking with the recording handler for the test's duration,
/// then restores the build-configured default state.
class OrderedMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violation = Violation{};
    prev_enabled_ = lock_check_enabled();
    set_lock_check(true);
    set_lock_violation_handler(&record_violation);
  }
  void TearDown() override {
    set_lock_violation_handler(nullptr);
    set_lock_check(prev_enabled_);
  }

 private:
  bool prev_enabled_ = false;
};

TEST_F(OrderedMutexTest, IncreasingLevelsPassAndTrackDepth) {
  OrderedMutex low{10, "test::mu_"};
  OrderedMutex high{40, "test::obs_mu_"};
  EXPECT_EQ(held_lock_depth(), 0u);
  {
    std::lock_guard<OrderedMutex> a(low);
    EXPECT_EQ(held_lock_depth(), 1u);
    {
      std::lock_guard<OrderedMutex> b(high);
      EXPECT_EQ(held_lock_depth(), 2u);
    }
    EXPECT_EQ(held_lock_depth(), 1u);
  }
  EXPECT_EQ(held_lock_depth(), 0u);
  EXPECT_FALSE(g_violation.fired);
}

TEST_F(OrderedMutexTest, ScopedLockAndCondvarIdiomsStayClean) {
  // The Lockable surface the serving layer actually uses: scoped_lock
  // over two levels in order, and unique_lock unlock/relock.
  OrderedMutex low{20, "test::lease_mu"};
  OrderedMutex high{60, "test::pool_mu_"};
  {
    std::scoped_lock both(low, high);
    EXPECT_EQ(held_lock_depth(), 2u);
  }
  std::unique_lock<OrderedMutex> lock(low);
  lock.unlock();
  EXPECT_EQ(held_lock_depth(), 0u);
  lock.lock();
  EXPECT_EQ(held_lock_depth(), 1u);
  lock.unlock();
  EXPECT_FALSE(g_violation.fired);
}

TEST_F(OrderedMutexTest, InversionReportsBothLocks) {
  OrderedMutex low{10, "test::mu_"};
  OrderedMutex high{40, "test::obs_mu_"};
  std::lock_guard<OrderedMutex> a(high);
  std::lock_guard<OrderedMutex> b(low);  // 40 held, acquiring 10
  ASSERT_TRUE(g_violation.fired);
  EXPECT_EQ(g_violation.held_name, "test::obs_mu_");
  EXPECT_EQ(g_violation.held_level, 40);
  EXPECT_EQ(g_violation.acquiring_name, "test::mu_");
  EXPECT_EQ(g_violation.acquiring_level, 10);
}

TEST_F(OrderedMutexTest, SameLevelAcquireIsAViolation) {
  // Levels must strictly increase: an equal-level pair is the same class
  // of bug as a recursive acquire (which L007 also catches statically --
  // exercising a real recursive std::mutex lock here would deadlock).
  OrderedMutex a{30, "test::inflight_a"};
  OrderedMutex b{30, "test::inflight_b"};
  std::lock_guard<OrderedMutex> hold(a);
  std::lock_guard<OrderedMutex> same(b);
  ASSERT_TRUE(g_violation.fired);
  EXPECT_EQ(g_violation.held_name, "test::inflight_a");
  EXPECT_EQ(g_violation.acquiring_name, "test::inflight_b");
}

TEST_F(OrderedMutexTest, TryLockSuccessIsOrderChecked) {
  OrderedMutex low{10, "test::mu_"};
  OrderedMutex high{40, "test::obs_mu_"};
  std::lock_guard<OrderedMutex> hold(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_TRUE(g_violation.fired);
  EXPECT_EQ(g_violation.acquiring_name, "test::mu_");
  low.unlock();
}

TEST_F(OrderedMutexTest, DisabledCheckIsSilentAndKeepsNoStack) {
  set_lock_check(false);
  OrderedMutex low{10, "test::mu_"};
  OrderedMutex high{40, "test::obs_mu_"};
  std::lock_guard<OrderedMutex> a(high);
  std::lock_guard<OrderedMutex> b(low);  // inverted, but checking is off
  EXPECT_FALSE(g_violation.fired);
  EXPECT_EQ(held_lock_depth(), 0u);
}

// Runs without the fixture: default abort handler, checking forced on.
// This is the runtime half of the acceptance criterion -- the same
// obs_mu_ -> mu_ inversion fbclint L007 catches statically must abort
// here with both names identifying the offending pair.
// Runs in the death-test child: default abort handler, checking forced
// on, then the deliberate inversion.
void acquire_inverted_with_default_handler() {
  set_lock_violation_handler(nullptr);
  set_lock_check(true);
  OrderedMutex low{10, "test::mu_"};
  OrderedMutex high{40, "test::obs_mu_"};
  std::lock_guard<OrderedMutex> a(high);
  std::lock_guard<OrderedMutex> b(low);
}

TEST(OrderedMutexDeathTest, InversionAbortsWithBothNamesByDefault) {
#if GTEST_HAS_DEATH_TEST
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
#endif
  EXPECT_DEATH_IF_SUPPORTED(acquire_inverted_with_default_handler(),
                            "acquiring 'test::mu_'.*holding 'test::obs_mu_'");
}

}  // namespace
}  // namespace fbc
