// Tests for the leveled logger (level gating and evaluation laziness).
#include "util/log.hpp"

#include <gtest/gtest.h>

namespace fbc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LogTest, DisabledLevelSkipsEvaluation) {
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  FBC_LOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  FBC_LOG(Error) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EnabledLevelEmitsWithoutCrashing) {
  set_log_level(LogLevel::Debug);
  FBC_LOG(Debug) << "debug line " << 1;
  FBC_LOG(Info) << "info line " << 2.5;
  FBC_LOG(Warn) << "warn line";
  FBC_LOG(Error) << "error line";
}

}  // namespace
}  // namespace fbc
