// Tests for the leveled logger: level gating, evaluation laziness, sink
// redirection, and thread safety of the shared sink (concurrent writers
// must never interleave characters of different lines).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace fbc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::Warn);
    set_log_sink(nullptr);
  }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LogTest, DisabledLevelSkipsEvaluation) {
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  FBC_LOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  FBC_LOG(Error) << "value " << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EnabledLevelEmitsWithoutCrashing) {
  set_log_level(LogLevel::Debug);
  FBC_LOG(Debug) << "debug line " << 1;
  FBC_LOG(Info) << "info line " << 2.5;
  FBC_LOG(Warn) << "warn line";
  FBC_LOG(Error) << "error line";
}

TEST_F(LogTest, SinkReceivesLevelAndMessage) {
  set_log_level(LogLevel::Info);
  std::vector<std::pair<LogLevel, std::string>> seen;
  set_log_sink([&seen](LogLevel level, const std::string& message) {
    seen.emplace_back(level, message);
  });
  FBC_LOG(Info) << "hello " << 7;
  FBC_LOG(Debug) << "filtered out";
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, LogLevel::Info);
  EXPECT_EQ(seen[0].second, "hello 7");
}

// Interleaved-line regression: hammer the logger from many threads into a
// sink that copies its message byte by byte (with yields, to widen any
// race window). Because every message goes through the single mutex-
// guarded sink, each captured line must come out intact -- before the
// mutex existed, fragments of concurrent lines could interleave.
TEST_F(LogTest, ConcurrentWritersNeverInterleaveLines) {
  set_log_level(LogLevel::Info);
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& message) {
    // Deliberately slow, characterwise copy: any second writer entering
    // the sink concurrently would interleave into `current`.
    std::string current;
    for (char ch : message) {
      current.push_back(ch);
      std::this_thread::yield();
    }
    lines.push_back(current);
  });

  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        FBC_LOG(Info) << "writer=" << t << " line=" << i << " end";
    });
  }
  for (std::thread& w : writers) w.join();

  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLines));
  std::vector<std::vector<char>> seen(
      kThreads, std::vector<char>(kLines, 0));
  for (const std::string& line : lines) {
    int writer = -1;
    int index = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "writer=%d line=%d end", &writer,
                          &index),
              2)
        << "mangled line: '" << line << "'";
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, kLines);
    char& flag = seen[static_cast<std::size_t>(writer)]
                     [static_cast<std::size_t>(index)];
    EXPECT_FALSE(flag) << "duplicate line: '" << line << "'";
    flag = 1;
  }
}

}  // namespace
}  // namespace fbc
