// Tests for the sweep thread pool.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fbc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([](int x) { return x + 1; }, 41);
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] += 1; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done += 1; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace fbc
