// Tests for the CLI option parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbc {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("jobs", "number of jobs", "100");
  cli.add_option("alpha", "zipf alpha", "1.0");
  cli.add_option("name", "a string", "default");
  cli.add_flag("csv", "emit csv");
  return cli;
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  cli.parse(std::vector<std::string>{});
  EXPECT_EQ(cli.get_u64("jobs"), 100u);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 1.0);
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_FALSE(cli.get_flag("csv"));
  EXPECT_FALSE(cli.was_set("jobs"));
}

TEST(Cli, EqualsForm) {
  CliParser cli = make_parser();
  cli.parse({"--jobs=500", "--alpha=0.8"});
  EXPECT_EQ(cli.get_u64("jobs"), 500u);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 0.8);
  EXPECT_TRUE(cli.was_set("jobs"));
}

TEST(Cli, SpaceForm) {
  CliParser cli = make_parser();
  cli.parse({"--jobs", "250", "--name", "hello"});
  EXPECT_EQ(cli.get_u64("jobs"), 250u);
  EXPECT_EQ(cli.get_string("name"), "hello");
}

TEST(Cli, Flags) {
  CliParser cli = make_parser();
  cli.parse({"--csv"});
  EXPECT_TRUE(cli.get_flag("csv"));
  CliParser cli2 = make_parser();
  cli2.parse({"--csv=false"});
  EXPECT_FALSE(cli2.get_flag("csv"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.parse({"--bogus=1"}), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.parse({"--jobs"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.parse({"stray"}), std::invalid_argument);
}

TEST(Cli, BadNumberThrows) {
  CliParser cli = make_parser();
  cli.parse({"--jobs=notanumber"});
  EXPECT_THROW((void)cli.get_u64("jobs"), std::invalid_argument);
}

TEST(Cli, FlagWithBadValueThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.parse({"--csv=maybe"}), std::invalid_argument);
}

TEST(Cli, UnregisteredGetterThrows) {
  CliParser cli = make_parser();
  cli.parse(std::vector<std::string>{});
  EXPECT_THROW((void)cli.get_string("nothere"), std::invalid_argument);
}

TEST(Cli, UsageListsOptions) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

TEST(Cli, NegativeInteger) {
  CliParser cli("p", "d");
  cli.add_option("delta", "signed", "-5");
  cli.parse(std::vector<std::string>{});
  EXPECT_EQ(cli.get_i64("delta"), -5);
}

}  // namespace
}  // namespace fbc
