// Tests for byte-size formatting and parsing.
#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace fbc {
namespace {

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1024), "1.00KiB");
  EXPECT_EQ(format_bytes(1536), "1.50KiB");
  EXPECT_EQ(format_bytes(3 * MiB), "3.00MiB");
  EXPECT_EQ(format_bytes(2 * GiB), "2.00GiB");
  EXPECT_EQ(format_bytes(5 * TiB), "5.00TiB");
}

TEST(ParseBytes, PlainAndSuffixed) {
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("512B"), 512u);
  EXPECT_EQ(parse_bytes("2KiB"), 2 * KiB);
  EXPECT_EQ(parse_bytes("2KB"), 2 * KiB);
  EXPECT_EQ(parse_bytes("1.5MiB"), MiB + MiB / 2);
  EXPECT_EQ(parse_bytes("10GiB"), 10 * GiB);
  EXPECT_EQ(parse_bytes("1TiB"), TiB);
  EXPECT_EQ(parse_bytes("3 MB"), 3 * MiB);  // space before suffix
}

TEST(ParseBytes, RoundTripsFormat) {
  for (Bytes v : {Bytes{1}, Bytes{1024}, 5 * MiB, 3 * GiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v) << format_bytes(v);
  }
}

TEST(ParseBytes, Errors) {
  EXPECT_THROW((void)parse_bytes(""), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("10XB"), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("-5MB"), std::invalid_argument);
}

TEST(ByteConstants, Relationships) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * KiB);
  EXPECT_EQ(GiB, 1024u * MiB);
  EXPECT_EQ(TiB, 1024u * GiB);
}

}  // namespace
}  // namespace fbc
