// fbcsrm: replay a (preferably timed, v2) trace through the timed
// StorageResourceManager with configurable MSS tiers, service slots and
// start order, reporting throughput and response times.
//
//   fbcgen --out=t.txt --kind=henp --timed --mean-gap=20
//   fbcsrm --trace=t.txt --cache=10GiB --policy=optfb --slots=2
//   fbcsrm --trace=t.txt --cache=10GiB --policy=all --order=sjf
//
// Untimed (v1) traces are replayed back-to-back (arrival 0, zero service
// time), which still exercises staging costs.
#include <iostream>
#include <stdexcept>

#include "core/registry.hpp"
#include "grid/mss.hpp"
#include "grid/srm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace fbc;

int main(int argc, char** argv) {
  CliParser cli("fbcsrm", "Replay a trace through the timed SRM");
  cli.add_option("trace", "input trace path", "trace.txt");
  cli.add_option("policy", "policy name or 'all'", "optfb");
  cli.add_option("cache", "staging cache capacity", "10GiB");
  cli.add_option("slots", "concurrent service slots", "1");
  cli.add_option("order", "fcfs|sjf start order", "fcfs");
  cli.add_option("streams", "parallel transfer streams", "4");
  cli.add_option("tier-mix",
                 "fraction of files on tape,remote (rest on disk pool)",
                 "0.5,0.33");
  cli.add_option("seed", "placement/policy seed", "1");
  cli.add_flag("csv", "emit CSV");

  try {
    cli.parse(argc, argv);
    const Trace trace = load_trace(cli.get_string("trace"));

    // Tier placement: "<tape_frac>,<remote_frac>".
    const std::string mix = cli.get_string("tier-mix");
    const auto comma = mix.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("--tier-mix needs 'tape,remote' fractions");
    const double tape_frac = std::stod(mix.substr(0, comma));
    const double remote_frac = std::stod(mix.substr(comma + 1));
    MassStorageSystem mss(default_tiers(), trace.catalog);
    Rng placement_rng(cli.get_u64("seed") + 17);
    for (FileId id = 0; id < trace.catalog.count(); ++id) {
      const double roll = placement_rng.uniform_double();
      if (roll < tape_frac) {
        mss.place_file(id, 1);
      } else if (roll < tape_frac + remote_frac) {
        mss.place_file(id, 2);
      }
    }

    std::vector<GridJob> jobs;
    jobs.reserve(trace.jobs.size());
    for (std::size_t j = 0; j < trace.jobs.size(); ++j) {
      GridJob job;
      job.request = trace.jobs[j];
      if (trace.is_timed()) {
        job.arrival_s = trace.arrival_s[j];
        job.service_s = trace.service_s[j];
      }
      jobs.push_back(std::move(job));
    }
    if (!trace.is_timed()) {
      std::cerr << "fbcsrm: note: untimed v1 trace, replaying back-to-back\n";
    }

    SrmConfig config{.cache_bytes = parse_bytes(cli.get_string("cache")),
                     .transfers = TransferModel{
                         .max_parallel = cli.get_u64("streams")}};
    config.service_slots = cli.get_u64("slots");
    const std::string order = cli.get_string("order");
    if (order == "sjf") {
      config.order = ServiceOrder::ShortestBundleFirst;
    } else if (order != "fcfs") {
      throw std::invalid_argument("unknown --order: " + order);
    }

    std::vector<std::string> policies;
    if (cli.get_string("policy") == "all") {
      policies = policy_names();
    } else {
      policies.push_back(cli.get_string("policy"));
    }

    TextTable table({"policy", "jobs", "throughput_jobs_per_h",
                     "mean_response_s", "mean_stage_s", "data_staged",
                     "request_hit_pct"});
    for (const std::string& name : policies) {
      PolicyContext context;
      context.catalog = &trace.catalog;
      context.jobs = trace.jobs;
      context.seed = cli.get_u64("seed");
      PolicyPtr policy = make_policy(name, context);
      StorageResourceManager srm(config, mss, *policy);
      const SrmReport report = srm.run(jobs);
      table.add_row(
          {name, std::to_string(report.outcomes.size()),
           format_double(report.throughput_jobs_per_hour()),
           format_double(report.response_s.mean()),
           format_double(report.stage_s.mean()),
           format_bytes(report.bytes_staged),
           format_double(100.0 * static_cast<double>(report.request_hits) /
                         static_cast<double>(jobs.size()))});
    }
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fbcsrm: " << e.what() << "\n";
    return 1;
  }
}
