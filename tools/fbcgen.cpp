// fbcgen: generate a synthetic file-bundle workload and write it as a
// replayable trace file.
//
//   fbcgen --out=trace.txt --kind=random --popularity=zipf --jobs=10000
//   fbcgen --out=henp.txt --kind=henp
//   fbcsim --trace=trace.txt --policy=optfb --cache=10GiB
//
// Kinds: random (paper §5.1 synthetic model), henp, climate, bitmap
// (the paper's three motivating applications).
#include <cmath>
#include <iostream>
#include <stdexcept>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/scenarios.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

using namespace fbc;

int main(int argc, char** argv) {
  CliParser cli("fbcgen", "Generate a file-bundle workload trace");
  cli.add_option("out", "output trace path", "trace.txt");
  cli.add_option("kind", "workload kind: random|henp|climate|bitmap",
                 "random");
  cli.add_option("seed", "master seed", "42");
  cli.add_option("jobs", "number of jobs", "10000");
  cli.add_option("cache", "reference cache size (sizes scale to it)",
                 "10GiB");
  cli.add_option("files", "file pool size (random kind)", "1000");
  cli.add_option("requests", "distinct request pool size (random kind)",
                 "500");
  cli.add_option("min-file", "minimum file size (random kind)", "1MiB");
  cli.add_option("max-file-frac",
                 "max file size as a fraction of the cache (random kind)",
                 "0.01");
  cli.add_option("max-bundle", "max files per bundle (random kind)", "10");
  cli.add_option("popularity", "uniform|zipf (random kind)", "uniform");
  cli.add_option("zipf-alpha", "Zipf exponent", "1.0");
  cli.add_flag("timed", "emit a v2 trace with arrival/service times");
  cli.add_option("mean-gap", "mean inter-arrival seconds (timed)", "30");
  cli.add_option("service-min", "min processing seconds (timed)", "1");
  cli.add_option("service-max", "max processing seconds (timed)", "5");

  try {
    cli.parse(argc, argv);
    const std::string kind = cli.get_string("kind");
    const std::uint64_t seed = cli.get_u64("seed");
    const std::size_t jobs = cli.get_u64("jobs");
    const Bytes cache = parse_bytes(cli.get_string("cache"));

    Workload w;
    if (kind == "random") {
      WorkloadConfig config;
      config.seed = seed;
      config.cache_bytes = cache;
      config.num_files = cli.get_u64("files");
      config.min_file_bytes = parse_bytes(cli.get_string("min-file"));
      config.max_file_frac = cli.get_double("max-file-frac");
      config.num_requests = cli.get_u64("requests");
      config.max_bundle_files = cli.get_u64("max-bundle");
      config.num_jobs = jobs;
      config.zipf_alpha = cli.get_double("zipf-alpha");
      const std::string pop = cli.get_string("popularity");
      if (pop == "zipf") {
        config.popularity = Popularity::Zipf;
      } else if (pop == "uniform") {
        config.popularity = Popularity::Uniform;
      } else {
        throw std::invalid_argument("unknown --popularity: " + pop);
      }
      w = generate_workload(config);
    } else if (kind == "henp") {
      HenpConfig config;
      config.seed = seed;
      config.cache_bytes = cache;
      config.num_jobs = jobs;
      config.zipf_alpha = cli.get_double("zipf-alpha");
      w = generate_henp_workload(config);
    } else if (kind == "climate") {
      ClimateConfig config;
      config.seed = seed;
      config.cache_bytes = cache;
      config.num_jobs = jobs;
      config.zipf_alpha = cli.get_double("zipf-alpha");
      w = generate_climate_workload(config);
    } else if (kind == "bitmap") {
      BitmapConfig config;
      config.seed = seed;
      config.cache_bytes = cache;
      config.num_jobs = jobs;
      config.zipf_alpha = cli.get_double("zipf-alpha");
      w = generate_bitmap_workload(config);
    } else {
      throw std::invalid_argument("unknown --kind: " + kind);
    }

    Trace trace{w.catalog, w.jobs, {}, {}, {}};
    if (cli.get_flag("timed")) {
      const double mean_gap = cli.get_double("mean-gap");
      const double service_min = cli.get_double("service-min");
      const double service_max = cli.get_double("service-max");
      Rng rng(seed ^ 0xa11ce5ULL);
      double arrival = 0.0;
      for (std::size_t j = 0; j < trace.jobs.size(); ++j) {
        trace.arrival_s.push_back(arrival);
        trace.service_s.push_back(
            rng.uniform_double(service_min, service_max));
        // Exponential inter-arrival gap (Poisson arrivals).
        arrival += -mean_gap * std::log(1.0 - rng.uniform_double());
      }
    }
    const std::string out = cli.get_string("out");
    save_trace(out, trace);
    std::cout << "wrote " << out << ": " << w.catalog.count() << " files ("
              << format_bytes(w.catalog.total_bytes()) << "), "
              << w.pool.size() << " distinct requests, " << w.jobs.size()
              << (trace.is_timed() ? " timed jobs\n" : " jobs\n");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fbcgen: " << e.what() << "\n";
    return 1;
  }
}
