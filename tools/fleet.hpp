// Shard-daemon process fleet for fbcgrid --spawn-remote.
//
// Each shard is a real fbcd child process: fork/exec with stdout piped
// back to the parent, which blocks until the child prints its parseable
// "fbcd: listening on 127.0.0.1:PORT ..." startup line and scrapes the
// ephemeral port from it. The router then reaches the child through a
// RemoteShard over the ordinary wire protocol -- the same deployment
// shape as N daemons on N hosts, just co-located for CI.
//
// Supervision is deliberately minimal: reap_exited() polls for dead
// children (the router's health tracking handles the serving side of a
// crash; the supervisor only reports it), and shutdown_fleet() SIGTERMs
// the survivors and collects their exit statuses so a shard audit
// violation still fails the whole grid.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fbc::tools {

/// One spawned fbcd shard daemon.
struct ShardProcess {
  pid_t pid = -1;
  std::uint16_t port = 0;   ///< scraped from the startup line
  int out_fd = -1;          ///< read end of the child's stdout pipe
  bool exited = false;      ///< reaped?
  int wait_status = 0;      ///< waitpid status, valid once exited
};

/// Parses "7401,7411,7421" (the --attach flag).
inline std::vector<std::uint16_t> parse_port_list(const std::string& list) {
  std::vector<std::uint16_t> ports;
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty())
      ports.push_back(static_cast<std::uint16_t>(std::stoul(token)));
  }
  return ports;
}

/// Forks and execs one shard daemon, then blocks until it prints its
/// "listening on 127.0.0.1:PORT" startup line (the parseable contract
/// fbcd guarantees) and returns pid + port. Throws std::runtime_error if
/// the child exits before announcing a port (e.g. bad flags) -- the
/// child's own stderr explains why, as it shares the parent's.
inline ShardProcess spawn_shard_daemon(const std::string& binary,
                                       const std::vector<std::string>& args) {
  int fds[2];
  if (pipe(fds) != 0)
    throw std::runtime_error("fleet: pipe() failed spawning " + binary);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    throw std::runtime_error("fleet: fork() failed spawning " + binary);
  }
  if (pid == 0) {
    // Child: stdout -> pipe (the parent scrapes the port), then exec.
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed; 127 mirrors the shell convention
  }
  close(fds[1]);
  ShardProcess child;
  child.pid = pid;
  child.out_fd = fds[0];
  // Read the child's stdout line by line until the startup line names
  // the port. After this the pipe is left open but unread -- fbcd only
  // prints a short shutdown summary, which fits the pipe buffer.
  std::string line;
  char byte = 0;
  for (;;) {
    const ssize_t n = read(fds[0], &byte, 1);
    if (n <= 0) {
      int status = 0;
      waitpid(pid, &status, 0);
      close(fds[0]);
      throw std::runtime_error(
          "fleet: shard daemon exited before announcing its port (exec "
          "failure or bad flags; see its stderr above)");
    }
    if (byte != '\n') {
      line.push_back(byte);
      continue;
    }
    const std::string needle = "listening on 127.0.0.1:";
    const std::size_t at = line.find(needle);
    if (at != std::string::npos) {
      child.port = static_cast<std::uint16_t>(
          std::stoul(line.substr(at + needle.size())));
      return child;
    }
    line.clear();
  }
}

/// Non-blocking reap: marks children that have exited since the last
/// call and returns their indices (for the supervisor's log line).
inline std::vector<std::size_t> reap_exited(std::vector<ShardProcess>& fleet) {
  std::vector<std::size_t> newly_dead;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    ShardProcess& child = fleet[i];
    if (child.exited) continue;
    int status = 0;
    const pid_t got = waitpid(child.pid, &status, WNOHANG);
    if (got == child.pid) {
      child.exited = true;
      child.wait_status = status;
      newly_dead.push_back(i);
    }
  }
  return newly_dead;
}

/// SIGTERMs every surviving child and blocks until each is reaped.
inline void shutdown_fleet(std::vector<ShardProcess>& fleet) {
  for (ShardProcess& child : fleet)
    if (!child.exited) kill(child.pid, SIGTERM);
  for (ShardProcess& child : fleet) {
    if (child.exited) continue;
    int status = 0;
    if (waitpid(child.pid, &status, 0) == child.pid) {
      child.exited = true;
      child.wait_status = status;
    }
  }
  for (ShardProcess& child : fleet) {
    if (child.out_fd >= 0) {
      close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

/// Human-readable exit description ("exit 0", "signal 9").
inline std::string describe_exit(int wait_status) {
  if (WIFEXITED(wait_status))
    return "exit " + std::to_string(WEXITSTATUS(wait_status));
  if (WIFSIGNALED(wait_status))
    return "signal " + std::to_string(WTERMSIG(wait_status));
  return "status " + std::to_string(wait_status);
}

}  // namespace fbc::tools
