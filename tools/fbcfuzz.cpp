// fbcfuzz: seeded differential fuzzer and invariant auditor.
//
//   fbcfuzz --seed=1 --iters=500                  # full campaign
//   fbcfuzz --smoke                               # fixed-seed CI smoke run
//   fbcfuzz --replay=fbcfuzz-sim-1-42.trace       # re-check a reproducer
//   fbcfuzz --inject-bug --policies=lru           # self-test: catch + shrink
//   fbcfuzz --dump-hard=tests/fixtures --iters=2000
//
// Generates random FBC instances and job traces, checks every
// OptCacheSelect variant against the exact solver (Theorem 4.1 bounds,
// feasibility, step-3 override) and replays traces through the simulator
// under every registered policy with the invariant auditor attached.
// Failures are shrunk to minimal reproducer traces. See docs/FUZZING.md.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>
#include <vector>

#include "core/bounds.hpp"
#include "testing/fuzzer.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace fbc;
using namespace fbc::testing;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Searches for instances where the greedy/exact ratio is worst and dumps
/// the top `count` as fixture traces -- the source of the checked-in
/// Theorem 4.1 regression corpus.
int dump_hard(const std::string& dir, std::uint64_t seed, std::uint64_t iters,
              std::uint64_t exact_budget, std::size_t count) {
  struct Hard {
    double ratio;
    std::uint64_t iter;
    SelectInstance instance;
  };
  std::vector<Hard> worst;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  Rng master(seed);
  SelectGenConfig gen;
  gen.hot_prob = 0.8;  // bias toward high-degree (hard) instances
  gen.hot_files = 3;
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    Rng rng(master.derive_seed(iter));
    SelectInstance instance = generate_select_instance(gen, rng);
    const auto items = instance.items();
    ExactSelectStats stats;
    const SelectionResult exact = exact_select(
        items, instance.catalog, instance.capacity, exact_budget, &stats);
    if (stats.truncated || exact.total_value <= 0.0) continue;
    const std::vector<std::uint32_t> degrees = instance.degrees();
    OptCacheSelect selector(instance.catalog, degrees);
    const SelectionResult greedy =
        selector.select(items, instance.capacity, SelectVariant::Basic, {});
    const double ratio = greedy.total_value / exact.total_value;
    worst.push_back(Hard{ratio, iter, std::move(instance)});
    std::sort(worst.begin(), worst.end(),
              [](const Hard& a, const Hard& b) { return a.ratio < b.ratio; });
    if (worst.size() > count) worst.resize(count);
  }
  for (const Hard& hard : worst) {
    Trace trace = select_instance_to_trace(hard.instance);
    trace.set_meta("exact_nodes", std::to_string(exact_budget));
    trace.set_meta("seed", std::to_string(seed));
    trace.set_meta("iteration", std::to_string(hard.iter));
    std::ostringstream ratio;
    ratio << hard.ratio;
    trace.set_meta("basic_exact_ratio", ratio.str());
    const std::string path =
        dir + "/hard-select-" + std::to_string(seed) + "-" +
        std::to_string(hard.iter) + ".trace";
    save_trace(path, trace);
    const std::vector<SelectionItem> items = hard.instance.items();
    std::cout << "wrote " << path << " (basic/exact = " << ratio.str()
              << ", d = " << max_file_degree(items) << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcfuzz",
                "Differential fuzzer for the FBC selection algorithms and "
                "the cache simulator");
  cli.add_option("seed", "campaign master seed", "1");
  cli.add_option("iters", "number of fuzzing iterations", "100");
  cli.add_option("mode", "all|select|sim|serve|optgen|cluster", "all");
  cli.add_option("policies",
                 "comma-separated policy names for the simulation oracles "
                 "(empty = every registered policy)",
                 "");
  cli.add_option("exact-nodes",
                 "branch-and-bound node budget for the exact reference "
                 "solver (0 = unbounded)",
                 "200000");
  cli.add_option("out", "directory for shrunk reproducer traces", ".");
  cli.add_option("max-failures", "stop after this many distinct failures",
                 "8");
  cli.add_option("replay", "re-check a reproducer trace and exit", "");
  cli.add_option("dump-hard",
                 "search for low greedy/exact-ratio instances and write "
                 "them into this directory as fixtures",
                 "");
  cli.add_option("hard-count", "fixtures kept by --dump-hard", "3");
  cli.add_flag("smoke", "fixed-seed quick campaign for CI (overrides "
                        "--seed/--iters unless set explicitly)");
  cli.add_flag("engine-diff",
               "campaign mode: replay every generated trace through the "
               "Reference and Incremental selection engines in lock-step "
               "(enginediff: adapter) and shrink any divergence");
  cli.add_flag("serve-diff",
               "campaign mode: replay random multi-client schedules "
               "against a real BundleServer, serial vs batched admission, "
               "with the Reference engine shadowing the Incremental one; "
               "shrink any divergence (same as --mode=serve)");
  cli.add_flag("optgen-diff",
               "campaign mode: generate drift-heavy FCFS traces and "
               "differential-test the incremental BundleOPTgen occupancy "
               "oracle against its brute-force interval-scan reference, "
               "plus the capacity / nesting / clairvoyant-bound / "
               "policy-dominance oracles (same as --mode=optgen)");
  cli.add_flag("cluster-diff",
               "campaign mode: replay random schedules through a "
               "ClusterRouter over 2..4 real BundleServer shards, serial "
               "router vs concurrent wave replay, under random placement "
               "modes and policies (optfb/landlord/dist-online); shrink "
               "any divergence (same as --mode=cluster)");
  cli.add_flag("no-shrink", "report failures without shrinking");
  cli.add_flag("inject-bug",
               "self-test: wrap the policies in a deliberately broken "
               "under-freeing adapter and expect the fuzzer to catch it");

  try {
    cli.parse(argc, argv);

    // The fuzzer deliberately generates unserviceable requests and
    // undersized caches; simulator warnings about them are noise here.
    set_log_level(LogLevel::Error);

    if (!cli.get_string("replay").empty()) {
      const Trace trace = load_trace(cli.get_string("replay"));
      const std::vector<Violation> violations = replay_reproducer(trace);
      if (violations.empty()) {
        std::cout << "replay: no violations (reproducer no longer fails)\n";
        return 0;
      }
      for (const Violation& v : violations) {
        std::cout << "replay: " << v.to_string() << "\n";
      }
      return 1;
    }

    if (!cli.get_string("dump-hard").empty()) {
      return dump_hard(cli.get_string("dump-hard"), cli.get_u64("seed"),
                       cli.get_u64("iters"), cli.get_u64("exact-nodes"),
                       cli.get_u64("hard-count"));
    }

    FuzzConfig config;
    config.seed = cli.get_u64("seed");
    config.iters = cli.get_u64("iters");
    if (cli.get_flag("smoke")) {
      if (!cli.was_set("seed")) config.seed = 1;
      if (!cli.was_set("iters")) config.iters = 300;
    }
    const std::string mode = cli.get_string("mode");
    if (mode == "select") {
      config.run_sim = false;
    } else if (mode == "sim") {
      config.run_select = false;
    } else if (mode == "serve") {
      config.run_select = false;
      config.run_sim = false;
      config.run_serve = true;
    } else if (mode == "optgen") {
      config.run_select = false;
      config.run_sim = false;
      config.run_optgen = true;
    } else if (mode == "cluster") {
      config.run_select = false;
      config.run_sim = false;
      config.run_cluster = true;
    } else if (mode != "all") {
      throw std::invalid_argument("unknown --mode: " + mode);
    }
    if (cli.get_flag("serve-diff")) {
      config.run_select = false;
      config.run_sim = false;
      config.run_serve = true;
    }
    if (cli.get_flag("optgen-diff")) {
      config.run_select = false;
      config.run_sim = false;
      config.run_optgen = true;
    }
    if (cli.get_flag("cluster-diff")) {
      config.run_select = false;
      config.run_sim = false;
      config.run_cluster = true;
    }
    config.policies = split_csv(cli.get_string("policies"));
    if (cli.get_flag("engine-diff")) {
      // Selection-instance oracles do not exercise the engines; spend the
      // whole campaign on simulator traces under the lock-step adapter.
      config.run_select = false;
      if (config.policies.empty()) {
        config.policies = {"optfb",        "optfb-basic", "optfb-seeded1",
                           "optfb-seeded2", "optfb-full",  "optfb-window",
                           "optfb-bytes"};
      }
      for (std::string& name : config.policies) name = "enginediff:" + name;
    }
    if (cli.get_flag("inject-bug")) {
      if (config.policies.empty()) config.policies = {"lru"};
      for (std::string& name : config.policies) name = "underfree:" + name;
    }
    config.exact_node_budget = cli.get_u64("exact-nodes");
    config.out_dir = cli.get_string("out");
    config.shrink = !cli.get_flag("no-shrink");
    config.max_failures = cli.get_u64("max-failures");

    const FuzzReport report = run_fuzz(config, std::cerr);
    std::cout << "fbcfuzz: " << report.iterations << " iterations, "
              << report.select_instances << " select instances, "
              << report.sim_runs << " simulator runs, "
              << report.serve_runs << " serving schedules, "
              << report.optgen_runs << " optgen cross-checks, "
              << report.cluster_runs << " cluster replays, "
              << report.exact_truncations << " exact-solver truncations, "
              << report.failures.size() << " failure(s)\n";
    for (const FuzzFailure& failure : report.failures) {
      std::cout << "  iter " << failure.iteration << ": "
                << failure.violation.to_string() << " [shrunk to "
                << failure.shrunk_jobs << " request(s)";
      if (!failure.reproducer_path.empty())
        std::cout << ", " << failure.reproducer_path;
      std::cout << "]\n";
    }
    if (cli.get_flag("inject-bug")) {
      // Self-test inverts the exit logic: the bug must be caught.
      if (report.clean()) {
        std::cout << "fbcfuzz: SELF-TEST FAILED -- injected bug not caught\n";
        return 1;
      }
      std::cout << "fbcfuzz: self-test ok -- injected bug caught and shrunk\n";
      return 0;
    }
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcfuzz: " << e.what() << "\n";
    return 2;
  }
}
