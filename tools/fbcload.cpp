// fbcload: N-connection load generator for fbcd.
//
//   # self-hosted loopback benchmark (starts fbcd in-process):
//   fbcload --inline -c 8 -n 2000 --scenario=henp --cache=2GiB
//
//   # against an already-running daemon started with the SAME scenario
//   # flags (the workload is regenerated locally from them):
//   fbcload --port=7401 -c 8 -n 2000 --scenario=henp --cache=2GiB
//
// Each connection runs on its own thread with its own BundleClient and
// replays an interleaved slice of the scenario job stream: acquire ->
// hold -> release, honoring QueueFull retry-after backpressure hints.
// Reports throughput and end-to-end p50/p95/p99 acquire latency; exits
// nonzero if any request ultimately fails (the CI smoke gate).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "serving_common.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace fbc;

namespace {

using Clock = std::chrono::steady_clock;

/// Outcome tallies of one connection worker.
struct WorkerResult {
  std::vector<double> latencies_ms;  ///< successful acquires, end to end
  std::uint64_t ok = 0;
  std::uint64_t hits = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_retries = 0;    ///< QueueFull backpressure retries
  std::uint64_t transfer_retries = 0; ///< server-reported staging retries
};

/// Replays job indices i with i % connections == worker over one client.
void run_worker(std::uint16_t port, const Workload& workload,
                std::size_t worker, std::size_t connections,
                std::size_t total_requests, std::uint64_t hold_ms,
                WorkerResult* out) {
  service::BundleClient client(port);
  for (std::size_t i = worker; i < total_requests; i += connections) {
    const Request& job = workload.jobs[i % workload.jobs.size()];
    const auto start = Clock::now();
    service::AcquireResult r;
    // Honor backpressure: QueueFull is a retry hint, not a failure, but
    // bound the loop so a wedged server cannot hang the generator.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      r = client.acquire(job.files);
      if (r.status != service::AcquireStatus::QueueFull) break;
      ++out->queue_retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<std::uint32_t>(
              1, r.retry_after_ms)));
    }
    out->transfer_retries += r.retries;
    if (r.status != service::AcquireStatus::Ok) {
      ++out->failed;
      std::cerr << "fbcload: request " << i << " failed: "
                << to_string(r.status) << "\n";
      continue;
    }
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    if (!client.release(r.lease)) ++out->failed;
    const std::chrono::duration<double, std::milli> elapsed =
        Clock::now() - start;
    out->latencies_ms.push_back(elapsed.count());
    ++out->ok;
    if (r.request_hit) ++out->hits;
  }
}

/// Percentile over a sorted sample (nearest-rank).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Client-side sanity checks over a stats snapshot, in the spirit of the
/// InvariantAuditor: catches a server whose counters stopped tying out.
std::vector<std::string> check_stats(const service::ServiceStats& s) {
  std::vector<std::string> violations;
  if (s.used_bytes > s.capacity_bytes)
    violations.push_back("stats: used_bytes exceeds capacity_bytes");
  if (s.request_hits > s.requests)
    violations.push_back("stats: request_hits exceeds requests");
  if (s.bytes_missed > s.bytes_requested)
    violations.push_back("stats: bytes_missed exceeds bytes_requested");
  if (s.leases_released > s.leases_granted)
    violations.push_back("stats: released more leases than granted");
  if (s.active_leases != s.leases_granted - s.leases_released)
    violations.push_back("stats: active_leases inconsistent");
  if (s.leases_granted != s.requests)
    violations.push_back("stats: leases_granted != requests admitted");
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  // Short aliases for the two flags everyone types.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-c") {
      arg = "--connections";
    } else if (arg == "-n") {
      arg = "--requests";
    }
    args.push_back(std::move(arg));
  }

  CliParser cli("fbcload", "Concurrent load generator for fbcd");
  tools::add_service_options(cli);
  tools::add_scenario_options(cli);
  cli.add_option("port", "fbcd port (ignored with --inline)", "7401");
  cli.add_option("connections", "concurrent client connections (-c)", "8");
  cli.add_option("requests", "total acquire requests (-n)", "2000");
  cli.add_option("hold-ms", "lease hold time per request", "0");
  cli.add_option("workers", "daemon handler threads with --inline", "8");
  cli.add_flag("inline", "start fbcd in-process on an ephemeral port");
  cli.add_flag("json", "emit the report as JSON");

  try {
    cli.parse(args);
    const service::ServiceConfig config = tools::service_config_from_cli(cli);
    const Workload workload =
        tools::build_scenario_workload(cli, config.cache_bytes);
    const std::size_t connections = cli.get_u64("connections");
    const std::size_t total_requests = cli.get_u64("requests");
    const std::uint64_t hold_ms = cli.get_u64("hold-ms");
    if (connections == 0) throw std::invalid_argument("need --connections>0");

    // Self-hosted daemon for loopback benchmarking / CI smoke.
    std::unique_ptr<MassStorageSystem> mss;
    std::unique_ptr<service::BundleServer> server;
    std::unique_ptr<service::BundleDaemon> daemon;
    std::uint16_t port = static_cast<std::uint16_t>(cli.get_u64("port"));
    if (cli.get_flag("inline")) {
      mss = std::make_unique<MassStorageSystem>(default_tiers(),
                                                workload.catalog);
      tools::place_tier_mix(*mss, cli);
      server = std::make_unique<service::BundleServer>(config, *mss);
      daemon = std::make_unique<service::BundleDaemon>(
          *server, /*port=*/0, cli.get_u64("workers"));
      port = daemon->port();
    }

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    const auto wall_start = Clock::now();
    for (std::size_t w = 0; w < connections; ++w) {
      threads.emplace_back(run_worker, port, std::cref(workload), w,
                           connections, total_requests, hold_ms,
                           &results[w]);
    }
    for (std::thread& t : threads) t.join();
    const std::chrono::duration<double> wall = Clock::now() - wall_start;

    WorkerResult total;
    for (const WorkerResult& r : results) {
      total.ok += r.ok;
      total.hits += r.hits;
      total.failed += r.failed;
      total.queue_retries += r.queue_retries;
      total.transfer_retries += r.transfer_retries;
      total.latencies_ms.insert(total.latencies_ms.end(),
                                r.latencies_ms.begin(),
                                r.latencies_ms.end());
    }
    std::sort(total.latencies_ms.begin(), total.latencies_ms.end());

    // Final stats snapshot + invariant checks over a fresh connection.
    service::BundleClient probe(port);
    const service::ServiceStats stats = probe.stats();
    probe.disconnect();
    std::vector<std::string> violations = check_stats(stats);
    if (server) {
      // Inline mode can additionally run the full server-side audit.
      const std::vector<std::string> audit = server->audit();
      violations.insert(violations.end(), audit.begin(), audit.end());
    }

    const double wall_s = std::max(wall.count(), 1e-9);
    RunningStats lat;
    for (double ms : total.latencies_ms) lat.add(ms);
    TextTable table(
        {"scenario", "policy", "connections", "requests", "ok", "failed",
         "request_hit_pct", "queue_retries", "transfer_retries", "evictions",
         "throughput_rps", "mean_ms", "p50_ms", "p95_ms", "p99_ms"});
    table.add_row(
        {cli.get_string("scenario"), config.policy,
         std::to_string(connections), std::to_string(total_requests),
         std::to_string(total.ok), std::to_string(total.failed),
         format_double(total.ok == 0 ? 0.0
                                     : 100.0 * static_cast<double>(total.hits) /
                                           static_cast<double>(total.ok)),
         std::to_string(total.queue_retries),
         std::to_string(total.transfer_retries),
         std::to_string(stats.evictions),
         format_double(static_cast<double>(total.ok) / wall_s),
         format_double(lat.mean()),
         format_double(percentile(total.latencies_ms, 0.50)),
         format_double(percentile(total.latencies_ms, 0.95)),
         format_double(percentile(total.latencies_ms, 0.99))});
    if (cli.get_flag("json")) {
      table.print_json(std::cout);
    } else {
      table.print(std::cout);
    }

    if (daemon) daemon->stop();
    for (const std::string& v : violations)
      std::cerr << "fbcload: INVARIANT VIOLATION: " << v << "\n";
    if (total.failed > 0) {
      std::cerr << "fbcload: " << total.failed << " failed requests\n";
      return 1;
    }
    return violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcload: error: " << e.what() << "\n";
    return 1;
  }
}
