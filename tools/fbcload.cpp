// fbcload: N-connection load generator for fbcd / fbcgrid.
//
//   # self-hosted loopback benchmark (starts fbcd in-process):
//   fbcload --inline -c 8 -n 2000 --scenario=henp --cache=2GiB
//
//   # self-hosted sharded cluster (ClusterRouter over --shards servers):
//   fbcload --inline --cluster --shards=4 -c 8 -n 2000 --cache=512MiB
//
//   # against an already-running daemon started with the SAME scenario
//   # flags (the workload is regenerated locally from them):
//   fbcload --port=7401 -c 8 -n 2000 --scenario=henp --cache=2GiB
//
// Each connection runs on its own thread with its own BundleClient and
// replays an interleaved slice of the scenario job stream: acquire ->
// hold -> release, honoring QueueFull retry-after backpressure hints.
// Reports throughput and end-to-end p50/p95/p99 acquire latency (all
// percentiles via util/stats::quantile -- the single project-wide
// implementation), fetches the server's MsgType::Metrics snapshot, and
// cross-checks the server-side span percentiles against the client-side
// view; exits nonzero if any request ultimately fails or any check trips
// (the CI smoke gate).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "serving_common.hpp"
#include "obs/histogram.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace fbc;

namespace {

using Clock = std::chrono::steady_clock;

/// Outcome tallies of one connection worker.
struct WorkerResult {
  std::vector<double> latencies_ms;  ///< successful acquires, end to end
  /// The same latencies floor-truncated to whole microseconds -- the
  /// exact values a server-side histogram would have seen, so the
  /// server-vs-client percentile cross-check compares like with like.
  std::vector<double> latencies_us;
  std::uint64_t ok = 0;
  std::uint64_t hits = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_retries = 0;    ///< QueueFull backpressure retries
  std::uint64_t transfer_retries = 0; ///< server-reported staging retries
};

/// Replays job indices i with i % connections == worker over one client.
///
/// With `pipeline` (the default), job i's release and job i+1's acquire
/// travel in one wire round trip (BundleClient::release_acquire), halving
/// the per-job round trips -- the dominant loopback cost for small
/// bundles. Latency accounting keeps the nesting the server-vs-client
/// percentile cross-check relies on: a job's window opens just before the
/// frame carrying its acquire is written (for pipelined jobs, inside the
/// previous job's combined call) and closes when its release reply is
/// read, so the server-side enqueue->grant span always lies inside it.
void run_worker(std::uint16_t port, const Workload& workload,
                std::size_t worker, std::size_t connections,
                std::size_t total_requests, std::uint64_t hold_ms,
                std::uint64_t timeout_ms, bool pipeline, bool legacy_wire,
                WorkerResult* out) {
  service::BundleClient client(port, legacy_wire);

  // Honor backpressure: QueueFull is a retry hint, not a failure. Each
  // retry sleeps the server's load-proportional hint, but the *cumulative*
  // sleep is capped at the per-request admission timeout (RetryBudget), so
  // a wedged server fails requests instead of hanging the generator.
  const auto retry_queue_full = [&](service::AcquireResult r,
                                    const Request& job) {
    tools::RetryBudget budget(timeout_ms);
    while (r.status == service::AcquireStatus::QueueFull) {
      const auto delay = budget.next_delay(r.retry_after_ms);
      if (!delay.has_value()) break;  // budget spent: report the failure
      ++out->queue_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(*delay));
      r = client.acquire(job.files);
    }
    return r;
  };

  bool have_next = false;              // next job already acquired?
  service::AcquireResult next_result;  // ... its result
  Clock::time_point next_start{};      // ... and when its acquire was sent

  for (std::size_t i = worker; i < total_requests; i += connections) {
    const Request& job = workload.jobs[i % workload.jobs.size()];
    Clock::time_point start;
    service::AcquireResult r;
    if (have_next) {
      start = next_start;
      r = next_result;
      have_next = false;
    } else {
      start = Clock::now();
      r = retry_queue_full(client.acquire(job.files), job);
    }
    out->transfer_retries += r.retries;
    if (r.status != service::AcquireStatus::Ok) {
      ++out->failed;
      std::cerr << "fbcload: request " << i << " failed: "
                << to_string(r.status) << "\n";
      continue;
    }
    if (hold_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));

    bool released;
    const std::size_t next_index = i + connections;
    if (pipeline && next_index < total_requests) {
      const Request& next_job =
          workload.jobs[next_index % workload.jobs.size()];
      next_start = Clock::now();
      next_result = retry_queue_full(
          client.release_acquire(r.lease, next_job.files, &released),
          next_job);
      have_next = true;
    } else {
      released = client.release(r.lease);
    }
    if (!released) ++out->failed;
    const auto elapsed = Clock::now() - start;
    const std::chrono::duration<double, std::milli> elapsed_ms = elapsed;
    out->latencies_ms.push_back(elapsed_ms.count());
    out->latencies_us.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    ++out->ok;
    if (r.request_hit) ++out->hits;
  }
}

/// Client-side sanity checks over a stats snapshot, in the spirit of the
/// InvariantAuditor: catches a server whose counters stopped tying out.
std::vector<std::string> check_stats(const service::ServiceStats& s) {
  std::vector<std::string> violations;
  if (s.used_bytes > s.capacity_bytes)
    violations.push_back("stats: used_bytes exceeds capacity_bytes");
  if (s.request_hits > s.requests)
    violations.push_back("stats: request_hits exceeds requests");
  if (s.bytes_missed > s.bytes_requested)
    violations.push_back("stats: bytes_missed exceeds bytes_requested");
  if (s.leases_released > s.leases_granted)
    violations.push_back("stats: released more leases than granted");
  if (s.active_leases != s.leases_granted - s.leases_released)
    violations.push_back("stats: active_leases inconsistent");
  if (s.leases_granted != s.requests)
    violations.push_back("stats: leases_granted != requests admitted");
  return violations;
}

/// Looks up a named counter in a metrics snapshot (0 when absent).
std::uint64_t counter_of(const service::MetricsSnapshot& m,
                         const std::string& name) {
  for (const auto& [counter, value] : m.counters)
    if (counter == name) return value;
  return 0;
}

/// Looks up a named histogram (nullptr when absent).
const obs::Histogram* histogram_of(const service::MetricsSnapshot& m,
                                   const std::string& name) {
  for (const auto& named : m.histograms)
    if (named.name == name) return &named.hist;
  return nullptr;
}

/// Server-vs-client observability cross-checks. Only meaningful when this
/// fbcload produced every request the server ever admitted
/// (stats.requests == client_ok, always true for --inline); skipped
/// silently otherwise.
///
/// The percentile check rests on per-request nesting: the server's
/// enqueue->grant span lies inside the client's acquire->release window,
/// so the k-th smallest server duration is <= the k-th smallest client
/// duration, and therefore every server quantile *lower bound* (the
/// histogram bracket) must be <= the exact client quantile computed by
/// util/stats::quantile over the same floor-truncated microsecond values.
std::vector<std::string> check_metrics(const service::MetricsSnapshot& m,
                                       const std::vector<double>& client_us,
                                       std::uint64_t client_ok) {
  std::vector<std::string> violations;
  if (m.stats.requests != client_ok || client_ok == 0) return violations;

  const struct {
    const char* name;
    std::uint64_t expected;
  } counts[] = {
      {"acquire.fetch_us", m.stats.requests},
      {"acquire.queue_depth", m.stats.requests},
      {"acquire.queue_us", m.stats.requests},
      {"acquire.reserve_us", m.stats.requests},
      {"acquire.total_us", m.stats.requests},
      {"lease.hold_us", m.stats.leases_released},
  };
  for (const auto& [name, expected] : counts) {
    const obs::Histogram* hist = histogram_of(m, name);
    if (hist == nullptr) {
      violations.push_back(std::string("metrics: histogram ") + name +
                           " missing from the snapshot");
    } else if (hist->count() != expected) {
      violations.push_back(std::string("metrics: histogram ") + name +
                           " count " + std::to_string(hist->count()) +
                           " != expected " + std::to_string(expected));
    }
  }
  if (counter_of(m, "acquire.ok") != m.stats.requests)
    violations.push_back("metrics: counter acquire.ok != stats.requests");
  if (counter_of(m, "release.ok") != m.stats.leases_released)
    violations.push_back(
        "metrics: counter release.ok != stats.leases_released");
  if (counter_of(m, "acquire.queue_full") != m.stats.rejected_full)
    violations.push_back(
        "metrics: counter acquire.queue_full != stats.rejected_full");
  if (counter_of(m, "acquire.timed_out") != m.stats.timed_out)
    violations.push_back(
        "metrics: counter acquire.timed_out != stats.timed_out");
  if (counter_of(m, "fetch.transfers") !=
      m.stats.requests - m.stats.request_hits)
    violations.push_back(
        "metrics: counter fetch.transfers != stats misses "
        "(requests - request_hits)");

  // Batched-admission tie-outs: every grant is counted in exactly one
  // non-empty drain pass, so the batch-size histogram's *sum* equals the
  // grant count; the coalesce-wait histogram records exactly the grants
  // that blocked (the acquire.coalesced counter).
  const obs::Histogram* batch = histogram_of(m, "admit.batch_size");
  if (batch == nullptr) {
    violations.push_back("metrics: histogram admit.batch_size missing");
  } else if (batch->sum() != m.stats.requests) {
    violations.push_back("metrics: admit.batch_size sum " +
                         std::to_string(batch->sum()) +
                         " != stats.requests " +
                         std::to_string(m.stats.requests));
  }
  const obs::Histogram* coalesce = histogram_of(m, "acquire.coalesce_us");
  if (coalesce == nullptr) {
    violations.push_back("metrics: histogram acquire.coalesce_us missing");
  } else if (coalesce->count() != counter_of(m, "acquire.coalesced")) {
    violations.push_back(
        "metrics: acquire.coalesce_us count != acquire.coalesced counter");
  }

  const obs::Histogram* total = histogram_of(m, "acquire.total_us");
  if (total != nullptr && total->count() == client_us.size()) {
    for (double q : {0.50, 0.95, 0.99}) {
      const double client_q = quantile(client_us, q);
      const obs::QuantileEstimate server_q = total->quantile_bounds(q);
      if (static_cast<double>(server_q.lower) > client_q) {
        std::ostringstream oss;
        oss << "metrics: server p" << static_cast<int>(q * 100)
            << " lower bound " << server_q.lower
            << "us exceeds client-side quantile " << client_q << "us";
        violations.push_back(oss.str());
      }
    }
  }
  return violations;
}

/// Renders the metrics histograms, with raw "idx:count|idx:count" bucket
/// cells that scripts/bench_to_json.py parses back into dicts.
void print_histograms(const service::MetricsSnapshot& m, bool as_json) {
  TextTable table(
      {"histogram", "count", "mean", "p50", "p95", "p99", "max", "buckets"});
  for (const auto& named : m.histograms) {
    const auto& h = named.hist;
    std::ostringstream buckets;
    bool first = true;
    for (std::size_t i = 0; i < obs::Histogram::kBucketCount; ++i) {
      if (h.bucket_count(i) == 0) continue;
      if (!first) buckets << "|";
      buckets << i << ":" << h.bucket_count(i);
      first = false;
    }
    table.add_row({named.name, std::to_string(h.count()),
                   format_double(h.mean()), format_double(h.quantile(0.50)),
                   format_double(h.quantile(0.95)),
                   format_double(h.quantile(0.99)), std::to_string(h.max()),
                   buckets.str()});
  }
  if (as_json) {
    table.print_json(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Short aliases for the two flags everyone types.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-c") {
      arg = "--connections";
    } else if (arg == "-n") {
      arg = "--requests";
    }
    args.push_back(std::move(arg));
  }

  CliParser cli("fbcload", "Concurrent load generator for fbcd");
  tools::add_service_options(cli);
  tools::add_scenario_options(cli);
  cli.add_option("port", "fbcd port (ignored with --inline)", "7401");
  cli.add_option("connections", "concurrent client connections (-c)", "8");
  cli.add_option("requests", "total acquire requests (-n)", "2000");
  cli.add_option("hold-ms", "lease hold time per request", "0");
  cli.add_option("workers", "daemon handler threads with --inline", "8");
  cli.add_flag("inline", "start fbcd in-process on an ephemeral port");
  cli.add_flag("cluster",
               "with --inline: serve from a sharded ClusterRouter (see "
               "--shards/--placement) instead of a single server");
  tools::add_cluster_options(cli);
  cli.add_flag("json", "emit the report as JSON");
  cli.add_flag("hist", "also print the server-side metrics histograms");
  cli.add_flag("no-pipeline",
               "one round trip per RPC (serial release, pre-batching "
               "client behavior; bench baseline mode)");

  try {
    cli.parse(args);
    const service::ServiceConfig config = tools::service_config_from_cli(cli);
    const Workload workload =
        tools::build_scenario_workload(cli, config.cache_bytes);
    const std::size_t connections = cli.get_u64("connections");
    const std::size_t total_requests = cli.get_u64("requests");
    const std::uint64_t hold_ms = cli.get_u64("hold-ms");
    if (connections == 0) throw std::invalid_argument("need --connections>0");

    // Self-hosted daemon for loopback benchmarking / CI smoke.
    std::unique_ptr<MassStorageSystem> mss;
    std::unique_ptr<service::BundleServer> server;
    tools::ClusterBackend cluster_backend;
    tools::ClusterStack cluster_stack;
    std::unique_ptr<service::BundleDaemon> daemon;
    std::uint16_t port = static_cast<std::uint16_t>(cli.get_u64("port"));
    if (cli.get_flag("inline")) {
      if (cli.get_flag("cluster")) {
        const cluster::ClusterConfig cluster_config =
            tools::cluster_config_from_cli(cli);
        cluster_backend =
            tools::make_cluster_backend(cluster_config, cli, workload);
        cluster_stack = tools::make_local_cluster(cluster_config, config,
                                                  *cluster_backend.backend);
        daemon = std::make_unique<service::BundleDaemon>(
            *cluster_stack.router, /*port=*/0, cli.get_u64("workers"));
      } else {
        mss = std::make_unique<MassStorageSystem>(default_tiers(),
                                                  workload.catalog);
        tools::place_tier_mix(*mss, cli);
        server = std::make_unique<service::BundleServer>(config, *mss);
        daemon = std::make_unique<service::BundleDaemon>(
            *server, /*port=*/0, cli.get_u64("workers"));
      }
      port = daemon->port();
    }

    std::vector<WorkerResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    const auto wall_start = Clock::now();
    for (std::size_t w = 0; w < connections; ++w) {
      threads.emplace_back(run_worker, port, std::cref(workload), w,
                           connections, total_requests, hold_ms,
                           cli.get_u64("timeout-ms"),
                           !cli.get_flag("no-pipeline"),
                           config.legacy_wire, &results[w]);
    }
    for (std::thread& t : threads) t.join();
    const std::chrono::duration<double> wall = Clock::now() - wall_start;

    WorkerResult total;
    for (const WorkerResult& r : results) {
      total.ok += r.ok;
      total.hits += r.hits;
      total.failed += r.failed;
      total.queue_retries += r.queue_retries;
      total.transfer_retries += r.transfer_retries;
      total.latencies_ms.insert(total.latencies_ms.end(),
                                r.latencies_ms.begin(),
                                r.latencies_ms.end());
      total.latencies_us.insert(total.latencies_us.end(),
                                r.latencies_us.begin(),
                                r.latencies_us.end());
    }

    // Final metrics snapshot (exercises the MsgType::Metrics round-trip)
    // + invariant checks over a fresh connection.
    service::BundleClient probe(port);
    const service::MetricsSnapshot metrics = probe.metrics();
    const service::ServiceStats& stats = metrics.stats;
    probe.disconnect();
    std::vector<std::string> violations = check_stats(stats);
    {
      const std::vector<std::string> more =
          check_metrics(metrics, total.latencies_us, total.ok);
      violations.insert(violations.end(), more.begin(), more.end());
    }
    if (server) {
      // Inline mode can additionally run the full server-side audit.
      const std::vector<std::string> audit = server->audit();
      violations.insert(violations.end(), audit.begin(), audit.end());
    }
    if (cluster_stack.router) {
      // Same, per shard; plus no scatter lease may outlive its job.
      for (std::size_t i = 0; i < cluster_stack.servers.size(); ++i)
        for (const std::string& v : cluster_stack.servers[i]->audit())
          violations.push_back("shard " + std::to_string(i) + ": " + v);
      if (cluster_stack.router->scatter_leases() != 0)
        violations.push_back(
            "cluster: " +
            std::to_string(cluster_stack.router->scatter_leases()) +
            " scatter leases outstanding after all clients finished");
    }

    const double wall_s = std::max(wall.count(), 1e-9);
    RunningStats lat;
    for (double ms : total.latencies_ms) lat.add(ms);
    // Server-side span percentiles (point estimates, converted to ms) next
    // to the client-observed ones: the gap between the columns is the
    // client-side overhead (socket round-trips plus release).
    const obs::Histogram* srv = histogram_of(metrics, "acquire.total_us");
    const auto srv_ms = [&](double q) {
      if (srv == nullptr || srv->empty()) return std::string("nan");
      return format_double(srv->quantile(q) / 1000.0);
    };
    TextTable table(
        {"scenario", "policy", "connections", "requests", "ok", "failed",
         "request_hit_pct", "queue_retries", "transfer_retries", "evictions",
         "throughput_rps", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
         "srv_p50_ms", "srv_p95_ms", "srv_p99_ms"});
    table.add_row(
        {cli.get_string("scenario"), config.policy,
         std::to_string(connections), std::to_string(total_requests),
         std::to_string(total.ok), std::to_string(total.failed),
         format_double(total.ok == 0 ? 0.0
                                     : 100.0 * static_cast<double>(total.hits) /
                                           static_cast<double>(total.ok)),
         std::to_string(total.queue_retries),
         std::to_string(total.transfer_retries),
         std::to_string(stats.evictions),
         format_double(static_cast<double>(total.ok) / wall_s),
         format_double(lat.mean()),
         format_double(quantile(total.latencies_ms, 0.50)),
         format_double(quantile(total.latencies_ms, 0.95)),
         format_double(quantile(total.latencies_ms, 0.99)),
         srv_ms(0.50), srv_ms(0.95), srv_ms(0.99)});
    if (cli.get_flag("json")) {
      table.print_json(std::cout);
    } else {
      table.print(std::cout);
    }
    if (cli.get_flag("hist")) {
      std::cout << "\n";
      print_histograms(metrics, cli.get_flag("json"));
    }

    if (daemon) daemon->stop();
    for (const std::string& v : violations)
      std::cerr << "fbcload: INVARIANT VIOLATION: " << v << "\n";
    if (total.failed > 0) {
      std::cerr << "fbcload: " << total.failed << " failed requests\n";
      return 1;
    }
    return violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcload: error: " << e.what() << "\n";
    return 1;
  }
}
