// fbcgrid: the sharded bundle-serving cluster daemon.
//
// Three deployment shapes behind the same ClusterRouter and port:
//
//   fbcgrid --shards=4 --placement=affinity --cache=512MiB --port=7402
//     N in-process BundleServer shards (the default -- one process).
//
//   fbcgrid --spawn-remote --shards=4 --port=0
//     forks N fbcd shard daemons (ephemeral ports scraped from their
//     startup lines) and routes to them over the wire protocol -- the
//     multi-process deployment. Children are supervised: a shard that
//     dies is reported (and the router degrades placement around it);
//     shutdown SIGTERMs the fleet and a shard audit violation fails the
//     grid.
//
//   fbcgrid --attach=7411,7412,7413,7414 --port=7402
//     routes to pre-started fbcd daemons it does not own (multi-host
//     shape: start fbcd anywhere, attach a router to the ports).
//
// Clients speak the ordinary fbcd wire protocol and never see the
// sharding (a HelloRequest reveals it: role=router, shard_count=N, plus
// shards_down for fleet health). Placement picks how bundles land on
// shards (see docs/CLUSTER.md); a shard that throws NetError
// --down-threshold times in a row is marked down and requests re-route
// to live shards until a probe succeeds. Drive it with fbcctl or
// fbcload. Runs until SIGINT/SIGTERM; exits non-zero if any shard's
// final audit reports an invariant violation.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "fleet.hpp"
#include "serving_common.hpp"
#include "service/daemon.hpp"

using namespace fbc;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// The flags a spawned fbcd child inherits from the grid's own CLI: the
/// full service + scenario surface, so every shard builds the exact
/// workload and serving stack the router plans against.
std::vector<std::string> shard_daemon_args(const CliParser& cli,
                                           std::uint32_t shard_id) {
  std::vector<std::string> args = {
      "--port=0",
      "--shard-id=" + std::to_string(shard_id),
      "--workers=" + std::to_string(cli.get_u64("workers")),
      "--scenario=" + cli.get_string("scenario"),
      "--wseed=" + std::to_string(cli.get_u64("wseed")),
      "--jobs=" + std::to_string(cli.get_u64("jobs")),
      "--tier-mix=" + cli.get_string("tier-mix"),
      "--cache=" + cli.get_string("cache"),
      "--policy=" + cli.get_string("policy"),
      "--max-queue=" + std::to_string(cli.get_u64("max-queue")),
      "--order=" + cli.get_string("order"),
      "--timeout-ms=" + std::to_string(cli.get_u64("timeout-ms")),
      "--max-retries=" + std::to_string(cli.get_u64("max-retries")),
      "--retry-backoff-ms=" + std::to_string(cli.get_u64("retry-backoff-ms")),
      "--fail-prob=" + cli.get_string("fail-prob"),
      "--time-scale=" + cli.get_string("time-scale"),
      "--streams=" + std::to_string(cli.get_u64("streams")),
      "--seed=" + std::to_string(cli.get_u64("seed")),
      "--retry-cap-ms=" + std::to_string(cli.get_u64("retry-cap-ms")),
      "--span-capacity=" + std::to_string(cli.get_u64("span-capacity")),
      "--engine=" + cli.get_string("engine"),
      "--admission-batch=" + std::to_string(cli.get_u64("admission-batch")),
      "--lease-shards=" + std::to_string(cli.get_u64("lease-shards")),
  };
  if (cli.get_flag("no-coalesce")) args.push_back("--no-coalesce");
  if (cli.get_flag("shadow-diff")) args.push_back("--shadow-diff");
  if (cli.get_flag("legacy-wire")) args.push_back("--legacy-wire");
  return args;
}

/// Path of the fbcd binary for --spawn-remote: the --fbcd flag, or the
/// sibling of this binary (build/tools/fbcgrid -> build/tools/fbcd).
std::string resolve_fbcd_path(const CliParser& cli, const char* argv0) {
  std::string path = cli.get_string("fbcd");
  if (!path.empty()) return path;
  const std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "fbcd";
  return self.substr(0, slash + 1) + "fbcd";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcgrid",
                "Serve bundle leases from a sharded cluster behind one port");
  tools::add_service_options(cli);
  tools::add_scenario_options(cli);
  tools::add_cluster_options(cli);
  cli.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "7402");
  cli.add_option("workers", "connection handler threads", "8");
  cli.add_flag("spawn-remote",
               "fork one fbcd shard daemon per shard and route to them "
               "over the wire (multi-process deployment)");
  cli.add_option("attach",
                 "comma-separated ports of pre-started fbcd shard daemons "
                 "to route to (overrides --shards)",
                 "");
  cli.add_option("fbcd",
                 "fbcd binary for --spawn-remote (default: next to this "
                 "binary)",
                 "");

  std::vector<tools::ShardProcess> fleet;
  try {
    cli.parse(argc, argv);
    const service::ServiceConfig service_config =
        tools::service_config_from_cli(cli);
    cluster::ClusterConfig cluster_config =
        tools::cluster_config_from_cli(cli);
    const bool spawn = cli.get_flag("spawn-remote");
    const std::string attach = cli.get_string("attach");
    if (spawn && !attach.empty())
      throw std::invalid_argument("--spawn-remote and --attach are exclusive");
    const bool remote = spawn || !attach.empty();
    if (remote && cluster_config.replica_sites != 0)
      throw std::invalid_argument(
          "--replica-sites needs the in-process cluster (fbcd shards fetch "
          "from their own plain MSS)");

    // The job stream is sized against one shard's cache, same as fbcload
    // --cluster, so both sides generate identical catalogs.
    const Workload workload =
        tools::build_scenario_workload(cli, service_config.cache_bytes);

    tools::ClusterStack stack;  // in-process shards (default mode)
    std::unique_ptr<cluster::ClusterRouter> remote_router;
    tools::ClusterBackend backend;
    cluster::ClusterRouter* router = nullptr;
    if (remote) {
      std::vector<std::uint16_t> ports;
      if (spawn) {
        const std::string fbcd = resolve_fbcd_path(cli, argv[0]);
        for (std::uint32_t i = 0; i < cluster_config.shards; ++i)
          fleet.push_back(
              tools::spawn_shard_daemon(fbcd, shard_daemon_args(cli, i)));
        for (std::size_t i = 0; i < fleet.size(); ++i) {
          ports.push_back(fleet[i].port);
          // Parseable per-child line (the CI smoke kills one by pid).
          std::cout << "fbcgrid: shard " << i << " pid=" << fleet[i].pid
                    << " port=" << fleet[i].port << "\n";
        }
      } else {
        ports = tools::parse_port_list(attach);
        if (ports.empty())
          throw std::invalid_argument("--attach lists no ports");
        cluster_config.shards = static_cast<std::uint32_t>(ports.size());
      }
      std::vector<std::unique_ptr<cluster::Shard>> shards;
      shards.reserve(ports.size());
      for (const std::uint16_t p : ports)
        shards.push_back(std::make_unique<cluster::RemoteShard>(
            p, false, cluster_config.remote_pool_cap));
      remote_router = std::make_unique<cluster::ClusterRouter>(
          cluster_config, workload.catalog, service_config.cache_bytes,
          std::move(shards));
      router = remote_router.get();
    } else {
      backend = tools::make_cluster_backend(cluster_config, cli, workload);
      stack = tools::make_local_cluster(cluster_config, service_config,
                                        *backend.backend);
      router = stack.router.get();
    }

    service::BundleDaemon daemon(
        *router, static_cast<std::uint16_t>(cli.get_u64("port")),
        cli.get_u64("workers"));
    // Parseable startup line (CI smoke scrapes the port).
    std::cout << "fbcgrid: listening on 127.0.0.1:" << daemon.port()
              << " shards=" << cluster_config.shards
              << " placement=" << cluster::to_string(cluster_config.placement)
              << " mode=" << (spawn ? "spawn" : (remote ? "attach" : "local"))
              << " scenario=" << cli.get_string("scenario")
              << " policy=" << service_config.policy << " cache="
              << format_bytes(service_config.cache_bytes) << "/shard"
              << std::endl;

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      for (const std::size_t i : tools::reap_exited(fleet)) {
        // The router degrades placement around the dead shard on its
        // own; the supervisor just makes the death visible.
        std::cerr << "fbcgrid: shard " << i << " (pid " << fleet[i].pid
                  << ") died: " << tools::describe_exit(fleet[i].wait_status)
                  << "; routing around it\n";
      }
    }

    daemon.stop();
    const service::ServiceStats stats = router->stats();
    const service::MetricsSnapshot metrics = router->metrics();
    std::uint64_t single = 0;
    std::uint64_t scatter = 0;
    std::uint64_t rollback = 0;
    std::uint64_t rerouted = 0;
    std::uint64_t shard_down = 0;
    std::uint64_t recovered = 0;
    for (const auto& [name, value] : metrics.counters) {
      if (name == "grid.acquire.single") single = value;
      if (name == "grid.acquire.scatter") scatter = value;
      if (name == "grid.acquire.rollback") rollback = value;
      if (name == "grid.acquire.rerouted") rerouted = value;
      if (name == "grid.shard.down") shard_down = value;
      if (name == "grid.shard.recovered") recovered = value;
    }
    std::cout << "fbcgrid: served " << stats.requests
              << " shard requests (" << single << " single-shard, " << scatter
              << " scattered, " << rollback << " rolled back, " << rerouted
              << " rerouted), " << daemon.connections_accepted()
              << " connections, " << daemon.leases_reclaimed()
              << " leases reclaimed, " << shard_down << " shard-down / "
              << recovered << " recovered events\n";

    bool clean = true;
    for (std::size_t i = 0; i < stack.servers.size(); ++i) {
      for (const std::string& v : stack.servers[i]->audit()) {
        std::cerr << "fbcgrid: AUDIT VIOLATION (shard " << i << "): " << v
                  << "\n";
        clean = false;
      }
    }
    if (router->scatter_leases() != 0) {
      std::cerr << "fbcgrid: AUDIT VIOLATION: " << router->scatter_leases()
                << " scatter leases still outstanding at shutdown\n";
      clean = false;
    }
    if (router->pending_releases() != 0) {
      // Deferred releases for a shard that never came back are expected
      // after a kill (the dead daemon's pins died with it); report, do
      // not fail.
      std::cerr << "fbcgrid: " << router->pending_releases()
                << " release(s) still deferred for down shards\n";
    }

    // Remote shards audit themselves: SIGTERM the fleet and fold each
    // child's exit status in (fbcd exits 1 on an audit violation). A
    // child killed by a signal mid-run is the failure-injection case the
    // router is built for -- reported, but not a grid failure.
    tools::shutdown_fleet(fleet);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const int status = fleet[i].wait_status;
      if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        std::cerr << "fbcgrid: AUDIT VIOLATION (shard " << i
                  << "): shard daemon " << tools::describe_exit(status)
                  << "\n";
        clean = false;
      } else if (WIFSIGNALED(status)) {
        std::cerr << "fbcgrid: shard " << i << " was killed ("
                  << tools::describe_exit(status) << "); tolerated\n";
      }
    }
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcgrid: error: " << e.what() << "\n";
    tools::shutdown_fleet(fleet);
    return 1;
  }
}
