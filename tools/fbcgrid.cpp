// fbcgrid: the sharded bundle-serving cluster daemon.
//
// Builds N in-process BundleServer shards (each with its own --cache-sized
// staging cache and admission pipeline) behind a ClusterRouter, and serves
// the whole cluster through one BundleDaemon port -- clients speak the
// ordinary fbcd wire protocol and never see the sharding (a HelloRequest
// reveals it: role=router, shard_count=N).
//
//   fbcgrid --shards=4 --placement=affinity --cache=512MiB --port=7402
//   fbcgrid --shards=8 --placement=hash --replica-sites=2 --port=0
//
// Placement picks how bundles land on shards (see docs/CLUSTER.md);
// --replica-sites swaps the plain MSS for a ReplicaManager so shard
// misses fetch from the cheapest replica site instead of the WAN origin.
// Drive it with fbcctl or fbcload. Runs until SIGINT/SIGTERM; exits
// non-zero if any shard's final audit reports an invariant violation.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "serving_common.hpp"
#include "service/daemon.hpp"

using namespace fbc;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcgrid",
                "Serve bundle leases from a sharded cluster behind one port");
  tools::add_service_options(cli);
  tools::add_scenario_options(cli);
  tools::add_cluster_options(cli);
  cli.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "7402");
  cli.add_option("workers", "connection handler threads", "8");

  try {
    cli.parse(argc, argv);
    const service::ServiceConfig service_config =
        tools::service_config_from_cli(cli);
    const cluster::ClusterConfig cluster_config =
        tools::cluster_config_from_cli(cli);
    // The job stream is sized against one shard's cache, same as fbcload
    // --cluster, so both sides generate identical catalogs.
    const Workload workload =
        tools::build_scenario_workload(cli, service_config.cache_bytes);
    const tools::ClusterBackend backend =
        tools::make_cluster_backend(cluster_config, cli, workload);

    tools::ClusterStack stack =
        tools::make_local_cluster(cluster_config, service_config,
                                  *backend.backend);
    service::BundleDaemon daemon(
        *stack.router, static_cast<std::uint16_t>(cli.get_u64("port")),
        cli.get_u64("workers"));
    // Parseable startup line (CI smoke scrapes the port).
    std::cout << "fbcgrid: listening on 127.0.0.1:" << daemon.port()
              << " shards=" << cluster_config.shards
              << " placement=" << cluster::to_string(cluster_config.placement)
              << " scenario=" << cli.get_string("scenario")
              << " policy=" << service_config.policy << " cache="
              << format_bytes(service_config.cache_bytes) << "/shard"
              << std::endl;

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    daemon.stop();
    const service::ServiceStats stats = stack.router->stats();
    const service::MetricsSnapshot metrics = stack.router->metrics();
    std::uint64_t single = 0;
    std::uint64_t scatter = 0;
    std::uint64_t rollback = 0;
    for (const auto& [name, value] : metrics.counters) {
      if (name == "grid.acquire.single") single = value;
      if (name == "grid.acquire.scatter") scatter = value;
      if (name == "grid.acquire.rollback") rollback = value;
    }
    std::cout << "fbcgrid: served " << stats.requests
              << " shard requests (" << single << " single-shard, " << scatter
              << " scattered, " << rollback << " rolled back), "
              << daemon.connections_accepted() << " connections, "
              << daemon.leases_reclaimed() << " leases reclaimed\n";

    bool clean = true;
    for (std::size_t i = 0; i < stack.servers.size(); ++i) {
      for (const std::string& v : stack.servers[i]->audit()) {
        std::cerr << "fbcgrid: AUDIT VIOLATION (shard " << i << "): " << v
                  << "\n";
        clean = false;
      }
    }
    if (stack.router->scatter_leases() != 0) {
      std::cerr << "fbcgrid: AUDIT VIOLATION: " << stack.router->scatter_leases()
                << " scatter leases still outstanding at shutdown\n";
      clean = false;
    }
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcgrid: error: " << e.what() << "\n";
    return 1;
  }
}
