// fbcctl: control client for a running fbcd or fbcgrid.
//
//   fbcctl --port=7401 stats
//   fbcctl --port=7401 metrics --watch=2        # re-poll every 2 seconds
//   fbcctl --cluster=7401,7411,7421 stats       # merged over N daemons
//   fbcctl --port=7401 acquire --files=3,7,12
//   fbcctl --port=7401 release --lease=42
//
// --watch re-polls the same connection (stats/metrics wire messages are
// cheap and side-effect free) until interrupted. --cluster connects to
// every listed port and prints the exact merge of the per-daemon
// snapshots -- the same aggregation a ClusterRouter serves for its own
// shards, but computed client-side for independently started daemons.
//
// Note acquire+exit releases the lease immediately (the daemon reclaims
// leases of departed connections); use --hold-ms to keep it pinned for a
// while, e.g. to watch another client queue behind it.
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/stats.hpp"
#include "service/client.hpp"
#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace fbc;

namespace {

std::vector<FileId> parse_files(const std::string& list) {
  std::vector<FileId> files;
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty())
      files.push_back(static_cast<FileId>(std::stoul(token)));
  }
  return files;
}

void print_stats(const service::ServiceStats& s) {
  TextTable table({"counter", "value"});
  table.add_row({"requests", std::to_string(s.requests)});
  table.add_row({"request_hits", std::to_string(s.request_hits)});
  table.add_row({"rejected_full", std::to_string(s.rejected_full)});
  table.add_row({"timed_out", std::to_string(s.timed_out)});
  table.add_row({"unserviceable", std::to_string(s.unserviceable)});
  table.add_row({"invalid", std::to_string(s.invalid)});
  table.add_row({"transfer_retries", std::to_string(s.transfer_retries)});
  table.add_row({"transfer_failures", std::to_string(s.transfer_failures)});
  table.add_row({"leases_granted", std::to_string(s.leases_granted)});
  table.add_row({"leases_released", std::to_string(s.leases_released)});
  table.add_row({"active_leases", std::to_string(s.active_leases)});
  table.add_row({"queue_depth", std::to_string(s.queue_depth)});
  table.add_row({"evictions", std::to_string(s.evictions)});
  table.add_row({"bytes_requested", format_bytes(s.bytes_requested)});
  table.add_row({"bytes_missed", format_bytes(s.bytes_missed)});
  table.add_row({"bytes_evicted", format_bytes(s.bytes_evicted)});
  table.add_row({"used_bytes", format_bytes(s.used_bytes)});
  table.add_row({"capacity_bytes", format_bytes(s.capacity_bytes)});
  table.add_row({"resident_files", std::to_string(s.resident_files)});
  table.print(std::cout);
}

void print_metrics(const service::MetricsSnapshot& m) {
  print_stats(m.stats);

  std::cout << "\n";
  TextTable counters({"counter", "value"});
  for (const auto& [name, value] : m.counters)
    counters.add_row({name, std::to_string(value)});
  counters.print(std::cout);

  std::cout << "\n";
  TextTable hists({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
  for (const auto& named : m.histograms) {
    const auto& h = named.hist;
    hists.add_row({named.name, std::to_string(h.count()),
                   format_double(h.mean()), format_double(h.quantile(0.50)),
                   format_double(h.quantile(0.95)),
                   format_double(h.quantile(0.99)), std::to_string(h.max())});
  }
  hists.print(std::cout);
}

std::vector<std::uint16_t> parse_ports(const std::string& list) {
  std::vector<std::uint16_t> ports;
  std::istringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty())
      ports.push_back(static_cast<std::uint16_t>(std::stoul(token)));
  }
  return ports;
}

/// Connects to one daemon, turning the bare connect errno into an
/// actionable message (the old behavior surfaced "connect(127.0.0.1:N):
/// Connection refused" with no hint at what to do about it).
std::unique_ptr<service::BundleClient> connect_or_explain(std::uint16_t port) {
  try {
    return std::make_unique<service::BundleClient>(port);
  } catch (const service::NetError& e) {
    throw std::runtime_error(std::string(e.what()) +
                             " -- is fbcd/fbcgrid running on 127.0.0.1:" +
                             std::to_string(port) + "?");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The first non-flag argument is the command; peel it off before the
  // flag parser (CliParser rejects positionals).
  std::string command;
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (command.empty() && arg.rfind("--", 0) != 0 && arg != "-h") {
      command = arg;
    } else {
      flags.push_back(arg);
    }
  }

  CliParser cli(
      "fbcctl",
      "One-shot fbcd client: fbcctl <stats|metrics|acquire|release> ...");
  cli.add_option("port", "fbcd port on 127.0.0.1", "7401");
  cli.add_option("cluster",
                 "comma-separated daemon ports; stats/metrics are merged "
                 "over all of them",
                 "");
  cli.add_option("watch",
                 "re-poll stats/metrics every this many seconds (0 = once)",
                 "0");
  cli.add_option("files", "comma-separated file ids for acquire", "");
  cli.add_option("lease", "lease id for release", "0");
  cli.add_option("hold-ms", "hold an acquired lease this long", "0");

  try {
    cli.parse(flags);
    if (command.empty()) throw std::invalid_argument("missing command");

    std::vector<std::uint16_t> ports = parse_ports(cli.get_string("cluster"));
    const bool merged = !ports.empty();
    if (!merged)
      ports.push_back(static_cast<std::uint16_t>(cli.get_u64("port")));

    if (command == "stats" || command == "metrics") {
      std::vector<std::unique_ptr<service::BundleClient>> clients;
      clients.reserve(ports.size());
      for (std::uint16_t p : ports) clients.push_back(connect_or_explain(p));
      // Who are we looking at? One hello up front names the endpoint and
      // its fleet health (a router reports shards it has marked down).
      if (!merged) {
        const service::HelloReplyMsg hello = clients.front()->hello();
        std::cout << "endpoint: role="
                  << (hello.role == service::EndpointRole::Router ? "router"
                                                                  : "shard")
                  << " shards=" << hello.shard_count
                  << " down=" << hello.shards_down << "\n";
      }
      const std::uint64_t watch_s = cli.get_u64("watch");
      for (bool first = true;; first = false) {
        if (!first) {
          std::this_thread::sleep_for(std::chrono::seconds(watch_s));
          std::cout << "\n";
        }
        // A daemon that died (or restarted) between polls must not kill
        // the watch: reconnect once, and on failure skip it this round
        // and flag how many answered. One-shot polls still die loudly.
        std::size_t reachable = 0;
        std::vector<service::ServiceStats> stat_snaps;
        std::vector<service::MetricsSnapshot> metric_snaps;
        for (std::size_t i = 0; i < clients.size(); ++i) {
          try {
            if (command == "stats") {
              stat_snaps.push_back(clients[i]->stats());
            } else {
              metric_snaps.push_back(clients[i]->metrics());
            }
            ++reachable;
          } catch (const service::NetError&) {
            if (watch_s == 0) throw;
            try {
              clients[i]->reconnect();
              if (command == "stats") {
                stat_snaps.push_back(clients[i]->stats());
              } else {
                metric_snaps.push_back(clients[i]->metrics());
              }
              ++reachable;
            } catch (const service::NetError&) {
              std::cout << "daemon 127.0.0.1:" << clients[i]->port()
                        << " (down)\n";
            }
          }
        }
        if (reachable == 0) {
          std::cout << "all " << clients.size() << " daemon(s) down\n";
        } else {
          if (reachable != clients.size())
            std::cout << "reporting " << reachable << "/" << clients.size()
                      << " daemons\n";
          if (command == "stats") {
            print_stats(merged ? cluster::merge_stats(stat_snaps)
                               : stat_snaps.front());
          } else {
            print_metrics(merged ? cluster::merge_metrics(metric_snaps)
                                 : metric_snaps.front());
          }
        }
        if (watch_s == 0) break;
        // A watch loop only ever exits by signal, so nothing downstream
        // of a pipe sees the snapshot unless each poll is flushed.
        std::cout.flush();
      }
      return 0;
    }

    const std::unique_ptr<service::BundleClient> client_ptr =
        connect_or_explain(ports.front());
    service::BundleClient& client = *client_ptr;

    if (command == "acquire") {
      const service::AcquireResult r =
          client.acquire(parse_files(cli.get_string("files")));
      std::cout << "status=" << to_string(r.status) << " lease=" << r.lease
                << " hit=" << (r.request_hit ? "yes" : "no")
                << " retries=" << r.retries;
      if (r.status == service::AcquireStatus::QueueFull)
        std::cout << " retry_after_ms=" << r.retry_after_ms;
      std::cout << "\n";
      if (r.status != service::AcquireStatus::Ok) return 1;
      const auto hold = cli.get_u64("hold-ms");
      if (hold > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(hold));
      client.release(r.lease);
      return 0;
    }
    if (command == "release") {
      const bool ok = client.release(cli.get_u64("lease"));
      std::cout << (ok ? "released" : "unknown lease") << "\n";
      return ok ? 0 : 1;
    }
    throw std::invalid_argument("unknown command '" + command +
                                "' (stats|metrics|acquire|release)");
  } catch (const std::exception& e) {
    std::cerr << "fbcctl: error: " << e.what() << "\n";
    return 1;
  }
}
