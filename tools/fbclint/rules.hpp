// fbclint rules L001..L006 (see docs/STATIC-ANALYSIS.md for the rationale
// and the historical bug behind each rule).
//
//   L001 view-lifetime        temporary owning value passed to a
//                             std::span / std::string_view parameter
//   L002 hook completeness    adapter classes must forward every virtual
//                             of the interface they wrap
//   L003 registry/CLI         policies registered + context knobs surfaced
//   L004 metrics completeness counters present in merge() and
//                             default-initialized
//   L005 determinism          no rand/time/mt19937/unordered iteration
//   L006 header hygiene       #pragma once, no `using namespace` in headers
//   L007 lock discipline      fbc:lock-level ordering, fbc:guards coverage,
//                             no blocking calls under a level-tagged lock
//   L008 wire/stat coherence  ServiceStats + counters appear in stats(),
//                             the codec, and the SERVING.md wire table
#pragma once

#include <vector>

#include "fbclint/model.hpp"

namespace fbclint {

/// Runs every rule over the model; diagnostics are unsuppressed and
/// ordered by (path, line, rule).
[[nodiscard]] std::vector<Diagnostic> run_rules(const ProjectModel& model);

// Individual rules, exposed for targeted tests.
[[nodiscard]] std::vector<Diagnostic> rule_view_lifetime(
    const ProjectModel& model);  // L001
[[nodiscard]] std::vector<Diagnostic> rule_hook_completeness(
    const ProjectModel& model);  // L002
[[nodiscard]] std::vector<Diagnostic> rule_registry_completeness(
    const ProjectModel& model);  // L003
[[nodiscard]] std::vector<Diagnostic> rule_metrics_completeness(
    const ProjectModel& model);  // L004
[[nodiscard]] std::vector<Diagnostic> rule_determinism(
    const ProjectModel& model);  // L005
[[nodiscard]] std::vector<Diagnostic> rule_header_hygiene(
    const ProjectModel& model);  // L006
[[nodiscard]] std::vector<Diagnostic> rule_lock_discipline(
    const ProjectModel& model);  // L007
[[nodiscard]] std::vector<Diagnostic> rule_wire_coherence(
    const ProjectModel& model);  // L008

}  // namespace fbclint
