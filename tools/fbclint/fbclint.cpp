// fbclint: project-specific static analysis for the fbcache codebase.
//
//   fbclint src tools tests        lint the given files/directories
//   fbclint --self-test            run every rule against the seeded
//                                  fixture trees and verify 100% catch
//
// Exit code 0 = clean (or self-test fully green), 1 = violations found
// (or seeded violations missed), 2 = usage/IO error.
//
// Output formats: the default is `path:line: [rule] message`;
// `--format=github` emits GitHub Actions `::error` workflow commands so
// findings annotate the PR diff; `--json` emits a machine-readable array.
//
// Rules (docs/STATIC-ANALYSIS.md): L001 view-lifetime, L002 hook
// completeness, L003 registry/CLI completeness, L004 metrics completeness,
// L005 determinism, L006 header hygiene, L007 lock discipline, L008
// wire/stat coherence. Suppress a finding with a `// fbclint:ignore(LNNN)`
// comment (alias: `fbclint:allow`) on the offending line or the line
// above it.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fbclint/lexer.hpp"
#include "fbclint/model.hpp"
#include "fbclint/rules.hpp"

#ifndef FBCLINT_FIXTURE_DIR
#define FBCLINT_FIXTURE_DIR "tools/fbclint/fixtures"
#endif

namespace fs = std::filesystem;
using namespace fbclint;

namespace {

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Collects *.{cpp,hpp,cc,h} under each root. In repo mode, fixture trees
/// (which contain deliberate violations) and build directories are
/// skipped.
std::vector<std::string> collect_files(const std::vector<std::string>& roots,
                                       bool skip_fixtures) {
  std::vector<std::string> out;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      if (is_source_file(p)) out.push_back(p.generic_string());
      continue;
    }
    if (!fs::is_directory(p)) {
      throw std::runtime_error("fbclint: no such file or directory: " + root);
    }
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string generic = it->path().generic_string();
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if ((skip_fixtures && name == "fixtures") ||
            name.starts_with("build") || name == ".git") {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (it->is_regular_file() && is_source_file(it->path()))
        out.push_back(generic);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ProjectModel lint_paths(const std::vector<std::string>& roots,
                        bool skip_fixtures) {
  std::vector<SourceFile> files;
  for (const std::string& path : collect_files(roots, skip_fixtures))
    files.push_back(lex_file(path, read_file(path)));
  return build_model(std::move(files));
}

enum class Format { Plain, Github, Json };

/// JSON / workflow-command string escaping. GitHub workflow commands
/// additionally percent-encode their own metacharacters so a message
/// containing '%' or a newline cannot smuggle in a second command.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string github_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      default: out += c;
    }
  }
  return out;
}

void print_diags(const std::vector<Diagnostic>& diags, Format format) {
  if (format == Format::Json) {
    std::cout << "[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
      const Diagnostic& d = diags[i];
      std::cout << (i == 0 ? "" : ",") << "\n  {\"rule\": \"" << d.rule
                << "\", \"path\": \"" << json_escape(d.path)
                << "\", \"line\": " << d.line << ", \"message\": \""
                << json_escape(d.message) << "\"}";
    }
    std::cout << (diags.empty() ? "]\n" : "\n]\n");
    return;
  }
  for (const Diagnostic& d : diags) {
    if (format == Format::Github) {
      std::cout << "::error file=" << d.path << ",line=" << d.line
                << ",title=fbclint " << d.rule
                << "::" << github_escape(d.message) << "\n";
    } else {
      std::cout << d.path << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
  }
}

/// Matches diagnostics against `fbclint:expect(...)` markers (same file,
/// same rule, within one line). Returns true when every seeded violation
/// was caught and no unexpected diagnostic fired.
bool check_case(const std::string& name, const std::vector<Diagnostic>& diags,
                const Markers& markers) {
  std::vector<bool> diag_used(diags.size(), false);
  std::size_t missed = 0;
  for (const Diagnostic& expected : markers.expects) {
    bool found = false;
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (diag_used[i]) continue;
      if (diags[i].rule == expected.rule && diags[i].path == expected.path &&
          std::abs(diags[i].line - expected.line) <= 1) {
        diag_used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) {
      ++missed;
      std::cout << "  MISSED  " << expected.path << ":" << expected.line
                << " expected " << expected.rule << "\n";
    }
  }
  std::size_t unexpected = 0;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (diag_used[i]) continue;
    ++unexpected;
    std::cout << "  SPURIOUS " << diags[i].path << ":" << diags[i].line
              << " [" << diags[i].rule << "] " << diags[i].message << "\n";
  }
  const bool ok = missed == 0 && unexpected == 0;
  std::cout << (ok ? "  PASS " : "  FAIL ") << name << ": "
            << markers.expects.size() << " seeded, "
            << (markers.expects.size() - missed) << " caught, " << unexpected
            << " spurious\n";
  return ok;
}

int run_self_test(const std::string& fixture_root) {
  if (!fs::is_directory(fixture_root)) {
    std::cerr << "fbclint: fixture directory not found: " << fixture_root
              << "\n";
    return 2;
  }
  std::vector<std::string> cases;
  for (const auto& entry : fs::directory_iterator(fixture_root))
    if (entry.is_directory()) cases.push_back(entry.path().generic_string());
  std::sort(cases.begin(), cases.end());
  if (cases.empty()) {
    std::cerr << "fbclint: no fixture cases under " << fixture_root << "\n";
    return 2;
  }
  bool all_ok = true;
  std::size_t total_seeded = 0;
  for (const std::string& dir : cases) {
    std::cout << "self-test " << dir << "\n";
    const ProjectModel model = lint_paths({dir}, /*skip_fixtures=*/false);
    const Markers markers = collect_markers(model);
    const std::vector<Diagnostic> diags =
        apply_suppressions(run_rules(model), markers);
    total_seeded += markers.expects.size();
    all_ok = check_case(dir, diags, markers) && all_ok;
  }
  std::cout << (all_ok ? "self-test PASS" : "self-test FAIL") << " ("
            << cases.size() << " cases, " << total_seeded
            << " seeded violations)\n";
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  Format format = Format::Plain;
  std::string fixture_root = FBCLINT_FIXTURE_DIR;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg.starts_with("--fixtures=")) {
      fixture_root = arg.substr(11);
    } else if (arg == "--format=plain") {
      format = Format::Plain;
    } else if (arg == "--format=github") {
      format = Format::Github;
    } else if (arg == "--json") {
      format = Format::Json;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fbclint [--self-test] [--fixtures=DIR] "
                   "[--format=plain|github] [--json] [paths...]\n";
      return 0;
    } else if (arg.starts_with("--")) {
      std::cerr << "fbclint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  try {
    if (self_test) return run_self_test(fixture_root);
    if (roots.empty()) {
      std::cerr << "fbclint: no paths given (try: fbclint src tools tests)\n";
      return 2;
    }
    const ProjectModel model = lint_paths(roots, /*skip_fixtures=*/true);
    const std::vector<Diagnostic> diags =
        apply_suppressions(run_rules(model), collect_markers(model));
    print_diags(diags, format);
    if (format != Format::Json) {
      if (diags.empty())
        std::cout << "fbclint: clean (" << model.files.size() << " files)\n";
      else
        std::cout << "fbclint: " << diags.size() << " violation(s)\n";
    }
    return diags.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
