// Fixture annotation/runtime drift (L007): the fbc:lock-level annotation
// and the OrderedMutex constructor literal disagree, and a function marked
// fbc:blocking is called under a level-tagged lock.
#pragma once

#include <mutex>

namespace fx3 {

/// Stand-in for util/ordered_mutex (the lexer never resolves includes;
/// the rule keys on the annotation comments and the initializer literal).
class OrderedMutex {
 public:
  OrderedMutex(int level, const char* name);
  void lock();
  void unlock();
};

// Flushes every dirty page; may block on disk for an unbounded time.
// fbc:blocking
void flush_all();

class Journal {
 public:
  void append() {
    std::lock_guard<OrderedMutex> lock(journal_mu_);
    entries_ = entries_ + 1;
    // fbclint:expect(L007) blocking flush_all while holding journal_mu_
    flush_all();
  }

 private:
  // fbc:lock-level(20)
  // fbc:guards(entries_)
  // fbclint:expect(L007) annotation says 20, initializer says 30
  OrderedMutex journal_mu_{30, "Journal::journal_mu_"};
  int entries_ = 0;
};

}  // namespace fx3
