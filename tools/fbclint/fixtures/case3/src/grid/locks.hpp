// Fixture lock discipline (L007): a two-level hierarchy with seeded
// inversion, recursion, guard-coverage, blocking-under-lock, requires and
// excludes violations. The clean methods (put, wait_nonempty, merge_stats,
// size) pin the rule's negative space: correct nesting, the
// condition-variable wait exemption, multi-lock scoped_lock in level
// order, and an honored fbc:requires contract must NOT fire.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace fx3 {

class Store {
 public:
  void put(int v) {
    std::lock_guard<std::mutex> lock(table_mu_);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);  // ok: 10 -> 40
      ++writes_;
    }
    items_.push_back(v);
    cv_.notify_all();
  }

  void wait_nonempty() {
    std::unique_lock<std::mutex> lock(table_mu_);
    // ok: wait() releases the guard it is handed for the wait's duration
    cv_.wait(lock, [this] { return !items_.empty(); });
  }

  void merge_stats() {
    std::scoped_lock both(table_mu_, stats_mu_);  // ok: 10 then 40
    writes_ += static_cast<int>(items_.size());
  }

  int size() const {
    std::lock_guard<std::mutex> lock(table_mu_);
    return count_locked();  // ok: the required table_mu_ is held
  }

  // Seeded inversion: the level-40 stats lock is taken first, then the
  // level-10 table lock -- levels must strictly increase.
  int bad_nested() {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    // fbclint:expect(L007) inversion: 40 held while acquiring 10
    std::lock_guard<std::mutex> lock(table_mu_);
    return writes_ + static_cast<int>(items_.size());
  }

  // Seeded recursive acquisition: same level twice is never "increasing".
  int bad_recursive() {
    std::lock_guard<std::mutex> outer(table_mu_);
    // fbclint:expect(L007) recursive acquire of table_mu_
    std::lock_guard<std::mutex> inner(table_mu_);
    return static_cast<int>(items_.size());
  }

  // Seeded guard-coverage gap: reads items_ without table_mu_.
  // fbclint:expect(L007)
  int unguarded_size() const { return static_cast<int>(items_.size()); }

  // Seeded blocking-under-lock: sleeps while holding the table lock,
  // stalling every other thread that needs it.
  void bad_sleep() {
    std::lock_guard<std::mutex> lock(table_mu_);
    // fbclint:expect(L007) blocking sleep_for while holding table_mu_
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    items_.clear();
  }

  // Seeded requires violation: count_locked's contract says the caller
  // holds table_mu_, but nothing is held here.
  int bad_unlocked_count() const {
    // fbclint:expect(L007) count_locked requires table_mu_
    return count_locked();
  }

  // Seeded excludes violation: compact takes table_mu_ itself, so calling
  // it with the lock held would self-deadlock.
  void bad_compact_under_lock() {
    std::lock_guard<std::mutex> lock(table_mu_);
    items_.shrink_to_fit();
    // fbclint:expect(L007) compact declares fbc:excludes(table_mu_)
    compact();
  }

  // Rebuilds the table; takes table_mu_ internally.
  // fbc:excludes(table_mu_)
  void compact();

 private:
  // Caller must hold table_mu_.
  // fbc:requires(table_mu_)
  int count_locked() const { return static_cast<int>(items_.size()); }

  // fbc:lock-level(10)
  // fbc:guards(items_)
  mutable std::mutex table_mu_;
  // fbc:lock-level(40)
  // fbc:guards(writes_)
  mutable std::mutex stats_mu_;
  std::condition_variable cv_;
  std::vector<int> items_;
  int writes_ = 0;
};

}  // namespace fx3
