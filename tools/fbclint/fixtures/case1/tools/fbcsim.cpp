// Fixture CLI: surfaces seed and aging_factor but forgets the
// history_window_jobs knob (seeded L003, flagged at the PolicyContext
// member in registry.hpp).
#include "core/registry.hpp"

namespace fx {

int run_cli(int argc, char** argv) {
  (void)argc;
  (void)argv;
  PolicyContext context;
  context.seed = 7;
  context.aging_factor = 0.5;
  return 0;
}

}  // namespace fx
