// Seeded L002 violations: wrapping adapters that forget to forward hooks.
#include "cache/policy.hpp"
#include "cache/simulator.hpp"

namespace fx {

// Forwards name/select_victims/reset but swallows on_job_arrival and
// on_prefetched: history bookkeeping in the wrapped policy silently
// stops. Two seeded violations, flagged at the class head.
// fbclint:expect(L002) fbclint:expect(L002)
class ForgetfulAdapter : public ReplacementPolicy {
 public:
  explicit ForgetfulAdapter(PolicyPtr inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return "forgetful:" + inner_->name();
  }
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, unsigned long bytes_needed,
      const DiskCache& cache) override {
    return inner_->select_victims(request, bytes_needed, cache);
  }
  void reset() override { inner_->reset(); }

 private:
  PolicyPtr inner_;
};

// Complete adapter: forwards every hook. Must NOT be flagged.
class CompleteAdapter : public ReplacementPolicy {
 public:
  explicit CompleteAdapter(PolicyPtr inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  void on_job_arrival(const Request& request, const DiskCache& cache) override {
    inner_->on_job_arrival(request, cache);
  }
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, unsigned long bytes_needed,
      const DiskCache& cache) override {
    return inner_->select_victims(request, bytes_needed, cache);
  }
  void on_prefetched(std::span<const FileId> loaded,
                     const DiskCache& cache) override {
    inner_->on_prefetched(loaded, cache);
  }
  void reset() override { inner_->reset(); }

 private:
  PolicyPtr inner_;
};

// Non-adapter policy (no wrapped inner): partial overrides are fine.
class PlainPolicy : public ReplacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "plain"; }
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, unsigned long bytes_needed,
      const DiskCache& cache) override {
    (void)request;
    (void)bytes_needed;
    (void)cache;
    return {};
  }
};

}  // namespace fx
