// Seeded L005 violations: every way a simulation stops being
// reproducible from its 64-bit seed.
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace fx {

unsigned wallclock_seeded() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // fbclint:expect(L005) fbclint:expect(L005)
  return static_cast<unsigned>(std::rand());  // fbclint:expect(L005)
}

double library_generator() {
  std::mt19937 gen(12345);  // fbclint:expect(L005)
  return static_cast<double>(gen());
}

double order_dependent_sum(const std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  // Floating-point addition is not associative: the total depends on
  // bucket order.
  for (const auto& [id, w] : weights) acc += w * acc;  // fbclint:expect(L005)
  return acc;
}

// Suppression path: a justified unordered iteration must NOT be
// reported once annotated (no expect marker here on purpose).
unsigned long suppressed_count(const std::unordered_map<int, double>& weights) {
  unsigned long n = 0;
  // Order-independent count. fbclint:ignore(L005)
  for (const auto& [id, w] : weights) n += id != 0 ? 1u : 0u;
  return n;
}

}  // namespace fx
