// Fixture metrics: seeded L004 violations -- one counter missing from
// merge(), one scalar counter without a default member initializer.
#pragma once

#include <cstdint>

namespace fx {

class CacheMetrics {
 public:
  void record_job() noexcept;
  void merge(const CacheMetrics& other) noexcept;
  [[nodiscard]] std::uint64_t jobs() const noexcept { return jobs_; }

 private:
  std::uint64_t jobs_ = 0;
  std::uint64_t bytes_missed_ = 0;  // fbclint:expect(L004) not merged
  std::uint64_t evictions_;         // fbclint:expect(L004) no initializer
};

}  // namespace fx
