// Fixture interface: a trimmed ReplacementPolicy. fbclint parses the
// virtual hook list live from this definition, so the L002 expectations
// below stay in sync with it.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fx {

class DiskCache;
struct Request;
using FileId = unsigned;

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void on_job_arrival(const Request& request, const DiskCache& cache) {
    (void)request;
    (void)cache;
  }
  [[nodiscard]] virtual std::vector<FileId> select_victims(
      const Request& request, unsigned long bytes_needed,
      const DiskCache& cache) = 0;
  virtual void on_prefetched(std::span<const FileId> loaded,
                             const DiskCache& cache) {
    (void)loaded;
    (void)cache;
  }
  virtual void reset() {}
};

using PolicyPtr = std::unique_ptr<ReplacementPolicy>;

}  // namespace fx
