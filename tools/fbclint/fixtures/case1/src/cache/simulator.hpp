// Fixture interface: a trimmed SimulationObserver.
#pragma once

namespace fx {

class DiskCache;
struct Request;

class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;
  virtual void on_job_start(const Request& request, const DiskCache& cache) {
    (void)request;
    (void)cache;
  }
  virtual void on_eviction(unsigned id, const DiskCache& cache) {
    (void)id;
    (void)cache;
  }
};

}  // namespace fx
