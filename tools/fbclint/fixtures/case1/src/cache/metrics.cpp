#include "cache/metrics.hpp"

namespace fx {

void CacheMetrics::record_job() noexcept { ++jobs_; }

// Seeded bug: bytes_missed_ is silently dropped by aggregation, and
// that is what L004 must catch (the expect marker sits on the member
// declaration in metrics.hpp).
void CacheMetrics::merge(const CacheMetrics& other) noexcept {
  jobs_ += other.jobs_;
  evictions_ += other.evictions_;
}

}  // namespace fx
