// Fixture registry header: the PolicyContext knobs. `history_window_jobs`
// is deliberately not surfaced by the fixture fbcsim.cpp.
#pragma once

#include <cstdint>

namespace fx {

struct PolicyContext {
  std::uint64_t seed = 1;
  double aging_factor = 0.0;
  std::uint64_t history_window_jobs = 1000;  // fbclint:expect(L003)
};

}  // namespace fx
