#include "core/registry.hpp"

#include "policies/alpha.hpp"
// NOTE: policies/beta.hpp is deliberately not included (seeded L003).

namespace fx {

class PolicyStub {};

PolicyStub make_policy(const char* name, const PolicyContext& context) {
  (void)context;
  const char* n = name;
  std::string probe(n);
  if (probe == "alpha") return PolicyStub{};
  // Seeded bug: "ghost" is accepted here but policy_names() below does
  // not list it, so --policy=all sweeps would silently skip it.
  if (probe == "ghost") return PolicyStub{};  // fbclint:expect(L003)
  return PolicyStub{};
}

// Seeded bug: "missing" is advertised but make_policy() cannot build it.
// fbclint:expect(L003)
std::vector<std::string> policy_names() {
  return {"alpha", "missing"};
}

}  // namespace fx
