// Fixture selection API: the signatures behind the PR 1 dangling-span
// bug. OptCacheSelect *stores* the degrees span, so a temporary argument
// dangles as soon as the constructor's full expression ends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fx {

class FileCatalog;

class RequestHistory {
 public:
  /// Returns the degree table BY VALUE -- the shape that made the PR 1
  /// bug possible (the fixed production code returns a stable span).
  [[nodiscard]] std::vector<std::uint32_t> degrees() const;
};

class OptCacheSelect {
 public:
  OptCacheSelect(const FileCatalog& catalog,
                 std::span<const std::uint32_t> degrees) noexcept;

 private:
  const FileCatalog* catalog_ = nullptr;
  std::span<const std::uint32_t> degrees_;
};

void run_select(std::span<const std::uint32_t> degrees);

}  // namespace fx
