// Minimized reconstruction of the PR 1 dangling-span bug: a temporary
// degrees() vector bound to OptCacheSelect's span parameter. Only ASan
// caught the original at runtime; L001 must catch it statically.
#include "core/select.hpp"

namespace fx {

void pr1_bug(const FileCatalog& catalog, const RequestHistory& history) {
  // The exact PR 1 shape: local declaration binding a temporary.
  OptCacheSelect selector(catalog, history.degrees());  // fbclint:expect(L001)
  (void)selector;
}

void direct_call_bug(const RequestHistory& history) {
  run_select(history.degrees());  // fbclint:expect(L001)
}

void fixed_variant(const FileCatalog& catalog, const RequestHistory& history) {
  // The fix shipped in PR 1: bind the owning value to a named local so
  // it outlives the selector. Must NOT be flagged.
  const std::vector<std::uint32_t> degrees = history.degrees();
  OptCacheSelect selector(catalog, degrees);
  run_select(degrees);
  (void)selector;
}

}  // namespace fx
