// Fixture policy that IS registered -- must not be flagged.
#pragma once

namespace fx {

class AlphaPolicy {};

}  // namespace fx
