// fbclint:expect(L003) -- this policy header is not #included by the
// fixture registry.cpp, so the policy cannot be constructed by name.
#pragma once

namespace fx {

class BetaPolicy {};

}  // namespace fx
