// fbclint:expect(L006) -- include guard instead of #pragma once: still
// flagged, the project standardizes on the pragma.
#ifndef FX_BAD_HEADER_HPP
#define FX_BAD_HEADER_HPP

#include <string>

using namespace std;  // fbclint:expect(L006)

namespace fx {

inline string shout(const string& s) { return s + "!"; }

}  // namespace fx

#endif
