// Fixture cluster router CLI: surfaces ClusterConfig::shards and
// ::placement (ghost_knob is deliberately absent -- the L003 seed lives
// at its declaration in src/cluster/config.hpp).
#include "cluster/config.hpp"

namespace fx2 {

ClusterConfig cluster_config_from_cli() {
  ClusterConfig config;
  config.shards = 8;
  config.placement = 1;
  return config;
}

}  // namespace fx2
