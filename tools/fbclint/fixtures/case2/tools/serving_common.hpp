// Fixture serving CLI surface: flags for cache_bytes, timeout_ms and
// admission_batch only; ServiceConfig::secret_knob and ::lease_shards are
// deliberately missing (seeded L003).
#pragma once

#include "service/server.hpp"

namespace fx2 {

inline ServiceConfig service_config_from_cli() {
  ServiceConfig config;
  config.cache_bytes = 2048;
  config.timeout_ms = 100;
  config.admission_batch = 4;
  return config;
}

}  // namespace fx2
