// Fixture serving CLI surface: flags for cache_bytes and timeout_ms only;
// ServiceConfig::secret_knob is deliberately missing (seeded L003).
#pragma once

#include "service/server.hpp"

namespace fx2 {

inline ServiceConfig service_config_from_cli() {
  ServiceConfig config;
  config.cache_bytes = 2048;
  config.timeout_ms = 100;
  return config;
}

}  // namespace fx2
