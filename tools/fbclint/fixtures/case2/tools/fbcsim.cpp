// Fixture CLI: only queue_length is surfaced; decay and shard_count are
// seeded L003 gaps (flagged at their declarations in registry.hpp).
#include "core/registry.hpp"

namespace fx2 {

int run_cli() {
  PolicyContext context;
  context.queue_length = 8;
  return 0;
}

}  // namespace fx2
