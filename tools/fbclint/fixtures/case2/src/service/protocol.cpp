// Fixture codec: the first switch forgets MsgType::Stats, the second hides
// behind a default label -- both seeded L003 exhaustiveness violations.
#include "service/protocol.hpp"

namespace fx2 {

int frame_size(MsgType type) {
  // fbclint:expect(L003)
  switch (type) {
    case MsgType::Ping: return 1;
    case MsgType::Pong: return 2;
  }
  return 0;
}

const char* frame_name(MsgType type) {
  // fbclint:expect(L003)
  switch (type) {
    case MsgType::Ping: return "ping";
    case MsgType::Pong: return "pong";
    case MsgType::Stats: return "stats";
    default: return "unknown";
  }
}

void put_u64(unsigned char* out, unsigned long long v);

// Encodes the stats block -- but forgets ServiceStats::evictions, the
// seeded L008 codec gap flagged at the field's declaration.
void encode_stats(const ServiceStats& stats, unsigned char* out) {
  put_u64(out, stats.requests);
  put_u64(out + 8, stats.hits);
}

}  // namespace fx2
