// Fixture serving config: cache_bytes and timeout_ms are surfaced by the
// fixture serving_common.hpp; secret_knob is a seeded L003 gap.
#pragma once

#include <cstdint>
#include <string>

namespace fx2 {

struct ServiceConfig {
  std::uint64_t cache_bytes = 1024;
  std::uint64_t timeout_ms = 5000;
  std::uint32_t secret_knob = 7;  // fbclint:expect(L003)
};

class Histogram;
class CounterRegistry;

/// Serving layer whose observability members must all be exported by
/// metrics(); the hold-time histogram is a seeded L004 export gap.
class BundleServer {
 public:
  void metrics() const;

 private:
  Histogram* queue_us_;
  Histogram* hold_us_;  // fbclint:expect(L004) not exported by metrics()
  CounterRegistry* counters_;
};

}  // namespace fx2
