// Fixture serving config: cache_bytes, timeout_ms and admission_batch are
// surfaced by the fixture serving_common.hpp; secret_knob and lease_shards
// are seeded L003 gaps. policy_factory is a callable member -- exempt from
// the flag-surface requirement (function-typed fields are injection seams,
// not CLI knobs) -- so it must NOT fire.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fx2 {

struct ServiceConfig {
  std::uint64_t cache_bytes = 1024;
  std::uint64_t timeout_ms = 5000;
  std::uint32_t secret_knob = 7;  // fbclint:expect(L003)
  std::uint64_t admission_batch = 8;
  std::uint64_t lease_shards = 16;  // fbclint:expect(L003)
  std::function<void(const std::string&)> policy_factory;
};

class Histogram;
class CounterRegistry;

/// Serving layer whose observability members must all be exported by
/// metrics(); the hold-time histogram is a seeded L004 export gap.
class BundleServer {
 public:
  void metrics() const;

 private:
  Histogram* queue_us_;
  Histogram* hold_us_;  // fbclint:expect(L004) not exported by metrics()
  CounterRegistry* counters_;
};

}  // namespace fx2
