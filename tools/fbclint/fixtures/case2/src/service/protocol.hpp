// Fixture protocol: three message types the codec switches must cover.
#pragma once

#include <cstdint>

namespace fx2 {

enum class MsgType : std::uint8_t {
  Ping = 1,
  Pong = 2,  // fbclint:expect(L008) no | 2 | Pong | row in the wire table
  Stats = 3,
};

/// Wire stats block (L008): every field must be assigned by
/// BundleServer::stats(), named by the codec, and counted by the
/// StatsReply row of the docs wire table -- which here still says 2.
// fbclint:expect(L008)
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  // fbclint:expect(L008) evictions is never encoded by the codec
  std::uint64_t evictions = 0;  // fbclint:expect(L008) nor set by stats()
};

}  // namespace fx2
