// Fixture protocol: three message types the codec switches must cover.
#pragma once

#include <cstdint>

namespace fx2 {

enum class MsgType : std::uint8_t {
  Ping = 1,
  Pong = 2,
  Stats = 3,
};

}  // namespace fx2
