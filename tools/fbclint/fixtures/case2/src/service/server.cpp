// Fixture serving metrics export: metrics() reads the queue histogram
// and the counters but forgets hold_us_ (the seeded L004 export gap in
// server.hpp).
#include "server.hpp"

namespace fx2 {

void export_histogram(const char* name, const Histogram* hist);
void export_counters(const CounterRegistry* counters);

void BundleServer::metrics() const {
  export_histogram("queue_us", queue_us_);
  export_counters(counters_);
}

}  // namespace fx2
