// Fixture serving metrics export: metrics() reads the queue histogram
// and the counters but forgets hold_us_ (the seeded L004 export gap in
// server.hpp).
#include "server.hpp"

#include "service/protocol.hpp"

namespace fx2 {

void export_histogram(const char* name, const Histogram* hist);
void export_counters(const CounterRegistry* counters);

void BundleServer::metrics() const {
  export_histogram("queue_us", queue_us_);
  export_counters(counters_);
}

void export_counter(const char* name, unsigned long long value);

// Fills the wire stats block -- but never assigns evictions, the seeded
// L008 staleness gap flagged at the field's declaration in protocol.hpp.
ServiceStats BundleServer::stats() const {
  ServiceStats out;
  out.requests = 1;
  out.hits = 2;
  return out;
}

// Exports the obs counters. svc.queue_us is documented in the fixture
// docs; svc.hold_us is the seeded undocumented-metric gap.
void BundleServer::counters() const {
  export_counter("svc.queue_us", 1);
  // fbclint:expect(L008) svc.hold_us is not documented
  export_counter("svc.hold_us", 2);
}

}  // namespace fx2
