// Seeded L005 violations, second shapes: time(0), random_device,
// random_shuffle, and unordered_set iteration.
#include <algorithm>
#include <ctime>
#include <random>
#include <unordered_set>
#include <vector>

namespace fx2 {

unsigned long entropy_seed() {
  std::random_device rd;  // fbclint:expect(L005)
  return rd();
}

long legacy_clock_seed() {
  return time(0);  // fbclint:expect(L005)
}

void legacy_shuffle(std::vector<int>& items) {
  std::random_shuffle(items.begin(), items.end());  // fbclint:expect(L005)
}

int first_file(const std::unordered_set<int>& pool) {
  int best = -1;
  for (int id : pool) {  // fbclint:expect(L005)
    best = id;
    break;
  }
  return best;
}

}  // namespace fx2
