// Seeded L002: an observer tee that forwards on_tick and on_admission
// but drops on_run_complete -- final-report consumers downstream of the
// tee would never fire.
#pragma once

#include <memory>

#include "cache/simulator.hpp"

namespace fx2 {

// fbclint:expect(L002)
class TeeObserver : public SimulationObserver {
 public:
  explicit TeeObserver(std::unique_ptr<SimulationObserver> inner)
      : inner_(std::move(inner)) {}

  void on_tick(unsigned long now) override { inner_->on_tick(now); }
  void on_admission(unsigned id, const DiskCache& cache) override {
    inner_->on_admission(id, cache);
  }

 private:
  std::unique_ptr<SimulationObserver> inner_;
};

}  // namespace fx2
