// Registered fixture policy -- must not be flagged.
#pragma once

namespace fx2 {

class OmegaPolicy {};

}  // namespace fx2
