// fbclint:expect(L003) -- not #included by the fixture registry.cpp.
#pragma once

namespace fx2 {

class SigmaPolicy {};

}  // namespace fx2
