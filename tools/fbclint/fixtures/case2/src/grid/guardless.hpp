// fbclint:expect(L006) -- no #pragma once and no guard at all: double
// inclusion redefines the class.

#include <vector>

using namespace std;  // fbclint:expect(L006)

namespace fx2 {

struct Shard {
  vector<int> files;
};

}  // namespace fx2
