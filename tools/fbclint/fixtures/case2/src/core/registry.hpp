// Fixture context: two knobs the fixture CLI forgets to surface.
#pragma once

#include <cstddef>

namespace fx2 {

struct PolicyContext {
  std::size_t queue_length = 1;
  double decay = 0.5;              // fbclint:expect(L003)
  std::size_t shard_count = 4;     // fbclint:expect(L003)
};

}  // namespace fx2
