#include "core/registry.hpp"

#include "policies/omega.hpp"
// Seeded L003: policies/sigma.hpp exists but is not included here.

namespace fx2 {

struct PolicyStub {};

PolicyStub make_policy(const char* name, const PolicyContext& context) {
  (void)context;
  std::string probe(name);
  if (probe == "omega") return PolicyStub{};
  return PolicyStub{};
}

std::vector<std::string> policy_names() { return {"omega"}; }

}  // namespace fx2
