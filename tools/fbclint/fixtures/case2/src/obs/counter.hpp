// Fixture obs counter registry: merge() is complete and the map member
// is templated, so nothing here may fire -- pins the rule against false
// positives on scalar names appearing as template arguments.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace fx2 {

class CounterRegistry {
 public:
  void merge(const CounterRegistry& other) {
    for (const auto& [name, v] : other.counters_) counters_[name] += v;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace fx2
