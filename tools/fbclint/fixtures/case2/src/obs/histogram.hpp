// Fixture obs histogram: merge() forgets max_ -- a seeded L004
// merge-completeness gap. The static bucket-count constant must NOT be
// flagged (static members are not mergeable state).
#pragma once

#include <cstddef>
#include <cstdint>

namespace fx2 {

class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 65;

  void merge(const Histogram& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = other.min_ < min_ ? other.min_ : min_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;  // fbclint:expect(L004) not merged
};

}  // namespace fx2
