// Fixture counters with an INLINE merge (case1 exercises the
// out-of-line path): transfer_ns_ is dropped by merge and queue_depth_
// has no initializer.
#pragma once

#include <cstdint>

namespace fx2 {

struct TransferStats {
  std::uint64_t transfers = 0;
  std::uint64_t transfer_ns_ = 0;  // fbclint:expect(L004)
  double queue_depth_;             // fbclint:expect(L004) fbclint:expect(L004)

  void merge(const TransferStats& other) noexcept {
    transfers += other.transfers;
  }
};

}  // namespace fx2
