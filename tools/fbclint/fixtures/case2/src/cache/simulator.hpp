// Fixture observer interface with a different hook set than case1: L002
// must pick the list up from the definition, not from a hardcoded table.
#pragma once

#include <memory>

namespace fx2 {

class DiskCache;
struct SimulationResult;

class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;
  virtual void on_tick(unsigned long now) { (void)now; }
  virtual void on_admission(unsigned id, const DiskCache& cache) {
    (void)id;
    (void)cache;
  }
  virtual void on_run_complete(const SimulationResult& result) {
    (void)result;
  }
};

}  // namespace fx2
