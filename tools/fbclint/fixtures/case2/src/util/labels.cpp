#include "util/labels.hpp"

namespace fx2 {

void render_titles(LabelSink& sink) {
  sink.set_title(make_label(0));  // fbclint:expect(L001)
}

void render_axis() {
  draw_axis(make_label(1), 0.0, 1.0);  // fbclint:expect(L001)
}

void render_fixed(LabelSink& sink) {
  // Named local: outlives the sink's stored view. Must NOT be flagged.
  const std::string title = make_label(2);
  sink.set_title(title);
  draw_axis(title, 0.0, 1.0);
}

}  // namespace fx2
