// Fixture string API: the string_view flavour of the L001 bug class.
#pragma once

#include <string>
#include <string_view>

namespace fx2 {

/// Builds a fresh label -- an owning std::string by value.
[[nodiscard]] std::string make_label(int index);

/// Stores the view for later rendering (which is why a temporary
/// argument dangles).
class LabelSink {
 public:
  void set_title(std::string_view title);

 private:
  std::string_view title_;
};

void draw_axis(std::string_view label, double lo, double hi);

}  // namespace fx2
