// Fixture cluster router: mints the grid.* metric names. grid.route.single
// is documented in the fixture docs/CLUSTER.md; grid.rollback.lost is the
// seeded undocumented-metric gap (L008).
#include "cluster/config.hpp"

namespace fx2 {

void export_counter(const char* name, unsigned long long value);

void router_counters() {
  export_counter("grid.route.single", 1);
  // fbclint:expect(L008) grid.rollback.lost is not documented
  export_counter("grid.rollback.lost", 2);
}

}  // namespace fx2
