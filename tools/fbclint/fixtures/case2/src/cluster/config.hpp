// Fixture cluster config: shards and placement are surfaced by the
// fixture fbcgrid CLI; ghost_knob is deliberately missing from every
// serving tool (seeded L003 ClusterConfig/CLI drift).
#pragma once

namespace fx2 {

struct ClusterConfig {
  unsigned shards = 4;
  int placement = 0;
  // fbclint:expect(L003) ghost_knob has no CLI flag
  double ghost_knob = 0.5;
};

}  // namespace fx2
