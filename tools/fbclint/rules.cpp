#include "fbclint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

namespace fbclint {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

/// True when tokens [begin, end) form exactly one call whose result is a
/// temporary: an optional `obj.` / `ns::` chain, a final identifier, and
/// an argument list closing at end-1. Returns the called name through
/// `callee`.
bool is_rvalue_call(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, std::string* callee) {
  if (end - begin < 3) return false;
  // Find the identifier directly before the first '(' of the chunk tail.
  std::size_t i = begin;
  std::string last_ident;
  while (i < end && (toks[i].kind == TokKind::Identifier ||
                     is_punct(toks[i], "::") || is_punct(toks[i], ".") ||
                     is_punct(toks[i], "->"))) {
    if (toks[i].kind == TokKind::Identifier) last_ident = toks[i].text;
    ++i;
  }
  if (last_ident.empty() || i >= end || !is_punct(toks[i], "(")) return false;
  if (match_forward(toks, i) != end - 1) return false;
  *callee = last_ident;
  return true;
}

}  // namespace

std::vector<Diagnostic> rule_view_lifetime(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files) {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier) continue;
      const auto sig = model.view_sigs.find(toks[i].text);
      if (sig == model.view_sigs.end()) continue;
      // Call forms: `Name(args)` and the local-binding declaration
      // `Name var(args)` (the shape of the PR 1 bug).
      std::size_t open = 0;
      if (is_punct(toks[i + 1], "(")) {
        open = i + 1;
      } else if (toks[i + 1].kind == TokKind::Identifier &&
                 i + 2 < toks.size() && is_punct(toks[i + 2], "(")) {
        open = i + 2;
      } else {
        continue;
      }
      const std::size_t close = match_forward(toks, open);
      if (close >= toks.size()) continue;
      const auto args = split_args(toks, open, close);
      for (const std::size_t idx : sig->second) {
        if (idx >= args.size()) continue;
        const auto [b, e] = args[idx];
        // Skip the declaration site itself: a parameter list chunk names
        // a type, not an expression.
        std::string callee;
        if (!is_rvalue_call(toks, b, e, &callee)) continue;
        if (model.owning_returners.count(callee) == 0) continue;
        out.push_back(
            {"L001", file.path, toks[b].line,
             "temporary returned by '" + callee + "()' is bound to the " +
                 "view parameter #" + std::to_string(idx) + " of '" +
                 toks[i].text +
                 "'; the span/string_view dangles once the full expression "
                 "ends -- bind the result to a named local first"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> rule_hook_completeness(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  if (model.interface_hooks.empty()) return out;
  for (const ClassInfo& cls : model.classes) {
    if (!cls.wraps_inner) continue;
    for (const std::string& base : cls.bases) {
      const auto hooks = model.interface_hooks.find(base);
      if (hooks == model.interface_hooks.end()) continue;
      for (const std::string& hook : hooks->second) {
        if (cls.overrides.count(hook) > 0) continue;
        out.push_back({"L002", cls.path, cls.line,
                       "adapter '" + cls.name + "' wraps an inner " + base +
                           " but does not forward the virtual hook '" + hook +
                           "'; events will silently stop propagating"});
      }
    }
  }
  return out;
}

namespace {

/// Finds the body token range (open brace, close brace) of the free
/// function `name` in `file`; returns false when absent.
bool find_function_body(const SourceFile& file, const char* name,
                        std::size_t* body_open, std::size_t* body_close) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], name) || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1);
    if (close + 1 >= toks.size()) continue;
    if (!is_punct(toks[close + 1], "{")) continue;
    *body_open = close + 1;
    *body_close = match_forward(toks, close + 1);
    return *body_close < toks.size();
  }
  return false;
}

std::set<std::string> strings_in_range(const SourceFile& file,
                                       std::size_t begin, std::size_t end) {
  std::set<std::string> out;
  for (std::size_t i = begin; i < end && i < file.tokens.size(); ++i)
    if (file.tokens[i].kind == TokKind::String)
      out.insert(file.tokens[i].text);
  return out;
}

}  // namespace

std::vector<Diagnostic> rule_registry_completeness(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  if (model.registry_cpp < 0) return out;
  const SourceFile& registry =
      model.files[static_cast<std::size_t>(model.registry_cpp)];

  // (a) Every policy header must be #included by the registry.
  for (const SourceFile& file : model.files) {
    if (!file.is_header() ||
        file.path.find("/policies/") == std::string::npos)
      continue;
    const std::size_t slash = file.path.rfind('/');
    const std::string rel = "policies/" + file.path.substr(slash + 1);
    bool included = false;
    for (const Token& d : registry.directives)
      if (d.text.find("include") != std::string::npos &&
          d.text.find(rel) != std::string::npos)
        included = true;
    if (!included)
      out.push_back({"L003", file.path, 1,
                     "policy header '" + rel +
                         "' is not #included by core/registry.cpp; the "
                         "policy cannot be constructed by name"});
  }

  // (b) policy_names() and make_policy() must agree.
  std::size_t names_open = 0, names_close = 0, make_open = 0, make_close = 0;
  const bool have_names =
      find_function_body(registry, "policy_names", &names_open, &names_close);
  const bool have_make =
      find_function_body(registry, "make_policy", &make_open, &make_close);
  if (have_names && have_make) {
    const std::set<std::string> declared =
        strings_in_range(registry, names_open, names_close);
    const std::set<std::string> handled =
        strings_in_range(registry, make_open, make_close);
    for (const std::string& name : declared) {
      if (handled.count(name) == 0)
        out.push_back({"L003", registry.path,
                       registry.tokens[names_open].line,
                       "policy name \"" + name +
                           "\" is listed by policy_names() but never "
                           "handled in make_policy()"});
    }
    // The reverse direction: every `name == "..."` comparison inside
    // make_policy must be a declared name.
    for (std::size_t i = make_open;
         i + 2 < make_close && i + 2 < registry.tokens.size(); ++i) {
      if (registry.tokens[i].kind == TokKind::Identifier &&
          is_punct(registry.tokens[i + 1], "==") &&
          registry.tokens[i + 2].kind == TokKind::String) {
        const std::string& literal = registry.tokens[i + 2].text;
        if (declared.count(literal) == 0)
          out.push_back({"L003", registry.path, registry.tokens[i + 2].line,
                         "make_policy() accepts \"" + literal +
                             "\" but policy_names() does not list it"});
      }
    }
  }

  // (c) Every PolicyContext knob must be surfaced by the fbcsim CLI.
  if (model.registry_hpp >= 0 && model.fbcsim_cpp >= 0) {
    const SourceFile& hpp =
        model.files[static_cast<std::size_t>(model.registry_hpp)];
    const SourceFile& cli =
        model.files[static_cast<std::size_t>(model.fbcsim_cpp)];
    std::set<std::string> cli_idents;
    for (const Token& t : cli.tokens)
      if (t.kind == TokKind::Identifier) cli_idents.insert(t.text);
    // Locate `struct PolicyContext {` and walk its members.
    const auto& toks = hpp.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(is_ident(toks[i], "struct") || is_ident(toks[i], "class")) ||
          !is_ident(toks[i + 1], "PolicyContext") ||
          !is_punct(toks[i + 2], "{"))
        continue;
      const std::size_t body_close = match_forward(toks, i + 2);
      std::size_t stmt_begin = i + 3;
      int depth = 0;
      bool has_paren = false;
      for (std::size_t k = i + 3; k < body_close && k < toks.size(); ++k) {
        if (is_punct(toks[k], "{")) ++depth;
        if (is_punct(toks[k], "}")) --depth;
        if (is_punct(toks[k], "(")) has_paren = true;
        if (depth == 0 && is_punct(toks[k], ";")) {
          // Member name: identifier before '=' or before the ';'.
          std::size_t name_idx = 0;
          for (std::size_t m = stmt_begin; m < k; ++m) {
            if (is_punct(toks[m], "=")) break;
            if (toks[m].kind == TokKind::Identifier) name_idx = m;
          }
          if (!has_paren && name_idx != 0 &&
              cli_idents.count(toks[name_idx].text) == 0)
            out.push_back({"L003", hpp.path, toks[name_idx].line,
                           "PolicyContext knob '" + toks[name_idx].text +
                               "' is not surfaced by the fbcsim CLI"});
          stmt_begin = k + 1;
          has_paren = false;
        }
      }
      break;
    }
  }

  // (d) Every ServiceConfig field must be surfaced by the serving-tool
  // CLIs (fbcd / fbcload, directly or via their shared serving_common).
  if (model.service_hpp >= 0 && !model.serving_tools.empty()) {
    const SourceFile& hpp =
        model.files[static_cast<std::size_t>(model.service_hpp)];
    std::set<std::string> tool_idents;
    for (const int tool : model.serving_tools)
      for (const Token& t :
           model.files[static_cast<std::size_t>(tool)].tokens)
        if (t.kind == TokKind::Identifier) tool_idents.insert(t.text);
    const auto& toks = hpp.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(is_ident(toks[i], "struct") || is_ident(toks[i], "class")) ||
          !is_ident(toks[i + 1], "ServiceConfig") ||
          !is_punct(toks[i + 2], "{"))
        continue;
      const std::size_t body_close = match_forward(toks, i + 2);
      std::size_t stmt_begin = i + 3;
      int depth = 0;
      bool has_paren = false;
      for (std::size_t k = i + 3; k < body_close && k < toks.size(); ++k) {
        if (is_punct(toks[k], "{")) ++depth;
        if (is_punct(toks[k], "}")) --depth;
        if (is_punct(toks[k], "(")) has_paren = true;
        if (depth == 0 && is_punct(toks[k], ";")) {
          std::size_t name_idx = 0;
          for (std::size_t m = stmt_begin; m < k; ++m) {
            if (is_punct(toks[m], "=")) break;
            if (toks[m].kind == TokKind::Identifier) name_idx = m;
          }
          if (!has_paren && name_idx != 0 &&
              tool_idents.count(toks[name_idx].text) == 0)
            out.push_back({"L003", hpp.path, toks[name_idx].line,
                           "ServiceConfig field '" + toks[name_idx].text +
                               "' is not surfaced by the fbcd/fbcload "
                               "CLIs (serving_common.hpp)"});
          stmt_begin = k + 1;
          has_paren = false;
        }
      }
      break;
    }
  }

  // (e) Every ClusterConfig field must be surfaced by the cluster-serving
  // CLI union (fbcgrid / fbcload --cluster, via their shared
  // serving_common). Same walk as (d) over cluster/config.hpp.
  if (model.cluster_config_hpp >= 0 && !model.serving_tools.empty()) {
    const SourceFile& hpp =
        model.files[static_cast<std::size_t>(model.cluster_config_hpp)];
    std::set<std::string> tool_idents;
    for (const int tool : model.serving_tools)
      for (const Token& t :
           model.files[static_cast<std::size_t>(tool)].tokens)
        if (t.kind == TokKind::Identifier) tool_idents.insert(t.text);
    const auto& toks = hpp.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(is_ident(toks[i], "struct") || is_ident(toks[i], "class")) ||
          !is_ident(toks[i + 1], "ClusterConfig") ||
          !is_punct(toks[i + 2], "{"))
        continue;
      const std::size_t body_close = match_forward(toks, i + 2);
      std::size_t stmt_begin = i + 3;
      int depth = 0;
      bool has_paren = false;
      for (std::size_t k = i + 3; k < body_close && k < toks.size(); ++k) {
        if (is_punct(toks[k], "{")) ++depth;
        if (is_punct(toks[k], "}")) --depth;
        if (is_punct(toks[k], "(")) has_paren = true;
        if (depth == 0 && is_punct(toks[k], ";")) {
          std::size_t name_idx = 0;
          for (std::size_t m = stmt_begin; m < k; ++m) {
            if (is_punct(toks[m], "=")) break;
            if (toks[m].kind == TokKind::Identifier) name_idx = m;
          }
          if (!has_paren && name_idx != 0 &&
              tool_idents.count(toks[name_idx].text) == 0)
            out.push_back({"L003", hpp.path, toks[name_idx].line,
                           "ClusterConfig field '" + toks[name_idx].text +
                               "' is not surfaced by the fbcgrid/fbcload "
                               "--cluster CLIs (serving_common.hpp)"});
          stmt_begin = k + 1;
          has_paren = false;
        }
      }
      break;
    }
  }

  // (f) Every switch over MsgType in the protocol codec must stay
  // exhaustive: one case per enumerator and no 'default' (a default
  // would silently swallow a newly added message type).
  if (model.protocol_hpp >= 0 && model.protocol_cpp >= 0) {
    const SourceFile& hpp =
        model.files[static_cast<std::size_t>(model.protocol_hpp)];
    const SourceFile& cpp =
        model.files[static_cast<std::size_t>(model.protocol_cpp)];
    std::set<std::string> enumerators;
    const auto& ht = hpp.tokens;
    for (std::size_t i = 0; i + 2 < ht.size(); ++i) {
      if (!is_ident(ht[i], "enum") || !is_ident(ht[i + 1], "class") ||
          !is_ident(ht[i + 2], "MsgType"))
        continue;
      std::size_t open = i + 3;
      while (open < ht.size() && !is_punct(ht[open], "{") &&
             !is_punct(ht[open], ";"))
        ++open;
      if (open >= ht.size() || !is_punct(ht[open], "{")) break;
      const std::size_t close = match_forward(ht, open);
      for (std::size_t k = open + 1; k < close && k < ht.size(); ++k)
        if (ht[k].kind == TokKind::Identifier &&
            (is_punct(ht[k - 1], "{") || is_punct(ht[k - 1], ",")))
          enumerators.insert(ht[k].text);
      break;
    }
    const auto& ct = cpp.tokens;
    for (std::size_t i = 0; !enumerators.empty() && i + 1 < ct.size(); ++i) {
      if (!is_ident(ct[i], "switch") || !is_punct(ct[i + 1], "(")) continue;
      const std::size_t cond_close = match_forward(ct, i + 1);
      if (cond_close + 1 >= ct.size() || !is_punct(ct[cond_close + 1], "{"))
        continue;
      const std::size_t body_close = match_forward(ct, cond_close + 1);
      std::set<std::string> cases;
      bool has_default = false;
      for (std::size_t k = cond_close + 2;
           k < body_close && k < ct.size(); ++k) {
        if (is_ident(ct[k], "case") && k + 3 < ct.size() &&
            is_ident(ct[k + 1], "MsgType") && is_punct(ct[k + 2], "::") &&
            ct[k + 3].kind == TokKind::Identifier)
          cases.insert(ct[k + 3].text);
        if (is_ident(ct[k], "default")) has_default = true;
      }
      if (cases.empty()) continue;  // not a MsgType switch
      for (const std::string& name : enumerators)
        if (cases.count(name) == 0)
          out.push_back({"L003", cpp.path, ct[i].line,
                         "MsgType switch does not handle MsgType::" + name +
                             "; the codec would reject or drop that "
                             "message type"});
      if (has_default)
        out.push_back({"L003", cpp.path, ct[i].line,
                       "MsgType switch has a 'default' label; it would "
                       "silently swallow a newly added message type "
                       "instead of failing the exhaustiveness check"});
    }
  }
  return out;
}

namespace {

/// L004 merge-completeness scan of one metrics-bearing header: every
/// data member of a merge()-owning class must appear in the merge body,
/// and scalar members need a default member initializer.
void check_merge_completeness(const ProjectModel& model, int file_index,
                              std::vector<Diagnostic>* out);

}  // namespace

std::vector<Diagnostic> rule_metrics_completeness(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  // (a) Merge completeness over the aggregating-metrics headers: the
  // cache accounting plus the obs distribution containers.
  for (const int anchor :
       {model.metrics_hpp, model.obs_histogram_hpp, model.obs_counter_hpp})
    check_merge_completeness(model, anchor, &out);

  // (b) Export completeness: every obs::Histogram / obs::CounterRegistry
  // member of BundleServer must be read by BundleServer::metrics() -- an
  // unexported distribution is recorded forever but can never leave the
  // process over MsgType::MetricsReply.
  if (model.service_hpp >= 0) {
    const SourceFile& hpp =
        model.files[static_cast<std::size_t>(model.service_hpp)];
    const auto& toks = hpp.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "class") ||
          !is_ident(toks[i + 1], "BundleServer") ||
          !is_punct(toks[i + 2], "{"))
        continue;
      const std::size_t body_open = i + 2;
      const std::size_t body_close = match_forward(toks, body_open);
      if (body_close >= toks.size()) break;

      // Collect the observability members (statements naming Histogram
      // or CounterRegistry, excluding function declarations).
      std::vector<std::size_t> members;  // name token indices
      std::size_t stmt_begin = body_open + 1;
      int depth = 0;
      bool has_paren = false;
      for (std::size_t k = body_open + 1; k < body_close; ++k) {
        if (is_punct(toks[k], "{")) ++depth;
        if (is_punct(toks[k], "}")) --depth;
        if (depth > 0) continue;
        if (is_punct(toks[k], "(")) has_paren = true;
        if (is_punct(toks[k], ":") && k > stmt_begin &&
            (is_ident(toks[k - 1], "public") ||
             is_ident(toks[k - 1], "private") ||
             is_ident(toks[k - 1], "protected"))) {
          stmt_begin = k + 1;
          has_paren = false;
          continue;
        }
        if (!is_punct(toks[k], ";")) continue;
        if (!has_paren) {
          bool is_obs_member = false;
          std::size_t name_idx = 0;
          for (std::size_t m = stmt_begin; m < k; ++m) {
            if (is_punct(toks[m], "=")) break;
            if (toks[m].kind != TokKind::Identifier) continue;
            if (toks[m].text == "Histogram" ||
                toks[m].text == "CounterRegistry")
              is_obs_member = true;
            name_idx = m;
          }
          if (is_obs_member && name_idx != 0) members.push_back(name_idx);
        }
        stmt_begin = k + 1;
        has_paren = false;
      }

      // Identifiers read by BundleServer::metrics() (out-of-line body,
      // any scanned file).
      std::set<std::string> exported;
      bool found_body = false;
      for (const SourceFile& file : model.files) {
        const auto& ft = file.tokens;
        for (std::size_t k = 0; k + 3 < ft.size(); ++k) {
          if (!is_ident(ft[k], "BundleServer") || !is_punct(ft[k + 1], "::") ||
              !is_ident(ft[k + 2], "metrics") || !is_punct(ft[k + 3], "("))
            continue;
          const std::size_t close = match_forward(ft, k + 3);
          for (std::size_t m = close + 1;
               m < std::min(close + 4, ft.size()); ++m) {
            if (is_punct(ft[m], ";")) break;
            if (!is_punct(ft[m], "{")) continue;
            const std::size_t end = match_forward(ft, m);
            for (std::size_t t = m; t < end && t < ft.size(); ++t)
              if (ft[t].kind == TokKind::Identifier)
                exported.insert(ft[t].text);
            found_body = true;
            break;
          }
        }
      }
      for (const std::size_t name_idx : members) {
        const std::string& member = toks[name_idx].text;
        if (found_body && exported.count(member) > 0) continue;
        out.push_back(
            {"L004", hpp.path, toks[name_idx].line,
             "observability member '" + member +
                 "' of BundleServer is not exported by "
                 "BundleServer::metrics(); it records forever but never "
                 "reaches MsgType::MetricsReply or fbcctl metrics"});
      }
      break;
    }
  }
  return out;
}

namespace {

void check_merge_completeness(const ProjectModel& model, int file_index,
                              std::vector<Diagnostic>* out) {
  if (file_index < 0) return;
  const SourceFile& hpp = model.files[static_cast<std::size_t>(file_index)];
  const auto& toks = hpp.tokens;

  constexpr std::array kScalar = {
      "int",    "long",     "unsigned", "short",    "char",   "bool",
      "double", "float",    "size_t",   "int8_t",   "int16_t", "int32_t",
      "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "Bytes",
  };

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(is_ident(toks[i], "class") || is_ident(toks[i], "struct")) ||
        toks[i + 1].kind != TokKind::Identifier)
      continue;
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    const std::string cls = toks[i + 1].text;
    std::size_t j = i + 2;
    while (j < toks.size() && !is_punct(toks[j], "{") && !is_punct(toks[j], ";"))
      ++j;
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t body_open = j;
    const std::size_t body_close = match_forward(toks, body_open);
    if (body_close >= toks.size()) continue;

    // Find merge()'s body: inline in the class, or out-of-line
    // `Cls::merge` in any scanned file.
    std::vector<Token> merge_body;
    for (std::size_t k = body_open + 1; k + 1 < body_close; ++k) {
      if (!is_ident(toks[k], "merge") || !is_punct(toks[k + 1], "(")) continue;
      const std::size_t close = match_forward(toks, k + 1);
      for (std::size_t m = close; m < std::min(close + 4, body_close); ++m) {
        if (is_punct(toks[m], "{")) {
          const std::size_t end = match_forward(toks, m);
          merge_body.assign(toks.begin() + static_cast<std::ptrdiff_t>(m),
                            toks.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(end, body_close)));
          break;
        }
        if (is_punct(toks[m], ";")) break;
      }
      if (!merge_body.empty()) break;
    }
    if (merge_body.empty()) {
      for (const SourceFile& file : model.files) {
        const auto& ft = file.tokens;
        for (std::size_t k = 0; k + 3 < ft.size(); ++k) {
          if (is_ident(ft[k], cls.c_str()) && is_punct(ft[k + 1], "::") &&
              is_ident(ft[k + 2], "merge") && is_punct(ft[k + 3], "(")) {
            const std::size_t close = match_forward(ft, k + 3);
            // Skip cv/noexcept qualifiers between ')' and the body.
            for (std::size_t m = close + 1;
                 m < std::min(close + 4, ft.size()); ++m) {
              if (is_punct(ft[m], ";")) break;
              if (!is_punct(ft[m], "{")) continue;
              const std::size_t end = match_forward(ft, m);
              if (end < ft.size())
                merge_body.assign(
                    ft.begin() + static_cast<std::ptrdiff_t>(m),
                    ft.begin() + static_cast<std::ptrdiff_t>(end));
              break;
            }
          }
        }
      }
    }
    if (merge_body.empty()) continue;  // not an aggregating counter class

    std::set<std::string> merged;
    for (const Token& t : merge_body)
      if (t.kind == TokKind::Identifier) merged.insert(t.text);

    // Walk data-member statements of the class body.
    std::size_t stmt_begin = body_open + 1;
    int depth = 0;
    bool has_paren = false;
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (is_punct(toks[k], "{")) ++depth;
      if (is_punct(toks[k], "}")) --depth;
      if (depth > 0) continue;
      if (is_punct(toks[k], "(")) has_paren = true;
      if (is_punct(toks[k], ":") && k > stmt_begin &&
          (is_ident(toks[k - 1], "public") || is_ident(toks[k - 1], "private") ||
           is_ident(toks[k - 1], "protected"))) {
        stmt_begin = k + 1;
        has_paren = false;
        continue;
      }
      if (!is_punct(toks[k], ";")) continue;
      if (!has_paren) {
        std::size_t name_idx = 0;
        bool has_init = false;
        bool scalar = false;
        bool templated = false;
        for (std::size_t m = stmt_begin; m < k; ++m) {
          if (is_punct(toks[m], "=")) {
            has_init = true;
            break;
          }
          // A '<' means the scalar name is a template argument (e.g.
          // map<string, uint64_t>), not the member's own type.
          if (is_punct(toks[m], "<")) templated = true;
          if (toks[m].kind == TokKind::Identifier) {
            name_idx = m;
            for (const char* s : kScalar)
              if (toks[m].text == s && !templated) scalar = true;
          }
        }
        if (name_idx != 0 && !is_ident(toks[stmt_begin], "using") &&
            !is_ident(toks[stmt_begin], "friend") &&
            !is_ident(toks[stmt_begin], "enum") &&
            !is_ident(toks[stmt_begin], "static")) {
          const std::string& member = toks[name_idx].text;
          if (merged.count(member) == 0)
            out->push_back({"L004", hpp.path, toks[name_idx].line,
                            "counter '" + member + "' of " + cls +
                                " is missing from " + cls +
                                "::merge(); multi-seed aggregation would "
                                "silently drop it"});
          if (scalar && !has_init)
            out->push_back({"L004", hpp.path, toks[name_idx].line,
                            "counter '" + member + "' of " + cls +
                                " has no default member initializer; a "
                                "fresh metrics object would start from "
                                "garbage"});
        }
      }
      stmt_begin = k + 1;
      has_paren = false;
    }
  }
}

}  // namespace

std::vector<Diagnostic> rule_determinism(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  constexpr std::array kBanned = {
      "rand",          "srand",       "random_device",
      "mt19937",       "mt19937_64",  "default_random_engine",
      "minstd_rand",   "minstd_rand0", "random_shuffle",
  };
  for (const SourceFile& file : model.files) {
    if (file.path.find("util/rng.") != std::string::npos) continue;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::Identifier) continue;
      for (const char* banned : kBanned) {
        if (toks[i].text != banned) continue;
        out.push_back({"L005", file.path, toks[i].line,
                       "'" + toks[i].text +
                           "' breaks seed-reproducibility; use util/rng "
                           "(SplitMix64 / Xoshiro256**) instead"});
      }
      // time(nullptr) / time(NULL) / time(0)-style wall-clock seeds.
      if (is_ident(toks[i], "time") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_forward(toks, i + 1);
        if (close == i + 3 &&
            (is_ident(toks[i + 2], "nullptr") || is_ident(toks[i + 2], "NULL") ||
             toks[i + 2].text == "0")) {
          out.push_back({"L005", file.path, toks[i].line,
                         "wall-clock seed 'time(...)' breaks "
                         "seed-reproducibility; derive seeds from the "
                         "run's configured seed"});
        }
      }
      // Range-for over an unordered container: iteration order is
      // implementation-defined, so any order-dependent accumulation is
      // non-deterministic across platforms.
      if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_forward(toks, i + 1);
        if (close >= toks.size()) continue;
        int paren = 0, bracket = 0, brace = 0;
        std::size_t colon = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (is_punct(toks[k], "(")) ++paren;
          if (is_punct(toks[k], ")")) --paren;
          if (is_punct(toks[k], "[")) ++bracket;
          if (is_punct(toks[k], "]")) --bracket;
          if (is_punct(toks[k], "{")) ++brace;
          if (is_punct(toks[k], "}")) --brace;
          if (paren == 0 && bracket == 0 && brace == 0 &&
              is_punct(toks[k], ":")) {
            colon = k;
            break;
          }
        }
        if (colon == 0) continue;
        std::string range_var;
        for (std::size_t k = colon + 1; k < close; ++k)
          if (toks[k].kind == TokKind::Identifier) range_var = toks[k].text;
        if (!range_var.empty() && model.unordered_vars.count(range_var) > 0 &&
            model.ordered_vars.count(range_var) == 0) {
          out.push_back(
              {"L005", file.path, toks[i].line,
               "range-for over unordered container '" + range_var +
                   "': iteration order is implementation-defined; iterate "
                   "a sorted copy or justify with fbclint:ignore(L005)"});
        }
      }
    }
  }
  return out;
}

std::vector<Diagnostic> rule_header_hygiene(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  for (const SourceFile& file : model.files) {
    if (!file.is_header()) continue;
    bool pragma_once = false;
    for (const Token& d : file.directives)
      if (d.text.find("pragma") != std::string::npos &&
          d.text.find("once") != std::string::npos)
        pragma_once = true;
    if (!pragma_once)
      out.push_back({"L006", file.path, 1,
                     "header is missing '#pragma once'"});
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace"))
        out.push_back({"L006", file.path, toks[i].line,
                       "'using namespace' in a header leaks into every "
                       "includer"});
    }
  }
  return out;
}

namespace {

// ---- L007 lock discipline ----------------------------------------------

/// One function definition body found in a file.
struct FnBody {
  std::string name;       ///< unqualified function name
  std::string owner;      ///< `Cls` of `Cls::name`, or enclosing class
  bool is_ctor_dtor = false;
  std::size_t name_idx = 0;
  std::size_t body_open = 0;   ///< '{' token index
  std::size_t body_close = 0;  ///< matching '}' token index
};

bool is_fn_keyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",     "while",    "switch",        "catch",
      "return",   "sizeof",  "alignof",  "decltype",      "noexcept",
      "static_assert", "assert", "throw", "new",          "delete",
      "co_await", "co_return", "co_yield", "alignas",     "typeid",
  };
  return kKeywords.count(text) > 0;
}

/// Collects function-definition bodies: `name(params) quals? init-list? {`.
/// Heuristic: calls are skipped because an expression (not a body or a
/// recognized qualifier) follows their ')'.
std::vector<FnBody> collect_fn_bodies(const SourceFile& file) {
  std::vector<FnBody> out;
  const auto& toks = file.tokens;
  const std::vector<ClassSpan> spans = collect_class_spans(file);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier || !is_punct(toks[i + 1], "(") ||
        is_fn_keyword(toks[i].text))
      continue;
    const std::size_t params_close = match_forward(toks, i + 1);
    if (params_close >= toks.size()) continue;

    // Scan from ')' to the body '{', accepting only qualifier tokens, a
    // trailing return type, or a constructor initializer list; anything
    // else means this was a call or a plain declaration.
    std::size_t j = params_close + 1;
    std::size_t body_open = 0;
    while (j < toks.size()) {
      if (is_punct(toks[j], "{")) {
        body_open = j;
        break;
      }
      if (is_punct(toks[j], ";")) break;  // declaration
      if (is_ident(toks[j], "const") || is_ident(toks[j], "override") ||
          is_ident(toks[j], "final") || is_ident(toks[j], "mutable") ||
          is_ident(toks[j], "try")) {
        ++j;
        continue;
      }
      if (is_ident(toks[j], "noexcept")) {
        ++j;
        if (j < toks.size() && is_punct(toks[j], "("))
          j = match_forward(toks, j) + 1;
        continue;
      }
      if (is_punct(toks[j], "->")) {
        // Trailing return type: skip to the body or terminator.
        ++j;
        while (j < toks.size() && !is_punct(toks[j], "{") &&
               !is_punct(toks[j], ";")) {
          if (is_punct(toks[j], "("))
            j = match_forward(toks, j) + 1;
          else
            ++j;
        }
        continue;
      }
      if (is_punct(toks[j], ":")) {
        // Constructor initializer list: `ident(...)` / `ident{...}`
        // entries separated by commas, then the body brace.
        ++j;
        bool parsed = true;
        while (j < toks.size()) {
          while (j < toks.size() && (toks[j].kind == TokKind::Identifier ||
                                     is_punct(toks[j], "::")))
            ++j;
          if (j >= toks.size() ||
              (!is_punct(toks[j], "(") && !is_punct(toks[j], "{"))) {
            parsed = false;
            break;
          }
          j = match_forward(toks, j) + 1;
          if (j < toks.size() && is_punct(toks[j], ",")) {
            ++j;
            continue;
          }
          break;
        }
        if (!parsed) break;
        continue;
      }
      break;  // expression context: a call, not a definition
    }
    if (body_open == 0) continue;
    const std::size_t body_close = match_forward(toks, body_open);
    if (body_close >= toks.size()) continue;

    FnBody fn;
    fn.name = toks[i].text;
    fn.name_idx = i;
    fn.body_open = body_open;
    fn.body_close = body_close;
    if (i >= 2 && is_punct(toks[i - 1], "::") &&
        toks[i - 2].kind == TokKind::Identifier) {
      fn.owner = toks[i - 2].text;
      fn.is_ctor_dtor = fn.owner == fn.name;
    } else {
      fn.owner = outermost_class_at(spans, i);
      // Inline members: name == innermost class is still a constructor;
      // checking against every enclosing span covers nested types.
      for (const ClassSpan& span : spans)
        if (span.body_open < i && i < span.body_close &&
            span.name == fn.name)
          fn.is_ctor_dtor = true;
    }
    if (i >= 1 && is_punct(toks[i - 1], "~")) fn.is_ctor_dtor = true;
    out.push_back(fn);
  }
  return out;
}

/// Calls that can block indefinitely even without an fbc:blocking
/// annotation. wait/wait_for/wait_until get the condition-variable
/// treatment (the guard passed as first argument counts as released).
bool is_builtin_blocking(const std::string& name) {
  static const std::set<std::string> kBlocking = {
      "sleep_for", "sleep_until", "send",        "recv",
      "accept",    "connect",     "poll",        "submit",
      "try_submit", "parallel_for", "wait",      "wait_for",
      "wait_until",
  };
  return kBlocking.count(name) > 0;
}

bool is_cv_wait(const std::string& name) {
  return name == "wait" || name == "wait_for" || name == "wait_until";
}

/// One held lock during the body walk.
struct Held {
  const LockInfo* info = nullptr;
  std::string var;  ///< guard variable, empty for fbc:requires seeds
  int depth = 0;    ///< brace depth at acquisition (0 = whole body)
};

std::string level_str(const LockInfo& info) {
  return info.level >= 0 ? " (level " + std::to_string(info.level) + ")" : "";
}

/// Walks one function body tracking RAII guards, reporting ordering,
/// blocking-call, requires and excludes violations.
void walk_body(const SourceFile& file, const FnBody& fn,
               const std::map<std::string, const LockInfo*>& locks_by_name,
               const std::map<std::string, FnLockInfo>& fn_locks,
               std::vector<Diagnostic>* out) {
  const auto& toks = file.tokens;
  std::vector<Held> held;
  // Guard variables seen in this body with their mutex and declaration
  // depth, kept across var.unlock() so a later var.lock() re-acquires.
  std::map<std::string, std::pair<const LockInfo*, int>> guard_vars;

  const auto fn_info = fn_locks.find(fn.name);
  if (fn_info != fn_locks.end()) {
    for (const std::string& needed : fn_info->second.needs) {
      const auto it = locks_by_name.find(needed);
      if (it != locks_by_name.end()) held.push_back({it->second, "", 0});
    }
  }

  const auto check_order = [&](const LockInfo& acquiring, int line) {
    if (acquiring.level < 0) return;
    for (const Held& h : held) {
      if (h.info->level < 0 || h.info->level < acquiring.level) continue;
      out->push_back(
          {"L007", file.path, line,
           "lock '" + acquiring.name + "'" + level_str(acquiring) +
               " acquired while holding '" + h.info->name + "'" +
               level_str(*h.info) +
               "; lock levels must strictly increase (docs/SERVING.md "
               "lock hierarchy)"});
    }
  };

  int depth = 0;
  for (std::size_t k = fn.body_open + 1; k < fn.body_close; ++k) {
    if (is_punct(toks[k], "{")) ++depth;
    if (is_punct(toks[k], "}")) {
      --depth;
      std::erase_if(held, [&](const Held& h) {
        return !h.var.empty() && h.depth > depth;
      });
      continue;
    }
    if (toks[k].kind != TokKind::Identifier) continue;
    const std::string& name = toks[k].text;

    // RAII acquisition: lock_guard/unique_lock/scoped_lock, with or
    // without explicit template arguments (CTAD), binding a variable to
    // one or more mutexes.
    if (name == "lock_guard" || name == "unique_lock" ||
        name == "scoped_lock") {
      std::size_t j = k + 1;
      if (j < fn.body_close && is_punct(toks[j], "<"))
        j = match_forward(toks, j) + 1;
      if (j + 1 >= fn.body_close || toks[j].kind != TokKind::Identifier ||
          !is_punct(toks[j + 1], "("))
        continue;
      const std::string var = toks[j].text;
      const std::size_t open = j + 1;
      const std::size_t close = match_forward(toks, open);
      if (close >= fn.body_close) continue;
      std::size_t bound = 0;
      for (const auto& [abegin, aend] : split_args(toks, open, close)) {
        std::string lock_name;
        for (std::size_t m = abegin; m < aend; ++m)
          if (toks[m].kind == TokKind::Identifier) lock_name = toks[m].text;
        const auto it = locks_by_name.find(lock_name);
        if (it == locks_by_name.end()) continue;
        check_order(*it->second, toks[k].line);
        held.push_back({it->second, var, depth});
        ++bound;
      }
      // Single-mutex guards may unlock()/lock() later; remember the
      // mutex and the declaration depth (the guard outlives any inner
      // scope the relock happens in).
      if (bound == 1) guard_vars[var] = {held.back().info, depth};
      k = close;
      continue;
    }

    // Guard-variable relock/unlock: `var.unlock()` drops the mutex,
    // `var.lock()` re-acquires it (re-checked against what is now held).
    if (k + 3 < fn.body_close && is_punct(toks[k + 1], ".") &&
        (is_ident(toks[k + 2], "unlock") || is_ident(toks[k + 2], "lock")) &&
        is_punct(toks[k + 3], "(")) {
      const auto gv = guard_vars.find(name);
      if (gv != guard_vars.end()) {
        std::size_t live = held.size();
        for (std::size_t h = held.size(); h-- > 0;)
          if (held[h].var == name) live = h;
        if (is_ident(toks[k + 2], "unlock")) {
          if (live < held.size())
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(live));
        } else if (live == held.size()) {
          check_order(*gv->second.first, toks[k].line);
          held.push_back({gv->second.first, name, gv->second.second});
        }
        k += 3;
        continue;
      }
    }

    // Call sites: `name(` possibly behind `obj.` / `ns::`.
    if (k + 1 >= fn.body_close || !is_punct(toks[k + 1], "(")) continue;
    const auto callee = fn_locks.find(name);
    const bool has_needs =
        callee != fn_locks.end() && !callee->second.needs.empty();
    if (held.empty() && !has_needs) continue;

    const bool annotated_blocking =
        callee != fn_locks.end() && callee->second.blocking;

    // Condition-variable waits release the guard they are handed for the
    // duration of the wait; every *other* held lock is still a bug.
    std::string released_var;
    if (is_cv_wait(name) && k >= 1 && is_punct(toks[k - 1], ".")) {
      const std::size_t close = match_forward(toks, k + 1);
      const auto args = split_args(toks, k + 1, close);
      if (!args.empty()) {
        std::string first_arg;
        for (std::size_t m = args[0].first; m < args[0].second; ++m)
          if (toks[m].kind == TokKind::Identifier) first_arg = toks[m].text;
        for (const Held& h : held)
          if (!h.var.empty() && h.var == first_arg) released_var = first_arg;
      }
    }

    if (annotated_blocking || is_builtin_blocking(name)) {
      for (const Held& h : held) {
        if (h.info->level < 0) continue;
        if (!released_var.empty() && h.var == released_var) continue;
        out->push_back(
            {"L007", file.path, toks[k].line,
             "blocking call '" + name + "' while holding '" + h.info->name +
                 "'" + level_str(*h.info) +
                 "; release the lock first (or justify with "
                 "fbclint:ignore(L007))"});
      }
    }
    if (callee != fn_locks.end()) {
      for (const std::string& excluded : callee->second.excludes) {
        for (const Held& h : held)
          if (h.info->name == excluded)
            out->push_back(
                {"L007", file.path, toks[k].line,
                 "call to '" + name + "' while holding '" + excluded +
                     "', which it declares fbc:excludes(" + excluded + ")"});
      }
      for (const std::string& needed : callee->second.needs) {
        if (locks_by_name.count(needed) == 0) continue;
        bool have = false;
        for (const Held& h : held)
          if (h.info->name == needed) have = true;
        if (!have)
          out->push_back(
              {"L007", file.path, toks[k].line,
               "call to '" + name + "' which declares fbc:requires(" +
                   needed + "), but '" + needed + "' is not held here"});
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> rule_lock_discipline(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  if (model.locks.empty()) return out;

  // Configuration sanity: names must be unique (lock sites resolve by
  // identifier) and the annotation must agree with the runtime level the
  // OrderedMutex constructor bakes in.
  std::map<std::string, const LockInfo*> locks_by_name;
  for (const LockInfo& lock : model.locks) {
    const auto [it, inserted] = locks_by_name.emplace(lock.name, &lock);
    if (!inserted)
      out.push_back(
          {"L007", lock.path, lock.line,
           "annotated mutex name '" + lock.name + "' is also declared at " +
               it->second->path + ":" + std::to_string(it->second->line) +
               "; annotated lock names must be unique so lock sites "
               "resolve unambiguously"});
    if (lock.level >= 0 && lock.ctor_level >= 0 &&
        lock.level != lock.ctor_level)
      out.push_back(
          {"L007", lock.path, lock.line,
           "mutex '" + lock.name + "' is annotated fbc:lock-level(" +
               std::to_string(lock.level) + ") but its initializer says " +
               std::to_string(lock.ctor_level) +
               "; the static and runtime hierarchies have drifted"});
  }

  // (a) ordering + (c) blocking/requires/excludes: walk every function
  // definition tracking held locks.
  std::vector<std::pair<const SourceFile*, FnBody>> all_bodies;
  for (const SourceFile& file : model.files)
    for (const FnBody& fn : collect_fn_bodies(file))
      all_bodies.emplace_back(&file, fn);
  for (const auto& [file, fn] : all_bodies)
    walk_body(*file, fn, locks_by_name, model.fn_locks, &out);

  // (b) guard coverage: a method of the owning class that touches a
  // guarded field but never names the guarding mutex (and is not
  // fbc:requires-exempt, a constructor, or a destructor) is running
  // unsynchronized. File-scope mutexes guard their file's functions.
  for (const LockInfo& lock : model.locks) {
    if (lock.guards.empty()) continue;
    for (const auto& [file, fn] : all_bodies) {
      if (lock.owner.empty() ? file->path != lock.path
                             : fn.owner != lock.owner)
        continue;
      if (fn.is_ctor_dtor) continue;
      const auto fl = model.fn_locks.find(fn.name);
      if (fl != model.fn_locks.end() && fl->second.needs.count(lock.name) > 0)
        continue;
      bool mentions_lock = false;
      std::string touched;
      for (std::size_t k = fn.body_open + 1; k < fn.body_close; ++k) {
        if (file->tokens[k].kind != TokKind::Identifier) continue;
        if (file->tokens[k].text == lock.name) mentions_lock = true;
        if (touched.empty())
          for (const std::string& field : lock.guards)
            if (file->tokens[k].text == field) touched = field;
      }
      if (!touched.empty() && !mentions_lock)
        out.push_back(
            {"L007", file->path, file->tokens[fn.name_idx].line,
             "'" + fn.name + "' touches '" + touched + "' (guarded by '" +
                 lock.name + "' per fbc:guards) without taking '" +
                 lock.name + "' and without an fbc:requires(" + lock.name +
                 ") contract"});
    }
  }
  return out;
}

namespace {

// ---- L008 wire/stat coherence ------------------------------------------

/// Reads a file into `out`; false when unreadable.
bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Member (name token index) list of `struct Name {` in `file`; returns
/// false when the struct is absent. `struct_line` gets the keyword line.
bool collect_struct_fields(const SourceFile& file, const char* struct_name,
                           std::vector<std::size_t>* fields,
                           int* struct_line) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!(is_ident(toks[i], "struct") || is_ident(toks[i], "class")) ||
        !is_ident(toks[i + 1], struct_name) || !is_punct(toks[i + 2], "{"))
      continue;
    *struct_line = toks[i].line;
    const std::size_t body_close = match_forward(toks, i + 2);
    std::size_t stmt_begin = i + 3;
    int depth = 0;
    bool has_paren = false;
    for (std::size_t k = i + 3; k < body_close && k < toks.size(); ++k) {
      if (is_punct(toks[k], "{")) ++depth;
      if (is_punct(toks[k], "}")) --depth;
      if (depth > 0) continue;
      if (is_punct(toks[k], "(")) has_paren = true;
      if (!is_punct(toks[k], ";")) continue;
      if (!has_paren) {
        std::size_t name_idx = 0;
        for (std::size_t m = stmt_begin; m < k; ++m) {
          if (is_punct(toks[m], "=")) break;
          if (toks[m].kind == TokKind::Identifier) name_idx = m;
        }
        if (name_idx != 0) fields->push_back(name_idx);
      }
      stmt_begin = k + 1;
      has_paren = false;
    }
    return true;
  }
  return false;
}

/// Identifiers inside the body of out-of-line `Cls::method` in `file`.
bool method_body_idents(const SourceFile& file, const char* cls,
                        const char* method, std::set<std::string>* out) {
  const auto& toks = file.tokens;
  bool found = false;
  for (std::size_t k = 0; k + 3 < toks.size(); ++k) {
    if (!is_ident(toks[k], cls) || !is_punct(toks[k + 1], "::") ||
        !is_ident(toks[k + 2], method) || !is_punct(toks[k + 3], "("))
      continue;
    const std::size_t close = match_forward(toks, k + 3);
    for (std::size_t m = close + 1; m < std::min(close + 4, toks.size());
         ++m) {
      if (is_punct(toks[m], ";")) break;
      if (!is_punct(toks[m], "{")) continue;
      const std::size_t end = match_forward(toks, m);
      for (std::size_t t = m; t < end && t < toks.size(); ++t)
        if (toks[t].kind == TokKind::Identifier) out->insert(toks[t].text);
      found = true;
      break;
    }
  }
  return found;
}

/// Standalone integers in `line` at or after byte `from` (digit runs not
/// adjacent to letters/underscore, so the 64 of "u64" does not count).
std::vector<int> standalone_ints(const std::string& line, std::size_t from) {
  std::vector<int> out;
  for (std::size_t i = from; i < line.size();) {
    if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[j])) != 0)
      ++j;
    const bool led = i > 0 && (std::isalnum(static_cast<unsigned char>(
                                   line[i - 1])) != 0 ||
                               line[i - 1] == '_');
    const bool trailed =
        j < line.size() && (std::isalpha(static_cast<unsigned char>(
                                line[j])) != 0 ||
                            line[j] == '_');
    if (!led && !trailed)
      out.push_back(std::atoi(line.substr(i, j - i).c_str()));
    i = j;
  }
  return out;
}

/// "a-z0-9_." with at least one interior dot: the shape of every obs
/// counter/histogram name ("acquire.ok", "admit.batch_size", ...).
bool is_metric_literal(const std::string& text) {
  if (text.size() < 3 || text.front() == '.' || text.back() == '.')
    return false;
  bool dot = false;
  for (const char c : text) {
    if (c == '.') {
      dot = true;
      continue;
    }
    if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_')
      return false;
  }
  return dot;
}

std::string strip_spaces(std::string s) {
  std::erase(s, ' ');
  return s;
}

}  // namespace

std::vector<Diagnostic> rule_wire_coherence(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  if (model.protocol_hpp < 0) return out;
  const SourceFile& proto_hpp =
      model.files[static_cast<std::size_t>(model.protocol_hpp)];

  // The docs live next to the source tree: strip the src/ suffix off the
  // server.hpp anchor to find the tree root (works for the repo gate run
  // from the repo root and for absolute-path fixture trees alike).
  std::string docs_root;
  bool have_root = false;
  if (model.service_hpp >= 0) {
    const std::string& anchor =
        model.files[static_cast<std::size_t>(model.service_hpp)].path;
    const std::string suffix = "src/service/server.hpp";
    if (anchor.size() >= suffix.size() &&
        anchor.ends_with(suffix)) {
      docs_root = anchor.substr(0, anchor.size() - suffix.size());
      have_root = true;
    }
  }
  std::string serving_md;
  std::string observability_md;
  std::string cluster_md;
  bool have_serving = false;
  if (have_root) {
    have_serving = read_text_file(docs_root + "docs/SERVING.md", &serving_md);
    if (!have_serving)
      out.push_back(
          {"L008",
           model.files[static_cast<std::size_t>(model.service_hpp)].path, 1,
           "docs/SERVING.md is missing or unreadable; the wire table "
           "cannot be checked against the protocol structs"});
    read_text_file(docs_root + "docs/OBSERVABILITY.md", &observability_md);
    read_text_file(docs_root + "docs/CLUSTER.md", &cluster_md);
  }
  std::vector<std::string> serving_lines;
  {
    std::size_t start = 0;
    while (start <= serving_md.size()) {
      std::size_t nl = serving_md.find('\n', start);
      if (nl == std::string::npos) nl = serving_md.size();
      serving_lines.push_back(serving_md.substr(start, nl - start));
      start = nl + 1;
    }
  }

  // (a) Every ServiceStats field must be assigned by BundleServer::stats()
  // and named by the codec; the SERVING.md StatsReply row must count them.
  std::vector<std::size_t> fields;
  int stats_struct_line = 0;
  if (collect_struct_fields(proto_hpp, "ServiceStats", &fields,
                            &stats_struct_line)) {
    if (model.server_cpp >= 0) {
      const SourceFile& server_cpp =
          model.files[static_cast<std::size_t>(model.server_cpp)];
      std::set<std::string> stats_idents;
      if (method_body_idents(server_cpp, "BundleServer", "stats",
                             &stats_idents)) {
        for (const std::size_t f : fields)
          if (stats_idents.count(proto_hpp.tokens[f].text) == 0)
            out.push_back({"L008", proto_hpp.path, proto_hpp.tokens[f].line,
                           "ServiceStats field '" + proto_hpp.tokens[f].text +
                               "' is never assigned by "
                               "BundleServer::stats(); it goes over the "
                               "wire as a stale zero"});
      }
    }
    if (model.protocol_cpp >= 0) {
      const SourceFile& proto_cpp =
          model.files[static_cast<std::size_t>(model.protocol_cpp)];
      std::set<std::string> codec_idents;
      for (const Token& t : proto_cpp.tokens)
        if (t.kind == TokKind::Identifier) codec_idents.insert(t.text);
      for (const std::size_t f : fields)
        if (codec_idents.count(proto_hpp.tokens[f].text) == 0)
          out.push_back({"L008", proto_hpp.path, proto_hpp.tokens[f].line,
                         "ServiceStats field '" + proto_hpp.tokens[f].text +
                             "' is never touched by the protocol codec "
                             "(protocol.cpp); encode and decode would "
                             "silently skip it"});
    }
    if (have_serving) {
      bool row_found = false;
      bool count_ok = false;
      for (const std::string& line : serving_lines) {
        const std::size_t at = line.find("StatsReply");
        if (at == std::string::npos || line.find('|') == std::string::npos)
          continue;
        row_found = true;
        for (const int n : standalone_ints(line, at))
          if (n == static_cast<int>(fields.size())) count_ok = true;
      }
      if (!row_found)
        out.push_back({"L008", proto_hpp.path, stats_struct_line,
                       "docs/SERVING.md wire table has no StatsReply row "
                       "documenting the ServiceStats payload"});
      else if (!count_ok)
        out.push_back({"L008", proto_hpp.path, stats_struct_line,
                       "docs/SERVING.md documents a StatsReply field count "
                       "that is not " +
                           std::to_string(fields.size()) +
                           "; ServiceStats and the wire table have "
                           "drifted"});
    }
  }

  // (b) Every explicitly numbered MsgType enumerator needs its
  // `| value | Name |` row in the SERVING.md wire table.
  if (have_serving) {
    std::vector<std::string> stripped;
    stripped.reserve(serving_lines.size());
    for (const std::string& line : serving_lines)
      stripped.push_back(strip_spaces(line));
    const auto& toks = proto_hpp.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "enum") || !is_ident(toks[i + 1], "class") ||
          !is_ident(toks[i + 2], "MsgType"))
        continue;
      std::size_t open = i + 3;
      while (open < toks.size() && !is_punct(toks[open], "{") &&
             !is_punct(toks[open], ";"))
        ++open;
      if (open >= toks.size() || !is_punct(toks[open], "{")) break;
      const std::size_t close = match_forward(toks, open);
      for (std::size_t k = open + 1; k + 2 < close; ++k) {
        if (toks[k].kind != TokKind::Identifier ||
            !(is_punct(toks[k - 1], "{") || is_punct(toks[k - 1], ",")) ||
            !is_punct(toks[k + 1], "=") ||
            toks[k + 2].kind != TokKind::Number)
          continue;
        const std::string row = "|" + toks[k + 2].text + "|" + toks[k].text;
        bool documented = false;
        for (const std::string& line : stripped)
          if (line.find(row) != std::string::npos) documented = true;
        if (!documented)
          out.push_back({"L008", proto_hpp.path, toks[k].line,
                         "MsgType::" + toks[k].text + " (= " +
                             toks[k + 2].text +
                             ") has no '| " + toks[k + 2].text + " | " +
                             toks[k].text +
                             " |' row in the docs/SERVING.md wire table"});
      }
      break;
    }
  }

  // (c) Every metric-shaped string literal in server.cpp and the cluster
  // router (the only files that mint obs counter/histogram names) must
  // be documented.
  for (const int minting : {model.server_cpp, model.router_cpp}) {
    if (minting < 0 || !have_serving) continue;
    const SourceFile& minting_cpp =
        model.files[static_cast<std::size_t>(minting)];
    for (const Token& t : minting_cpp.tokens) {
      if (t.kind != TokKind::String || !is_metric_literal(t.text)) continue;
      if (serving_md.find(t.text) == std::string::npos &&
          observability_md.find(t.text) == std::string::npos &&
          cluster_md.find(t.text) == std::string::npos)
        out.push_back({"L008", minting_cpp.path, t.line,
                       "metric name \"" + t.text +
                           "\" is not documented in docs/OBSERVABILITY.md, "
                           "docs/SERVING.md or docs/CLUSTER.md; every "
                           "exported counter and histogram must be "
                           "discoverable"});
    }
  }
  return out;
}

std::vector<Diagnostic> run_rules(const ProjectModel& model) {
  std::vector<Diagnostic> out;
  for (auto* rule :
       {rule_view_lifetime, rule_hook_completeness, rule_registry_completeness,
        rule_metrics_completeness, rule_determinism, rule_header_hygiene,
        rule_lock_discipline, rule_wire_coherence}) {
    std::vector<Diagnostic> diags = rule(model);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.path, a.line, a.rule, a.message) <
           std::tie(b.path, b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace fbclint
