// fbclint lexer: a minimal, dependency-free C++ tokenizer.
//
// fbclint's rules work over token streams, not an AST. The lexer therefore
// only needs to be good enough to (a) never mis-tokenize the constructs the
// rules inspect (identifiers, punctuation, string literals, comments,
// preprocessor directives) and (b) carry accurate line numbers so
// diagnostics and `fbclint:ignore(...)` / `fbclint:expect(...)` markers can
// be matched to source lines. It understands line/block comments, ordinary
// and raw string literals, char literals, and treats each preprocessor
// directive as one token spanning its (possibly continued) logical line.
#pragma once

#include <string>
#include <vector>

namespace fbclint {

enum class TokKind {
  Identifier,  // identifiers and keywords
  Number,
  String,     // "..." or R"(...)" (text excludes quotes)
  CharLit,    // '...'
  Punct,      // one operator/punctuator, multi-char ones kept together
  Directive,  // whole preprocessor line, text includes the '#'
  Comment,    // text excludes the // or /* */ markers
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

/// One lexed translation unit.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;      // code tokens (no comments/directives)
  std::vector<Token> comments;    // comment tokens, in order
  std::vector<Token> directives;  // preprocessor directives, in order
  int line_count = 0;

  [[nodiscard]] bool is_header() const;
};

/// Lexes `content` (the bytes of the file at `path`).
[[nodiscard]] SourceFile lex_file(std::string path, const std::string& content);

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace fbclint
