#include "fbclint/lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fbclint {

bool SourceFile::is_header() const {
  return path.size() >= 4 && (path.ends_with(".hpp") || path.ends_with(".h"));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fbclint: cannot read " + path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators the rules care to keep whole. Everything
/// else is emitted one character at a time.
constexpr const char* kPuncts[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

}  // namespace

SourceFile lex_file(std::string path, const std::string& content) {
  SourceFile out;
  out.path = std::move(path);
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace so far on this line

  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? content[i + off] : '\0';
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: consume the logical line (with \-continuations).
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      while (i < n && content[i] != '\n') {
        if (content[i] == '\\' && peek(1) == '\n') {
          text += ' ';
          i += 2;
          ++line;
          continue;
        }
        text += content[i];
        ++i;
      }
      out.directives.push_back({TokKind::Directive, text, start_line});
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j < n && content[j] != '\n') ++j;
      out.comments.push_back(
          {TokKind::Comment, content.substr(i + 2, j - i - 2), start_line});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        text += content[j];
        ++j;
      }
      out.comments.push_back({TokKind::Comment, text, start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal (enough for R"(...)" and R"delim(...)delim").
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body = j + 1;
      const std::size_t end = content.find(closer, body);
      const std::size_t stop = end == std::string::npos ? n : end;
      out.tokens.push_back(
          {TokKind::String, content.substr(body, stop - body), line});
      for (std::size_t k = i; k < stop && k < n; ++k)
        if (content[k] == '\n') ++line;
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) {
          text += content[j];
          text += content[j + 1];
          j += 2;
          continue;
        }
        if (content[j] == '\n') ++line;  // unterminated; keep going
        text += content[j];
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::String : TokKind::CharLit, text, line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(content[j])) ++j;
      out.tokens.push_back(
          {TokKind::Identifier, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (loose: consumes ident chars, '.' and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                         content[j - 1] == 'p' || content[j - 1] == 'P'))))
        ++j;
      out.tokens.push_back({TokKind::Number, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: longest known multi-char first.
    std::string matched;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (content.compare(i, len, p) == 0) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = std::string(1, c);
    out.tokens.push_back({TokKind::Punct, matched, line});
    i += matched.size();
  }
  out.line_count = line;
  return out;
}

}  // namespace fbclint
