// fbclint project model: the cross-file facts the rules consume.
//
// fbclint is not a general C++ analyzer -- it extracts exactly the facts the
// L001..L006 rules need from the lexed token streams:
//
//   * view-taking signatures      functions/constructors declared in headers
//                                 with std::span / std::string_view params
//   * owning-return functions     header declarations returning an owning
//                                 container (vector/string/...) BY VALUE --
//                                 the rvalue side of the L001 bug class
//   * class graph                 bases, override sets, wrapped-policy
//                                 members (adapter detection for L002)
//   * project anchors             registry.cpp / registry.hpp / metrics.hpp /
//                                 fbcsim.cpp, found by path suffix, for the
//                                 completeness rules L003/L004
//
// Everything is heuristic token matching. The contract is: precise on this
// codebase and its fixture trees (enforced by --self-test and the repo-clean
// CI gate), not on arbitrary C++.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fbclint/lexer.hpp"

namespace fbclint {

/// One reported violation.
struct Diagnostic {
  std::string rule;  // "L001".."L006"
  std::string path;
  int line = 0;
  std::string message;
};

/// One level-annotated mutex (L007 lock model). Parsed from
/// `// fbc:lock-level(N)` / `// fbc:guards(field,...)` comments bound to
/// the mutex member declaration below them. Annotated names must be
/// unique across the project: the model is keyed by the declared
/// identifier, which is how lock sites (`lock_guard<...> l(name)`) are
/// resolved back to their level.
struct LockInfo {
  std::string name;  ///< declared identifier (member or global)
  std::string path;
  int line = 0;
  int level = -1;       ///< fbc:lock-level(N)
  int ctor_level = -1;  ///< first integer of the {N, "name"} initializer
  /// Outermost enclosing class of the declaration (nested-struct members
  /// belong to the outermost class); empty for namespace/file scope.
  std::string owner;
  std::vector<std::string> guards;  ///< fbc:guards(...) field names
};

/// Lock contracts attached to a function name (L007):
/// `fbc:requires(m)` (caller must hold m; also seeds the body walk),
/// `fbc:excludes(m)` (caller must NOT hold m), `fbc:blocking` (may block
/// indefinitely, so no level-annotated lock may be held across a call).
struct FnLockInfo {
  std::set<std::string> needs;
  std::set<std::string> excludes;
  bool blocking = false;
};

/// A class definition relevant to L002.
struct ClassInfo {
  std::string name;
  std::string path;
  int line = 0;
  std::vector<std::string> bases;
  /// Names of member functions declared with `override`.
  std::set<std::string> overrides;
  /// True when the class holds a wrapped inner policy/observer
  /// (PolicyPtr or unique_ptr<...Policy/...Observer> member) -- the
  /// adapter signature L002 keys on.
  bool wraps_inner = false;
};

/// Everything the rules need, extracted once per lint run.
struct ProjectModel {
  std::vector<SourceFile> files;

  /// Function/ctor name -> 0-based indices of view-typed parameters,
  /// unioned over all declarations sharing the name.
  std::map<std::string, std::set<std::size_t>> view_sigs;

  /// Names of functions declared (in a header) to return an owning
  /// container by value. Names that are *also* declared somewhere with
  /// a view/reference return are ambiguous and excluded: flagging every
  /// call site on a shared name would drown L001 in false positives.
  std::set<std::string> owning_returners;

  /// Names declared with a view (span/string_view) or reference/pointer
  /// return type; subtracted from owning_returners in build_model().
  std::set<std::string> view_returners;

  /// Names declared anywhere with an unordered_{map,set} type.
  std::set<std::string> unordered_vars;
  /// Names declared anywhere with an ordered/sequence container type
  /// (used to veto unordered_vars matches on reused names).
  std::set<std::string> ordered_vars;

  std::vector<ClassInfo> classes;

  /// L007 lock model: every annotated mutex, plus per-function-name lock
  /// contracts (unioned over all declarations sharing the name).
  std::vector<LockInfo> locks;
  std::map<std::string, FnLockInfo> fn_locks;

  /// Virtual hook names per interface, parsed live from the interface
  /// definitions (so a newly added hook extends L002 automatically).
  std::map<std::string, std::set<std::string>> interface_hooks;

  // Anchors (indices into files, -1 when absent from the scanned set).
  int registry_cpp = -1;  // path ends core/registry.cpp
  int registry_hpp = -1;  // path ends core/registry.hpp
  int metrics_hpp = -1;   // path ends cache/metrics.hpp
  int fbcsim_cpp = -1;    // basename fbcsim.cpp
  int service_hpp = -1;   // path ends service/server.hpp (ServiceConfig)
  int protocol_hpp = -1;  // path ends service/protocol.hpp (MsgType)
  int protocol_cpp = -1;  // path ends service/protocol.cpp (codec switches)
  int server_cpp = -1;    // path ends service/server.cpp (L008 stats/metrics)
  /// Observability headers: their merge()-owning classes (Histogram,
  /// CounterRegistry) get the same L004 merge-completeness scan as
  /// cache/metrics.hpp, and BundleServer's Histogram/CounterRegistry
  /// members must all be exported by BundleServer::metrics().
  int obs_histogram_hpp = -1;  // path ends obs/histogram.hpp
  int obs_counter_hpp = -1;    // path ends obs/counter.hpp
  /// Sharded-cluster anchors: ClusterConfig's home (L003 field/CLI
  /// coherence) and the router translation unit, the only other file
  /// that mints obs metric names (L008 documentation scan).
  int cluster_config_hpp = -1;  // path ends cluster/config.hpp
  int router_cpp = -1;          // path ends cluster/router.cpp
  /// Serving-tool CLI surface: fbcd.cpp, fbcload.cpp, fbcgrid.cpp and
  /// their shared serving_common.hpp. ServiceConfig and ClusterConfig
  /// fields must appear somewhere in this union (L003).
  std::vector<int> serving_tools;
};

/// Suppression / expectation markers parsed from comments.
/// `fbclint:ignore(L001)` suppresses rule L001 on the comment's line and
/// the line after it (`fbclint:allow(...)` is an accepted alias);
/// `fbclint:expect(L001)` declares a seeded violation for --self-test
/// with the same placement rules.
struct Markers {
  /// (path, line) -> suppressed rules. Covers the marker line and line+1.
  std::map<std::pair<std::string, int>, std::set<std::string>> ignores;
  /// Expected diagnostics (self-test): rule + anchor line.
  std::vector<Diagnostic> expects;
};

/// Builds the model from lexed files.
[[nodiscard]] ProjectModel build_model(std::vector<SourceFile> files);

/// Extracts ignore/expect markers from every file's comments.
[[nodiscard]] Markers collect_markers(const ProjectModel& model);

/// Drops diagnostics matching an ignore marker (same file, marker line or
/// the following line).
[[nodiscard]] std::vector<Diagnostic> apply_suppressions(
    std::vector<Diagnostic> diags, const Markers& markers);

// -- token helpers shared with rules.cpp ---------------------------------

/// Index of the matching closer for the opener at `open` ("(){}[]<>"),
/// or tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& tokens,
                                        std::size_t open);

/// Splits the token range (open, close) at top-level commas; returns
/// [begin, end) index pairs of each argument (empty when no tokens).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close);

/// True when `path` ends with `suffix` at a path-component boundary.
[[nodiscard]] bool path_ends_with(const std::string& path,
                                  const std::string& suffix);

/// Token-range of one class/struct body (ownership queries for L007).
struct ClassSpan {
  std::string name;
  std::size_t body_open = 0;   ///< index of the '{' token
  std::size_t body_close = 0;  ///< index of the matching '}' token
};

/// Every class/struct body in `file`, in token order (outer before inner).
[[nodiscard]] std::vector<ClassSpan> collect_class_spans(
    const SourceFile& file);

/// Name of the outermost class span containing token `idx`; "" when none.
[[nodiscard]] std::string outermost_class_at(
    const std::vector<ClassSpan>& spans, std::size_t idx);

}  // namespace fbclint
