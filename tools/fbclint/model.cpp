#include "fbclint/model.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace fbclint {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Identifier && t.text == text;
}

constexpr std::array kOwningContainers = {
    "vector", "string", "deque", "array", "list",
    "map",    "set",    "multimap", "multiset",
};

constexpr std::array kOrderedContainers = {
    "vector", "map", "set", "deque", "array", "list", "span", "multimap",
    "multiset",
};

constexpr std::array kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/// True when the argument chunk looks like a *parameter declaration*
/// rather than a call argument: templated type, or >= 2 identifiers in a
/// row somewhere, and no nested call parentheses.
bool chunk_is_param_like(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  if (begin >= end) return false;
  bool has_template = false;
  bool has_two_idents = false;
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(toks[i], "(")) return false;
    if (is_punct(toks[i], "<")) has_template = true;
    if (i + 1 < end && toks[i].kind == TokKind::Identifier &&
        toks[i + 1].kind == TokKind::Identifier)
      has_two_idents = true;
  }
  if (end - begin == 1 && is_ident(toks[begin], "void")) return true;
  return has_template || has_two_idents;
}

/// True when the chunk names a view type (std::span<...> / string_view).
bool chunk_is_view_param(const std::vector<Token>& toks, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(toks[i], "(")) return false;  // not a plain parameter
    if (is_ident(toks[i], "string_view")) return true;
    if (is_ident(toks[i], "span") && i + 1 < end && is_punct(toks[i + 1], "<"))
      return true;
  }
  return false;
}

/// Classification of an `identifier (` site.
enum class ParenSite { Call, Declaration };

ParenSite classify(const std::vector<Token>& toks, std::size_t name_idx,
                   std::size_t open, std::size_t close) {
  // Context before the name: a declaration is preceded by its return type
  // or -- for constructors -- by a statement/scope boundary such as
  // `public:`. Anything else (member access, operators, ...) is a call.
  bool type_context = false;
  if (name_idx > 0) {
    const Token& prev = toks[name_idx - 1];
    type_context = prev.kind == TokKind::Identifier || is_punct(prev, ">") ||
                   is_punct(prev, "&") || is_punct(prev, "*") ||
                   is_punct(prev, "]");
    const bool boundary_context = is_punct(prev, ";") || is_punct(prev, "{") ||
                                  is_punct(prev, "}") || is_punct(prev, ":");
    if (!type_context && !boundary_context) return ParenSite::Call;
    if (is_ident(prev, "return") || is_ident(prev, "co_return") ||
        is_ident(prev, "case") || is_ident(prev, "throw") ||
        is_ident(prev, "if") || is_ident(prev, "while") ||
        is_ident(prev, "switch") || is_ident(prev, "for") ||
        is_ident(prev, "new") || is_ident(prev, "delete") ||
        is_ident(prev, "co_await") || is_ident(prev, "co_yield"))
      return ParenSite::Call;
  }
  const auto args = split_args(toks, open, close);
  if (args.empty()) {
    // Empty parameter list: declarations are followed by a cv/ref
    // qualifier, a body, or a trailing return -- or, for a free-function
    // declaration preceded by its return type (`std::vector<int> make();`),
    // directly by the semicolon.
    if (close + 1 >= toks.size()) return ParenSite::Call;
    const Token& next = toks[close + 1];
    if (is_ident(next, "const") || is_ident(next, "noexcept") ||
        is_ident(next, "override") || is_ident(next, "final") ||
        is_punct(next, "{") || is_punct(next, "->"))
      return ParenSite::Declaration;
    if (type_context && is_punct(next, ";")) return ParenSite::Declaration;
    return ParenSite::Call;
  }
  for (const auto& [b, e] : args)
    if (!chunk_is_param_like(toks, b, e)) return ParenSite::Call;
  return ParenSite::Declaration;
}

/// Return-type tokens preceding a declaration name: walk back to the last
/// statement/scope separator. Returns [begin, name_idx).
std::size_t return_type_begin(const std::vector<Token>& toks,
                              std::size_t name_idx) {
  std::size_t b = name_idx;
  while (b > 0) {
    const Token& t = toks[b - 1];
    if (t.kind == TokKind::Punct &&
        (t.text == ";" || t.text == "{" || t.text == "}" || t.text == "," ||
         t.text == "(" || t.text == ")" || t.text == ":"))
      break;
    --b;
    if (name_idx - b > 24) break;  // runaway guard
  }
  return b;
}

bool type_is_owning_value(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  bool owning = false;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "&") || is_punct(t, "*")) return false;
    if (is_ident(t, "span") || is_ident(t, "string_view")) return false;
    if (is_ident(t, "virtual") || is_ident(t, "static") ||
        is_ident(t, "explicit") || is_ident(t, "nodiscard") ||
        is_ident(t, "constexpr") || is_ident(t, "inline") ||
        is_ident(t, "friend") || is_ident(t, "typename") ||
        is_ident(t, "using"))
      continue;
    for (const char* c : kOwningContainers)
      if (is_ident(t, c)) owning = true;
  }
  return owning;
}

bool type_is_view_like(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "&") || is_punct(t, "*")) return true;
    if (is_ident(t, "span") || is_ident(t, "string_view")) return true;
  }
  return false;
}

void collect_signatures(const SourceFile& file, ProjectModel& model) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier || !is_punct(toks[i + 1], "("))
      continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(toks, open);
    if (close >= toks.size()) continue;
    if (classify(toks, i, open, close) != ParenSite::Declaration) continue;
    // Destructors are never interesting.
    if (i > 0 && is_punct(toks[i - 1], "~")) continue;

    const auto args = split_args(toks, open, close);
    std::set<std::size_t>* view_slot = nullptr;
    for (std::size_t a = 0; a < args.size(); ++a) {
      if (chunk_is_view_param(toks, args[a].first, args[a].second)) {
        if (view_slot == nullptr) view_slot = &model.view_sigs[toks[i].text];
        view_slot->insert(a);
      }
    }
    const std::size_t rt_begin = return_type_begin(toks, i);
    if (type_is_owning_value(toks, rt_begin, i))
      model.owning_returners.insert(toks[i].text);
    else if (type_is_view_like(toks, rt_begin, i))
      model.view_returners.insert(toks[i].text);
  }
}

void collect_container_vars(const SourceFile& file, ProjectModel& model) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier || !is_punct(toks[i + 1], "<"))
      continue;
    bool unordered = false;
    bool ordered = false;
    for (const char* c : kUnorderedContainers)
      if (toks[i].text == c) unordered = true;
    for (const char* c : kOrderedContainers)
      if (toks[i].text == c) ordered = true;
    if (!unordered && !ordered) continue;
    const std::size_t close = match_forward(toks, i + 1);
    if (close + 1 >= toks.size()) continue;
    std::size_t j = close + 1;
    while (j < toks.size() && (is_punct(toks[j], "&") || is_punct(toks[j], "*")))
      ++j;
    if (j < toks.size() && toks[j].kind == TokKind::Identifier) {
      if (unordered) model.unordered_vars.insert(toks[j].text);
      if (ordered) model.ordered_vars.insert(toks[j].text);
    }
  }
}

void collect_classes(const SourceFile& file, ProjectModel& model) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(is_ident(toks[i], "class") || is_ident(toks[i], "struct"))) continue;
    // `enum class` is not a class.
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
    ClassInfo info;
    info.name = toks[j].text;
    info.path = file.path;
    info.line = toks[i].line;
    ++j;
    if (j < toks.size() && is_ident(toks[j], "final")) ++j;
    // Base clause, up to the opening brace.
    bool has_bases = j < toks.size() && is_punct(toks[j], ":");
    if (has_bases) {
      ++j;
      int angle = 0;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "<")) ++angle;
        if (is_punct(toks[j], ">")) --angle;
        if (angle == 0 && toks[j].kind == TokKind::Identifier &&
            !is_ident(toks[j], "public") && !is_ident(toks[j], "private") &&
            !is_ident(toks[j], "protected") && !is_ident(toks[j], "virtual"))
          info.bases.push_back(toks[j].text);
        ++j;
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;  // fwd decl
    const std::size_t body_open = j;
    const std::size_t body_close = match_forward(toks, body_open);
    if (body_close >= toks.size()) continue;

    const bool is_interface = info.name == "ReplacementPolicy" ||
                              info.name == "SimulationObserver";
    std::set<std::string>* hooks =
        is_interface ? &model.interface_hooks[info.name] : nullptr;

    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      // Wrapped inner policy/observer member?
      if (is_ident(toks[k], "PolicyPtr")) info.wraps_inner = true;
      if (is_ident(toks[k], "unique_ptr")) {
        for (std::size_t m = k + 1; m < std::min(k + 10, body_close); ++m) {
          if (toks[m].kind == TokKind::Identifier &&
              (toks[m].text.ends_with("Policy") ||
               toks[m].text.ends_with("Observer")))
            info.wraps_inner = true;
        }
      }
      // Virtual hook declarations (interface classes only).
      if (hooks != nullptr && is_ident(toks[k], "virtual")) {
        for (std::size_t m = k + 1; m + 1 < body_close && m < k + 24; ++m) {
          if (is_punct(toks[m], ";") || is_punct(toks[m], "{")) break;
          if (toks[m].kind == TokKind::Identifier &&
              is_punct(toks[m + 1], "(") && !is_punct(toks[m - 1], "~")) {
            hooks->insert(toks[m].text);
            break;
          }
        }
      }
      // Overridden members.
      if (toks[k].kind == TokKind::Identifier && k + 1 < body_close &&
          is_punct(toks[k + 1], "(")) {
        const std::size_t close = match_forward(toks, k + 1);
        for (std::size_t m = close + 1;
             m < std::min(close + 6, body_close); ++m) {
          if (is_punct(toks[m], ";") || is_punct(toks[m], "{")) break;
          if (is_ident(toks[m], "override")) {
            info.overrides.insert(toks[k].text);
            break;
          }
        }
      }
    }
    model.classes.push_back(std::move(info));
  }
}

/// Parses one "name(arg, arg)" style fbc: annotation out of a comment;
/// returns the comma-split, space-stripped args of every occurrence.
std::vector<std::string> fbc_annotation_args(const std::string& text,
                                             const char* keyword) {
  std::vector<std::string> out;
  const std::string needle = std::string("fbc:") + keyword + "(";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t open = pos + needle.size() - 1;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    std::string inner = text.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= inner.size()) {
      std::size_t comma = inner.find(',', start);
      if (comma == std::string::npos) comma = inner.size();
      std::string arg = inner.substr(start, comma - start);
      std::erase(arg, ' ');
      if (!arg.empty()) out.push_back(arg);
      start = comma + 1;
    }
    pos = close;
  }
  return out;
}

/// Index of the first token on the first code-bearing line at or after
/// `line`, or tokens.size(). Because it returns the *next* line that has
/// any token at all, stacked annotation comments (which carry no tokens)
/// all bind to the same following declaration.
std::size_t first_token_at_or_after(const std::vector<Token>& toks,
                                    int line) {
  for (std::size_t i = 0; i < toks.size(); ++i)
    if (toks[i].line >= line) return i;
  return toks.size();
}

/// How far an annotation comment may sit above its declaration (allows a
/// block of stacked fbc: comment lines, not an arbitrary gap).
constexpr int kMaxAnnotationGap = 8;

/// Binds lock / function annotations in `file` into the model.
void collect_lock_annotations(const SourceFile& file, ProjectModel& model) {
  const auto& toks = file.tokens;
  const std::vector<ClassSpan> spans = collect_class_spans(file);
  for (const Token& comment : file.comments) {
    const bool has_level = comment.text.find("fbc:lock-level(") !=
                           std::string::npos;
    const bool has_guards = comment.text.find("fbc:guards(") !=
                            std::string::npos;
    const bool has_needs = comment.text.find("fbc:requires(") !=
                           std::string::npos;
    const bool has_excludes = comment.text.find("fbc:excludes(") !=
                              std::string::npos;
    const bool has_blocking = comment.text.find("fbc:blocking") !=
                              std::string::npos;
    if (!has_level && !has_guards && !has_needs && !has_excludes &&
        !has_blocking)
      continue;

    const std::size_t bind = first_token_at_or_after(toks, comment.line);
    if (bind >= toks.size() ||
        toks[bind].line - comment.line > kMaxAnnotationGap)
      continue;

    if (has_level || has_guards) {
      // Mutex member declaration: name is the last identifier before the
      // initializer / terminator of the declaration statement.
      std::size_t name_idx = 0;
      std::size_t stop = bind;
      for (std::size_t i = bind; i < toks.size(); ++i) {
        if (is_punct(toks[i], "{") || is_punct(toks[i], "=") ||
            is_punct(toks[i], ";") || is_punct(toks[i], "(")) {
          stop = i;
          break;
        }
        if (toks[i].kind == TokKind::Identifier) name_idx = i;
      }
      if (name_idx == 0) continue;
      LockInfo* info = nullptr;
      for (LockInfo& existing : model.locks)
        if (existing.path == file.path &&
            existing.line == toks[name_idx].line &&
            existing.name == toks[name_idx].text)
          info = &existing;
      if (info == nullptr) {
        model.locks.push_back({});
        info = &model.locks.back();
        info->name = toks[name_idx].text;
        info->path = file.path;
        info->line = toks[name_idx].line;
        info->owner = outermost_class_at(spans, name_idx);
      }
      for (const std::string& arg :
           fbc_annotation_args(comment.text, "lock-level")) {
        char* end = nullptr;
        const long level = std::strtol(arg.c_str(), &end, 10);
        if (end != nullptr && *end == '\0')
          info->level = static_cast<int>(level);
      }
      for (const std::string& arg :
           fbc_annotation_args(comment.text, "guards"))
        info->guards.push_back(arg);
      // Constructor level literal: first number inside the {N, ...} or
      // (N, ...) initializer, cross-checked against the annotation.
      if ((is_punct(toks[stop], "{") || is_punct(toks[stop], "(")) &&
          stop + 1 < toks.size() && toks[stop + 1].kind == TokKind::Number)
        info->ctor_level =
            static_cast<int>(std::strtol(toks[stop + 1].text.c_str(),
                                         nullptr, 10));
    }

    if (has_needs || has_excludes || has_blocking) {
      // Function declaration: name is the identifier directly before the
      // first '(' after the bind point.
      std::string fn_name;
      const std::size_t limit = std::min(toks.size(), bind + 48);
      for (std::size_t i = bind + 1; i < limit; ++i) {
        if (is_punct(toks[i], ";") || is_punct(toks[i], "{")) break;
        if (is_punct(toks[i], "(") &&
            toks[i - 1].kind == TokKind::Identifier) {
          fn_name = toks[i - 1].text;
          break;
        }
      }
      if (fn_name.empty()) continue;
      FnLockInfo& info = model.fn_locks[fn_name];
      for (const std::string& arg :
           fbc_annotation_args(comment.text, "requires"))
        info.needs.insert(arg);
      for (const std::string& arg :
           fbc_annotation_args(comment.text, "excludes"))
        info.excludes.insert(arg);
      if (has_blocking) info.blocking = true;
    }
  }
}

}  // namespace

std::vector<ClassSpan> collect_class_spans(const SourceFile& file) {
  std::vector<ClassSpan> out;
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(is_ident(toks[i], "class") || is_ident(toks[i], "struct"))) continue;
    if (i > 0 && is_ident(toks[i - 1], "enum")) continue;
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
    const std::string name = toks[j].text;
    ++j;
    if (j < toks.size() && is_ident(toks[j], "final")) ++j;
    if (j < toks.size() && is_punct(toks[j], ":")) {
      int angle = 0;
      ++j;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "<")) ++angle;
        if (is_punct(toks[j], ">")) --angle;
        ++j;
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;  // fwd decl
    const std::size_t body_close = match_forward(toks, j);
    if (body_close >= toks.size()) continue;
    out.push_back({name, j, body_close});
  }
  return out;
}

std::string outermost_class_at(const std::vector<ClassSpan>& spans,
                               std::size_t idx) {
  for (const ClassSpan& span : spans)
    if (span.body_open < idx && idx < span.body_close) return span.name;
  return {};
}

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::Punct)
    return tokens.size();
  const std::string& o = tokens[open].text;
  std::string c;
  if (o == "(") c = ")";
  else if (o == "{") c = "}";
  else if (o == "[") c = "]";
  else if (o == "<") c = ">";
  else return tokens.size();
  int depth = 0;
  const std::size_t limit =
      o == "<" ? std::min(tokens.size(), open + 200) : tokens.size();
  for (std::size_t i = open; i < limit; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::Punct) continue;
    if (t.text == o) ++depth;
    if (t.text == c && --depth == 0) return i;
    if (o == "<" && t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    }
    // A template argument list never crosses these.
    if (o == "<" && (t.text == ";" || t.text == "{")) return tokens.size();
  }
  return tokens.size();
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (open + 1 >= close) return out;
  std::size_t begin = open + 1;
  int paren = 0, brace = 0, bracket = 0, angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokKind::Punct) {
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "{") ++brace;
      if (t.text == "}") --brace;
      if (t.text == "[") ++bracket;
      if (t.text == "]") --bracket;
      if (t.text == "<") ++angle;
      if (t.text == ">" && angle > 0) --angle;
      if (t.text == ">>" && angle > 0) angle = std::max(0, angle - 2);
      if (t.text == "," && paren == 0 && brace == 0 && bracket == 0 &&
          angle == 0) {
        out.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  out.emplace_back(begin, close);
  return out;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (!path.ends_with(suffix)) return false;
  if (path.size() == suffix.size()) return true;
  const char before = path[path.size() - suffix.size() - 1];
  return before == '/' || before == '\\';
}

ProjectModel build_model(std::vector<SourceFile> files) {
  ProjectModel model;
  model.files = std::move(files);
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    const SourceFile& f = model.files[i];
    if (f.is_header()) collect_signatures(f, model);
    collect_container_vars(f, model);
    collect_classes(f, model);
    collect_lock_annotations(f, model);
    if (path_ends_with(f.path, "core/registry.cpp"))
      model.registry_cpp = static_cast<int>(i);
    if (path_ends_with(f.path, "core/registry.hpp"))
      model.registry_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "cache/metrics.hpp"))
      model.metrics_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "fbcsim.cpp"))
      model.fbcsim_cpp = static_cast<int>(i);
    if (path_ends_with(f.path, "service/server.hpp"))
      model.service_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "service/protocol.hpp"))
      model.protocol_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "service/protocol.cpp"))
      model.protocol_cpp = static_cast<int>(i);
    if (path_ends_with(f.path, "service/server.cpp"))
      model.server_cpp = static_cast<int>(i);
    if (path_ends_with(f.path, "obs/histogram.hpp"))
      model.obs_histogram_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "obs/counter.hpp"))
      model.obs_counter_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "cluster/config.hpp"))
      model.cluster_config_hpp = static_cast<int>(i);
    if (path_ends_with(f.path, "cluster/router.cpp"))
      model.router_cpp = static_cast<int>(i);
    if (path_ends_with(f.path, "fbcd.cpp") ||
        path_ends_with(f.path, "fbcload.cpp") ||
        path_ends_with(f.path, "fbcgrid.cpp") ||
        path_ends_with(f.path, "serving_common.hpp"))
      model.serving_tools.push_back(static_cast<int>(i));
  }
  for (const std::string& name : model.view_returners)
    model.owning_returners.erase(name);
  return model;
}

namespace {

/// Parses "fbclint:ignore(L001,L002)"-style markers out of one comment.
void parse_marker(const std::string& text, const char* keyword,
                  std::vector<std::string>* rules) {
  const std::string needle = std::string("fbclint:") + keyword + "(";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const std::size_t open = pos + needle.size() - 1;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    std::string inner = text.substr(open + 1, close - open - 1);
    std::size_t start = 0;
    while (start <= inner.size()) {
      std::size_t comma = inner.find(',', start);
      if (comma == std::string::npos) comma = inner.size();
      std::string rule = inner.substr(start, comma - start);
      std::erase(rule, ' ');
      if (!rule.empty()) rules->push_back(rule);
      start = comma + 1;
    }
    pos = close;
  }
}

}  // namespace

Markers collect_markers(const ProjectModel& model) {
  Markers out;
  for (const SourceFile& file : model.files) {
    for (const Token& comment : file.comments) {
      std::vector<std::string> ignored;
      parse_marker(comment.text, "ignore", &ignored);
      parse_marker(comment.text, "allow", &ignored);
      for (const std::string& rule : ignored)
        out.ignores[{file.path, comment.line}].insert(rule);
      std::vector<std::string> expected;
      parse_marker(comment.text, "expect", &expected);
      for (const std::string& rule : expected)
        out.expects.push_back({rule, file.path, comment.line, "seeded"});
    }
  }
  return out;
}

std::vector<Diagnostic> apply_suppressions(std::vector<Diagnostic> diags,
                                           const Markers& markers) {
  std::erase_if(diags, [&](const Diagnostic& d) {
    for (int delta = 0; delta <= 1; ++delta) {
      const auto it = markers.ignores.find({d.path, d.line - delta});
      if (it != markers.ignores.end() && it->second.count(d.rule) > 0)
        return true;
    }
    return false;
  });
  return diags;
}

}  // namespace fbclint
