// Shared CLI plumbing for the serving tools (fbcd, fbcload).
//
// Both tools must expose every ServiceConfig field as a flag (fbclint L003
// checks the field list against the identifiers used here) and must build
// the *same* workload from the same scenario flags: fbcd serves the
// catalog, fbcload replays the job stream against it, and because
// generation is seed-deterministic the two processes agree on every file
// id and size without exchanging anything but the flags.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "core/incremental_select.hpp"
#include "core/registry.hpp"
#include "grid/mss.hpp"
#include "grid/replica.hpp"
#include "service/server.hpp"
#include "testing/oracles.hpp"
#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/scenarios.hpp"
#include "workload/workload.hpp"

namespace fbc::tools {

/// Registers one flag per service::ServiceConfig field.
inline void add_service_options(CliParser& cli) {
  cli.add_option("cache", "staging cache capacity", "1GiB");
  cli.add_option("policy", "replacement policy name", "optfb");
  cli.add_option("max-queue", "admission queue bound (backpressure)", "64");
  cli.add_option("order", "admission order: fifo|value", "fifo");
  cli.add_option("timeout-ms", "per-request admission timeout", "30000");
  cli.add_option("max-retries", "MSS transfer retries per request", "3");
  cli.add_option("retry-backoff-ms", "base transfer retry backoff", "10");
  cli.add_option("fail-prob", "per-attempt MSS transfer failure prob", "0");
  cli.add_option("time-scale",
                 "wall seconds slept per simulated staging second", "0");
  cli.add_option("streams", "parallel MSS transfer streams", "4");
  cli.add_option("seed", "failure-injection / policy seed", "1");
  cli.add_option("retry-cap-ms",
                 "cap on the QueueFull retry-after hint (0 = uncapped)",
                 "60000");
  cli.add_option("span-capacity",
                 "per-request spans kept for debugging (0 disables)", "1024");
  cli.add_option("engine", "optfb selection engine: reference|incremental",
                 "incremental");
  cli.add_option("admission-batch",
                 "queue entries admitted per drain pass (1 = serial)", "8");
  cli.add_option("lease-shards", "lease-table shard count", "16");
  cli.add_flag("no-coalesce",
               "disable single-flight waiting on overlapping fetches");
  cli.add_flag("shadow-diff",
               "run the Reference engine in lock-step shadow and assert "
               "bit-identical decisions (debug)");
  cli.add_flag("legacy-wire",
               "pre-batching transport: unbuffered per-frame reads, one "
               "send per reply (bench baseline mode)");
  cli.add_option("shard-id", "this server's position in its cluster", "0");
}

/// Builds a ServiceConfig from the flags added above.
inline service::ServiceConfig service_config_from_cli(const CliParser& cli) {
  service::ServiceConfig config;
  config.cache_bytes = parse_bytes(cli.get_string("cache"));
  config.policy = cli.get_string("policy");
  config.max_queue = cli.get_u64("max-queue");
  config.order = service::parse_admit_order(cli.get_string("order"));
  config.timeout_ms = static_cast<std::uint32_t>(cli.get_u64("timeout-ms"));
  config.max_retries = static_cast<std::uint32_t>(cli.get_u64("max-retries"));
  config.retry_backoff_ms =
      static_cast<std::uint32_t>(cli.get_u64("retry-backoff-ms"));
  config.transfer_fail_prob = cli.get_double("fail-prob");
  config.time_scale = cli.get_double("time-scale");
  config.transfer_streams = cli.get_u64("streams");
  config.seed = cli.get_u64("seed");
  config.retry_after_cap_ms =
      static_cast<std::uint32_t>(cli.get_u64("retry-cap-ms"));
  config.span_capacity = cli.get_u64("span-capacity");
  config.engine = parse_select_engine(cli.get_string("engine"));
  config.admission_batch = cli.get_u64("admission-batch");
  config.lease_shards = cli.get_u64("lease-shards");
  config.coalesce = !cli.get_flag("no-coalesce");
  config.shadow_diff = cli.get_flag("shadow-diff");
  config.legacy_wire = cli.get_flag("legacy-wire");
  config.shard_id = static_cast<std::uint32_t>(cli.get_u64("shard-id"));
  if (config.shadow_diff) {
    // The server itself cannot depend on the testing library; install its
    // prefix-aware factory so "enginediff:<policy>" wraps the configured
    // policy in the lock-step Reference-vs-Incremental adapter.
    config.policy_factory = [](const std::string& name,
                               const PolicyContext& context) {
      return testing::make_shadow_policy("enginediff:" + name, context);
    };
  }
  return config;
}

/// Registers one flag per cluster::ClusterConfig field (fbcgrid and
/// fbcload --cluster share this surface; fbclint L003 checks the field
/// list against the identifiers used here).
inline void add_cluster_options(CliParser& cli) {
  cli.add_option("shards", "BundleServer shards behind the router", "4");
  cli.add_option("placement", "bundle placement: affinity|hash", "affinity");
  cli.add_option("spill-threshold",
                 "bundle-to-shard-capacity ratio beyond which an affinity "
                 "bundle scatters across shards",
                 "0.5");
  cli.add_option("vnodes", "consistent-hash virtual nodes per shard", "64");
  cli.add_option("replica-sites",
                 "extra MSS replica sites for replica-aware fetch "
                 "(0 = plain MSS)",
                 "0");
  cli.add_option("replicate-hot",
                 "hottest files replicated to every replica site", "0");
  cli.add_option("remote-pool-cap",
                 "idle connections kept per remote shard daemon", "8");
  cli.add_option("down-threshold",
                 "consecutive NetErrors before a shard is marked down", "3");
  cli.add_option("probe-ms",
                 "recovery-probe interval for down shards (0 = every "
                 "request)",
                 "500");
}

/// Builds a ClusterConfig from the flags added above.
inline cluster::ClusterConfig cluster_config_from_cli(const CliParser& cli) {
  cluster::ClusterConfig config;
  config.shards = static_cast<std::uint32_t>(cli.get_u64("shards"));
  config.placement = cluster::parse_placement(cli.get_string("placement"));
  config.spill_threshold = cli.get_double("spill-threshold");
  config.vnodes = static_cast<std::uint32_t>(cli.get_u64("vnodes"));
  config.replica_sites =
      static_cast<std::uint32_t>(cli.get_u64("replica-sites"));
  config.replicate_hot =
      static_cast<std::uint32_t>(cli.get_u64("replicate-hot"));
  config.remote_pool_cap = cli.get_u64("remote-pool-cap");
  config.down_threshold =
      static_cast<std::uint32_t>(cli.get_u64("down-threshold"));
  config.probe_ms = cli.get_u64("probe-ms");
  return config;
}

inline void place_tier_mix(MassStorageSystem& mss, const CliParser& cli);

/// The storage substrate behind a cluster: a plain tiered MSS, or a
/// ReplicaManager when --replica-sites asks for replica-aware fetch.
/// Exactly one of the owned pointers is set; `backend` aliases it.
struct ClusterBackend {
  std::unique_ptr<MassStorageSystem> mss;
  std::unique_ptr<ReplicaManager> replicas;
  StorageBackend* backend = nullptr;
};

/// Builds the cluster's shared storage backend. Plain mode reuses the
/// fbcd stack (default tiers + --tier-mix placement). Replica mode puts
/// the origin on the remote WAN tier and adds `replica_sites` disk-pool
/// sites, pre-seeded deterministically from the job stream: the
/// --replicate-hot hottest files go to *every* site, the rest greedily by
/// popularity (ReplicaManager::replicate_by_popularity) -- so a shard's
/// misses for popular files hit a nearby replica instead of the WAN.
inline ClusterBackend make_cluster_backend(
    const cluster::ClusterConfig& cluster_config, const CliParser& cli,
    const Workload& workload) {
  ClusterBackend out;
  if (cluster_config.replica_sites == 0) {
    out.mss =
        std::make_unique<MassStorageSystem>(default_tiers(), workload.catalog);
    place_tier_mix(*out.mss, cli);
    out.backend = out.mss.get();
    return out;
  }
  const std::vector<StorageTier> tiers = default_tiers();
  std::vector<ReplicaSite> sites;
  sites.push_back({"origin", tiers.back(), 0});
  // Each replica site gets an equal slice of half the catalog: enough to
  // matter, small enough that placement still has to choose.
  const Bytes budget = std::max<Bytes>(
      1, workload.catalog.total_bytes() / (2 * cluster_config.replica_sites));
  for (std::uint32_t i = 0; i < cluster_config.replica_sites; ++i)
    sites.push_back(
        {"replica-" + std::to_string(i + 1), tiers.front(), budget});
  out.replicas =
      std::make_unique<ReplicaManager>(std::move(sites), workload.catalog);

  std::vector<std::uint64_t> access_counts(workload.catalog.count(), 0);
  for (const Request& job : workload.jobs)
    for (FileId id : job.files) ++access_counts[id];
  if (cluster_config.replicate_hot > 0) {
    std::vector<FileId> by_heat(workload.catalog.count());
    for (FileId id = 0; id < by_heat.size(); ++id) by_heat[id] = id;
    std::sort(by_heat.begin(), by_heat.end(), [&](FileId a, FileId b) {
      if (access_counts[a] != access_counts[b])
        return access_counts[a] > access_counts[b];
      return a < b;
    });
    const std::size_t hot =
        std::min<std::size_t>(cluster_config.replicate_hot, by_heat.size());
    for (std::size_t rank = 0; rank < hot; ++rank)
      for (std::size_t site = 1; site < out.replicas->site_count(); ++site)
        out.replicas->add_replica(by_heat[rank], site);
  }
  out.replicas->replicate_by_popularity(access_counts);
  out.backend = out.replicas.get();
  return out;
}

/// One in-process cluster: N BundleServers (shard_id = 0..N-1, each with
/// its own `--cache`-sized staging cache) behind a ClusterRouter.
struct ClusterStack {
  std::vector<std::unique_ptr<service::BundleServer>> servers;
  std::unique_ptr<cluster::ClusterRouter> router;
};

/// Builds the in-process cluster fbcgrid and fbcload --cluster serve.
/// `service_config.cache_bytes` is the per-shard capacity.
inline ClusterStack make_local_cluster(
    const cluster::ClusterConfig& cluster_config,
    service::ServiceConfig service_config, const StorageBackend& backend) {
  ClusterStack stack;
  std::vector<std::unique_ptr<cluster::Shard>> shards;
  for (std::uint32_t i = 0; i < cluster_config.shards; ++i) {
    service_config.shard_id = i;
    stack.servers.push_back(
        std::make_unique<service::BundleServer>(service_config, backend));
    shards.push_back(std::make_unique<cluster::LocalShard>(*stack.servers.back()));
  }
  stack.router = std::make_unique<cluster::ClusterRouter>(
      cluster_config, backend.catalog(), service_config.cache_bytes,
      std::move(shards));
  return stack;
}

/// Client-side budget for QueueFull backpressure retries.
///
/// The server's retry_after_ms hint is load-proportional, so honoring it
/// verbatim is right -- but a naive "sleep the hint, up to N attempts"
/// loop can sleep N * hint total, far past the request's own admission
/// timeout (the bug this class replaces: 1000 attempts x a deep-queue
/// hint is tens of minutes against a wedged server). The budget caps the
/// *cumulative* sleep at the per-request timeout: each retry sleeps
/// min(hint, budget left), and once the budget is spent the request is
/// reported failed instead of retried.
class RetryBudget {
 public:
  /// `timeout_ms` is the total sleep allowance across all retries of one
  /// request (normally ServiceConfig::timeout_ms).
  explicit RetryBudget(std::uint64_t timeout_ms) : remaining_ms_(timeout_ms) {}

  /// Milliseconds to sleep before the next attempt, honoring the server
  /// hint (clamped up to 1ms -- a zero hint must still yield), or
  /// std::nullopt when the budget is exhausted and the caller should give
  /// up.
  [[nodiscard]] std::optional<std::uint64_t> next_delay(
      std::uint32_t retry_after_ms) {
    if (remaining_ms_ == 0) return std::nullopt;
    const std::uint64_t hint = std::max<std::uint64_t>(1, retry_after_ms);
    const std::uint64_t delay = std::min(hint, remaining_ms_);
    remaining_ms_ -= delay;
    return delay;
  }

  /// Sleep budget still available.
  [[nodiscard]] std::uint64_t remaining_ms() const noexcept {
    return remaining_ms_;
  }

 private:
  std::uint64_t remaining_ms_;
};

/// Registers the scenario flags both serving tools share.
inline void add_scenario_options(CliParser& cli) {
  cli.add_option("scenario", "random|henp|climate|bitmap", "random");
  cli.add_option("wseed", "workload generation seed", "42");
  cli.add_option("jobs", "job-stream length", "2000");
  cli.add_option("tier-mix",
                 "fraction of files on tape,remote (rest on disk pool)",
                 "0.5,0.33");
}

/// Deterministically generates the workload named by --scenario, sized
/// against the service cache so bundles actually contend.
inline Workload build_scenario_workload(const CliParser& cli,
                                        Bytes cache_bytes) {
  const std::string scenario = cli.get_string("scenario");
  const std::uint64_t seed = cli.get_u64("wseed");
  const std::size_t jobs = cli.get_u64("jobs");
  if (scenario == "random") {
    WorkloadConfig config;
    config.seed = seed;
    config.cache_bytes = cache_bytes;
    config.num_jobs = jobs;
    config.popularity = Popularity::Zipf;
    return generate_workload(config);
  }
  if (scenario == "henp") {
    HenpConfig config;
    config.seed = seed;
    config.cache_bytes = cache_bytes;
    config.num_jobs = jobs;
    return generate_henp_workload(config);
  }
  if (scenario == "climate") {
    ClimateConfig config;
    config.seed = seed;
    config.cache_bytes = cache_bytes;
    config.num_jobs = jobs;
    return generate_climate_workload(config);
  }
  if (scenario == "bitmap") {
    BitmapConfig config;
    config.seed = seed;
    config.cache_bytes = cache_bytes;
    config.num_jobs = jobs;
    return generate_bitmap_workload(config);
  }
  throw std::invalid_argument("unknown --scenario: " + scenario);
}

/// Spreads catalog files over the default three MSS tiers per --tier-mix,
/// with the same deterministic placement fbcsrm uses.
inline void place_tier_mix(MassStorageSystem& mss, const CliParser& cli) {
  const std::string mix = cli.get_string("tier-mix");
  const auto comma = mix.find(',');
  if (comma == std::string::npos)
    throw std::invalid_argument("--tier-mix needs 'tape,remote' fractions");
  const double tape_frac = std::stod(mix.substr(0, comma));
  const double remote_frac = std::stod(mix.substr(comma + 1));
  Rng placement_rng(cli.get_u64("wseed") + 17);
  for (FileId id = 0; id < mss.catalog().count(); ++id) {
    const double roll = placement_rng.uniform_double();
    if (roll < tape_frac) {
      mss.place_file(id, 1);
    } else if (roll < tape_frac + remote_frac) {
      mss.place_file(id, 2);
    }
  }
}

}  // namespace fbc::tools
