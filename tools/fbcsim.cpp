// fbcsim: replay a trace file through the cache simulator under any
// registered policy and print the metrics.
//
//   fbcsim --trace=trace.txt --policy=optfb --cache=10GiB
//   fbcsim --trace=trace.txt --policy=all --cache=10GiB --csv
//   fbcsim --trace=trace.txt --policy=optfb --obs
//
// --policy=all compares every registered policy on the same trace;
// --obs appends per-decision selection-effort distributions (p50/p95/p99
// from the CacheMetrics histograms, not just totals).
#include <iostream>
#include <stdexcept>

#include "cache/simulator.hpp"
#include "core/registry.hpp"
#include "obs/histogram.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace fbc;

namespace {

void add_result_row(TextTable& table, const std::string& name,
                    const CacheMetrics& m, std::uint64_t decisions) {
  table.add_row({name, std::to_string(m.jobs()),
                 format_double(m.request_hit_ratio()),
                 format_double(m.byte_miss_ratio()),
                 format_bytes(static_cast<Bytes>(m.avg_bytes_moved_per_job())),
                 std::to_string(m.evictions()), std::to_string(decisions)});
}

void add_obs_rows(TextTable& table, const std::string& policy,
                  const CacheMetrics& m) {
  const struct {
    const char* metric;
    const obs::Histogram* hist;
  } rows[] = {
      {"candidates_scanned", &m.scanned_hist()},
      {"entries_rescored", &m.rescored_hist()},
      {"heap_ops", &m.heap_ops_hist()},
  };
  for (const auto& [metric, hist] : rows) {
    table.add_row({policy, metric, std::to_string(hist->count()),
                   format_double(hist->mean()),
                   format_double(hist->quantile(0.50)),
                   format_double(hist->quantile(0.95)),
                   format_double(hist->quantile(0.99)),
                   std::to_string(hist->max())});
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcsim", "Replay a file-bundle trace through the simulator");
  cli.add_option("trace", "input trace path (from fbcgen or your own logs)",
                 "trace.txt");
  cli.add_option("policy", "policy name (see registry) or 'all'", "optfb");
  cli.add_option("cache", "cache capacity", "10GiB");
  cli.add_option("queue", "admission queue length (1 = FCFS)", "1");
  cli.add_option("queue-mode", "batch|sliding (for queue > 1)", "batch");
  cli.add_option("aging", "queue aging factor for optfb* policies", "0");
  cli.add_option("history-cap",
                 "bounded-memory history entries for optfb* (0 = unbounded)",
                 "0");
  cli.add_option("window", "sliding-window length in jobs for optfb-window",
                 "1000");
  cli.add_option("warmup", "warm-up jobs excluded from metrics", "0");
  cli.add_option("seed", "seed for stochastic policies", "1");
  cli.add_option("engine",
                 "selection engine for optfb* policies: "
                 "reference|incremental (identical results; incremental "
                 "rescores only dirty history entries per miss)",
                 "reference");
  cli.add_flag("csv", "emit CSV");
  cli.add_flag("obs", "report per-decision selection-effort distributions");

  try {
    cli.parse(argc, argv);
    const Trace trace = load_trace(cli.get_string("trace"));
    const Bytes cache = parse_bytes(cli.get_string("cache"));

    SimulatorConfig config{.cache_bytes = cache,
                           .queue_length = cli.get_u64("queue"),
                           .warmup_jobs = cli.get_u64("warmup")};
    const std::string queue_mode = cli.get_string("queue-mode");
    if (queue_mode == "sliding") {
      config.queue_mode = QueueMode::Sliding;
    } else if (queue_mode != "batch") {
      throw std::invalid_argument("unknown --queue-mode: " + queue_mode);
    }

    const SelectEngine engine =
        parse_select_engine(cli.get_string("engine"));

    std::vector<std::string> policies;
    if (cli.get_string("policy") == "all") {
      policies = policy_names();
    } else {
      policies.push_back(cli.get_string("policy"));
    }

    TextTable table({"policy", "jobs", "request_hit", "byte_miss",
                     "moved_per_job", "evictions", "decisions"});
    TextTable obs_table({"policy", "metric", "count", "mean", "p50", "p95",
                         "p99", "max"});
    for (const std::string& name : policies) {
      PolicyContext context;
      context.catalog = &trace.catalog;
      context.jobs = trace.jobs;
      context.seed = cli.get_u64("seed");
      context.aging_factor = cli.get_double("aging");
      context.history_max_entries = cli.get_u64("history-cap");
      context.history_window_jobs = cli.get_u64("window");
      context.select_engine = engine;
      PolicyPtr policy = make_policy(name, context);
      const SimulationResult result =
          simulate(config, trace.catalog, *policy, trace.jobs);
      add_result_row(table, name, result.metrics, result.decisions);
      if (cli.get_flag("obs")) add_obs_rows(obs_table, name, result.metrics);
    }
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
      if (cli.get_flag("obs")) obs_table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      if (cli.get_flag("obs")) {
        std::cout << "\n";
        obs_table.print(std::cout);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fbcsim: " << e.what() << "\n";
    return 1;
  }
}
