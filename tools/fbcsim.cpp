// fbcsim: replay a trace file through the cache simulator under any
// registered policy and print the metrics.
//
//   fbcsim --trace=trace.txt --policy=optfb --cache=10GiB
//   fbcsim --trace=trace.txt --policy=all --cache=10GiB --csv
//   fbcsim --trace=trace.txt --policy=optfb --obs
//   fbcsim --trace=trace.txt --policy=adaptive --duel-sample=4 --duel-phase=32
//   fbcsim --trace=trace.txt --cache=10GiB --optgen
//
// --policy=all compares every registered policy on the same trace;
// --obs appends per-decision selection-effort distributions (p50/p95/p99
// from the CacheMetrics histograms, not just totals); --optgen appends
// the BundleOPTgen offline upper bounds (opt/demand/reuse occupancy
// levels plus the clairvoyant repeat bound) for the same capacity, the
// yardstick every policy row can be read against.
#include <iostream>
#include <stdexcept>

#include "cache/simulator.hpp"
#include "core/bounds.hpp"
#include "core/optgen.hpp"
#include "core/registry.hpp"
#include "obs/histogram.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace fbc;

namespace {

void add_result_row(TextTable& table, const std::string& name,
                    const CacheMetrics& m, std::uint64_t decisions) {
  table.add_row({name, std::to_string(m.jobs()),
                 format_double(m.request_hit_ratio()),
                 format_double(m.byte_miss_ratio()),
                 format_bytes(static_cast<Bytes>(m.avg_bytes_moved_per_job())),
                 std::to_string(m.evictions()), std::to_string(decisions)});
}

void add_obs_rows(TextTable& table, const std::string& policy,
                  const CacheMetrics& m) {
  const struct {
    const char* metric;
    const obs::Histogram* hist;
  } rows[] = {
      {"candidates_scanned", &m.scanned_hist()},
      {"entries_rescored", &m.rescored_hist()},
      {"heap_ops", &m.heap_ops_hist()},
  };
  for (const auto& [metric, hist] : rows) {
    table.add_row({policy, metric, std::to_string(hist->count()),
                   format_double(hist->mean()),
                   format_double(hist->quantile(0.50)),
                   format_double(hist->quantile(0.95)),
                   format_double(hist->quantile(0.99)),
                   std::to_string(hist->max())});
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcsim", "Replay a file-bundle trace through the simulator");
  cli.add_option("trace", "input trace path (from fbcgen or your own logs)",
                 "trace.txt");
  cli.add_option("policy", "policy name (see registry) or 'all'", "optfb");
  cli.add_option("cache", "cache capacity", "10GiB");
  cli.add_option("queue", "admission queue length (1 = FCFS)", "1");
  cli.add_option("queue-mode", "batch|sliding (for queue > 1)", "batch");
  cli.add_option("aging", "queue aging factor for optfb* policies", "0");
  cli.add_option("history-cap",
                 "bounded-memory history entries for optfb* (0 = unbounded)",
                 "0");
  cli.add_option("window", "sliding-window length in jobs for optfb-window",
                 "1000");
  cli.add_option("warmup", "warm-up jobs excluded from metrics", "0");
  cli.add_option("seed", "seed for stochastic policies", "1");
  cli.add_option("engine",
                 "selection engine for optfb* policies: "
                 "reference|incremental (identical results; incremental "
                 "rescores only dirty history entries per miss)",
                 "reference");
  cli.add_option("duel-sample",
                 "adaptive: one request in N joins the set-dueling sample",
                 "8");
  cli.add_option("duel-phase",
                 "adaptive: leader re-election interval, in arrivals", "64");
  cli.add_option("optgen-window",
                 "BundleOPTgen ring-buffer horizon, in jobs (--optgen)",
                 "4096");
  cli.add_flag("csv", "emit CSV");
  cli.add_flag("obs", "report per-decision selection-effort distributions");
  cli.add_flag("optgen",
               "append the BundleOPTgen offline upper bounds (FCFS replay "
               "at --cache capacity) and the clairvoyant repeat bound");

  try {
    cli.parse(argc, argv);
    const Trace trace = load_trace(cli.get_string("trace"));
    const Bytes cache = parse_bytes(cli.get_string("cache"));

    SimulatorConfig config{.cache_bytes = cache,
                           .queue_length = cli.get_u64("queue"),
                           .warmup_jobs = cli.get_u64("warmup")};
    const std::string queue_mode = cli.get_string("queue-mode");
    if (queue_mode == "sliding") {
      config.queue_mode = QueueMode::Sliding;
    } else if (queue_mode != "batch") {
      throw std::invalid_argument("unknown --queue-mode: " + queue_mode);
    }

    const SelectEngine engine =
        parse_select_engine(cli.get_string("engine"));

    std::vector<std::string> policies;
    if (cli.get_string("policy") == "all") {
      policies = policy_names();
    } else {
      policies.push_back(cli.get_string("policy"));
    }

    TextTable table({"policy", "jobs", "request_hit", "byte_miss",
                     "moved_per_job", "evictions", "decisions"});
    TextTable obs_table({"policy", "metric", "count", "mean", "p50", "p95",
                         "p99", "max"});
    for (const std::string& name : policies) {
      PolicyContext context;
      context.catalog = &trace.catalog;
      context.jobs = trace.jobs;
      context.seed = cli.get_u64("seed");
      context.aging_factor = cli.get_double("aging");
      context.history_max_entries = cli.get_u64("history-cap");
      context.history_window_jobs = cli.get_u64("window");
      context.select_engine = engine;
      context.duel_sample_period = cli.get_u64("duel-sample");
      context.duel_phase_jobs = cli.get_u64("duel-phase");
      PolicyPtr policy = make_policy(name, context);
      const SimulationResult result =
          simulate(config, trace.catalog, *policy, trace.jobs);
      add_result_row(table, name, result.metrics, result.decisions);
      if (cli.get_flag("obs")) add_obs_rows(obs_table, name, result.metrics);
    }
    // Offline upper bounds for the same capacity: the three OPTgen
    // occupancy levels (nested opt <= demand <= reuse) and the clairvoyant
    // repeat bound that dominates all of them.
    TextTable bound_table(
        {"bound", "hits", "hit_ratio", "hit_bytes", "density_value"});
    if (cli.get_flag("optgen")) {
      const OptgenConfig optgen_config{
          cache, static_cast<std::size_t>(cli.get_u64("optgen-window"))};
      const OptgenStats og =
          replay_optgen(trace.catalog, trace.jobs, optgen_config);
      const RepeatBound clair =
          clairvoyant_upper_bound(trace.catalog, trace.jobs, cache);
      const double jobs = static_cast<double>(og.jobs);
      const auto add_bound = [&](const std::string& name, std::uint64_t hits,
                                 Bytes hit_bytes, double density) {
        bound_table.add_row(
            {name, std::to_string(hits),
             format_double(jobs > 0 ? static_cast<double>(hits) / jobs : 0.0),
             format_bytes(hit_bytes), format_double(density)});
      };
      add_bound("optgen-opt", og.opt_hits, og.opt_hit_bytes,
                og.opt_density_value);
      add_bound("optgen-demand", og.demand_hits, og.demand_hit_bytes,
                og.demand_density_value);
      add_bound("optgen-reuse", og.reuse_hits, og.reuse_hit_bytes,
                og.reuse_density_value);
      add_bound("clairvoyant", clair.hits, clair.hit_bytes,
                clair.density_value);
    }
    if (cli.get_flag("csv")) {
      table.print_csv(std::cout);
      if (cli.get_flag("obs")) obs_table.print_csv(std::cout);
      if (cli.get_flag("optgen")) bound_table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      if (cli.get_flag("obs")) {
        std::cout << "\n";
        obs_table.print(std::cout);
      }
      if (cli.get_flag("optgen")) {
        std::cout << "\n";
        bound_table.print(std::cout);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fbcsim: " << e.what() << "\n";
    return 1;
  }
}
