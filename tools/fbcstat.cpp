// fbcstat: summarize the caching-relevant characteristics of a trace.
//
//   fbcstat --trace=trace.txt
//   fbcstat --trace=trace.txt --cache=10GiB   # adds footprint ratios and
//                                             # the OPTgen hit upper bounds
#include <iostream>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/optgen.hpp"
#include "util/cli.hpp"
#include "workload/trace_stats.hpp"

using namespace fbc;

int main(int argc, char** argv) {
  CliParser cli("fbcstat", "Summarize a file-bundle trace");
  cli.add_option("trace", "input trace path", "trace.txt");
  cli.add_option("cache", "optional cache size for footprint ratios", "");

  try {
    cli.parse(argc, argv);
    const Trace trace = load_trace(cli.get_string("trace"));
    const TraceStats stats = compute_trace_stats(trace);
    print_trace_stats(std::cout, stats);

    const std::string cache_arg = cli.get_string("cache");
    if (!cache_arg.empty()) {
      const Bytes cache = parse_bytes(cache_arg);
      const double footprint_ratio =
          static_cast<double>(stats.touched_bytes) /
          static_cast<double>(cache);
      const double requests_per_cache =
          stats.bundle_bytes.mean() > 0.0
              ? static_cast<double>(cache) / stats.bundle_bytes.mean()
              : 0.0;
      std::cout << "\nwith a " << format_bytes(cache) << " cache:\n"
                << "  touched working set = " << format_double(footprint_ratio)
                << "x the cache\n"
                << "  cache holds ~" << format_double(requests_per_cache)
                << " average bundles (the paper's cache-size unit)\n";

      // How much of the trace any online policy could possibly hit at
      // this capacity: the BundleOPTgen occupancy bounds (opt <= demand
      // <= reuse) and the clairvoyant repeat ceiling above them all.
      const OptgenStats og =
          replay_optgen(trace.catalog, trace.jobs, OptgenConfig{cache, 4096});
      const RepeatBound clair =
          clairvoyant_upper_bound(trace.catalog, trace.jobs, cache);
      const double jobs =
          og.jobs > 0 ? static_cast<double>(og.jobs) : 1.0;
      const auto ratio = [jobs](std::uint64_t hits) {
        return format_double(static_cast<double>(hits) / jobs);
      };
      std::cout << "  OPTgen hit-ratio upper bounds:\n"
                << "    opt (committed occupancy) = " << ratio(og.opt_hits)
                << "\n"
                << "    demand (gap feasibility)  = " << ratio(og.demand_hits)
                << "\n"
                << "    reuse (any prior use)     = " << ratio(og.reuse_hits)
                << "\n"
                << "    clairvoyant repeat bound  = " << ratio(clair.hits)
                << "\n";
      if (og.truncated_intervals > 0) {
        std::cout << "    (" << og.truncated_intervals
                  << " intervals clipped by the 4096-job window)\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fbcstat: " << e.what() << "\n";
    return 1;
  }
}
