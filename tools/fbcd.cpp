// fbcd: the bundle-serving daemon.
//
// Generates a deterministic scenario workload, builds the MSS + cache +
// policy stack, and serves bundle leases over the fbcd wire protocol on
// loopback TCP:
//
//   fbcd --scenario=henp --cache=2GiB --policy=optfb --port=7401
//   fbcd --port=0            # ephemeral port, printed on stdout
//
// Drive it with fbcctl (single-shot) or fbcload (load generator). The
// daemon runs until SIGINT/SIGTERM.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "serving_common.hpp"
#include "service/daemon.hpp"
#include "util/log.hpp"

using namespace fbc;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fbcd", "Serve bundle leases over the fbcd wire protocol");
  tools::add_service_options(cli);
  tools::add_scenario_options(cli);
  cli.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "7401");
  cli.add_option("workers", "connection handler threads", "8");

  try {
    cli.parse(argc, argv);
    const service::ServiceConfig config = tools::service_config_from_cli(cli);
    const Workload workload =
        tools::build_scenario_workload(cli, config.cache_bytes);
    MassStorageSystem mss(default_tiers(), workload.catalog);
    tools::place_tier_mix(mss, cli);

    service::BundleServer server(config, mss);
    service::BundleDaemon daemon(
        server, static_cast<std::uint16_t>(cli.get_u64("port")),
        cli.get_u64("workers"));
    // Parseable startup line; fbcload's --inline-free remote mode and the
    // CI smoke script scrape the port from it.
    std::cout << "fbcd: listening on 127.0.0.1:" << daemon.port()
              << " scenario=" << cli.get_string("scenario")
              << " policy=" << config.policy
              << " cache=" << format_bytes(config.cache_bytes) << std::endl;

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    daemon.stop();
    const service::ServiceStats stats = server.stats();
    std::cout << "fbcd: served " << stats.requests << " requests ("
              << stats.request_hits << " bundle hits), "
              << daemon.connections_accepted() << " connections, "
              << daemon.leases_reclaimed() << " leases reclaimed\n";
    const std::vector<std::string> violations = server.audit();
    for (const std::string& v : violations)
      std::cerr << "fbcd: AUDIT VIOLATION: " << v << "\n";
    return violations.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fbcd: error: " << e.what() << "\n";
    return 1;
  }
}
