#include "obs/span.hpp"

#include <algorithm>

namespace fbc::obs {

SpanRecorder::SpanRecorder(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void SpanRecorder::record(const ServingSpan& span) {
  std::lock_guard lock(ring_mu_);
  ++recorded_;
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<ServingSpan> SpanRecorder::snapshot() const {
  std::lock_guard lock(ring_mu_);
  std::vector<ServingSpan> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest element.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::uint64_t SpanRecorder::recorded() const noexcept {
  std::lock_guard lock(ring_mu_);
  return recorded_;
}

std::uint64_t SpanRecorder::dropped() const noexcept {
  std::lock_guard lock(ring_mu_);
  const std::uint64_t held = ring_.size();
  return recorded_ - std::min(recorded_, held);
}

}  // namespace fbc::obs
