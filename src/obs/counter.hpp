// Named monotonic counters with deterministic (sorted) export order.
//
// A CounterRegistry is the cheap complement to obs::Histogram: where a
// histogram answers "how is this quantity distributed", a counter answers
// "how many times did this event happen". Counters merge exactly (sums
// add) and snapshot in lexicographic name order so two runs over the same
// trace produce byte-identical exports (fbclint L005: no
// unordered-container iteration anywhere in output paths).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fbc::obs {

/// One exported counter: name plus monotonic value.
using CounterSample = std::pair<std::string, std::uint64_t>;

/// Registry of named monotonic counters. Not thread-safe; the owner
/// declares the guarding mutex with an fbc:guards annotation on its own
/// member (see BundleServer::obs_mu_), which fbclint L007 enforces.
class CounterRegistry {
 public:
  /// Adds `delta` to the counter named `name`, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Pre-resolved handle for hot paths: the value cell of `name`,
  /// created at zero first. The pointer stays valid for the registry's
  /// lifetime (std::map nodes are stable); callers still synchronize
  /// writes through it exactly like add() -- typically by resolving once
  /// at construction and bumping under the owner's mutex.
  [[nodiscard]] std::uint64_t* slot(std::string_view name);

  /// Current value of `name`; 0 if never touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;

  /// Number of distinct counters.
  [[nodiscard]] std::size_t size() const noexcept { return counters_.size(); }

  /// Adds every counter of `other` into this registry. Exact: equivalent
  /// to replaying both add() streams into one registry, in any order.
  void merge(const CounterRegistry& other);

  /// All counters in lexicographic name order (deterministic export).
  [[nodiscard]] std::vector<CounterSample> snapshot() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace fbc::obs
