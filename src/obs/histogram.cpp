#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace fbc::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  // bit_width(0) == 0, bit_width(v) == 1 + floor(log2(v)): bucket i
  // covers [2^(i-1), 2^i) with bucket 0 holding exactly 0.
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Histogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::bucket_upper(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= kBucketCount - 1) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << i) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const noexcept {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::size_t Histogram::bucket_of_rank(std::uint64_t k) const noexcept {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (k < cumulative) return i;
  }
  return kBucketCount - 1;  // unreachable for k < count_
}

QuantileEstimate Histogram::quantile_bounds(double q) const noexcept {
  QuantileEstimate out;
  if (count_ == 0) {
    out.estimate = std::numeric_limits<double>::quiet_NaN();
    return out;
  }
  // The exact linear-interpolation quantile lies between the k_lo-th and
  // k_hi-th smallest observations (util/stats::quantile_rank convention),
  // so the buckets holding those two ranks bracket it.
  const double rank = quantile_rank(count_, q);
  const auto k_lo = static_cast<std::uint64_t>(rank);
  const std::uint64_t k_hi =
      rank > static_cast<double>(k_lo) ? std::min(k_lo + 1, count_ - 1) : k_lo;
  const std::size_t b_lo = bucket_of_rank(k_lo);
  const std::size_t b_hi = k_hi == k_lo ? b_lo : bucket_of_rank(k_hi);
  out.lower = std::max(bucket_lower(b_lo), min());
  out.upper = std::min(bucket_upper(b_hi), max());

  // Point estimate: place each bracketing rank at its proportional
  // position inside its (min/max-clamped) bucket, then interpolate.
  const auto estimate_at = [this](std::uint64_t k, std::size_t b) {
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < b; ++i) before += buckets_[i];
    const double lo = static_cast<double>(std::max(bucket_lower(b), min()));
    const double hi = static_cast<double>(std::min(bucket_upper(b), max()));
    const double local = (static_cast<double>(k - before) + 0.5) /
                         static_cast<double>(buckets_[b]);
    return lo + local * (hi - lo);
  };
  const double at_lo = estimate_at(k_lo, b_lo);
  const double at_hi = k_hi == k_lo ? at_lo : estimate_at(k_hi, b_hi);
  const double frac = rank - static_cast<double>(k_lo);
  out.estimate = std::clamp(at_lo + frac * (at_hi - at_lo),
                            static_cast<double>(out.lower),
                            static_cast<double>(out.upper));
  return out;
}

HistogramState Histogram::state() const noexcept {
  HistogramState s;
  s.buckets = buckets_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  return s;
}

std::optional<Histogram> Histogram::from_state(
    const HistogramState& state) noexcept {
  std::uint64_t count = 0;
  std::size_t lowest = kHistogramBuckets;
  std::size_t highest = 0;
  // Achievable range of `sum` given the bucket occupancy; sum_floor
  // saturating past u64 means no u64 sum can be valid.
  std::uint64_t sum_floor = 0;
  std::uint64_t sum_ceil = 0;
  bool floor_overflow = false;
  bool ceil_overflow = false;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t n = state.buckets[i];
    if (n == 0) continue;
    count += n;
    if (lowest == kHistogramBuckets) lowest = i;
    highest = i;
    std::uint64_t term = 0;
    if (__builtin_mul_overflow(n, Histogram::bucket_lower(i), &term) ||
        __builtin_add_overflow(sum_floor, term, &sum_floor))
      floor_overflow = true;
    if (__builtin_mul_overflow(n, Histogram::bucket_upper(i), &term) ||
        __builtin_add_overflow(sum_ceil, term, &sum_ceil))
      ceil_overflow = true;
  }
  if (count == 0) {
    if (state.sum != 0) return std::nullopt;
    return Histogram{};
  }
  if (state.min > state.max) return std::nullopt;
  if (bucket_index(state.min) != lowest) return std::nullopt;
  if (bucket_index(state.max) != highest) return std::nullopt;
  if (floor_overflow || state.sum < sum_floor) return std::nullopt;
  if (!ceil_overflow && state.sum > sum_ceil) return std::nullopt;

  Histogram h;
  h.buckets_ = state.buckets;
  h.count_ = count;
  h.sum_ = state.sum;
  h.min_ = state.min;
  h.max_ = state.max;
  return h;
}

}  // namespace fbc::obs
