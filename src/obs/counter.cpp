#include "obs/counter.hpp"

namespace fbc::obs {

void CounterRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

std::uint64_t* CounterRegistry::slot(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), 0).first;
  return &it->second;
}

std::uint64_t CounterRegistry::value(std::string_view name) const noexcept {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
}

std::vector<CounterSample> CounterRegistry::snapshot() const {
  return {counters_.begin(), counters_.end()};
}

}  // namespace fbc::obs
