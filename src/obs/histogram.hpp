// Fixed-boundary log2-bucket histogram: the one distribution container
// every latency / work-count metric in this codebase records into.
//
// Design constraints (docs/OBSERVABILITY.md):
//
//   O(1) record    bucket index is std::bit_width of the value -- no
//                  search, no allocation, no floating point;
//   exact merge    bucket counts, count, sum, min and max all add or
//                  min/max exactly, so merging per-thread or per-shard
//                  histograms is associative and commutative and loses
//                  nothing (unlike sampled reservoirs);
//   fixed bounds   bucket boundaries are powers of two, identical in
//                  every process forever, so histograms serialized by an
//                  old server merge cleanly into a new reader.
//
// Bucket i covers [2^(i-1), 2^i); bucket 0 holds exactly the value 0 and
// the last bucket is closed at UINT64_MAX. Quantiles from buckets are
// *estimates*: quantile_bounds() returns hard [lower, upper] bounds that
// provably bracket the exact sample quantile (util/stats::quantile over
// the raw observations) plus an interpolated point estimate. The rank
// convention funnels through util/stats::quantile_rank -- the single
// audited percentile implementation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace fbc::obs {

/// Bucket 0 plus one bucket per bit of a u64 value.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Hard bounds plus point estimate for one histogram quantile.
struct QuantileEstimate {
  /// The exact sample quantile is >= lower ...
  std::uint64_t lower = 0;
  /// ... and <= upper (both inclusive, clamped by observed min/max).
  std::uint64_t upper = 0;
  /// Linear interpolation inside the bracketing buckets; NaN when empty.
  double estimate = 0.0;
};

/// Raw state of a Histogram, for serialization (see Histogram::state /
/// Histogram::from_state).
struct HistogramState {
  std::array<std::uint64_t, kHistogramBuckets> buckets = {};
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningless when every bucket is zero
  std::uint64_t max = 0;  ///< meaningless when every bucket is zero
};

/// Log2-bucket histogram over unsigned 64-bit values (see file comment).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = kHistogramBuckets;

  /// Bucket index of `value`: 0 for 0, otherwise 1 + floor(log2(value)).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;

  /// Smallest value that lands in bucket `i` (0 for bucket 0).
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept;

  /// Largest value that lands in bucket `i` (inclusive).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept;

  /// Records one observation. O(1), never fails.
  void record(std::uint64_t value) noexcept;

  /// Adds `other`'s observations into this histogram. Exact: the result
  /// is identical to having recorded both observation streams into one
  /// histogram, in any order (associative and commutative).
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest observation; 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  /// Largest observation; 0 when empty.
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Exact mean (sum / count); 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// Count recorded into bucket `i`.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i];
  }

  /// Bounds + point estimate of the q-quantile (rank convention:
  /// util/stats::quantile_rank). For the same observations,
  /// util/stats::quantile is guaranteed to lie in [lower, upper].
  /// Empty histogram: {0, 0, NaN}.
  [[nodiscard]] QuantileEstimate quantile_bounds(double q) const noexcept;

  /// Point estimate of the q-quantile (quantile_bounds().estimate).
  [[nodiscard]] double quantile(double q) const noexcept {
    return quantile_bounds(q).estimate;
  }

  /// Serializable raw state.
  [[nodiscard]] HistogramState state() const noexcept;

  /// Rebuilds a histogram from raw state, validating internal
  /// consistency: min/max must land in the lowest/highest occupied
  /// buckets, sum must be achievable from the bucket occupancy, and an
  /// empty histogram must carry sum == 0. Returns nullopt for
  /// inconsistent state (the wire decoder turns that into a
  /// ProtocolError).
  [[nodiscard]] static std::optional<Histogram> from_state(
      const HistogramState& state) noexcept;

  friend bool operator==(const Histogram& a, const Histogram& b) noexcept {
    return a.count_ == b.count_ && a.sum_ == b.sum_ &&
           a.buckets_ == b.buckets_ &&
           (a.count_ == 0 || (a.min_ == b.min_ && a.max_ == b.max_));
  }

 private:
  /// Index of the bucket holding the k-th (0-based) smallest observation.
  [[nodiscard]] std::size_t bucket_of_rank(std::uint64_t k) const noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_ = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fbc::obs
