// Per-request serving spans: the narrow-waist record of what one acquire
// cost, stage by stage (enqueue -> admit -> reserve -> fetch -> grant).
//
// Histograms aggregate; spans explain. When a histogram shows a p99
// spike, the SpanRecorder's bounded ring holds the most recent N raw
// spans so a debugger can see *which* requests were slow and in which
// stage. The ring is deliberately lossy-oldest-first and fixed-capacity:
// recording is O(1), never allocates after construction, and can never
// grow without bound under load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fbc::obs {

/// One completed (or rejected) acquire, with per-stage durations in
/// microseconds. Stages that never ran (e.g. fetch on a full-hit, or
/// everything after a QueueFull rejection) are zero.
struct ServingSpan {
  std::uint64_t request_id = 0;    ///< server-assigned, monotonic
  std::uint32_t files = 0;         ///< bundle size in files
  std::uint64_t bundle_bytes = 0;  ///< total bytes of the bundle
  std::uint64_t missing_bytes = 0; ///< bytes fetched for this admission
  std::uint32_t queue_depth = 0;   ///< waiters ahead at enqueue time
  std::uint64_t queue_us = 0;      ///< enqueue -> admission decision
  std::uint64_t reserve_us = 0;    ///< admission -> space reserved
  std::uint64_t fetch_us = 0;      ///< reserve -> bundle resident
  std::uint64_t coalesce_us = 0;   ///< blocked on an overlapping transfer
  std::uint64_t total_us = 0;      ///< enqueue -> grant (or rejection)
  std::uint8_t status = 0;         ///< AcquireStatus of the outcome
};

/// Fixed-capacity ring of the most recent spans. Thread-safe; all
/// operations take one internal mutex (recording is a few stores, so the
/// critical section is tiny even under TSan).
class SpanRecorder {
 public:
  /// `capacity` == 0 disables recording entirely (recorded() still counts).
  explicit SpanRecorder(std::size_t capacity);

  /// Appends one span, evicting the oldest when full. O(1).
  void record(const ServingSpan& span);

  /// Spans currently held, oldest first.
  [[nodiscard]] std::vector<ServingSpan> snapshot() const;

  /// Total spans ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  /// Spans lost to eviction (recorded() minus what snapshot() can return).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex ring_mu_;
  std::vector<ServingSpan> ring_;  ///< guarded by ring_mu_
  std::size_t next_ = 0;           ///< guarded by ring_mu_; write cursor
  std::uint64_t recorded_ = 0;     ///< guarded by ring_mu_
};

}  // namespace fbc::obs
