#include "policies/adaptive.hpp"

#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace fbc {

AdaptivePolicy::AdaptivePolicy(const FileCatalog& catalog,
                               AdaptiveConfig config,
                               std::vector<AdaptiveContender> contenders,
                               OracleFactory oracle_factory)
    : catalog_(&catalog),
      config_(config),
      contenders_(std::move(contenders)),
      oracle_factory_(std::move(oracle_factory)) {
  if (contenders_.empty()) {
    throw std::invalid_argument("AdaptivePolicy: contenders must be non-empty");
  }
  if (config_.sample_period == 0) config_.sample_period = 1;
  if (config_.phase_jobs == 0) config_.phase_jobs = 1;
  for (const AdaptiveContender& c : contenders_) {
    if (!c.live || !c.shadow) {
      throw std::invalid_argument(
          "AdaptivePolicy: every contender needs live + shadow instances");
    }
  }
  scores_.assign(contenders_.size(), 0.0);
}

std::string AdaptivePolicy::name() const { return "adaptive"; }

bool AdaptivePolicy::sampled(const Request& request) const {
  if (config_.sample_period <= 1) return true;
  // Hash sampling keyed by request identity: the same bundle always lands
  // in (or out of) the sample regardless of arrival position, and the mix
  // through SplitMix64 decorrelates the sample set from the hash's use as
  // a history key.
  SplitMix64 mix(static_cast<std::uint64_t>(RequestHash{}(request)) ^
                 config_.seed);
  return mix() % config_.sample_period == 0;
}

void AdaptivePolicy::ensure_duel_state(const DiskCache& cache) {
  if (!shadows_.empty()) return;
  shadows_.reserve(contenders_.size());
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    shadows_.push_back(
        std::make_unique<DiskCache>(cache.capacity(), *catalog_));
  }
  if (oracle_factory_) oracle_ = oracle_factory_(cache.capacity());
}

void AdaptivePolicy::elect() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores_.size(); ++i) {
    if (scores_[i] > scores_[best]) best = i;
  }
  leader_ = best;
  winner_history_.push_back(best);
  for (double& s : scores_) s = 0.0;
}

void AdaptivePolicy::shadow_step(std::size_t i, const Request& request,
                                 double weight) {
  DiskCache& shadow = *shadows_[i];
  ReplacementPolicy& policy = *contenders_[i].shadow;
  policy.on_job_arrival(request, shadow);
  const Bytes bundle = catalog_->request_bytes(request);
  if (bundle > shadow.capacity()) return;  // unserviceable: cache unchanged
  if (shadow.supports(request)) {
    policy.on_request_hit(request, shadow);
    scores_[i] += weight;
    return;
  }
  // Mini-simulator admission, mirroring Simulator::serve_one: pin the
  // already-resident bundle files, evict the contender's victims, load the
  // missing files.
  const std::vector<FileId> missing = shadow.missing_files(request);
  std::vector<FileId> pinned;
  pinned.reserve(request.files.size());
  for (FileId f : request.files) {
    if (shadow.contains(f)) {
      shadow.pin(f);
      pinned.push_back(f);
    }
  }
  const Bytes needed = shadow.missing_bytes(request);
  if (needed > shadow.free_bytes()) {
    const std::vector<FileId> victims =
        policy.select_victims(request, needed - shadow.free_bytes(), shadow);
    for (FileId v : victims) {
      if (shadow.evict(v)) policy.on_file_evicted(v);
    }
  }
  for (FileId f : missing) shadow.insert(f);
  policy.on_files_loaded(request, missing, shadow);
  for (FileId f : pinned) shadow.unpin(f);
}

void AdaptivePolicy::duel(const Request& request, const DiskCache& cache) {
  ensure_duel_state(cache);
  if (arrivals_ > 0 && arrivals_ % config_.phase_jobs == 0) elect();
  ++arrivals_;
  if (!sampled(request)) return;
  const bool oracle_hit = oracle_ ? oracle_(request) : false;
  const double weight = (oracle_hit ? 2.0 : 1.0) *
                        static_cast<double>(catalog_->request_bytes(request));
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    shadow_step(i, request, weight);
  }
}

void AdaptivePolicy::on_job_arrival(const Request& request,
                                    const DiskCache& cache) {
  duel(request, cache);
  for (AdaptiveContender& c : contenders_) c.live->on_job_arrival(request, cache);
}

void AdaptivePolicy::on_request_hit(const Request& request,
                                    const DiskCache& cache) {
  for (AdaptiveContender& c : contenders_) c.live->on_request_hit(request, cache);
}

std::vector<FileId> AdaptivePolicy::select_victims(const Request& request,
                                                   Bytes bytes_needed,
                                                   const DiskCache& cache) {
  ReplacementPolicy& lead = *contenders_[leader_].live;
  const SelectionCost* before = lead.selection_cost();
  const SelectionCost snapshot = before != nullptr ? *before : SelectionCost{};
  std::vector<FileId> victims = lead.select_victims(request, bytes_needed, cache);
  ++cost_.decisions;
  const SelectionCost* after = lead.selection_cost();
  if (before != nullptr && after != nullptr) {
    cost_.candidates_scanned +=
        after->candidates_scanned - snapshot.candidates_scanned;
    cost_.entries_rescored += after->entries_rescored - snapshot.entries_rescored;
    cost_.heap_ops += after->heap_ops - snapshot.heap_ops;
  }
  return victims;
}

void AdaptivePolicy::on_files_loaded(const Request& request,
                                     std::span<const FileId> loaded,
                                     const DiskCache& cache) {
  for (AdaptiveContender& c : contenders_) {
    c.live->on_files_loaded(request, loaded, cache);
  }
}

void AdaptivePolicy::on_file_evicted(FileId id) {
  for (AdaptiveContender& c : contenders_) c.live->on_file_evicted(id);
}

void AdaptivePolicy::on_prefetched(std::span<const FileId> loaded,
                                   const DiskCache& cache) {
  for (AdaptiveContender& c : contenders_) c.live->on_prefetched(loaded, cache);
}

std::vector<FileId> AdaptivePolicy::prefetch(const Request& request,
                                             const DiskCache& cache) {
  return contenders_[leader_].live->prefetch(request, cache);
}

std::size_t AdaptivePolicy::choose_next(std::span<const Request> queue,
                                        const DiskCache& cache) {
  return contenders_[leader_].live->choose_next(queue, cache);
}

std::size_t AdaptivePolicy::choose_next(std::span<const Request> queue,
                                        std::span<const double> ages,
                                        const DiskCache& cache) {
  return contenders_[leader_].live->choose_next(queue, ages, cache);
}

const SelectionCost* AdaptivePolicy::selection_cost() const { return &cost_; }

void AdaptivePolicy::reset() {
  for (AdaptiveContender& c : contenders_) {
    c.live->reset();
    c.shadow->reset();
  }
  shadows_.clear();
  oracle_ = nullptr;
  scores_.assign(contenders_.size(), 0.0);
  winner_history_.clear();
  leader_ = 0;
  arrivals_ = 0;
  cost_ = SelectionCost{};
}

}  // namespace fbc
