#include "policies/lru_k.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbc {

LruKPolicy::LruKPolicy(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("LruKPolicy: k must be >= 1");
}

std::string LruKPolicy::name() const {
  return "lru-" + std::to_string(k_);
}

std::uint64_t LruKPolicy::backward_k_distance(FileId id) const noexcept {
  if (id >= history_.size() || history_[id].size() < k_) return 0;
  return history_[id].front();  // oldest of the retained K references
}

std::uint64_t LruKPolicy::key_time(FileId id) const noexcept {
  return backward_k_distance(id);
}

void LruKPolicy::reference_all(const Request& request) {
  ++clock_;
  for (FileId id : request.files) {
    if (history_.size() <= id) {
      history_.resize(id + 1);
      resident_.resize(id + 1, false);
    }
    if (resident_[id]) {
      order_.erase(Key{key_time(id),
                       history_[id].empty() ? 0 : history_[id].back(), id});
    }
    auto& refs = history_[id];
    refs.push_back(clock_);
    if (refs.size() > k_) refs.erase(refs.begin());
    if (resident_[id]) {
      order_.insert(Key{key_time(id), refs.back(), id});
    }
  }
}

void LruKPolicy::on_request_hit(const Request& request, const DiskCache&) {
  reference_all(request);
}

std::vector<FileId> LruKPolicy::select_victims(const Request& request,
                                               Bytes bytes_needed,
                                               const DiskCache& cache) {
  std::vector<FileId> victims;
  Bytes freed = 0;
  auto it = order_.begin();
  while (freed < bytes_needed) {
    if (it == order_.end())
      throw std::logic_error(
          "lru-k: candidates exhausted before freeing enough");
    const FileId id = it->id;
    if (request.contains(id) || cache.pinned(id)) {
      ++it;
      continue;
    }
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
    it = order_.erase(it);
    resident_[id] = false;
  }
  return victims;
}

void LruKPolicy::on_files_loaded(const Request& request,
                                 std::span<const FileId> loaded,
                                 const DiskCache&) {
  reference_all(request);
  for (FileId id : loaded) {
    if (!resident_[id]) {
      resident_[id] = true;
      order_.insert(
          Key{key_time(id), history_[id].empty() ? 0 : history_[id].back(),
              id});
    }
  }
}

void LruKPolicy::on_file_evicted(FileId id) {
  if (id < resident_.size() && resident_[id]) {
    order_.erase(Key{key_time(id),
                     history_[id].empty() ? 0 : history_[id].back(), id});
    resident_[id] = false;
  }
}

void LruKPolicy::reset() {
  clock_ = 0;
  history_.clear();
  resident_.clear();
  order_.clear();
}

}  // namespace fbc
