#include "policies/fifo.hpp"

#include <stdexcept>

namespace fbc {

std::vector<FileId> FifoPolicy::select_victims(const Request& request,
                                               Bytes bytes_needed,
                                               const DiskCache& cache) {
  std::vector<FileId> victims;
  std::vector<FileId> deferred;  // requested or pinned: re-queued in order
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (queue_.empty())
      throw std::logic_error("fifo: queue exhausted before freeing enough");
    const FileId id = queue_.front();
    queue_.pop_front();
    if (id >= queued_.size() || !queued_[id]) continue;  // stale
    if (!cache.contains(id)) {
      queued_[id] = false;
      continue;
    }
    if (request.contains(id) || cache.pinned(id)) {
      deferred.push_back(id);
      continue;
    }
    queued_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  // Preserve the deferred files' seniority: they go back to the front in
  // their original relative order.
  for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
    queue_.push_front(*it);
  }
  return victims;
}

void FifoPolicy::on_files_loaded(const Request&,
                                 std::span<const FileId> loaded,
                                 const DiskCache&) {
  for (FileId id : loaded) {
    if (queued_.size() <= id) queued_.resize(id + 1, false);
    if (!queued_[id]) {
      queued_[id] = true;
      queue_.push_back(id);
    }
  }
}

void FifoPolicy::on_file_evicted(FileId id) {
  if (id < queued_.size()) queued_[id] = false;
}

void FifoPolicy::reset() {
  queue_.clear();
  queued_.clear();
}

}  // namespace fbc
