#include "policies/landlord.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fbc {

LandlordPolicy::LandlordPolicy(CreditModel model) : model_(model) {}

std::string LandlordPolicy::name() const {
  return model_ == CreditModel::Uniform ? "landlord" : "landlord-size";
}

void LandlordPolicy::refresh(FileId id, const DiskCache& cache) {
  if (stored_.size() <= id) {
    stored_.resize(id + 1, 0.0);
    stamp_.resize(id + 1, 0);
    tracked_.resize(id + 1, false);
  }
  double credit_value = 1.0;
  if (model_ == CreditModel::ProportionalToSize) {
    // Normalize by the largest catalog file so credits stay in (0, 1].
    const auto sizes = cache.catalog().sizes();
    const Bytes max_size =
        sizes.empty() ? 1 : *std::max_element(sizes.begin(), sizes.end());
    credit_value = static_cast<double>(cache.catalog().size_of(id)) /
                   static_cast<double>(std::max<Bytes>(max_size, 1));
  }
  stored_[id] = inflation_ + credit_value;
  stamp_[id] = next_stamp_++;
  tracked_[id] = true;
  heap_.push(HeapEntry{stored_[id], id, stamp_[id]});
}

void LandlordPolicy::on_request_hit(const Request& request,
                                    const DiskCache& cache) {
  // Algorithm 3 step 4: every file of the serviced request gets a fresh
  // credit of 1 (rent paid).
  for (FileId id : request.files) refresh(id, cache);
}

std::vector<FileId> LandlordPolicy::select_victims(const Request& request,
                                                   Bytes bytes_needed,
                                                   const DiskCache& cache) {
  std::vector<FileId> victims;
  // Entries belonging to files pinned by other in-flight jobs (multi-slot
  // SRM, cluster nodes) are exempt this round but must stay tracked.
  std::vector<HeapEntry> deferred;
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (heap_.empty())
      throw std::logic_error(
          "landlord: heap exhausted before freeing enough space");
    const HeapEntry top = heap_.top();
    heap_.pop();
    const FileId id = top.id;
    // Discard stale entries (refreshed or evicted since being pushed).
    if (id >= stamp_.size() || stamp_[id] != top.stamp || !tracked_[id])
      continue;
    // Files of the incoming request are exempt from rent collection here;
    // their credit is re-set to 1 after the admission anyway (step 4), so
    // the popped entry can be dropped -- refresh() will push a fresh one.
    if (request.contains(id)) {
      tracked_[id] = false;  // invalidate; refresh() re-tracks it
      continue;
    }
    if (!cache.contains(id)) {
      tracked_[id] = false;
      continue;
    }
    if (cache.pinned(id)) {
      deferred.push_back(top);
      continue;
    }
    // Uniform decrement by the minimum credit == raising the inflation
    // level to this entry's stored credit.
    inflation_ = std::max(inflation_, top.stored_credit);
    tracked_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  for (const HeapEntry& entry : deferred) heap_.push(entry);
  return victims;
}

void LandlordPolicy::on_files_loaded(const Request& request,
                                     std::span<const FileId> loaded,
                                     const DiskCache& cache) {
  (void)loaded;
  // Step 4: bring the files in and set credit[g] = 1 for all g in F(r_new)
  // (both the newly loaded and the already-resident ones).
  for (FileId id : request.files) refresh(id, cache);
}

void LandlordPolicy::on_file_evicted(FileId id) {
  if (id < tracked_.size()) tracked_[id] = false;
}

void LandlordPolicy::reset() {
  inflation_ = 0.0;
  stored_.clear();
  stamp_.clear();
  tracked_.clear();
  next_stamp_ = 1;
  heap_ = {};
}

double LandlordPolicy::credit(FileId id) const noexcept {
  if (id >= stored_.size() || !tracked_[id]) return 0.0;
  return std::max(0.0, stored_[id] - inflation_);
}

}  // namespace fbc
