#include "policies/lookahead.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbc {

LookaheadPolicy::LookaheadPolicy(std::span<const Request> jobs) {
  for (std::uint64_t j = 0; j < jobs.size(); ++j) {
    for (FileId id : jobs[j].files) {
      if (uses_.size() <= id) uses_.resize(id + 1);
      uses_[id].push_back(j);
    }
  }
  cursor_.assign(uses_.size(), 0);
}

void LookaheadPolicy::on_job_arrival(const Request&, const DiskCache&) {
  ++current_job_;
}

std::uint64_t LookaheadPolicy::next_use(FileId id) const noexcept {
  if (id >= uses_.size()) return kNever;
  const auto& list = uses_[id];
  std::size_t& pos = cursor_[id];
  // current_job_ is 1-based; the job being served has index current_job_-1,
  // so the next use is the first entry >= current_job_.
  while (pos < list.size() && list[pos] < current_job_) ++pos;
  return pos < list.size() ? list[pos] : kNever;
}

std::vector<FileId> LookaheadPolicy::select_victims(const Request& request,
                                                    Bytes bytes_needed,
                                                    const DiskCache& cache) {
  struct Candidate {
    std::uint64_t next;
    Bytes size;
    FileId id;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(cache.file_count());
  for (FileId id : cache.resident_files()) {
    if (request.contains(id) || cache.pinned(id)) continue;
    candidates.push_back(Candidate{next_use(id), cache.catalog().size_of(id), id});
  }
  // Farthest next use first; among equals prefer freeing more bytes.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.next != b.next) return a.next > b.next;
              if (a.size != b.size) return a.size > b.size;
              return a.id < b.id;
            });

  std::vector<FileId> victims;
  Bytes freed = 0;
  for (const Candidate& c : candidates) {
    if (freed >= bytes_needed) break;
    victims.push_back(c.id);
    freed += c.size;
  }
  if (freed < bytes_needed)
    throw std::logic_error(
        "lookahead: candidates exhausted before freeing enough");
  return victims;
}

void LookaheadPolicy::reset() {
  std::fill(cursor_.begin(), cursor_.end(), 0);
  current_job_ = 0;
}

}  // namespace fbc
