// FIFO replacement, adapted to file-bundles: files are evicted in their
// original load order regardless of subsequent hits. The simplest
// size-oblivious baseline, and the lower bound any recency-based policy
// must clear.
#pragma once

#include <deque>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted FIFO.
class FifoPolicy : public ReplacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "fifo"; }

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

 private:
  std::deque<FileId> queue_;          ///< load order, oldest first
  std::vector<bool> queued_;          ///< membership check
};

}  // namespace fbc
