// AdaptivePolicy: a set-dueling meta-policy trained by an OPT oracle.
//
// Wraps N contender policies (OptFileBundle vs Landlord vs GDSF in the
// registry's default line-up) and follows the per-phase winner:
//
//   * Every contender has a LIVE instance that observes every event on the
//     real cache (arrivals, hits, loads, evictions, prefetch loads), so its
//     model of residency is always accurate; only the current leader's
//     live instance is asked for victims / prefetches / scheduling.
//   * Every contender also has a SHADOW instance driving a private shadow
//     DiskCache of the same capacity. A deterministically hash-sampled
//     subset of requests (1 in `sample_period`) is replayed through every
//     shadow cache -- the set-dueling monitor. A shadow request-hit scores
//     the contender by the request's bundle bytes, doubled when the
//     injected OPT oracle (core/optgen's BundleOPTgen, fed the same
//     sampled subsequence) says OPT would have kept the bundle too --
//     hits that the oracle endorses are evidence of OPT-like behaviour,
//     not luck.
//   * Every `phase_jobs` arrivals the scores are compared (highest wins,
//     ties break to the lowest index == the registry order) and the winner
//     leads the next phase; scores then reset so old phases cannot
//     outvote a workload shift -- the drift workloads are the target.
//
// The oracle is injected as a factory closure rather than a concrete type
// so this layer stays independent of core/ (the registry wires in
// BundleOPTgen; tests can wire in anything).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Set-dueling knobs (surfaced as PolicyContext::duel_* / fbcsim flags).
struct AdaptiveConfig {
  /// Seed mixed into the request-hash sampler.
  std::uint64_t seed = 0x5eedULL;
  /// One request in `sample_period` joins the duel sample (>= 1; 1 duels
  /// on every request).
  std::size_t sample_period = 8;
  /// Leader re-election interval in arrivals (>= 1).
  std::size_t phase_jobs = 64;
};

/// One dueling contender: paired live + shadow instances of the same
/// policy (separate instances so shadow-cache events never corrupt the
/// live instance's model of the real cache).
struct AdaptiveContender {
  std::string name;
  PolicyPtr live;
  PolicyPtr shadow;
};

/// The meta-policy (see file comment).
class AdaptivePolicy final : public ReplacementPolicy {
 public:
  /// Consumes the sampled request stream, answering "would OPT have kept
  /// this bundle?" Stateful: called exactly once per sampled request.
  using OracleStream = std::function<bool(const Request&)>;
  /// Builds a fresh oracle stream for a cache of `capacity` bytes; called
  /// lazily on the first arrival (capacity is unknown until then) and
  /// again after reset().
  using OracleFactory = std::function<OracleStream(Bytes capacity)>;

  /// The catalog must outlive the policy. `contenders` must be non-empty;
  /// `oracle_factory` may be null (hits then score their plain weight).
  AdaptivePolicy(const FileCatalog& catalog, AdaptiveConfig config,
                 std::vector<AdaptiveContender> contenders,
                 OracleFactory oracle_factory);

  [[nodiscard]] std::string name() const override;
  void on_job_arrival(const Request& request, const DiskCache& cache) override;
  void on_request_hit(const Request& request, const DiskCache& cache) override;
  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;
  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;
  void on_file_evicted(FileId id) override;
  void on_prefetched(std::span<const FileId> loaded,
                     const DiskCache& cache) override;
  [[nodiscard]] std::vector<FileId> prefetch(const Request& request,
                                             const DiskCache& cache) override;
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        const DiskCache& cache) override;
  [[nodiscard]] std::size_t choose_next(std::span<const Request> queue,
                                        std::span<const double> ages,
                                        const DiskCache& cache) override;
  [[nodiscard]] const SelectionCost* selection_cost() const override;
  void reset() override;

  /// Index of the contender currently leading the real cache.
  [[nodiscard]] std::size_t leader() const noexcept { return leader_; }
  /// Winner of every completed phase, in order (the determinism and
  /// phase-switch regression tests pin this sequence).
  [[nodiscard]] std::span<const std::size_t> winner_history() const noexcept {
    return winner_history_;
  }
  /// Current-phase duel scores, indexed like the contenders.
  [[nodiscard]] std::span<const double> scores() const noexcept {
    return scores_;
  }
  [[nodiscard]] std::size_t contender_count() const noexcept {
    return contenders_.size();
  }
  [[nodiscard]] const std::string& contender_name(std::size_t i) const {
    return contenders_.at(i).name;
  }
  /// True when `request` belongs to the duel sample (exposed for the
  /// sample-set determinism test).
  [[nodiscard]] bool sampled(const Request& request) const;

 private:
  void ensure_duel_state(const DiskCache& cache);
  void elect();
  void duel(const Request& request, const DiskCache& cache);
  void shadow_step(std::size_t i, const Request& request, double weight);

  const FileCatalog* catalog_;
  AdaptiveConfig config_;
  std::vector<AdaptiveContender> contenders_;
  OracleFactory oracle_factory_;
  OracleStream oracle_;
  std::vector<std::unique_ptr<DiskCache>> shadows_;
  std::vector<double> scores_;
  std::vector<std::size_t> winner_history_;
  std::size_t leader_ = 0;
  std::uint64_t arrivals_ = 0;
  SelectionCost cost_;
};

}  // namespace fbc
