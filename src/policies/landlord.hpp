// Landlord cache replacement, adapted to file-bundles (paper Algorithm 3).
//
// Landlord (Young, SODA'98) is the competitive-analysis-optimal
// generalization of LRU/FIFO/GreedyDual to arbitrary sizes and costs. The
// paper adapts it to bundles: every cached file holds a credit in [0, 1];
// when space is needed for an arriving request r_new, the credits of all
// cached files NOT requested by r_new are decreased uniformly by the
// current minimum and zero-credit files are evicted, repeating until the
// missing files fit; finally every file of r_new gets its credit refreshed
// to 1.
//
// Implementation note: the textbook "decrease all credits by delta" is done
// lazily with a global inflation counter L -- a file's effective credit is
// (stored - L), refreshing sets stored = L + 1, and eviction pops the
// smallest stored credit from a min-heap. This makes each decision
// O(victims * log n) instead of O(n).
#pragma once

#include <queue>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted Landlord (see file comment).
class LandlordPolicy : public ReplacementPolicy {
 public:
  /// How a freshly loaded / re-requested file's credit is set.
  enum class CreditModel {
    /// credit = 1 for every file (the paper's Algorithm 3).
    Uniform,
    /// credit = size / max_size, i.e. proportional to the retrieval cost of
    /// the file under a bandwidth-dominated cost model (classic Landlord
    /// with cost(f) = s(f)); larger files are retained longer.
    ProportionalToSize,
  };

  explicit LandlordPolicy(CreditModel model = CreditModel::Uniform);

  [[nodiscard]] std::string name() const override;

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Effective credit of a resident file (testing/introspection).
  [[nodiscard]] double credit(FileId id) const noexcept;

 private:
  void refresh(FileId id, const DiskCache& cache);

  struct HeapEntry {
    double stored_credit;
    FileId id;
    std::uint64_t stamp;  ///< matches stamp_[id] when the entry is current
    bool operator>(const HeapEntry& other) const noexcept {
      return stored_credit > other.stored_credit;
    }
  };

  CreditModel model_;
  double inflation_ = 0.0;  ///< L: total uniform decrement applied so far
  std::vector<double> stored_;        ///< stored credit per file id
  std::vector<std::uint64_t> stamp_;  ///< refresh generation per file id
  std::vector<bool> tracked_;         ///< file currently credit-tracked
  std::uint64_t next_stamp_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
};

}  // namespace fbc
