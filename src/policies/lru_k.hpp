// LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD'93), adapted to
// file-bundles.
//
// Evicts the file whose K-th most recent reference is oldest (files with
// fewer than K references are evicted first, oldest single reference
// first). K = 2 is the classic database buffer-pool configuration: it
// filters out one-off scans that fool plain LRU.
#pragma once

#include <set>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted LRU-K.
class LruKPolicy : public ReplacementPolicy {
 public:
  /// Precondition: k >= 1 (k = 1 degenerates to plain LRU).
  explicit LruKPolicy(std::size_t k = 2);

  [[nodiscard]] std::string name() const override;

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// The file's K-th most recent reference time (0 when it has fewer than
  /// K references).
  [[nodiscard]] std::uint64_t backward_k_distance(FileId id) const noexcept;

 private:
  void reference_all(const Request& request);
  [[nodiscard]] std::uint64_t key_time(FileId id) const noexcept;

  /// Eviction order: ascending (kth_ref_time, last_ref_time, id); files
  /// with < K references have kth_ref_time 0 and therefore go first.
  struct Key {
    std::uint64_t kth;
    std::uint64_t last;
    FileId id;
    auto operator<=>(const Key&) const = default;
  };

  std::size_t k_;
  std::uint64_t clock_ = 0;
  /// Circular buffer of the last K reference times per file.
  std::vector<std::vector<std::uint64_t>> history_;
  std::vector<bool> resident_;
  std::set<Key> order_;
};

}  // namespace fbc
