// Least-Recently-Used replacement, adapted to file-bundles.
//
// Every file of a serviced request is "touched" (hit or load alike); when
// space is needed, the stalest non-requested files are evicted first. This
// is the classic popularity-style baseline the paper argues is blind to
// inter-file dependencies.
#pragma once

#include <queue>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted LRU.
class LruPolicy : public ReplacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "lru"; }

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Logical timestamp of the last touch of `id` (0 if never touched).
  [[nodiscard]] std::uint64_t last_touch(FileId id) const noexcept;

 private:
  void touch_all(const Request& request);

  struct HeapEntry {
    std::uint64_t touch;
    FileId id;
    bool operator>(const HeapEntry& other) const noexcept {
      return touch > other.touch;
    }
  };

  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> touch_;  ///< per-file last-touch time
  std::vector<bool> tracked_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
};

}  // namespace fbc
