// Random replacement: evicts uniformly random non-requested resident files
// until enough space is free. The zero-information baseline that any
// serious policy must beat.
#pragma once

#include "cache/policy.hpp"
#include "util/rng.hpp"

namespace fbc {

/// Uniform random eviction.
class RandomPolicy : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0xabcdef12345ULL) : rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "random"; }

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void reset() override {}

 private:
  Rng rng_;
};

}  // namespace fbc
