#include "policies/gdsf.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbc {

void GdsfPolicy::refresh(FileId id, const DiskCache& cache) {
  if (h_.size() <= id) {
    h_.resize(id + 1, 0.0);
    freq_.resize(id + 1, 0);
    stamp_.resize(id + 1, 0);
    tracked_.resize(id + 1, false);
  }
  ++freq_[id];
  const double size = static_cast<double>(cache.catalog().size_of(id));
  const double cost = size_cost_ ? size : 1.0;
  h_[id] = inflation_ +
           static_cast<double>(freq_[id]) * cost / std::max(size, 1.0);
  stamp_[id] = next_stamp_++;
  tracked_[id] = true;
  heap_.push(HeapEntry{h_[id], id, stamp_[id]});
}

void GdsfPolicy::on_request_hit(const Request& request,
                                const DiskCache& cache) {
  for (FileId id : request.files) refresh(id, cache);
}

std::vector<FileId> GdsfPolicy::select_victims(const Request& request,
                                               Bytes bytes_needed,
                                               const DiskCache& cache) {
  std::vector<FileId> victims;
  std::vector<HeapEntry> deferred;
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (heap_.empty())
      throw std::logic_error("gdsf: heap exhausted before freeing enough");
    const HeapEntry top = heap_.top();
    heap_.pop();
    const FileId id = top.id;
    if (id >= stamp_.size() || stamp_[id] != top.stamp || !tracked_[id])
      continue;
    if (request.contains(id)) {
      tracked_[id] = false;  // re-tracked by the post-admission refresh
      continue;
    }
    if (!cache.contains(id)) {
      tracked_[id] = false;
      continue;
    }
    if (cache.pinned(id)) {
      deferred.push_back(top);
      continue;
    }
    inflation_ = std::max(inflation_, top.h);
    tracked_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  for (const HeapEntry& entry : deferred) heap_.push(entry);
  return victims;
}

void GdsfPolicy::on_files_loaded(const Request& request,
                                 std::span<const FileId>,
                                 const DiskCache& cache) {
  for (FileId id : request.files) refresh(id, cache);
}

void GdsfPolicy::on_file_evicted(FileId id) {
  if (id < tracked_.size()) tracked_[id] = false;
}

void GdsfPolicy::reset() {
  inflation_ = 0.0;
  h_.clear();
  freq_.clear();
  stamp_.clear();
  tracked_.clear();
  next_stamp_ = 1;
  heap_ = {};
}

double GdsfPolicy::h_value(FileId id) const noexcept {
  if (id >= h_.size() || !tracked_[id]) return 0.0;
  return h_[id];
}

std::uint64_t GdsfPolicy::frequency(FileId id) const noexcept {
  return id < freq_.size() ? freq_[id] : 0;
}

}  // namespace fbc
