// GreedyDual-Size-Frequency (Cherkasova, HP Labs TR-98-69), adapted to
// file-bundles.
//
// Extends GreedyDual-Size with a per-file reference count:
//     H(f) = L + freq(f) * cost(f) / s(f)
// so hot files survive longer even when large. With cost(f) = s(f) this
// reduces to inflated LFU; with cost(f) = 1 it trades size against
// popularity -- the strongest per-file web-caching baseline of its era
// and a natural extra comparator for OptFileBundle.
#pragma once

#include <queue>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted GreedyDual-Size-Frequency.
class GdsfPolicy : public ReplacementPolicy {
 public:
  /// `size_cost` selects cost(f) = s(f) (true) or cost(f) = 1 (false).
  explicit GdsfPolicy(bool size_cost = true) : size_cost_(size_cost) {}

  [[nodiscard]] std::string name() const override {
    return size_cost_ ? "gdsf" : "gdsf-unit";
  }

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Current H-value (introspection; 0 when untracked).
  [[nodiscard]] double h_value(FileId id) const noexcept;

  /// Reference count of `id`.
  [[nodiscard]] std::uint64_t frequency(FileId id) const noexcept;

 private:
  void refresh(FileId id, const DiskCache& cache);

  struct HeapEntry {
    double h;
    FileId id;
    std::uint64_t stamp;
    bool operator>(const HeapEntry& other) const noexcept {
      return h > other.h;
    }
  };

  bool size_cost_;
  double inflation_ = 0.0;
  std::vector<double> h_;
  std::vector<std::uint64_t> freq_;
  std::vector<std::uint64_t> stamp_;
  std::vector<bool> tracked_;
  std::uint64_t next_stamp_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
};

}  // namespace fbc
