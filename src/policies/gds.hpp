// GreedyDual-Size (Cao & Irani, USITS'97), adapted to file-bundles.
//
// Each cached file carries a value H = L + cost(f) / s(f), where L is a
// global inflation level. Eviction removes the file with minimum H and
// raises L to that H. Web caching's strongest classical policy and the
// direct ancestor of Landlord; included as an additional popularity-style
// baseline with a pluggable cost model.
#pragma once

#include <queue>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Retrieval cost model for GreedyDual-Size.
enum class GdsCost {
  Unit,       ///< cost(f) = 1: minimizes miss *count* (favors small files)
  Size,       ///< cost(f) = s(f): minimizes byte misses (H = L + 1)
  FetchTime,  ///< cost(f) = latency + s(f)/bandwidth: wide-area fetch model
};

/// Bundle-adapted GreedyDual-Size.
class GdsPolicy : public ReplacementPolicy {
 public:
  /// `latency_cost` and `bandwidth_bytes_per_cost` parameterize FetchTime;
  /// they are ignored for the other cost models.
  explicit GdsPolicy(GdsCost cost = GdsCost::Unit, double latency_cost = 1.0,
                     double bandwidth_bytes_per_cost = 50.0 * 1024 * 1024);

  [[nodiscard]] std::string name() const override;

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Current H-value of `id` (introspection; 0 when untracked).
  [[nodiscard]] double h_value(FileId id) const noexcept;

 private:
  [[nodiscard]] double cost_of(FileId id, const DiskCache& cache) const;
  void refresh(FileId id, const DiskCache& cache);

  struct HeapEntry {
    double h;
    FileId id;
    std::uint64_t stamp;
    bool operator>(const HeapEntry& other) const noexcept {
      return h > other.h;
    }
  };

  GdsCost cost_;
  double latency_cost_;
  double bandwidth_;
  double inflation_ = 0.0;
  std::vector<double> h_;
  std::vector<std::uint64_t> stamp_;
  std::vector<bool> tracked_;
  std::uint64_t next_stamp_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
};

}  // namespace fbc
