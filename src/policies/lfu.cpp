#include "policies/lfu.hpp"

#include <stdexcept>

namespace fbc {

void LfuPolicy::reference_all(const Request& request) {
  ++clock_;
  for (FileId id : request.files) {
    if (freq_.size() <= id) {
      freq_.resize(id + 1, 0);
      touch_.resize(id + 1, 0);
      resident_.resize(id + 1, false);
    }
    if (resident_[id]) order_.erase(Key{freq_[id], touch_[id], id});
    ++freq_[id];
    touch_[id] = clock_;
    if (resident_[id]) order_.insert(Key{freq_[id], touch_[id], id});
  }
}

void LfuPolicy::on_request_hit(const Request& request, const DiskCache&) {
  reference_all(request);
}

std::vector<FileId> LfuPolicy::select_victims(const Request& request,
                                              Bytes bytes_needed,
                                              const DiskCache& cache) {
  std::vector<FileId> victims;
  Bytes freed = 0;
  auto it = order_.begin();
  while (freed < bytes_needed) {
    if (it == order_.end())
      throw std::logic_error("lfu: candidates exhausted before freeing enough");
    const FileId id = it->id;
    if (request.contains(id) || cache.pinned(id)) {
      ++it;  // exempt: requested by this job or pinned by another
      continue;
    }
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
    it = order_.erase(it);
    resident_[id] = false;
  }
  return victims;
}

void LfuPolicy::on_files_loaded(const Request& request,
                                std::span<const FileId> loaded,
                                const DiskCache&) {
  reference_all(request);
  for (FileId id : loaded) {
    if (!resident_[id]) {
      resident_[id] = true;
      order_.insert(Key{freq_[id], touch_[id], id});
    }
  }
}

void LfuPolicy::on_file_evicted(FileId id) {
  if (id < resident_.size() && resident_[id]) {
    order_.erase(Key{freq_[id], touch_[id], id});
    resident_[id] = false;
  }
}

void LfuPolicy::reset() {
  clock_ = 0;
  freq_.clear();
  touch_.clear();
  resident_.clear();
  order_.clear();
}

std::uint64_t LfuPolicy::frequency(FileId id) const noexcept {
  return id < freq_.size() ? freq_[id] : 0;
}

}  // namespace fbc
