// Least-Frequently-Used replacement, adapted to file-bundles.
//
// Tracks a per-file reference count over serviced requests and evicts the
// least-referenced files first (ties broken by recency, oldest first).
// This is the pure "file popularity" strategy of Table 1 that the paper's
// worked example shows to be misguided for bundles.
#pragma once

#include <set>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Bundle-adapted LFU with LRU tie-breaking.
class LfuPolicy : public ReplacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "lfu"; }

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Reference count of `id` (0 if never referenced).
  [[nodiscard]] std::uint64_t frequency(FileId id) const noexcept;

 private:
  void reference_all(const Request& request);

  /// (frequency, last_touch, id) ordered set acting as an updatable
  /// min-priority structure over *resident* files.
  struct Key {
    std::uint64_t freq;
    std::uint64_t touch;
    FileId id;
    auto operator<=>(const Key&) const = default;
  };

  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> freq_;
  std::vector<std::uint64_t> touch_;
  std::vector<bool> resident_;  ///< file currently in our ordered set
  std::set<Key> order_;
};

}  // namespace fbc
