#include "policies/gds.hpp"

#include <algorithm>
#include <stdexcept>

namespace fbc {

GdsPolicy::GdsPolicy(GdsCost cost, double latency_cost,
                     double bandwidth_bytes_per_cost)
    : cost_(cost),
      latency_cost_(latency_cost),
      bandwidth_(bandwidth_bytes_per_cost) {}

std::string GdsPolicy::name() const {
  switch (cost_) {
    case GdsCost::Unit: return "gds-unit";
    case GdsCost::Size: return "gds-size";
    case GdsCost::FetchTime: return "gds-fetch";
  }
  return "gds";
}

double GdsPolicy::cost_of(FileId id, const DiskCache& cache) const {
  const double size = static_cast<double>(cache.catalog().size_of(id));
  switch (cost_) {
    case GdsCost::Unit: return 1.0;
    case GdsCost::Size: return size;
    case GdsCost::FetchTime: return latency_cost_ + size / bandwidth_;
  }
  return 1.0;
}

void GdsPolicy::refresh(FileId id, const DiskCache& cache) {
  if (h_.size() <= id) {
    h_.resize(id + 1, 0.0);
    stamp_.resize(id + 1, 0);
    tracked_.resize(id + 1, false);
  }
  const double size = static_cast<double>(cache.catalog().size_of(id));
  h_[id] = inflation_ + cost_of(id, cache) / std::max(size, 1.0);
  stamp_[id] = next_stamp_++;
  tracked_[id] = true;
  heap_.push(HeapEntry{h_[id], id, stamp_[id]});
}

void GdsPolicy::on_request_hit(const Request& request, const DiskCache& cache) {
  for (FileId id : request.files) refresh(id, cache);
}

std::vector<FileId> GdsPolicy::select_victims(const Request& request,
                                              Bytes bytes_needed,
                                              const DiskCache& cache) {
  std::vector<FileId> victims;
  std::vector<HeapEntry> deferred;  // pinned by other in-flight jobs
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (heap_.empty())
      throw std::logic_error("gds: heap exhausted before freeing enough");
    const HeapEntry top = heap_.top();
    heap_.pop();
    const FileId id = top.id;
    if (id >= stamp_.size() || stamp_[id] != top.stamp || !tracked_[id])
      continue;
    if (request.contains(id)) {
      tracked_[id] = false;  // re-tracked by the refresh after admission
      continue;
    }
    if (!cache.contains(id)) {
      tracked_[id] = false;
      continue;
    }
    if (cache.pinned(id)) {
      deferred.push_back(top);
      continue;
    }
    inflation_ = std::max(inflation_, top.h);
    tracked_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  for (const HeapEntry& entry : deferred) heap_.push(entry);
  return victims;
}

void GdsPolicy::on_files_loaded(const Request& request,
                                std::span<const FileId>,
                                const DiskCache& cache) {
  for (FileId id : request.files) refresh(id, cache);
}

void GdsPolicy::on_file_evicted(FileId id) {
  if (id < tracked_.size()) tracked_[id] = false;
}

void GdsPolicy::reset() {
  inflation_ = 0.0;
  h_.clear();
  stamp_.clear();
  tracked_.clear();
  next_stamp_ = 1;
  heap_ = {};
}

double GdsPolicy::h_value(FileId id) const noexcept {
  if (id >= h_.size() || !tracked_[id]) return 0.0;
  return h_[id];
}

}  // namespace fbc
