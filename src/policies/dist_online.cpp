#include "policies/dist_online.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fbc {

DistOnlinePolicy::DistOnlinePolicy(const FileCatalog& catalog)
    : catalog_(&catalog) {
  const auto sizes = catalog.sizes();
  const Bytes max_size =
      sizes.empty() ? 1 : *std::max_element(sizes.begin(), sizes.end());
  max_file_size_ = static_cast<double>(std::max<Bytes>(max_size, 1));
}

std::string DistOnlinePolicy::name() const { return "dist-online"; }

void DistOnlinePolicy::pay_shares(const Request& request) {
  if (request.empty()) return;
  // Equal bundle-cost share per file (file comment): the whole bundle's
  // normalized retrieval cost, split |F(r)| ways.
  const double cost =
      static_cast<double>(catalog_->request_bytes(request)) / max_file_size_;
  const double share = cost / static_cast<double>(request.size());
  for (FileId id : request.files) {
    if (stored_.size() <= id) {
      stored_.resize(id + 1, 0.0);
      stamp_.resize(id + 1, 0);
      tracked_.resize(id + 1, false);
    }
    const double effective =
        tracked_[id] ? std::max(0.0, stored_[id] - inflation_) : 0.0;
    stored_[id] = inflation_ + std::min(1.0, effective + share);
    stamp_[id] = next_stamp_++;
    tracked_[id] = true;
    heap_.push(HeapEntry{stored_[id], id, stamp_[id]});
  }
}

void DistOnlinePolicy::on_request_hit(const Request& request,
                                      const DiskCache& cache) {
  (void)cache;
  pay_shares(request);
}

std::vector<FileId> DistOnlinePolicy::select_victims(const Request& request,
                                                     Bytes bytes_needed,
                                                     const DiskCache& cache) {
  std::vector<FileId> victims;
  // Pinned files are exempt this round but must stay tracked (same
  // deferral Landlord uses -- leases must never be evicted under a job).
  std::vector<HeapEntry> deferred;
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (heap_.empty())
      throw std::logic_error(
          "dist-online: heap exhausted before freeing enough space");
    const HeapEntry top = heap_.top();
    heap_.pop();
    const FileId id = top.id;
    if (id >= stamp_.size() || stamp_[id] != top.stamp || !tracked_[id])
      continue;  // stale: refreshed or evicted since being pushed
    if (request.contains(id)) {
      tracked_[id] = false;  // re-tracked when the request pays its share
      continue;
    }
    if (!cache.contains(id)) {
      tracked_[id] = false;
      continue;
    }
    if (cache.pinned(id)) {
      deferred.push_back(top);
      continue;
    }
    // Uniform decrement by the minimum credit == raising the inflation
    // level to this entry's stored credit.
    inflation_ = std::max(inflation_, top.stored_credit);
    tracked_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  for (const HeapEntry& entry : deferred) heap_.push(entry);
  return victims;
}

void DistOnlinePolicy::on_files_loaded(const Request& request,
                                       std::span<const FileId> loaded,
                                       const DiskCache& cache) {
  (void)loaded;
  (void)cache;
  pay_shares(request);
}

void DistOnlinePolicy::on_file_evicted(FileId id) {
  if (id < tracked_.size()) tracked_[id] = false;
}

void DistOnlinePolicy::reset() {
  inflation_ = 0.0;
  stored_.clear();
  stamp_.clear();
  tracked_.clear();
  next_stamp_ = 1;
  heap_ = {};
}

double DistOnlinePolicy::credit(FileId id) const noexcept {
  if (id >= stored_.size() || !tracked_[id]) return 0.0;
  return std::max(0.0, stored_[id] - inflation_);
}

}  // namespace fbc
