#include "policies/lru.hpp"

#include <stdexcept>

namespace fbc {

void LruPolicy::touch_all(const Request& request) {
  ++clock_;
  for (FileId id : request.files) {
    if (touch_.size() <= id) {
      touch_.resize(id + 1, 0);
      tracked_.resize(id + 1, false);
    }
    touch_[id] = clock_;
    tracked_[id] = true;
    heap_.push(HeapEntry{clock_, id});
  }
}

void LruPolicy::on_request_hit(const Request& request, const DiskCache&) {
  touch_all(request);
}

std::vector<FileId> LruPolicy::select_victims(const Request& request,
                                              Bytes bytes_needed,
                                              const DiskCache& cache) {
  std::vector<FileId> victims;
  std::vector<HeapEntry> deferred;  // pinned by other in-flight jobs
  Bytes freed = 0;
  while (freed < bytes_needed) {
    if (heap_.empty())
      throw std::logic_error("lru: heap exhausted before freeing enough");
    const HeapEntry top = heap_.top();
    heap_.pop();
    const FileId id = top.id;
    if (id >= touch_.size() || touch_[id] != top.touch || !tracked_[id])
      continue;  // stale entry
    if (request.contains(id)) continue;  // exempt; still tracked
    if (!cache.contains(id)) {
      tracked_[id] = false;
      continue;
    }
    if (cache.pinned(id)) {
      deferred.push_back(top);
      continue;
    }
    tracked_[id] = false;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  for (const HeapEntry& entry : deferred) heap_.push(entry);
  return victims;
}

void LruPolicy::on_files_loaded(const Request& request,
                                std::span<const FileId>, const DiskCache&) {
  touch_all(request);
}

void LruPolicy::on_file_evicted(FileId id) {
  if (id < tracked_.size()) tracked_[id] = false;
}

void LruPolicy::reset() {
  clock_ = 0;
  touch_.clear();
  tracked_.clear();
  heap_ = {};
}

std::uint64_t LruPolicy::last_touch(FileId id) const noexcept {
  return id < touch_.size() ? touch_[id] : 0;
}

}  // namespace fbc
