#include "policies/random_evict.hpp"

#include <stdexcept>

namespace fbc {

std::vector<FileId> RandomPolicy::select_victims(const Request& request,
                                                 Bytes bytes_needed,
                                                 const DiskCache& cache) {
  // Collect eviction candidates (resident, not part of the request).
  std::vector<FileId> candidates;
  candidates.reserve(cache.file_count());
  for (FileId id : cache.resident_files()) {
    if (!request.contains(id) && !cache.pinned(id)) candidates.push_back(id);
  }
  rng_.shuffle(std::span<FileId>(candidates));

  std::vector<FileId> victims;
  Bytes freed = 0;
  for (FileId id : candidates) {
    if (freed >= bytes_needed) break;
    victims.push_back(id);
    freed += cache.catalog().size_of(id);
  }
  if (freed < bytes_needed)
    throw std::logic_error("random: candidates exhausted before freeing enough");
  return victims;
}

}  // namespace fbc
