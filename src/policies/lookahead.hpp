// Clairvoyant look-ahead replacement (offline reference baseline).
//
// Given the full future job stream, evicts the files whose *next use* lies
// farthest in the future (Belady's MIN generalized to sized files; ties
// broken toward evicting larger files to free more space per decision).
//
// Note: per-file Belady is NOT optimal for the file-bundle problem -- the
// offline FBC problem is NP-hard (paper §4) -- but it is a strong
// clairvoyant reference that no online per-file policy can beat on its own
// terms, which makes it a useful yardstick in the benches.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Offline farthest-next-use eviction.
class LookaheadPolicy : public ReplacementPolicy {
 public:
  /// `jobs` must be the exact stream later passed to Simulator::run, in the
  /// same order (FCFS only: queue reordering would invalidate the oracle).
  explicit LookaheadPolicy(std::span<const Request> jobs);

  [[nodiscard]] std::string name() const override { return "lookahead"; }

  void on_job_arrival(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void reset() override;

 private:
  /// Index of the first job > current using `id`, or kNever.
  [[nodiscard]] std::uint64_t next_use(FileId id) const noexcept;

  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  std::vector<std::vector<std::uint64_t>> uses_;  ///< per-file use indices
  mutable std::vector<std::size_t> cursor_;       ///< per-file scan position
  std::uint64_t current_job_ = 0;                 ///< 1-based after arrival
};

}  // namespace fbc
