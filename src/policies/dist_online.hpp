// Distributed online file-bundle caching (after Qin & Etesami,
// "Optimal Online Algorithms for File-Bundle Caching and Generalization
// to Distributed Caching", arXiv:2011.03212).
//
// The distributed setting serves bundles from several cooperating cache
// nodes; each node runs the same credit-based online rule, and the only
// coupling is that a request's *bundle cost* is shared equally by the
// files that make it up -- a file learns the value of the bundles it
// travels with, not just its own size. Concretely, when a request r is
// serviced, every file g in F(r) earns a credit increment
//
//     share(r) = cost(r) / |F(r)|,   cost(r) = s(F(r)) / max_file_size
//
// capped at 1; when space is needed the credits of files outside the
// arriving bundle are uniformly decreased by the current minimum and
// zero-credit files are evicted (the Landlord rent-collection step, done
// lazily with an inflation counter). The equal cost share is what makes
// the rule composable across shards: each shard sees only its slice of a
// scattered bundle, and the slice's per-file share equals the share the
// whole bundle would have paid a single cache, so N shards running
// dist-online behave like one credit space partitioned by placement.
//
// Versus plain Landlord (credit := 1 on every refresh): credits here
// *accumulate* across requests, so a file that keeps appearing in many
// cheap bundles can out-rank a file refreshed once by an expensive one --
// a frequency component Landlord lacks, which is what the distributed
// analysis needs to bound each node's competitive ratio independently of
// how bundles are split.
#pragma once

#include <queue>
#include <vector>

#include "cache/policy.hpp"

namespace fbc {

/// Credit-share online policy for sharded bundle caches (file comment).
class DistOnlinePolicy : public ReplacementPolicy {
 public:
  explicit DistOnlinePolicy(const FileCatalog& catalog);

  [[nodiscard]] std::string name() const override;

  void on_request_hit(const Request& request, const DiskCache& cache) override;

  [[nodiscard]] std::vector<FileId> select_victims(
      const Request& request, Bytes bytes_needed,
      const DiskCache& cache) override;

  void on_files_loaded(const Request& request, std::span<const FileId> loaded,
                       const DiskCache& cache) override;

  void on_file_evicted(FileId id) override;

  void reset() override;

  /// Effective credit of a file (testing/introspection).
  [[nodiscard]] double credit(FileId id) const noexcept;

 private:
  /// Adds `request`'s equal cost share to every one of its files.
  void pay_shares(const Request& request);

  struct HeapEntry {
    double stored_credit;
    FileId id;
    std::uint64_t stamp;  ///< matches stamp_[id] when the entry is current
    bool operator>(const HeapEntry& other) const noexcept {
      return stored_credit > other.stored_credit;
    }
  };

  const FileCatalog* catalog_;
  double max_file_size_ = 1.0;  ///< cost normalizer (largest catalog file)
  double inflation_ = 0.0;      ///< L: total uniform decrement so far
  std::vector<double> stored_;        ///< stored credit per file id
  std::vector<std::uint64_t> stamp_;  ///< refresh generation per file id
  std::vector<bool> tracked_;         ///< file currently credit-tracked
  std::uint64_t next_stamp_ = 1;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
};

}  // namespace fbc
