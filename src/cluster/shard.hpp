// Shard: the router's view of one BundleServer.
//
// Two transports behind one interface: LocalShard calls an in-process
// BundleServer directly (fbcgrid's default -- N shards in one process),
// RemoteShard speaks the wire protocol to a shard daemon on another
// port/host (the socket-backed deployment). The router never knows which
// it has, so the placement/lease logic is transport-agnostic and the
// fuzz harness can drive it entirely in-process.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "service/client.hpp"
#include "service/endpoint.hpp"
#include "service/server.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::cluster {

using service::LeaseId;

/// One BundleServer as seen by the router. Thread-safe: the router calls
/// acquire/release from many daemon workers concurrently.
class Shard {
 public:
  virtual ~Shard() = default;

  virtual service::AcquireResult acquire(const Request& request) = 0;
  virtual bool release(LeaseId lease) = 0;
  [[nodiscard]] virtual service::ServiceStats stats() const = 0;
  [[nodiscard]] virtual service::MetricsSnapshot metrics() const = 0;
  virtual void close() = 0;
};

/// In-process shard: forwards to a BundleServer the caller owns.
class LocalShard final : public Shard {
 public:
  /// `server` must outlive the shard.
  explicit LocalShard(service::BundleServer& server) : server_(&server) {}

  service::AcquireResult acquire(const Request& request) override {
    return server_->acquire(request);
  }
  bool release(LeaseId lease) override { return server_->release(lease); }
  [[nodiscard]] service::ServiceStats stats() const override {
    return server_->stats();
  }
  [[nodiscard]] service::MetricsSnapshot metrics() const override {
    return server_->metrics();
  }
  void close() override { server_->close(); }

  /// The wrapped server, for tests that audit() shards directly.
  [[nodiscard]] service::BundleServer& server() noexcept { return *server_; }

 private:
  service::BundleServer* server_;
};

/// Socket-backed shard: a checkout pool of BundleClient connections to a
/// shard daemon on 127.0.0.1:`port`. Each call checks a connection out,
/// runs the round trip outside the pool lock, and returns it; broken
/// connections are dropped (the daemon reclaims their leases).
class RemoteShard final : public Shard {
 public:
  explicit RemoteShard(std::uint16_t port, bool legacy_wire = false)
      : port_(port), legacy_wire_(legacy_wire) {}

  service::AcquireResult acquire(const Request& request) override;
  bool release(LeaseId lease) override;
  [[nodiscard]] service::ServiceStats stats() const override;
  [[nodiscard]] service::MetricsSnapshot metrics() const override;
  void close() override;

 private:
  using ClientPtr = std::unique_ptr<service::BundleClient>;

  /// Pops an idle connection or dials a new one. Never holds remote_mu_
  /// across the connect. (const: stats()/metrics() check out too.)
  ClientPtr checkout() const;
  /// Returns a healthy connection to the pool (dropped if closed).
  void checkin(ClientPtr client) const;

  std::uint16_t port_;
  bool legacy_wire_;

  // Pool-only lock, below every shard-internal level and never held
  // across a wire round trip.
  // fbc:lock-level(7)
  // fbc:guards(idle_)
  // fbc:guards(closed_)
  mutable OrderedMutex remote_mu_{7, "RemoteShard::remote_mu_"};
  mutable std::vector<ClientPtr> idle_;
  mutable bool closed_ = false;
};

}  // namespace fbc::cluster
