// Shard: the router's view of one BundleServer.
//
// Two transports behind one interface: LocalShard calls an in-process
// BundleServer directly (fbcgrid's default -- N shards in one process),
// RemoteShard speaks the wire protocol to a shard daemon on another
// port/host (the socket-backed deployment). The router never knows which
// it has, so the placement/lease logic is transport-agnostic and the
// fuzz harness can drive it entirely in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/client.hpp"
#include "service/endpoint.hpp"
#include "service/server.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::cluster {

using service::LeaseId;

/// One BundleServer as seen by the router. Thread-safe: the router calls
/// acquire/release from many daemon workers concurrently.
class Shard {
 public:
  virtual ~Shard() = default;

  virtual service::AcquireResult acquire(const Request& request) = 0;
  virtual bool release(LeaseId lease) = 0;
  [[nodiscard]] virtual service::ServiceStats stats() const = 0;
  [[nodiscard]] virtual service::MetricsSnapshot metrics() const = 0;
  virtual void close() = 0;

  /// Hook the router calls when it marks this shard down: transports with
  /// cached connections drop them so recovery probes dial fresh (a
  /// restarted daemon never answers on old sockets). Default: no-op.
  virtual void invalidate_pool() {}
};

/// In-process shard: forwards to a BundleServer the caller owns.
class LocalShard final : public Shard {
 public:
  /// `server` must outlive the shard.
  explicit LocalShard(service::BundleServer& server) : server_(&server) {}

  service::AcquireResult acquire(const Request& request) override {
    return server_->acquire(request);
  }
  bool release(LeaseId lease) override { return server_->release(lease); }
  [[nodiscard]] service::ServiceStats stats() const override {
    return server_->stats();
  }
  [[nodiscard]] service::MetricsSnapshot metrics() const override {
    return server_->metrics();
  }
  void close() override { server_->close(); }

  /// The wrapped server, for tests that audit() shards directly.
  [[nodiscard]] service::BundleServer& server() noexcept { return *server_; }

 private:
  service::BundleServer* server_;
};

/// Socket-backed shard: a checkout pool of BundleClient connections to a
/// shard daemon on 127.0.0.1:`port`. Each call checks a connection out,
/// runs the round trip outside the pool lock, and returns it; broken
/// connections are dropped (the daemon reclaims their leases).
class RemoteShard final : public Shard {
 public:
  /// `pool_cap` bounds the idle pool (ClusterConfig::remote_pool_cap):
  /// checkins past the cap drop the connection instead of pooling it.
  explicit RemoteShard(std::uint16_t port, bool legacy_wire = false,
                       std::size_t pool_cap = 8)
      : port_(port), legacy_wire_(legacy_wire), pool_cap_(pool_cap) {}

  service::AcquireResult acquire(const Request& request) override;
  bool release(LeaseId lease) override;
  [[nodiscard]] service::ServiceStats stats() const override;
  [[nodiscard]] service::MetricsSnapshot metrics() const override;
  void close() override;

  /// Drops every idle connection (pool only -- the shard stays usable;
  /// the next call dials fresh). Called when the router marks the shard
  /// down, since pooled sockets to a crashed daemon are all poisoned.
  void invalidate_pool() override;

  /// Idle connections currently pooled (tests assert the cap holds).
  [[nodiscard]] std::size_t idle_connections() const;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  using ClientPtr = std::unique_ptr<service::BundleClient>;

  /// Pops an idle connection or dials a new one. Never holds remote_mu_
  /// across the connect. (const: stats()/metrics() check out too.)
  ClientPtr checkout() const;
  /// Returns a healthy connection to the pool (dropped if closed).
  void checkin(ClientPtr client) const;

  std::uint16_t port_;
  bool legacy_wire_;
  std::size_t pool_cap_;

  // Pool-only lock, below every shard-internal level and never held
  // across a wire round trip.
  // fbc:lock-level(7)
  // fbc:guards(idle_)
  // fbc:guards(closed_)
  mutable OrderedMutex remote_mu_{7, "RemoteShard::remote_mu_"};
  mutable std::vector<ClientPtr> idle_;
  mutable bool closed_ = false;
};

/// Test/harness seam: wraps any Shard and, while killed, makes every call
/// throw NetError -- exactly what a crashed shard daemon looks like to
/// the router. cluster_sim's kill/revive waves, the failover tests, and
/// the bench fault leg all inject failures through this instead of
/// tearing down real processes.
class FaultInjectionShard final : public Shard {
 public:
  explicit FaultInjectionShard(std::unique_ptr<Shard> inner)
      : inner_(std::move(inner)) {}

  /// Subsequent calls throw NetError until revive().
  void kill() noexcept { killed_.store(true, std::memory_order_release); }
  void revive() noexcept { killed_.store(false, std::memory_order_release); }
  [[nodiscard]] bool killed() const noexcept {
    return killed_.load(std::memory_order_acquire);
  }

  service::AcquireResult acquire(const Request& request) override {
    check();
    return inner_->acquire(request);
  }
  bool release(LeaseId lease) override {
    check();
    return inner_->release(lease);
  }
  [[nodiscard]] service::ServiceStats stats() const override {
    check();
    return inner_->stats();
  }
  [[nodiscard]] service::MetricsSnapshot metrics() const override {
    check();
    return inner_->metrics();
  }
  /// Close always reaches the inner shard: shutdown must not depend on
  /// the injected fault state.
  void close() override { inner_->close(); }
  void invalidate_pool() override { inner_->invalidate_pool(); }

  [[nodiscard]] Shard& inner() noexcept { return *inner_; }

 private:
  void check() const {
    if (killed())
      throw service::NetError("injected fault: shard daemon is down");
  }

  std::unique_ptr<Shard> inner_;
  std::atomic<bool> killed_{false};
};

}  // namespace fbc::cluster
