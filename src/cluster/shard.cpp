#include "cluster/shard.hpp"

#include <mutex>
#include <utility>

namespace fbc::cluster {

RemoteShard::ClientPtr RemoteShard::checkout() const {
  {
    std::lock_guard<OrderedMutex> lock(remote_mu_);
    if (closed_) throw service::NetError("remote shard is closed");
    if (!idle_.empty()) {
      ClientPtr client = std::move(idle_.back());
      idle_.pop_back();
      return client;
    }
  }
  return std::make_unique<service::BundleClient>(port_, legacy_wire_);
}

void RemoteShard::checkin(ClientPtr client) const {
  std::lock_guard<OrderedMutex> lock(remote_mu_);
  if (closed_) return;  // drop: close() already tore the pool down
  if (idle_.size() >= pool_cap_) return;  // drop-on-full: bounded pool
  idle_.push_back(std::move(client));
}

service::AcquireResult RemoteShard::acquire(const Request& request) {
  ClientPtr client = checkout();
  // On a wire error the connection is poisoned: let `client` die with the
  // exception instead of returning it to the pool.
  service::AcquireResult result = client->acquire(request.files);
  checkin(std::move(client));
  return result;
}

bool RemoteShard::release(LeaseId lease) {
  ClientPtr client = checkout();
  const bool ok = client->release(lease);
  checkin(std::move(client));
  return ok;
}

service::ServiceStats RemoteShard::stats() const {
  ClientPtr client = checkout();
  service::ServiceStats stats = client->stats();
  checkin(std::move(client));
  return stats;
}

service::MetricsSnapshot RemoteShard::metrics() const {
  ClientPtr client = checkout();
  service::MetricsSnapshot snapshot = client->metrics();
  checkin(std::move(client));
  return snapshot;
}

void RemoteShard::close() {
  std::lock_guard<OrderedMutex> lock(remote_mu_);
  closed_ = true;
  idle_.clear();  // disconnects; the daemon reclaims any leaked leases
}

void RemoteShard::invalidate_pool() {
  std::lock_guard<OrderedMutex> lock(remote_mu_);
  idle_.clear();  // poisoned sockets; the next call dials fresh
}

std::size_t RemoteShard::idle_connections() const {
  std::lock_guard<OrderedMutex> lock(remote_mu_);
  return idle_.size();
}

}  // namespace fbc::cluster
