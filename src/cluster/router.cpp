#include "cluster/router.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "cluster/stats.hpp"

namespace fbc::cluster {

ClusterRouter::ClusterRouter(const ClusterConfig& config,
                             const FileCatalog& catalog, Bytes shard_capacity,
                             std::vector<std::unique_ptr<Shard>> shards)
    : config_(config),
      placement_(config, catalog, shard_capacity),
      shards_(std::move(shards)) {
  if (shards_.empty() || shards_.size() > 128)
    throw std::invalid_argument("ClusterRouter: shard count must be 1..128");
  if (shards_.size() != config_.shards)
    throw std::invalid_argument(
        "ClusterRouter: shards vector does not match config.shards");
  for (const auto& shard : shards_)
    if (shard == nullptr)
      throw std::invalid_argument("ClusterRouter: null shard");
}

ClusterRouter::~ClusterRouter() { close(); }

service::AcquireResult ClusterRouter::acquire(const Request& request) {
  if (closed_.load(std::memory_order_acquire))
    return {service::AcquireStatus::Closed, 0, false, 0, 0};
  if (request.empty())
    return {service::AcquireStatus::InvalidRequest, 0, false, 0, 0};
  Request canonical = request;
  canonical.canonicalize();
  const PlacementPlan plan = placement_.plan(canonical);
  if (!plan.split()) return acquire_single(plan.parts.front());
  return acquire_scatter(plan);
}

service::AcquireResult ClusterRouter::acquire_single(const SubRequest& part) {
  service::AcquireResult result = shards_[part.shard]->acquire(part.request);
  if (result.status == service::AcquireStatus::Ok) {
    if ((result.lease & ~kPayloadMask) != 0)
      throw std::runtime_error(
          "ClusterRouter: shard lease id overflows the router tag byte");
    result.lease |= static_cast<LeaseId>(part.shard + 1) << kShardShift;
  }
  {
    std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
    grid_counters_.add("grid.acquire.single");
  }
  return result;
}

service::AcquireResult ClusterRouter::acquire_scatter(
    const PlacementPlan& plan) {
  // The cluster grant is the conjunction of per-shard grants. Sub-acquires
  // run in increasing shard order (plan.parts is sorted), so two split
  // bundles contending for the same shards serialize instead of
  // deadlocking on each other's partial grants.
  std::vector<std::pair<std::uint32_t, LeaseId>> granted;
  granted.reserve(plan.parts.size());
  auto rollback = [&]() noexcept {
    // Best effort, newest grant first; a shard that errors mid-rollback
    // reclaims the lease itself when the connection drops.
    for (auto it = granted.rbegin(); it != granted.rend(); ++it) {
      try {
        shards_[it->first]->release(it->second);
      } catch (...) {
      }
    }
    std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
    grid_counters_.add("grid.acquire.rollback");
  };

  service::AcquireResult gathered;
  gathered.status = service::AcquireStatus::Ok;
  gathered.request_hit = true;
  for (const SubRequest& part : plan.parts) {
    service::AcquireResult result;
    try {
      result = shards_[part.shard]->acquire(part.request);
    } catch (...) {
      rollback();
      throw;
    }
    if (result.status != service::AcquireStatus::Ok) {
      rollback();
      // The client sees the failing shard's verdict with no residual
      // pins anywhere.
      result.lease = 0;
      result.request_hit = false;
      return result;
    }
    granted.emplace_back(part.shard, result.lease);
    // The cluster-level request is a hit only if every slice was.
    gathered.request_hit = gathered.request_hit && result.request_hit;
    gathered.retries += result.retries;
  }

  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    LeaseId id = next_scatter_id_++;
    if ((id & ~kPayloadMask) != 0)
      throw std::runtime_error("ClusterRouter: scatter lease ids exhausted");
    scatter_.emplace(id, std::move(granted));
    gathered.lease = id;  // top byte 0 == scatter tag
  }
  {
    std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
    grid_counters_.add("grid.acquire.scatter");
  }
  return gathered;
}

bool ClusterRouter::release(LeaseId lease) {
  const std::uint64_t tag = lease >> kShardShift;
  if (tag != 0) {
    const std::size_t shard = static_cast<std::size_t>(tag) - 1;
    if (shard >= shards_.size()) {
      std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
      grid_counters_.add("grid.release.unknown");
      return false;
    }
    const bool ok = shards_[shard]->release(lease & kPayloadMask);
    if (!ok) {
      std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
      grid_counters_.add("grid.release.unknown");
    }
    return ok;
  }
  std::vector<std::pair<std::uint32_t, LeaseId>> parts;
  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    auto it = scatter_.find(lease);
    if (it == scatter_.end()) {
      std::lock_guard<OrderedMutex> obs(grid_obs_mu_);
      grid_counters_.add("grid.release.unknown");
      return false;
    }
    parts = std::move(it->second);
    scatter_.erase(it);
  }
  bool all_ok = true;
  for (const auto& [shard, sub_lease] : parts)
    all_ok = shards_[shard]->release(sub_lease) && all_ok;
  return all_ok;
}

service::ServiceStats ClusterRouter::stats() const {
  std::vector<service::ServiceStats> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) per_shard.push_back(shard->stats());
  return merge_stats(per_shard);
}

service::MetricsSnapshot ClusterRouter::metrics() const {
  std::vector<service::MetricsSnapshot> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) per_shard.push_back(shard->metrics());
  service::MetricsSnapshot merged = merge_metrics(per_shard);
  // Fold the router's own counters in, keeping the name list sorted.
  obs::CounterRegistry all;
  for (const obs::CounterSample& c : merged.counters) all.add(c.first, c.second);
  {
    std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
    for (const obs::CounterSample& c : grid_counters_.snapshot())
      all.add(c.first, c.second);
  }
  merged.counters = all.snapshot();
  return merged;
}

void ClusterRouter::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  for (const auto& shard : shards_) shard->close();
}

std::size_t ClusterRouter::scatter_leases() const {
  std::lock_guard<OrderedMutex> lock(route_mu_);
  return scatter_.size();
}

}  // namespace fbc::cluster
