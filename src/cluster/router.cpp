#include "cluster/router.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "cluster/stats.hpp"
#include "service/net.hpp"

namespace fbc::cluster {

ClusterRouter::ClusterRouter(const ClusterConfig& config,
                             const FileCatalog& catalog, Bytes shard_capacity,
                             std::vector<std::unique_ptr<Shard>> shards)
    : config_(config),
      placement_(config, catalog, shard_capacity),
      shards_(std::move(shards)) {
  if (shards_.empty() || shards_.size() > 128)
    throw std::invalid_argument("ClusterRouter: shard count must be 1..128");
  if (shards_.size() != config_.shards)
    throw std::invalid_argument(
        "ClusterRouter: shards vector does not match config.shards");
  for (const auto& shard : shards_)
    if (shard == nullptr)
      throw std::invalid_argument("ClusterRouter: null shard");
  health_.resize(shards_.size());
  pending_release_.resize(shards_.size());
}

ClusterRouter::~ClusterRouter() { close(); }

void ClusterRouter::bump(const char* counter) const {
  std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
  grid_counters_.add(counter);
}

std::vector<bool> ClusterRouter::routable_snapshot(
    const std::vector<bool>& excluded) const {
  const Clock::time_point now = Clock::now();
  std::vector<bool> live(shards_.size(), false);
  std::lock_guard<OrderedMutex> lock(route_mu_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (excluded[s]) continue;
    ShardHealth& h = health_[s];
    if (!h.down) {
      live[s] = true;
    } else if (config_.probe_ms == 0 || now >= h.next_probe) {
      // Claim the probe slot: this request is routed at the dead shard
      // as an opportunistic probe, and the next one waits probe_ms so a
      // burst does not pile onto a dead daemon.
      h.next_probe = now + std::chrono::milliseconds(config_.probe_ms);
      live[s] = true;
    }
  }
  return live;
}

bool ClusterRouter::should_attempt(std::uint32_t shard) const {
  const Clock::time_point now = Clock::now();
  std::lock_guard<OrderedMutex> lock(route_mu_);
  ShardHealth& h = health_[shard];
  if (!h.down) return true;
  if (config_.probe_ms == 0 || now >= h.next_probe) {
    h.next_probe = now + std::chrono::milliseconds(config_.probe_ms);
    return true;
  }
  return false;
}

void ClusterRouter::record_success(std::uint32_t shard) const {
  std::vector<LeaseId> pending;
  bool recovered = false;
  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    ShardHealth& h = health_[shard];
    h.consecutive = 0;
    if (h.down) {
      h.down = false;
      recovered = true;
    }
    // Releases can be parked below down_threshold too (a single NetError
    // defers), so any proven-reachable shard drains its queue -- not just
    // a down -> up transition.
    pending = std::move(pending_release_[shard]);
    pending_release_[shard].clear();
  }
  if (recovered) bump("grid.shard.recovered");
  if (pending.empty()) return;
  // Flush releases deferred while the shard was gone. A rebooted shard
  // that lost its lease table answers false (counted unknown below via
  // the shard itself); one that kept state is fully drained. A NetError
  // mid-flush re-parks the rest.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    try {
      (void)shards_[shard]->release(pending[i]);
    } catch (const service::NetError&) {
      for (std::size_t j = i; j < pending.size(); ++j)
        defer_release(shard, pending[j]);
      record_failure(shard);
      return;
    }
  }
}

void ClusterRouter::record_failure(std::uint32_t shard) const {
  bool went_down = false;
  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    ShardHealth& h = health_[shard];
    ++h.consecutive;
    if (!h.down && h.consecutive >= config_.down_threshold) {
      h.down = true;
      h.next_probe =
          Clock::now() + std::chrono::milliseconds(config_.probe_ms);
      went_down = true;
    }
  }
  if (!went_down) return;
  bump("grid.shard.down");
  // Pooled connections to a crashed daemon are all poisoned; drop them
  // so the recovery probe dials fresh.
  shards_[shard]->invalidate_pool();
}

void ClusterRouter::defer_release(std::uint32_t shard, LeaseId lease) const {
  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    pending_release_[shard].push_back(lease);
  }
  bump("grid.release.deferred");
}

service::AcquireResult ClusterRouter::shard_acquire(std::uint32_t shard,
                                                    const Request& request) {
  service::AcquireResult result;
  try {
    result = shards_[shard]->acquire(request);
  } catch (const service::NetError&) {
    throw ShardUnreachable{shard};
  }
  // Any completed round trip is a health success, whatever the verdict
  // (QueueFull from a live shard is backpressure, not death).
  record_success(shard);
  return result;
}

service::AcquireResult ClusterRouter::acquire(const Request& request) {
  if (closed_.load(std::memory_order_acquire))
    return {service::AcquireStatus::Closed, 0, false, 0, 0};
  if (request.empty())
    return {service::AcquireStatus::InvalidRequest, 0, false, 0, 0};
  Request canonical = request;
  canonical.canonicalize();

  // Re-plan loop: a NetError out of a shard excludes it (for this
  // request) and re-routes the remainder to the live shards. Each shard
  // can fail at most once per request, so shards_.size() + 1 attempts
  // bound the loop even if every shard dies mid-flight.
  std::vector<bool> excluded(shards_.size(), false);
  bool rerouted = false;
  for (std::size_t attempt = 0; attempt <= shards_.size(); ++attempt) {
    const std::vector<bool> live = routable_snapshot(excluded);
    const PlacementPlan plan = placement_.plan(canonical, live);
    if (plan.parts.empty()) break;  // no live shard left
    if (plan.rerouted && !rerouted) {
      rerouted = true;
      bump("grid.acquire.rerouted");
    }
    try {
      return plan.split() ? acquire_scatter(plan)
                          : acquire_single(plan.parts.front());
    } catch (const ShardUnreachable& dead) {
      record_failure(dead.shard);
      excluded[dead.shard] = true;
      if (!rerouted) {
        rerouted = true;
        bump("grid.acquire.rerouted");
      }
    }
  }
  bump("grid.acquire.no_shard");
  return {service::AcquireStatus::ShardsDown, 0, false, 0, 0};
}

service::AcquireResult ClusterRouter::acquire_single(const SubRequest& part) {
  service::AcquireResult result = shard_acquire(part.shard, part.request);
  if (result.status == service::AcquireStatus::Ok) {
    if ((result.lease & ~kPayloadMask) != 0)
      throw std::runtime_error(
          "ClusterRouter: shard lease id overflows the router tag byte");
    result.lease |= static_cast<LeaseId>(part.shard + 1) << kShardShift;
  }
  bump("grid.acquire.single");
  return result;
}

service::AcquireResult ClusterRouter::acquire_scatter(
    const PlacementPlan& plan) {
  // The cluster grant is the conjunction of per-shard grants. Sub-acquires
  // run in increasing shard order (plan.parts is sorted), so two split
  // bundles contending for the same shards serialize instead of
  // deadlocking on each other's partial grants.
  std::vector<std::pair<std::uint32_t, LeaseId>> granted;
  granted.reserve(plan.parts.size());
  auto rollback = [&]() noexcept {
    // Newest grant first; a shard that died mid-rollback gets its
    // release deferred so the pin is reclaimed on recovery.
    for (auto it = granted.rbegin(); it != granted.rend(); ++it) {
      try {
        shards_[it->first]->release(it->second);
      } catch (const service::NetError&) {
        defer_release(it->first, it->second);
      } catch (...) {
      }
    }
    bump("grid.acquire.rollback");
  };

  service::AcquireResult gathered;
  gathered.status = service::AcquireStatus::Ok;
  gathered.request_hit = true;
  for (const SubRequest& part : plan.parts) {
    service::AcquireResult result;
    try {
      result = shard_acquire(part.shard, part.request);
    } catch (const ShardUnreachable&) {
      rollback();
      throw;  // acquire() re-plans around the dead shard
    } catch (...) {
      rollback();
      throw;
    }
    if (result.status != service::AcquireStatus::Ok) {
      rollback();
      // The client sees the failing shard's verdict with no residual
      // pins anywhere.
      result.lease = 0;
      result.request_hit = false;
      return result;
    }
    granted.emplace_back(part.shard, result.lease);
    // The cluster-level request is a hit only if every slice was.
    gathered.request_hit = gathered.request_hit && result.request_hit;
    gathered.retries += result.retries;
  }

  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    LeaseId id = next_scatter_id_++;
    if ((id & ~kPayloadMask) != 0)
      throw std::runtime_error("ClusterRouter: scatter lease ids exhausted");
    scatter_.emplace(id, std::move(granted));
    gathered.lease = id;  // top byte 0 == scatter tag
  }
  bump("grid.acquire.scatter");
  return gathered;
}

bool ClusterRouter::try_release(std::uint32_t shard, LeaseId lease,
                                bool* ok) const {
  if (!should_attempt(shard)) {
    // Down and no probe due: park the release instead of hammering a
    // dead daemon. The lease is replayed on recovery.
    defer_release(shard, lease);
    return false;
  }
  try {
    *ok = shards_[shard]->release(lease);
  } catch (const service::NetError&) {
    record_failure(shard);
    defer_release(shard, lease);
    return false;
  }
  record_success(shard);
  return true;
}

bool ClusterRouter::release(LeaseId lease) {
  const std::uint64_t tag = lease >> kShardShift;
  if (tag != 0) {
    const std::size_t shard = static_cast<std::size_t>(tag) - 1;
    if (shard >= shards_.size()) {
      bump("grid.release.unknown");
      return false;
    }
    bool ok = false;
    if (!try_release(static_cast<std::uint32_t>(shard), lease & kPayloadMask,
                     &ok)) {
      // Deferred: the pin is safe and will be reclaimed on recovery, so
      // the client's release is accepted.
      bump("grid.release.partial");
      return true;
    }
    if (!ok) bump("grid.release.unknown");
    return ok;
  }
  std::vector<std::pair<std::uint32_t, LeaseId>> parts;
  {
    std::lock_guard<OrderedMutex> lock(route_mu_);
    auto it = scatter_.find(lease);
    if (it == scatter_.end()) {
      std::lock_guard<OrderedMutex> obs(grid_obs_mu_);
      grid_counters_.add("grid.release.unknown");
      return false;
    }
    parts = std::move(it->second);
    scatter_.erase(it);
  }
  // Every part is attempted even if one shard throws mid-loop (the old
  // code let the exception escape here, leaking the remaining shards'
  // pins forever -- the scatter entry was already erased above).
  bool all_ok = true;
  bool partial = false;
  for (const auto& [shard, sub_lease] : parts) {
    bool ok = false;
    if (try_release(shard, sub_lease, &ok))
      all_ok = ok && all_ok;
    else
      partial = true;  // deferred, not lost
  }
  if (partial) bump("grid.release.partial");
  return all_ok;
}

service::ServiceStats ClusterRouter::stats() const {
  std::vector<service::ServiceStats> per_shard;
  per_shard.reserve(shards_.size());
  std::size_t skipped = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!should_attempt(static_cast<std::uint32_t>(s))) {
      ++skipped;
      continue;
    }
    try {
      per_shard.push_back(shards_[s]->stats());
    } catch (const service::NetError&) {
      record_failure(static_cast<std::uint32_t>(s));
      ++skipped;
      continue;
    }
    record_success(static_cast<std::uint32_t>(s));
  }
  if (skipped != 0) bump("grid.stats.partial");
  return merge_stats(per_shard);
}

service::MetricsSnapshot ClusterRouter::metrics() const {
  std::vector<service::MetricsSnapshot> per_shard;
  per_shard.reserve(shards_.size());
  std::size_t skipped = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!should_attempt(static_cast<std::uint32_t>(s))) {
      ++skipped;
      continue;
    }
    try {
      per_shard.push_back(shards_[s]->metrics());
    } catch (const service::NetError&) {
      record_failure(static_cast<std::uint32_t>(s));
      ++skipped;
      continue;
    }
    record_success(static_cast<std::uint32_t>(s));
  }
  if (skipped != 0) bump("grid.stats.partial");
  service::MetricsSnapshot merged = merge_metrics(per_shard);
  // Fold the router's own counters in, keeping the name list sorted.
  obs::CounterRegistry all;
  for (const obs::CounterSample& c : merged.counters) all.add(c.first, c.second);
  {
    std::lock_guard<OrderedMutex> lock(grid_obs_mu_);
    for (const obs::CounterSample& c : grid_counters_.snapshot())
      all.add(c.first, c.second);
  }
  merged.counters = all.snapshot();
  return merged;
}

void ClusterRouter::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  for (const auto& shard : shards_) {
    try {
      shard->close();
    } catch (const service::NetError&) {
      // A dead shard cannot be told to close; its daemon (if any) is
      // already gone and reclaims leases itself.
    }
  }
}

std::size_t ClusterRouter::scatter_leases() const {
  std::lock_guard<OrderedMutex> lock(route_mu_);
  return scatter_.size();
}

bool ClusterRouter::shard_down(std::size_t index) const {
  std::lock_guard<OrderedMutex> lock(route_mu_);
  return health_.at(index).down;
}

std::uint32_t ClusterRouter::down_count() const {
  std::lock_guard<OrderedMutex> lock(route_mu_);
  std::uint32_t down = 0;
  for (const ShardHealth& h : health_)
    if (h.down) ++down;
  return down;
}

std::size_t ClusterRouter::pending_releases() const {
  std::lock_guard<OrderedMutex> lock(route_mu_);
  std::size_t total = 0;
  for (const std::vector<LeaseId>& p : pending_release_) total += p.size();
  return total;
}

bool ClusterRouter::probe(std::size_t index) {
  try {
    (void)shards_.at(index)->stats();
  } catch (const service::NetError&) {
    record_failure(static_cast<std::uint32_t>(index));
    return false;
  }
  record_success(static_cast<std::uint32_t>(index));
  return true;
}

}  // namespace fbc::cluster
