// Cluster-wide stats aggregation: field-wise ServiceStats sums and exact
// MetricsSnapshot merges (CounterRegistry::merge + Histogram::merge are
// both exact and associative, so the merged snapshot is what one giant
// server would have recorded).
//
// Used by the ClusterRouter (stats()/metrics() over its shards) and by
// fbcctl --cluster, which merges snapshots client-side from N daemons.
#pragma once

#include <span>

#include "service/protocol.hpp"

namespace fbc::cluster {

/// Field-wise sum over per-shard stats. Note: a scattered acquire counts
/// once per touched shard in the per-shard `requests`/`leases_granted`
/// fields, so cluster sums are sub-request totals, not job totals -- the
/// router's own grid.* counters carry the job-level view.
[[nodiscard]] service::ServiceStats merge_stats(
    std::span<const service::ServiceStats> shards);

/// Exact merge of per-shard observability snapshots: stats are summed,
/// counters added name-wise, histograms merged bucket-wise. Output name
/// lists stay sorted.
[[nodiscard]] service::MetricsSnapshot merge_metrics(
    std::span<const service::MetricsSnapshot> shards);

}  // namespace fbc::cluster
