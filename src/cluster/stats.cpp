#include "cluster/stats.hpp"

#include <map>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace fbc::cluster {

service::ServiceStats merge_stats(
    std::span<const service::ServiceStats> shards) {
  service::ServiceStats out;
  for (const service::ServiceStats& s : shards) {
    out.requests += s.requests;
    out.request_hits += s.request_hits;
    out.rejected_full += s.rejected_full;
    out.timed_out += s.timed_out;
    out.unserviceable += s.unserviceable;
    out.invalid += s.invalid;
    out.transfer_retries += s.transfer_retries;
    out.transfer_failures += s.transfer_failures;
    out.leases_granted += s.leases_granted;
    out.leases_released += s.leases_released;
    out.active_leases += s.active_leases;
    out.queue_depth += s.queue_depth;
    out.evictions += s.evictions;
    out.bytes_requested += s.bytes_requested;
    out.bytes_missed += s.bytes_missed;
    out.bytes_evicted += s.bytes_evicted;
    out.used_bytes += s.used_bytes;
    out.capacity_bytes += s.capacity_bytes;
    out.resident_files += s.resident_files;
  }
  return out;
}

service::MetricsSnapshot merge_metrics(
    std::span<const service::MetricsSnapshot> shards) {
  service::MetricsSnapshot out;
  {
    std::vector<service::ServiceStats> stats;
    stats.reserve(shards.size());
    for (const service::MetricsSnapshot& s : shards) stats.push_back(s.stats);
    out.stats = merge_stats(stats);
  }
  obs::CounterRegistry counters;
  std::map<std::string, obs::Histogram> histograms;
  for (const service::MetricsSnapshot& s : shards) {
    for (const obs::CounterSample& c : s.counters)
      counters.add(c.first, c.second);
    for (const service::NamedHistogram& h : s.histograms)
      histograms[h.name].merge(h.hist);
  }
  out.counters = counters.snapshot();
  out.histograms.reserve(histograms.size());
  for (auto& [name, hist] : histograms)
    out.histograms.push_back({name, std::move(hist)});
  return out;
}

}  // namespace fbc::cluster
