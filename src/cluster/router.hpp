// ClusterRouter: one ServingEndpoint fronting N BundleServer shards.
//
// Acquire flow:
//   1. Placement splits the bundle into per-shard sub-requests.
//   2. Single part  -> forward to its shard; the shard lease comes back
//      tagged with the shard index in the top byte (lock-free fast path).
//   3. Several parts -> scatter: acquire on each shard in increasing
//      shard order. The cluster grant is the *conjunction* of per-shard
//      grants -- if any shard refuses (QueueFull, Timeout, ...), every
//      sub-lease already granted is rolled back (released) and the
//      client sees the failing shard's status with no residual pins.
//      Gathered grants are recorded in a scatter-lease map under
//      route_mu_ and released shard-by-shard on release().
//
// Lease encoding: the top byte of a router LeaseId is shard index + 1
// for single-shard leases (release needs no router state), and 0 for
// scatter leases (dense ids into the scatter map). Shards themselves
// allocate small dense ids, so the top byte is free in practice; the
// router rejects a shard lease that collides with the tag space.
//
// Lock levels: route_mu_ = 5 and grid_obs_mu_ = 6 sit *below* every
// server-internal level (BundleServer::mu_ = 10...) in the documented
// hierarchy, so holding them while calling into a shard would be legal;
// the router still never does -- shard calls block on staging I/O, and
// no lock should span them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/catalog.hpp"
#include "cluster/config.hpp"
#include "cluster/placement.hpp"
#include "cluster/shard.hpp"
#include "obs/counter.hpp"
#include "service/endpoint.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::cluster {

/// Routes acquire/release over N shards; implements ServingEndpoint so a
/// BundleDaemon can serve a whole cluster on one port.
class ClusterRouter final : public service::ServingEndpoint {
 public:
  /// `shards.size()` must equal `config.shards` (1..128). `catalog` must
  /// outlive the router; `shard_capacity` is one shard's cache size (the
  /// affinity spill threshold is relative to it).
  ClusterRouter(const ClusterConfig& config, const FileCatalog& catalog,
                Bytes shard_capacity,
                std::vector<std::unique_ptr<Shard>> shards);

  ~ClusterRouter() override;

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  service::AcquireResult acquire(const Request& request) override;
  bool release(LeaseId lease) override;

  /// Field-wise sum of per-shard stats (capacity_bytes is the cluster
  /// total). Scattered acquires count once per touched shard.
  [[nodiscard]] service::ServiceStats stats() const override;

  /// Merged per-shard snapshots plus the router's own grid.* counters.
  [[nodiscard]] service::MetricsSnapshot metrics() const override;

  [[nodiscard]] service::EndpointInfo info() const override {
    return {service::EndpointRole::Router, 0,
            static_cast<std::uint32_t>(shards_.size())};
  }
  [[nodiscard]] bool legacy_wire() const override { return false; }

  /// Closes every shard and fails subsequent acquires.
  void close() override;

  /// The placement function (exposed so tests and the fuzz oracle can
  /// predict routing without reaching into the router).
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }

  /// Shard `index`, for per-shard audits in tests.
  [[nodiscard]] Shard& shard(std::size_t index) { return *shards_.at(index); }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Scatter leases currently outstanding (router-held state; single-
  /// shard leases are stateless here).
  [[nodiscard]] std::size_t scatter_leases() const;

 private:
  /// Top byte of a LeaseId: shard index + 1, or 0 for scatter leases.
  static constexpr int kShardShift = 56;
  static constexpr LeaseId kPayloadMask = (LeaseId{1} << kShardShift) - 1;

  service::AcquireResult acquire_single(const SubRequest& part);
  service::AcquireResult acquire_scatter(const PlacementPlan& plan);

  ClusterConfig config_;
  Placement placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> closed_{false};

  // Scatter-lease table: router lease id -> (shard, shard lease) pairs.
  // Held only over map ops, never across shard calls.
  // fbc:lock-level(5)
  // fbc:guards(scatter_)
  // fbc:guards(next_scatter_id_)
  mutable OrderedMutex route_mu_{5, "ClusterRouter::route_mu_"};
  std::unordered_map<LeaseId, std::vector<std::pair<std::uint32_t, LeaseId>>>
      scatter_;
  LeaseId next_scatter_id_ = 1;

  // Router-level counters (job-level view, vs the shards' sub-request
  // view): grid.acquire.single / .scatter / .rollback, grid.release.unknown.
  // fbc:lock-level(6)
  // fbc:guards(grid_counters_)
  mutable OrderedMutex grid_obs_mu_{6, "ClusterRouter::grid_obs_mu_"};
  obs::CounterRegistry grid_counters_;
};

}  // namespace fbc::cluster
