// ClusterRouter: one ServingEndpoint fronting N BundleServer shards.
//
// Acquire flow:
//   1. Placement splits the bundle into per-shard sub-requests, skipping
//      shards currently marked down (degraded placement -- see below).
//   2. Single part  -> forward to its shard; the shard lease comes back
//      tagged with the shard index in the top byte (lock-free fast path).
//   3. Several parts -> scatter: acquire on each shard in increasing
//      shard order. The cluster grant is the *conjunction* of per-shard
//      grants -- if any shard refuses (QueueFull, Timeout, ...), every
//      sub-lease already granted is rolled back (released) and the
//      client sees the failing shard's status with no residual pins.
//      Gathered grants are recorded in a scatter-lease map under
//      route_mu_ and released shard-by-shard on release().
//
// Shard health: a shard whose call throws NetError `down_threshold`
// consecutive times is marked down. Down shards are planned around --
// requests re-route to the next live shard on the consistent-hash ring
// (affinity bundles fall back to their hash partition) and a NetError
// mid-acquire triggers a transparent re-plan, so clients never see a
// dead shard as anything but a reroute. Every `probe_ms` one request is
// let through to the dead shard as an opportunistic recovery probe (its
// failure is invisible: the router just reroutes again); the first
// successful call marks the shard up and flushes releases deferred while
// it was gone. probe() forces such a probe explicitly.
//
// Releases that cannot reach their shard are *deferred*, not dropped:
// the lease id is parked under route_mu_ and replayed when the shard
// recovers, so a shard crash never leaks pins held on survivors and a
// rebooted shard that kept its state is fully drained.
//
// Lease encoding: the top byte of a router LeaseId is shard index + 1
// for single-shard leases (release needs no router state), and 0 for
// scatter leases (dense ids into the scatter map). Shards themselves
// allocate small dense ids, so the top byte is free in practice; the
// router rejects a shard lease that collides with the tag space.
//
// Lock levels: route_mu_ = 5 and grid_obs_mu_ = 6 sit *below* every
// server-internal level (BundleServer::mu_ = 10...) in the documented
// hierarchy, so holding them while calling into a shard would be legal;
// the router still never does -- shard calls block on staging I/O, and
// no lock should span them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/catalog.hpp"
#include "cluster/config.hpp"
#include "cluster/placement.hpp"
#include "cluster/shard.hpp"
#include "obs/counter.hpp"
#include "service/endpoint.hpp"
#include "util/ordered_mutex.hpp"

namespace fbc::cluster {

/// Routes acquire/release over N shards; implements ServingEndpoint so a
/// BundleDaemon can serve a whole cluster on one port.
class ClusterRouter final : public service::ServingEndpoint {
 public:
  /// `shards.size()` must equal `config.shards` (1..128). `catalog` must
  /// outlive the router; `shard_capacity` is one shard's cache size (the
  /// affinity spill threshold is relative to it).
  ClusterRouter(const ClusterConfig& config, const FileCatalog& catalog,
                Bytes shard_capacity,
                std::vector<std::unique_ptr<Shard>> shards);

  ~ClusterRouter() override;

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  service::AcquireResult acquire(const Request& request) override;
  bool release(LeaseId lease) override;

  /// Field-wise sum of per-shard stats (capacity_bytes is the cluster
  /// total). Scattered acquires count once per touched shard. Shards
  /// that are down (or fail the snapshot call) are skipped and flagged
  /// under grid.stats.partial instead of failing the whole snapshot.
  [[nodiscard]] service::ServiceStats stats() const override;

  /// Merged per-shard snapshots plus the router's own grid.* counters.
  /// Dead shards are skipped, same as stats().
  [[nodiscard]] service::MetricsSnapshot metrics() const override;

  [[nodiscard]] service::EndpointInfo info() const override {
    return {service::EndpointRole::Router, 0,
            static_cast<std::uint32_t>(shards_.size()), down_count()};
  }
  [[nodiscard]] bool legacy_wire() const override { return false; }

  /// Closes every shard and fails subsequent acquires.
  void close() override;

  /// The placement function (exposed so tests and the fuzz oracle can
  /// predict routing without reaching into the router).
  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }

  /// Shard `index`, for per-shard audits in tests.
  [[nodiscard]] Shard& shard(std::size_t index) { return *shards_.at(index); }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Scatter leases currently outstanding (router-held state; single-
  /// shard leases are stateless here).
  [[nodiscard]] std::size_t scatter_leases() const;

  /// Whether shard `index` is currently marked down.
  [[nodiscard]] bool shard_down(std::size_t index) const;

  /// Shards currently marked down.
  [[nodiscard]] std::uint32_t down_count() const;

  /// Releases deferred for down shards, awaiting recovery flush.
  [[nodiscard]] std::size_t pending_releases() const;

  /// Forces a recovery probe of shard `index` (one stats round trip),
  /// regardless of the probe_ms schedule: on success the shard is marked
  /// up and its deferred releases are flushed. Returns true when the
  /// shard is up afterwards. The replay harnesses use this to make
  /// recovery deterministic; fbcgrid could drive it from a supervisor.
  bool probe(std::size_t index);

 private:
  using Clock = std::chrono::steady_clock;

  /// Thrown internally when a shard call dies with NetError; carries the
  /// shard index so acquire() can exclude it and re-plan. Never escapes
  /// the router.
  struct ShardUnreachable {
    std::uint32_t shard;
  };

  /// Top byte of a LeaseId: shard index + 1, or 0 for scatter leases.
  static constexpr int kShardShift = 56;
  static constexpr LeaseId kPayloadMask = (LeaseId{1} << kShardShift) - 1;

  service::AcquireResult acquire_single(const SubRequest& part);
  service::AcquireResult acquire_scatter(const PlacementPlan& plan);

  /// One shard acquire with health accounting: success (any status)
  /// resets the failure streak, NetError becomes ShardUnreachable.
  service::AcquireResult shard_acquire(std::uint32_t shard,
                                       const Request& request);

  /// Delivers one sub-release, deferring it if the shard is down or the
  /// call dies with NetError. Returns true when delivered; `*ok`
  /// receives the shard's verdict (valid only when delivered).
  bool try_release(std::uint32_t shard, LeaseId lease, bool* ok) const;

  /// Routable shards: up, or down with a probe slot claimed, minus
  /// `excluded` (shards that already failed this request).
  [[nodiscard]] std::vector<bool> routable_snapshot(
      const std::vector<bool>& excluded) const;

  /// Whether a non-acquire call (release/stats) should attempt this
  /// shard now: up, or down with a probe slot claimed.
  [[nodiscard]] bool should_attempt(std::uint32_t shard) const;

  /// Health accounting around every shard round trip. record_success
  /// resets the failure streak and, on a down -> up transition, flushes
  /// the shard's deferred releases. record_failure marks the shard down
  /// (and drops its connection pool) after down_threshold consecutive
  /// NetErrors.
  void record_success(std::uint32_t shard) const;
  void record_failure(std::uint32_t shard) const;

  /// Parks a release for a currently unreachable shard (replayed by
  /// record_success on recovery).
  void defer_release(std::uint32_t shard, LeaseId lease) const;

  void bump(const char* counter) const;

  ClusterConfig config_;
  Placement placement_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> closed_{false};

  /// Per-shard health (guarded by route_mu_): consecutive NetErrors,
  /// down flag, and the next probe admission time while down.
  struct ShardHealth {
    std::uint32_t consecutive = 0;
    bool down = false;
    Clock::time_point next_probe{};
  };

  // Scatter-lease table, shard health, and deferred releases: held only
  // over map/vector ops, never across shard calls.
  // fbc:lock-level(5)
  // fbc:guards(scatter_)
  // fbc:guards(next_scatter_id_)
  // fbc:guards(health_)
  // fbc:guards(pending_release_)
  mutable OrderedMutex route_mu_{5, "ClusterRouter::route_mu_"};
  std::unordered_map<LeaseId, std::vector<std::pair<std::uint32_t, LeaseId>>>
      scatter_;
  LeaseId next_scatter_id_ = 1;
  mutable std::vector<ShardHealth> health_;
  mutable std::vector<std::vector<LeaseId>> pending_release_;

  // Router-level counters (job-level view, vs the shards' sub-request
  // view): grid.acquire.single / .scatter / .rollback / .rerouted,
  // grid.release.unknown / .partial / .deferred, grid.shard.down /
  // .recovered, grid.stats.partial.
  // fbc:lock-level(6)
  // fbc:guards(grid_counters_)
  mutable OrderedMutex grid_obs_mu_{6, "ClusterRouter::grid_obs_mu_"};
  mutable obs::CounterRegistry grid_counters_;
};

}  // namespace fbc::cluster
