// Placement: maps bundles onto shards.
//
// Two strategies (ClusterConfig::placement):
//
//  - HashFile: every file has one home shard, found on a consistent-hash
//    ring (shards x vnodes points; lookup = first ring point clockwise of
//    hash(file)). Bundles partition file-by-file, so acquires usually
//    scatter but no file is ever cached on two shards.
//
//  - BundleAffinity: the whole canonical file set hashes to one home
//    shard, so a job's files are co-located and acquire is single-shard.
//    Bundles bigger than spill_threshold x shard capacity fall back to
//    the HashFile scatter (the split-bundle case).
//
// Placement is pure and deterministic: same config + catalog => same plan
// for every request, which is what lets fbcload and fbcgrid agree without
// coordination and what the serial-vs-concurrent fuzz oracle relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "cluster/config.hpp"

namespace fbc::cluster {

/// One shard's slice of a bundle.
struct SubRequest {
  std::uint32_t shard = 0;
  Request request;
};

/// How a bundle lands on the cluster: one part (single-shard fast path)
/// or several (scatter/gather with cross-shard lease conjunction). Parts
/// are in strictly increasing shard order -- the router acquires in that
/// order so concurrent split bundles cannot deadlock or livelock.
struct PlacementPlan {
  std::vector<SubRequest> parts;

  /// True when a live-filtered plan diverged from the healthy placement
  /// (some file or bundle home walked past a down shard). The router
  /// counts these under grid.acquire.rerouted.
  bool rerouted = false;

  [[nodiscard]] bool split() const noexcept { return parts.size() > 1; }
};

/// Deterministic bundle-to-shard mapping for one cluster.
class Placement {
 public:
  /// `shard_capacity` is one shard's cache size (the spill threshold is
  /// relative to it). Precondition: config.shards >= 1, vnodes >= 1.
  Placement(const ClusterConfig& config, const FileCatalog& catalog,
            Bytes shard_capacity);

  /// Home shard of one file on the consistent-hash ring.
  [[nodiscard]] std::uint32_t file_shard(FileId id) const;

  /// Home shard of one file among the live shards: the ring walk
  /// continues clockwise past down shards' points, so each file lands on
  /// the *next* live shard and moves back home when its shard recovers.
  /// Precondition: live.size() == shard_count(), at least one true.
  [[nodiscard]] std::uint32_t file_shard(FileId id,
                                         const std::vector<bool>& live) const;

  /// Home shard of a whole bundle (affinity placement). Precondition:
  /// `request` is canonical.
  [[nodiscard]] std::uint32_t bundle_home(const Request& request) const;

  /// Splits `request` into per-shard sub-requests per the configured
  /// strategy. Precondition: `request` is canonical and non-empty.
  [[nodiscard]] PlacementPlan plan(const Request& request) const;

  /// Degraded placement: plan() restricted to shards where live[shard]
  /// is true. An affinity bundle whose home shard is down falls back to
  /// its hash partition over the live shards; hash placement walks each
  /// file clockwise past down ring points. Returns an empty plan when no
  /// shard is live (the router reports ShardsDown). Precondition:
  /// live.size() == shard_count().
  [[nodiscard]] PlacementPlan plan(const Request& request,
                                   const std::vector<bool>& live) const;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return config_.shards;
  }

 private:
  ClusterConfig config_;
  const FileCatalog* catalog_;
  Bytes shard_capacity_;
  /// Sorted (hash, shard) ring points; lookup is upper_bound with wrap.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace fbc::cluster
