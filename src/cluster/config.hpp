// ClusterConfig: knobs for the sharded serving cluster (fbcgrid).
//
// A cluster is N BundleServer shards behind one ClusterRouter. The config
// picks how bundles map to shards (placement strategy), when an affinity
// bundle is too big for one shard and must scatter (spill_threshold), and
// whether the shared MSS grows replica sites for replica-aware fetch.
//
// Lives in namespace fbc::cluster -- fbc::ClusterConfig (grid/cluster.hpp)
// is the *simulation*-level multi-site model; this one configures the
// live serving cluster. fbclint L003 checks this field list against the
// flag surface in tools/serving_common.hpp (add_cluster_options /
// cluster_config_from_cli).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace fbc::cluster {

/// How the router maps a bundle onto shards.
enum class PlacementMode : std::uint8_t {
  /// Partition every bundle file-by-file over a consistent-hash ring:
  /// each file has one home shard regardless of which bundle asks for it,
  /// so no file is ever cached twice, but most bundles scatter.
  HashFile,
  /// Hash the *canonical file set* to pick one home shard for the whole
  /// bundle: the job's files are co-located, acquire stays single-shard
  /// (one lease, no cross-shard conjunction), at the cost of popular
  /// files being duplicated on several shards. Bundles bigger than
  /// spill_threshold x shard capacity fall back to HashFile scatter.
  BundleAffinity,
};

/// Parses "hash" | "affinity" (the --placement flag values).
inline PlacementMode parse_placement(const std::string& name) {
  if (name == "hash") return PlacementMode::HashFile;
  if (name == "affinity") return PlacementMode::BundleAffinity;
  throw std::invalid_argument("unknown placement mode: " + name +
                              " (expected affinity|hash)");
}

inline const char* to_string(PlacementMode mode) noexcept {
  switch (mode) {
    case PlacementMode::HashFile:
      return "hash";
    case PlacementMode::BundleAffinity:
      return "affinity";
  }
  return "?";
}

/// Configuration for one ClusterRouter and the shards behind it.
struct ClusterConfig {
  /// BundleServer shards behind the router.
  std::uint32_t shards = 4;

  /// Bundle placement strategy.
  PlacementMode placement = PlacementMode::BundleAffinity;

  /// Affinity bundles whose bytes exceed this fraction of one shard's
  /// cache capacity scatter file-by-file instead (a bundle near shard
  /// capacity would evict everything its home shard holds; splitting it
  /// is the lesser evil -- ISSUE calls this the split-bundle fallback).
  double spill_threshold = 0.5;

  /// Consistent-hash virtual nodes per shard: more vnodes = smoother
  /// file distribution, slightly larger ring.
  std::uint32_t vnodes = 64;

  /// Extra MSS replica sites for replica-aware fetch (0 = plain MSS).
  std::uint32_t replica_sites = 0;

  /// Hottest files replicated to every replica site before serving.
  std::uint32_t replicate_hot = 0;

  /// Idle connections a RemoteShard keeps per shard daemon. Checkins past
  /// the cap drop the connection instead of pooling it, so a burst of
  /// concurrent acquires cannot grow the pool without bound.
  std::size_t remote_pool_cap = 8;

  /// Consecutive NetError failures after which the router marks a shard
  /// down and stops routing requests to it (degraded placement).
  std::uint32_t down_threshold = 3;

  /// Milliseconds between recovery probes of a down shard. One request
  /// per interval is routed at the dead shard as an opportunistic probe
  /// (a failure just re-routes, so clients never see it). 0 probes on
  /// every request -- deterministic, used by the replay harnesses.
  std::uint64_t probe_ms = 500;
};

}  // namespace fbc::cluster
