#include "cluster/placement.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace fbc::cluster {
namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for ring points and file
/// ids. Deterministic across platforms (no std::hash).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Placement::Placement(const ClusterConfig& config, const FileCatalog& catalog,
                     Bytes shard_capacity)
    : config_(config), catalog_(&catalog), shard_capacity_(shard_capacity) {
  if (config_.shards == 0)
    throw std::invalid_argument("placement needs at least one shard");
  if (config_.vnodes == 0)
    throw std::invalid_argument("placement needs at least one vnode");
  ring_.reserve(static_cast<std::size_t>(config_.shards) * config_.vnodes);
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    for (std::uint32_t v = 0; v < config_.vnodes; ++v) {
      // Distinct stream per (shard, vnode); the +1s keep 0 out of the
      // mixer's weak fixed point.
      const std::uint64_t point =
          mix64((static_cast<std::uint64_t>(shard) + 1) * 0x9e3779b97f4a7c15ULL +
                v + 1);
      ring_.emplace_back(point, shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t Placement::file_shard(FileId id) const {
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(id) + 1);
  // First ring point clockwise of h, wrapping past the top.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t value, const auto& entry) { return value < entry.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::uint32_t Placement::file_shard(FileId id,
                                    const std::vector<bool>& live) const {
  assert(live.size() == config_.shards);
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(id) + 1);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), h,
      [](std::uint64_t value, const auto& entry) { return value < entry.first; });
  if (it == ring_.end()) it = ring_.begin();
  // Walk clockwise past down shards' points. One full lap visits every
  // shard's vnodes, so a live shard is always found if one exists.
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (live[it->second]) return it->second;
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  throw std::invalid_argument("placement: no live shard");
}

std::uint32_t Placement::bundle_home(const Request& request) const {
  assert(request.is_canonical());
  const std::uint64_t h =
      mix64(static_cast<std::uint64_t>(hash_file_span(request.files)));
  return static_cast<std::uint32_t>(h % config_.shards);
}

PlacementPlan Placement::plan(const Request& request) const {
  assert(request.is_canonical());
  assert(!request.empty());
  PlacementPlan out;
  if (config_.placement == PlacementMode::BundleAffinity) {
    const Bytes bytes = catalog_->request_bytes(request);
    const double limit =
        config_.spill_threshold * static_cast<double>(shard_capacity_);
    if (config_.shards == 1 || static_cast<double>(bytes) <= limit) {
      out.parts.push_back({bundle_home(request), request});
      return out;
    }
    // Split-bundle fallback: too big for one shard, scatter by file.
  }
  // Partition file-by-file, buckets emitted in increasing shard order.
  std::vector<std::vector<FileId>> buckets(config_.shards);
  for (FileId id : request.files) buckets[file_shard(id)].push_back(id);
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    if (buckets[shard].empty()) continue;
    Request sub;
    sub.files = std::move(buckets[shard]);
    // Per-shard slices of a canonical bundle are already sorted+unique.
    assert(sub.is_canonical());
    out.parts.push_back({shard, std::move(sub)});
  }
  return out;
}

PlacementPlan Placement::plan(const Request& request,
                              const std::vector<bool>& live) const {
  assert(request.is_canonical());
  assert(!request.empty());
  assert(live.size() == config_.shards);
  if (std::all_of(live.begin(), live.end(), [](bool up) { return up; }))
    return plan(request);
  PlacementPlan out;
  if (std::none_of(live.begin(), live.end(), [](bool up) { return up; }))
    return out;  // empty: the router reports ShardsDown
  if (config_.placement == PlacementMode::BundleAffinity) {
    const Bytes bytes = catalog_->request_bytes(request);
    const double limit =
        config_.spill_threshold * static_cast<double>(shard_capacity_);
    if (config_.shards == 1 || static_cast<double>(bytes) <= limit) {
      const std::uint32_t home = bundle_home(request);
      if (live[home]) {
        out.parts.push_back({home, request});
        return out;
      }
      // Home is down: fall back to the bundle's hash partition over the
      // live shards (the degraded-placement rule).
      out.rerouted = true;
    }
  }
  std::vector<std::vector<FileId>> buckets(config_.shards);
  for (FileId id : request.files) {
    const std::uint32_t home = file_shard(id);
    if (live[home]) {
      buckets[home].push_back(id);
    } else {
      buckets[file_shard(id, live)].push_back(id);
      out.rerouted = true;
    }
  }
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    if (buckets[shard].empty()) continue;
    Request sub;
    sub.files = std::move(buckets[shard]);
    assert(sub.is_canonical());
    out.parts.push_back({shard, std::move(sub)});
  }
  return out;
}

}  // namespace fbc::cluster
