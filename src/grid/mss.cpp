#include "grid/mss.hpp"

#include <stdexcept>

namespace fbc {

std::vector<StorageTier> default_tiers() {
  return {
      StorageTier{"disk-pool", /*latency_s=*/0.05,
                  /*bandwidth_bps=*/400.0 * 1024 * 1024},
      StorageTier{"local-tape", /*latency_s=*/8.0,
                  /*bandwidth_bps=*/120.0 * 1024 * 1024},
      StorageTier{"remote-mss", /*latency_s=*/2.0,
                  /*bandwidth_bps=*/25.0 * 1024 * 1024},
  };
}

MassStorageSystem::MassStorageSystem(std::vector<StorageTier> tiers,
                                     const FileCatalog& catalog)
    : tiers_(std::move(tiers)), catalog_(&catalog) {
  if (tiers_.empty())
    throw std::invalid_argument("MassStorageSystem: need at least one tier");
  placement_.assign(catalog.count(), 0);
}

void MassStorageSystem::place_file(FileId id, std::size_t tier_index) {
  if (!catalog_->valid(id))
    throw std::invalid_argument("MassStorageSystem::place_file: bad file id");
  if (tier_index >= tiers_.size())
    throw std::invalid_argument("MassStorageSystem::place_file: bad tier");
  if (placement_.size() <= id) placement_.resize(id + 1, 0);
  placement_[id] = static_cast<std::uint32_t>(tier_index);
}

std::size_t MassStorageSystem::tier_of(FileId id) const {
  if (id >= placement_.size())
    throw std::invalid_argument("MassStorageSystem::tier_of: bad file id");
  return placement_[id];
}

double MassStorageSystem::fetch_seconds(FileId id) const {
  return tiers_[tier_of(id)].fetch_seconds(catalog_->size_of(id));
}

}  // namespace fbc
