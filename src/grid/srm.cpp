#include "grid/srm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/log.hpp"

namespace fbc {

double SrmReport::throughput_jobs_per_hour() const noexcept {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(outcomes.size()) / makespan_s * 3600.0;
}

StorageResourceManager::StorageResourceManager(const SrmConfig& config,
                                               const StorageBackend& mss,
                                               ReplacementPolicy& policy)
    : config_(config),
      mss_(&mss),
      policy_(&policy),
      cache_(config.cache_bytes, mss.catalog()) {
  if (config_.service_slots == 0)
    throw std::invalid_argument("SRM: service_slots must be >= 1");
  slots_.resize(config_.service_slots);
}

void StorageResourceManager::release_finished(double now) {
  for (Slot& slot : slots_) {
    if (!slot.pinned.empty() && slot.finish_s <= now) {
      for (FileId id : slot.pinned) cache_.unpin(id);
      slot.pinned.clear();
    }
  }
}

double StorageResourceManager::stage_files(const Request& request,
                                           JobOutcome& outcome,
                                           std::vector<FileId>& pinned) {
  policy_->on_job_arrival(request, cache_);

  auto pin_once = [&](FileId id) {
    cache_.pin(id);
    pinned.push_back(id);
  };

  const std::vector<FileId> missing = cache_.missing_files(request);
  if (missing.empty()) {
    outcome.request_hit = true;
    policy_->on_request_hit(request, cache_);
    for (FileId id : request.files) pin_once(id);
    return 0.0;
  }

  const Bytes missing_bytes = mss_->catalog().bundle_bytes(missing);
  // Pin the resident part of the bundle before any eviction decision.
  for (FileId id : request.files) {
    if (cache_.contains(id)) pin_once(id);
  }
  if (cache_.free_bytes() < missing_bytes) {
    const Bytes needed = missing_bytes - cache_.free_bytes();
    for (FileId victim : policy_->select_victims(request, needed, cache_)) {
      cache_.evict(victim);  // throws on pinned files (policy bug)
      policy_->on_file_evicted(victim);
    }
    if (cache_.free_bytes() < missing_bytes)
      throw std::runtime_error("SRM: policy freed insufficient space");
  }
  for (FileId id : missing) {
    cache_.insert(id);
    pin_once(id);
  }
  policy_->on_files_loaded(request, missing, cache_);

  outcome.bytes_staged += missing_bytes;
  return config_.transfers.stage_seconds(missing, *mss_);
}

SrmReport StorageResourceManager::run(std::span<const GridJob> jobs) {
  SrmReport report;
  report.outcomes.resize(jobs.size());

  // Pending jobs in arrival order (the input precondition); served in
  // config order (FCFS keeps this order, SJF picks the smallest arrived
  // bundle at each slot-free instant).
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  while (!pending.empty()) {
    // The next job starts on the slot that frees earliest.
    auto slot_it = std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.finish_s < b.finish_s; });
    Slot& slot = *slot_it;

    // Decision instant: the slot is free and at least one job has arrived.
    const double decision_s =
        std::max(slot.finish_s, jobs[pending.front()].arrival_s);

    // Choose among the jobs that have arrived by then.
    std::size_t chosen_pos = 0;
    if (config_.order == ServiceOrder::ShortestBundleFirst) {
      Bytes best_bytes = std::numeric_limits<Bytes>::max();
      for (std::size_t p = 0; p < pending.size(); ++p) {
        if (jobs[pending[p]].arrival_s > decision_s) break;  // sorted
        const Bytes bytes =
            mss_->catalog().request_bytes(jobs[pending[p]].request);
        if (bytes < best_bytes) {
          best_bytes = bytes;
          chosen_pos = p;
        }
      }
    }
    const std::size_t job_index = pending[chosen_pos];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(chosen_pos));
    const GridJob& job = jobs[job_index];

    JobOutcome outcome;
    outcome.start_s = std::max(slot.finish_s, job.arrival_s);
    release_finished(outcome.start_s);

    const Bytes bundle_bytes = mss_->catalog().request_bytes(job.request);
    if (bundle_bytes > cache_.capacity()) {
      FBC_LOG(Warn) << "SRM: skipping unserviceable job "
                    << job.request.to_string();
      outcome.staged_s = outcome.start_s;
      outcome.finish_s = outcome.start_s;
      report.outcomes[job_index] = outcome;
      continue;
    }

    // With concurrent slots, the bundle must fit alongside every still-
    // running job's pinned working set; if it cannot, the job waits for
    // enough predecessors to complete. (Bytes pinned by the bundle itself
    // do not conflict: shared pinned files stay resident for free.)
    for (;;) {
      Bytes conflicting = 0;
      for (const Slot& s : slots_) {
        for (FileId id : s.pinned) {
          if (!job.request.contains(id))
            conflicting += mss_->catalog().size_of(id);
        }
      }
      if (bundle_bytes + conflicting <= cache_.capacity()) break;
      // Advance to the next completion strictly after `start`.
      double next_finish = std::numeric_limits<double>::infinity();
      for (const Slot& s : slots_) {
        if (!s.pinned.empty() && s.finish_s > outcome.start_s)
          next_finish = std::min(next_finish, s.finish_s);
      }
      if (!std::isfinite(next_finish))
        throw std::runtime_error(
            "SRM: job cannot fit alongside pinned working sets");
      outcome.start_s = next_finish;
      release_finished(outcome.start_s);
    }

    double stage = 0.0;
    std::vector<FileId> pinned;
    if (job.model == ServiceModel::BundleAtATime) {
      stage = stage_files(job.request, outcome, pinned);
    } else {
      // One file at a time (paper §2): each file is staged and processed
      // as its own single-file request, serially; every file of the job
      // stays pinned until the job completes.
      for (FileId id : job.request.files) {
        Request single({id});
        stage += stage_files(single, outcome, pinned);
      }
      outcome.request_hit = outcome.bytes_staged == 0;
    }

    outcome.staged_s = outcome.start_s + stage;
    outcome.finish_s = outcome.staged_s + job.service_s;
    slot.finish_s = outcome.finish_s;
    slot.pinned = std::move(pinned);
    // Single-slot mode releases immediately at the next job's start, which
    // reproduces the classic non-overlapping service discipline.

    report.response_s.add(outcome.finish_s - job.arrival_s);
    report.stage_s.add(stage);
    report.bytes_staged += outcome.bytes_staged;
    if (outcome.request_hit) ++report.request_hits;
    report.makespan_s = std::max(report.makespan_s, outcome.finish_s);
    report.outcomes[job_index] = outcome;
  }

  // Drain: release every outstanding pin.
  release_finished(std::numeric_limits<double>::infinity());
  return report;
}

}  // namespace fbc
