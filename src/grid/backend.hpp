// StorageBackend: where the SRM fetches files from when they miss the
// disk cache. Implemented by MassStorageSystem (single placement per
// file) and ReplicaManager (multiple replica sites, cheapest wins), so
// the SRM and the transfer scheduler are independent of the replication
// strategy.
#pragma once

#include "cache/catalog.hpp"
#include "cache/types.hpp"

namespace fbc {

/// Abstract fetch-cost provider (see file comment).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// The catalog file sizes are resolved against.
  [[nodiscard]] virtual const FileCatalog& catalog() const noexcept = 0;

  /// Seconds to fetch `id` into the cache over one transfer stream.
  [[nodiscard]] virtual double fetch_seconds(FileId id) const = 0;
};

}  // namespace fbc
