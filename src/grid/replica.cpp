#include "grid/replica.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fbc {

ReplicaManager::ReplicaManager(std::vector<ReplicaSite> sites,
                               const FileCatalog& catalog)
    : sites_(std::move(sites)), catalog_(&catalog) {
  if (sites_.empty())
    throw std::invalid_argument("ReplicaManager: need at least one site");
  replicas_.resize(sites_.size());
  for (auto& bitmap : replicas_) bitmap.resize(catalog.count(), false);
  used_.resize(sites_.size(), 0);

  // Order non-origin sites by fetch speed for a representative 100 MiB
  // file, fastest first.
  speed_order_.resize(sites_.size() > 1 ? sites_.size() - 1 : 0);
  std::iota(speed_order_.begin(), speed_order_.end(), 1);
  std::sort(speed_order_.begin(), speed_order_.end(),
            [this](std::size_t a, std::size_t b) {
              const Bytes probe = 100 * MiB;
              return sites_[a].tier.fetch_seconds(probe) <
                     sites_[b].tier.fetch_seconds(probe);
            });
}

bool ReplicaManager::has_replica(FileId id, std::size_t site_index) const {
  if (!catalog_->valid(id))
    throw std::invalid_argument("ReplicaManager: bad file id");
  if (site_index >= sites_.size())
    throw std::invalid_argument("ReplicaManager: bad site index");
  if (site_index == 0) return true;  // origin holds everything
  return replicas_[site_index][id];
}

void ReplicaManager::add_replica(FileId id, std::size_t site_index) {
  if (has_replica(id, site_index)) return;  // validates arguments too
  const Bytes size = catalog_->size_of(id);
  if (used_[site_index] + size > sites_[site_index].replica_capacity)
    throw std::runtime_error("ReplicaManager: site '" +
                             sites_[site_index].name +
                             "' replica budget exceeded");
  replicas_[site_index][id] = true;
  used_[site_index] += size;
}

void ReplicaManager::drop_replica(FileId id, std::size_t site_index) {
  if (site_index == 0) return;  // origin copies are permanent
  if (!has_replica(id, site_index)) return;
  replicas_[site_index][id] = false;
  used_[site_index] -= catalog_->size_of(id);
}

Bytes ReplicaManager::replica_bytes(std::size_t site_index) const {
  if (site_index >= sites_.size())
    throw std::invalid_argument("ReplicaManager: bad site index");
  return used_[site_index];
}

std::size_t ReplicaManager::best_site(FileId id) const {
  if (!catalog_->valid(id))
    throw std::invalid_argument("ReplicaManager: bad file id");
  const Bytes size = catalog_->size_of(id);
  std::size_t best = 0;
  double best_time = sites_[0].tier.fetch_seconds(size);
  for (std::size_t s = 1; s < sites_.size(); ++s) {
    if (!replicas_[s][id]) continue;
    const double t = sites_[s].tier.fetch_seconds(size);
    if (t < best_time) {
      best_time = t;
      best = s;
    }
  }
  return best;
}

double ReplicaManager::fetch_seconds(FileId id) const {
  return sites_[best_site(id)].tier.fetch_seconds(catalog_->size_of(id));
}

void ReplicaManager::replicate_by_popularity(
    std::span<const std::uint64_t> access_counts) {
  // Files in decreasing popularity (stable by id for determinism).
  std::vector<FileId> order(catalog_->count());
  std::iota(order.begin(), order.end(), 0);
  auto count_of = [&access_counts](FileId id) -> std::uint64_t {
    return id < access_counts.size() ? access_counts[id] : 0;
  };
  std::sort(order.begin(), order.end(), [&](FileId a, FileId b) {
    if (count_of(a) != count_of(b)) return count_of(a) > count_of(b);
    return a < b;
  });

  for (FileId id : order) {
    if (count_of(id) == 0) break;  // the cold tail is never replicated
    const Bytes size = catalog_->size_of(id);
    for (std::size_t site_index : speed_order_) {
      if (replicas_[site_index][id]) break;  // already as fast as possible
      if (used_[site_index] + size <= sites_[site_index].replica_capacity) {
        add_replica(id, site_index);
        break;
      }
    }
  }
}

}  // namespace fbc
