#include "grid/transfer.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace fbc {

double TransferModel::stage_seconds(std::span<const FileId> files,
                                    const StorageBackend& mss) const {
  if (files.empty()) return 0.0;
  const std::size_t streams = std::max<std::size_t>(1, max_parallel);

  std::vector<double> durations;
  durations.reserve(files.size());
  for (FileId id : files) durations.push_back(mss.fetch_seconds(id));
  // LPT: longest first onto the least-loaded stream.
  std::sort(durations.begin(), durations.end(), std::greater<>());

  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (std::size_t s = 0; s < streams; ++s) loads.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    const double load = loads.top() + d;
    loads.pop();
    loads.push(load);
    makespan = std::max(makespan, load);
  }
  return makespan;
}

}  // namespace fbc
