// StorageResourceManager: the timed job-service loop of an SRM host.
//
// Where the cache Simulator measures byte ratios, the SRM measures *time*:
// each job arrives at some instant, waits for the server, has its missing
// files staged from the MSS (through the TransferModel's parallel
// streams), then runs for its processing time. This realizes the paper's
// future-work directions (§6): transfer- and processing-time-aware
// service, including the hybrid mix of one-file-at-a-time and
// bundle-at-a-time jobs.
#pragma once

#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/policy.hpp"
#include "grid/backend.hpp"
#include "grid/transfer.hpp"
#include "util/stats.hpp"

namespace fbc {

/// How a job consumes its bundle (paper §2 service models).
enum class ServiceModel {
  BundleAtATime,  ///< all files must be resident simultaneously
  FileAtATime,    ///< files staged and processed one by one
};

/// One job submitted to the SRM.
struct GridJob {
  Request request;
  /// Submission instant, seconds from simulation start (non-decreasing
  /// across the job vector).
  double arrival_s = 0.0;
  /// CPU/processing time once the data is staged, seconds.
  double service_s = 0.0;
  ServiceModel model = ServiceModel::BundleAtATime;
};

/// Per-job outcome.
struct JobOutcome {
  double start_s = 0.0;     ///< when the SRM began staging
  double staged_s = 0.0;    ///< when all inputs were resident
  double finish_s = 0.0;    ///< when processing completed
  Bytes bytes_staged = 0;   ///< bytes moved from the MSS for this job
  bool request_hit = false; ///< whole bundle already resident at start
  /// finish - arrival: the response time the user experiences.
  [[nodiscard]] double response_s(double arrival_s) const noexcept {
    return finish_s - arrival_s;
  }
};

/// Aggregate service report.
struct SrmReport {
  /// outcomes[i] corresponds to jobs[i] regardless of service order.
  std::vector<JobOutcome> outcomes;
  RunningStats response_s;   ///< per-job response times
  RunningStats stage_s;      ///< per-job staging times
  double makespan_s = 0.0;   ///< completion time of the last job
  Bytes bytes_staged = 0;    ///< total data moved from the MSS
  std::uint64_t request_hits = 0;

  /// Serviced jobs per hour of simulated time.
  [[nodiscard]] double throughput_jobs_per_hour() const noexcept;
};

/// Order in which waiting jobs are started (paper §1.1: "The requests are
/// serviced in some order: first come first serve (FCFS), shortest job
/// first (SJF), etc.").
enum class ServiceOrder {
  Fcfs,               ///< arrival order
  ShortestBundleFirst,///< smallest total bundle bytes among arrived jobs
};

/// Configuration of the SRM service loop.
struct SrmConfig {
  Bytes cache_bytes = 0;
  TransferModel transfers = {};
  /// Number of jobs that may be in service simultaneously. With more than
  /// one slot, the working sets of all in-flight jobs are pinned in the
  /// cache for their whole duration (staging + processing) -- the paper's
  /// §6 "duration of time to retain the file in the cache for processing"
  /// extension -- and replacement decisions must work around them.
  std::size_t service_slots = 1;
  /// Non-preemptive start order among jobs that have arrived.
  ServiceOrder order = ServiceOrder::Fcfs;
};

/// SRM service loop: jobs start in arrival order on the next free service
/// slot; the disk cache persists across jobs under the supplied
/// replacement policy.
class StorageResourceManager {
 public:
  /// `mss` and `policy` must outlive the SRM.
  StorageResourceManager(const SrmConfig& config, const StorageBackend& mss,
                         ReplacementPolicy& policy);

  /// Services `jobs` (sorted by arrival_s) and returns the timing report.
  SrmReport run(std::span<const GridJob> jobs);

  [[nodiscard]] const DiskCache& cache() const noexcept { return cache_; }

 private:
  /// One occupied service slot.
  struct Slot {
    double finish_s = 0.0;
    std::vector<FileId> pinned;  ///< pins released when the job completes
  };

  /// Ensures the request's files are resident (evicting via the policy if
  /// needed), pins them (recorded in `pinned`), and returns the staging
  /// makespan. Byte accounting goes to `outcome`.
  double stage_files(const Request& request, JobOutcome& outcome,
                     std::vector<FileId>& pinned);

  /// Releases every slot whose job has completed by `now`.
  void release_finished(double now);

  SrmConfig config_;
  const StorageBackend* mss_;
  ReplacementPolicy* policy_;
  DiskCache cache_;
  std::vector<Slot> slots_;
};

}  // namespace fbc
