// ReplicaManager: multi-site file replication for the data-grid substrate.
//
// The paper's environment section lists "usage of strategic data
// replication" among the techniques for efficient grid data access (§1).
// This component models it: every file permanently lives at an origin
// site; additional replica sites with bounded replica storage can hold
// copies, and a fetch is served by the cheapest site holding the file.
// replicate_by_popularity() implements the standard greedy strategy:
// hottest files first into the fastest site with room.
#pragma once

#include <string>
#include <vector>

#include "grid/backend.hpp"
#include "grid/mss.hpp"

namespace fbc {

/// One replica location.
struct ReplicaSite {
  std::string name = "site";
  /// Fetch cost model for this site.
  StorageTier tier = {};
  /// Replica storage budget; ignored for the origin (site 0), which holds
  /// every file permanently.
  Bytes replica_capacity = 0;
};

/// Replica placement + cheapest-site fetch costs (see file comment).
class ReplicaManager : public StorageBackend {
 public:
  /// Site 0 is the origin and implicitly holds every file. At least one
  /// site is required; the catalog must outlive the manager.
  ReplicaManager(std::vector<ReplicaSite> sites, const FileCatalog& catalog);

  [[nodiscard]] const FileCatalog& catalog() const noexcept override {
    return *catalog_;
  }

  /// Cheapest fetch time over all sites holding `id`.
  [[nodiscard]] double fetch_seconds(FileId id) const override;

  /// The site realizing fetch_seconds(id).
  [[nodiscard]] std::size_t best_site(FileId id) const;

  /// Number of sites (including the origin).
  [[nodiscard]] std::size_t site_count() const noexcept {
    return sites_.size();
  }

  [[nodiscard]] const ReplicaSite& site(std::size_t index) const {
    return sites_.at(index);
  }

  /// True when `site_index` holds a copy of `id` (always true for the
  /// origin).
  [[nodiscard]] bool has_replica(FileId id, std::size_t site_index) const;

  /// Creates a replica. Throws std::invalid_argument for bad ids/sites,
  /// std::runtime_error when the site's replica budget would overflow.
  /// Replicating onto the origin or twice is a harmless no-op.
  void add_replica(FileId id, std::size_t site_index);

  /// Drops a replica (no-op when absent; the origin copy cannot be
  /// dropped).
  void drop_replica(FileId id, std::size_t site_index);

  /// Replica bytes currently stored at `site_index` (0 for the origin).
  [[nodiscard]] Bytes replica_bytes(std::size_t site_index) const;

  /// Greedy popularity-driven placement: walks files in decreasing
  /// `access_count` order and replicates each onto the fastest non-origin
  /// site that still has room and does not yet hold it. Existing replicas
  /// are kept. `access_counts` is indexed by FileId (missing entries
  /// count 0).
  void replicate_by_popularity(std::span<const std::uint64_t> access_counts);

 private:
  std::vector<ReplicaSite> sites_;
  const FileCatalog* catalog_;
  /// replicas_[site][file] presence; site 0 unused (origin holds all).
  std::vector<std::vector<bool>> replicas_;
  std::vector<Bytes> used_;
  /// Site indices (excluding origin) sorted by fetch speed for a typical
  /// file, fastest first; used by replicate_by_popularity.
  std::vector<std::size_t> speed_order_;
};

}  // namespace fbc
