// ClusterSimulator: an SRM host backed by a cluster of nodes, each with
// its own independent disk and replacement-policy instance (paper §1:
// "An SRM's host that consists of a cluster of machines may have its disk
// cache distributed over independent disks of the cluster nodes").
//
// Files are statically placed on nodes (hash or round-robin over file
// ids); a job's bundle therefore partitions into per-node sub-bundles,
// and the job is a request-hit only when *every* node holds its part.
// Each node runs its own policy over its own cache; there is no global
// coordination -- exactly the deployment the paper's single-cache model
// abstracts, so comparing the two quantifies the partitioning penalty.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cache/cache.hpp"
#include "cache/catalog.hpp"
#include "cache/metrics.hpp"
#include "cache/policy.hpp"

namespace fbc {

/// Static file-to-node placement strategy.
enum class Placement {
  Hash,        ///< node = mix(file id) % nodes (spreads bundles)
  RoundRobin,  ///< node = file id % nodes (locality for id-contiguous
               ///< bundles such as bitmap bin runs)
};

/// Configuration of a cluster-backed cache.
struct ClusterConfig {
  std::size_t nodes = 4;
  /// Capacity of EACH node's disk (total = nodes * node_cache_bytes).
  Bytes node_cache_bytes = 0;
  Placement placement = Placement::Hash;
  /// Jobs excluded from the measured metrics (cold start).
  std::size_t warmup_jobs = 0;
};

/// Outcome of a cluster run.
struct ClusterResult {
  CacheMetrics metrics;               ///< job-level aggregate (post-warm-up)
  CacheMetrics warmup;                ///< warm-up prefix
  std::vector<CacheMetrics> per_node; ///< node-local byte counters
  std::uint64_t decisions = 0;        ///< total replacement decisions
};

/// Drives a job stream through a cluster of independent caches.
class ClusterSimulator {
 public:
  /// `policy_factory` is invoked once per node to create that node's
  /// policy instance. The catalog must outlive the simulator.
  ClusterSimulator(const ClusterConfig& config, const FileCatalog& catalog,
                   const std::function<PolicyPtr()>& policy_factory);

  /// Node hosting file `id`.
  [[nodiscard]] std::size_t node_of(FileId id) const noexcept;

  /// Services `jobs` in order and returns aggregate + per-node metrics.
  /// May be called once per instance.
  ClusterResult run(std::span<const Request> jobs);

  /// Post-run inspection of one node's cache.
  [[nodiscard]] const DiskCache& node_cache(std::size_t node) const {
    return *caches_.at(node);
  }

  [[nodiscard]] std::size_t nodes() const noexcept { return caches_.size(); }

 private:
  ClusterConfig config_;
  const FileCatalog* catalog_;
  std::vector<std::unique_ptr<DiskCache>> caches_;
  std::vector<PolicyPtr> policies_;
  ClusterResult result_;
  bool ran_ = false;
};

}  // namespace fbc
