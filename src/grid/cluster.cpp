#include "grid/cluster.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace fbc {
namespace {

/// splitmix64-style finalizer: decorrelates node choice from file id so
/// id-contiguous bundles spread across nodes under Placement::Hash.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ClusterSimulator::ClusterSimulator(
    const ClusterConfig& config, const FileCatalog& catalog,
    const std::function<PolicyPtr()>& policy_factory)
    : config_(config), catalog_(&catalog) {
  if (config.nodes == 0)
    throw std::invalid_argument("ClusterSimulator: need at least one node");
  if (config.node_cache_bytes == 0)
    throw std::invalid_argument(
        "ClusterSimulator: node_cache_bytes must be > 0");
  caches_.reserve(config.nodes);
  policies_.reserve(config.nodes);
  for (std::size_t n = 0; n < config.nodes; ++n) {
    caches_.push_back(
        std::make_unique<DiskCache>(config.node_cache_bytes, catalog));
    policies_.push_back(policy_factory());
    if (policies_.back() == nullptr)
      throw std::invalid_argument(
          "ClusterSimulator: policy factory returned null");
  }
  result_.per_node.resize(config.nodes);
}

std::size_t ClusterSimulator::node_of(FileId id) const noexcept {
  switch (config_.placement) {
    case Placement::Hash:
      return static_cast<std::size_t>(mix(id) % caches_.size());
    case Placement::RoundRobin:
      return id % caches_.size();
  }
  return 0;
}

ClusterResult ClusterSimulator::run(std::span<const Request> jobs) {
  if (ran_) throw std::logic_error("ClusterSimulator::run: already ran");
  ran_ = true;

  std::vector<std::vector<FileId>> parts(caches_.size());
  std::size_t served = 0;

  for (const Request& job : jobs) {
    CacheMetrics& metrics =
        served < config_.warmup_jobs ? result_.warmup : result_.metrics;
    CacheMetrics* node_metrics =
        served < config_.warmup_jobs ? nullptr : result_.per_node.data();
    ++served;

    // Partition the bundle by node.
    for (auto& part : parts) part.clear();
    for (FileId id : job.files) parts[node_of(id)].push_back(id);

    // Feasibility: every sub-bundle must fit its node's disk.
    bool feasible = true;
    for (std::size_t n = 0; n < parts.size(); ++n) {
      if (catalog_->bundle_bytes(parts[n]) > caches_[n]->capacity()) {
        feasible = false;
        break;
      }
    }
    const Bytes requested = catalog_->request_bytes(job);
    if (!feasible) {
      metrics.record_unserviceable();
      FBC_LOG(Warn) << "cluster: sub-bundle exceeds node capacity for "
                    << job.to_string();
      continue;
    }

    Bytes job_missed = 0;
    std::size_t files_hit = 0;
    for (std::size_t n = 0; n < parts.size(); ++n) {
      if (parts[n].empty()) continue;
      DiskCache& cache = *caches_[n];
      ReplacementPolicy& policy = *policies_[n];
      Request sub{std::vector<FileId>(parts[n])};

      policy.on_job_arrival(sub, cache);
      const std::vector<FileId> missing = cache.missing_files(sub);
      const Bytes sub_requested = catalog_->request_bytes(sub);
      if (missing.empty()) {
        files_hit += sub.size();
        policy.on_request_hit(sub, cache);
        if (node_metrics)
          node_metrics[n].record_job(sub_requested, 0, sub.size(), sub.size());
        continue;
      }
      const Bytes missing_bytes = catalog_->bundle_bytes(missing);
      files_hit += sub.size() - missing.size();
      job_missed += missing_bytes;

      for (FileId id : sub.files) {
        if (cache.contains(id)) cache.pin(id);
      }
      if (cache.free_bytes() < missing_bytes) {
        ++result_.decisions;
        const Bytes needed = missing_bytes - cache.free_bytes();
        for (FileId victim : policy.select_victims(sub, needed, cache)) {
          const Bytes size = catalog_->size_of(victim);
          cache.evict(victim);  // throws on contract violations
          if (node_metrics) node_metrics[n].record_eviction(size);
          policy.on_file_evicted(victim);
        }
        if (cache.free_bytes() < missing_bytes)
          throw std::runtime_error(
              "cluster: policy freed insufficient space on node");
      }
      for (FileId id : missing) cache.insert(id);
      policy.on_files_loaded(sub, missing, cache);
      for (FileId id : sub.files) {
        if (cache.pinned(id)) cache.unpin(id);
      }
      if (node_metrics)
        node_metrics[n].record_job(sub_requested, missing_bytes, sub.size(),
                                   sub.size() - missing.size());
    }

    metrics.record_job(requested, job_missed, job.size(), files_hit);
  }
  return result_;
}

}  // namespace fbc
