// Mass Storage System model: where files live when they are not cached,
// and what it costs (in time) to stage them.
//
// A data-grid host's SRM fronts one or more MSS instances -- local tape
// robots, remote HPSS sites, replica servers across the WAN (paper §2).
// We model each as a StorageTier with a fixed per-request latency (mount,
// queue, RPC) plus a streaming bandwidth, and assign every file to a tier.
#pragma once

#include <string>
#include <vector>

#include "cache/catalog.hpp"
#include "cache/types.hpp"
#include "grid/backend.hpp"

namespace fbc {

/// One storage backend reachable from the SRM host.
struct StorageTier {
  std::string name = "local-mss";
  /// Fixed setup cost per file fetch, seconds (tape mount, WAN RTTs...).
  double latency_s = 1.0;
  /// Streaming bandwidth, bytes/second.
  double bandwidth_bps = 100.0 * 1024 * 1024;

  /// Time to fetch one file of `bytes` from this tier.
  [[nodiscard]] double fetch_seconds(Bytes bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }
};

/// Builds the three canonical tiers used in the examples/benches:
/// a fast local disk pool, a local tape MSS and a remote (WAN) MSS.
[[nodiscard]] std::vector<StorageTier> default_tiers();

/// File-to-tier placement plus fetch-time queries.
class MassStorageSystem : public StorageBackend {
 public:
  /// All files initially live on tier 0. Precondition: at least one tier.
  MassStorageSystem(std::vector<StorageTier> tiers, const FileCatalog& catalog);

  /// Number of tiers.
  [[nodiscard]] std::size_t tier_count() const noexcept {
    return tiers_.size();
  }

  [[nodiscard]] const StorageTier& tier(std::size_t index) const {
    return tiers_.at(index);
  }

  /// Assigns `id` to tier `tier_index`. Precondition: both valid.
  void place_file(FileId id, std::size_t tier_index);

  /// Tier index currently hosting `id`.
  [[nodiscard]] std::size_t tier_of(FileId id) const;

  /// Seconds to fetch `id` from its tier into the cache.
  [[nodiscard]] double fetch_seconds(FileId id) const override;

  /// The catalog file sizes are resolved against.
  [[nodiscard]] const FileCatalog& catalog() const noexcept override {
    return *catalog_;
  }

 private:
  std::vector<StorageTier> tiers_;
  const FileCatalog* catalog_;
  std::vector<std::uint32_t> placement_;
};

}  // namespace fbc
