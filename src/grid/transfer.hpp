// Transfer scheduling: how long staging a set of files takes when the SRM
// runs up to `max_parallel` concurrent transfer streams.
//
// Staging a bundle is a classic makespan problem: each missing file is a
// task whose duration comes from its MSS tier, and streams are identical
// machines. We use Longest-Processing-Time-first list scheduling, the
// standard 4/3-approximate heuristic, which is also what real transfer
// managers effectively do.
#pragma once

#include <span>

#include "cache/types.hpp"
#include "grid/backend.hpp"

namespace fbc {

/// Concurrency configuration for staging transfers.
struct TransferModel {
  /// Number of concurrent transfer streams the SRM may open.
  std::size_t max_parallel = 4;

  /// Seconds until every file in `files` has been staged from `mss`
  /// (LPT makespan across the streams). Empty set costs 0.
  [[nodiscard]] double stage_seconds(std::span<const FileId> files,
                                     const StorageBackend& mss) const;
};

}  // namespace fbc
