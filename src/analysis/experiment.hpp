// Experiment runner: full-factorial parameter sweeps with repetition
// seeds, fanned out across a thread pool, collected into a ResultFrame.
//
// Every figure in the paper's evaluation is a sweep of this shape
// ("1000 hours of CPU time" across parameter combinations, §5); this
// component makes such sweeps declarative:
//
//   ExperimentGrid grid;
//   grid.add_factor("policy", {"optfb", "landlord"});
//   grid.add_factor("popularity", {"uniform", "zipf"});
//   ResultFrame frame = run_experiment(
//       grid, {.repetitions = 5, .master_seed = 1},
//       [&](const ExperimentPoint& p, std::uint64_t seed) {
//         ... run one simulation ...
//         return Measurements{{"byte_miss", value}};
//       });
//   frame.aggregate({"policy", "popularity"}, "byte_miss",
//                   {Agg::Mean, Agg::Ci95}).print(std::cout);
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/frame.hpp"

namespace fbc {

/// One combination of factor levels, by factor name.
using ExperimentPoint = std::map<std::string, std::string>;

/// Named numeric results of one trial.
using Measurements = std::vector<std::pair<std::string, double>>;

/// A trial: runs the configuration `point` with the given seed.
/// Must be thread-safe (trials run concurrently).
using TrialFn =
    std::function<Measurements(const ExperimentPoint& point,
                               std::uint64_t seed)>;

/// Full-factorial design: the cross product of all factor levels.
class ExperimentGrid {
 public:
  /// Adds a factor with at least one level. Factor names must be unique.
  void add_factor(const std::string& name, std::vector<std::string> levels);

  /// Number of factor combinations (1 for an empty grid: a single point).
  [[nodiscard]] std::size_t combinations() const noexcept;

  /// Enumerates all combinations in row-major factor order.
  [[nodiscard]] std::vector<ExperimentPoint> enumerate() const;

  /// Factor names in insertion order.
  [[nodiscard]] const std::vector<std::string>& factor_names() const noexcept {
    return names_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> levels_;
};

/// Execution options for run_experiment.
struct ExperimentOptions {
  /// Trials per combination (distinct derived seeds).
  std::size_t repetitions = 3;
  /// Master seed; trial seeds derive deterministically from it, so the
  /// whole experiment is reproducible regardless of thread scheduling.
  std::uint64_t master_seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// Runs every (combination, repetition) trial and returns a frame with
/// columns: factors..., "seed", then one column per measurement name (the
/// set of names must be identical across trials). Row order is
/// deterministic (combination-major), independent of scheduling.
/// A trial that throws aborts the experiment with its exception.
[[nodiscard]] ResultFrame run_experiment(const ExperimentGrid& grid,
                                         const ExperimentOptions& options,
                                         const TrialFn& trial);

}  // namespace fbc
