// ResultFrame: a small typed table for experiment results.
//
// Benchmarks and parameter sweeps produce rows of (factor levels,
// measurements); this frame stores them, renders them (aligned text or
// CSV), and supports the one analysis everything here needs: group rows
// by some columns and aggregate a numeric column (mean / min / max /
// count / ci95) across the groups -- e.g. averaging byte-miss ratios over
// repetition seeds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "util/stats.hpp"

namespace fbc {

/// One table cell: text (factor level) or number (measurement).
using Cell = std::variant<std::string, double, std::int64_t>;

/// Renders any cell as text ("0.25", "landlord", "42").
[[nodiscard]] std::string cell_to_string(const Cell& cell);

/// Numeric view of a cell; throws std::invalid_argument for text cells.
[[nodiscard]] double cell_to_double(const Cell& cell);

/// Aggregations supported by ResultFrame::aggregate.
enum class Agg { Mean, Min, Max, Count, Ci95, Median, P95 };

/// Typed result table (see file comment).
class ResultFrame {
 public:
  /// Creates an empty frame with named columns (at least one).
  explicit ResultFrame(std::vector<std::string> columns);

  /// Appends a row; must have exactly cols() cells.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Index of a column; throws std::invalid_argument when unknown.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Cell access. Precondition: row < rows(), valid column.
  [[nodiscard]] const Cell& at(std::size_t row,
                               const std::string& column) const;

  /// Rows where `column` renders equal to `value`.
  [[nodiscard]] ResultFrame filter(const std::string& column,
                                   const std::string& value) const;

  /// Groups rows by `keys` (order-preserving on first appearance) and
  /// aggregates the numeric column `value` with each requested
  /// aggregation. Result columns: keys..., then "<value>_<agg>" per agg.
  [[nodiscard]] ResultFrame aggregate(const std::vector<std::string>& keys,
                                      const std::string& value,
                                      const std::vector<Agg>& aggs) const;

  /// Sorts rows by `column` ascending (numeric when the column is
  /// numeric in every row, lexicographic otherwise). Stable.
  void sort_by(const std::string& column);

  /// Aligned text rendering.
  void print(std::ostream& os) const;

  /// CSV rendering.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Returns "mean" / "min" / "max" / "count" / "ci95".
[[nodiscard]] std::string to_string(Agg agg);

}  // namespace fbc
