#include "analysis/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fbc {

void ExperimentGrid::add_factor(const std::string& name,
                                std::vector<std::string> levels) {
  if (levels.empty())
    throw std::invalid_argument("ExperimentGrid: factor '" + name +
                                "' has no levels");
  if (std::find(names_.begin(), names_.end(), name) != names_.end())
    throw std::invalid_argument("ExperimentGrid: duplicate factor '" + name +
                                "'");
  names_.push_back(name);
  levels_.push_back(std::move(levels));
}

std::size_t ExperimentGrid::combinations() const noexcept {
  std::size_t total = 1;
  for (const auto& levels : levels_) total *= levels.size();
  return total;
}

std::vector<ExperimentPoint> ExperimentGrid::enumerate() const {
  std::vector<ExperimentPoint> points;
  points.reserve(combinations());
  std::vector<std::size_t> cursor(levels_.size(), 0);
  for (;;) {
    ExperimentPoint point;
    for (std::size_t f = 0; f < names_.size(); ++f) {
      point.emplace(names_[f], levels_[f][cursor[f]]);
    }
    points.push_back(std::move(point));
    // Odometer increment, last factor fastest.
    std::size_t f = levels_.size();
    while (f > 0) {
      --f;
      if (++cursor[f] < levels_[f].size()) break;
      cursor[f] = 0;
      if (f == 0) return points;
    }
    if (levels_.empty()) return points;  // single empty point
  }
}

ResultFrame run_experiment(const ExperimentGrid& grid,
                           const ExperimentOptions& options,
                           const TrialFn& trial) {
  if (options.repetitions == 0)
    throw std::invalid_argument("run_experiment: repetitions must be >= 1");

  const std::vector<ExperimentPoint> points = grid.enumerate();
  const std::size_t total_trials = points.size() * options.repetitions;

  // Derive all seeds up front so results are scheduling-independent.
  Rng master(options.master_seed);
  std::vector<std::uint64_t> seeds(total_trials);
  for (std::size_t i = 0; i < total_trials; ++i) {
    seeds[i] = master.derive_seed(i);
  }

  std::vector<Measurements> results(total_trials);
  {
    ThreadPool pool(options.threads);
    pool.parallel_for(total_trials, [&](std::size_t i) {
      results[i] = trial(points[i / options.repetitions], seeds[i]);
    });
  }

  // Column layout from the first trial's measurement names.
  if (results.empty())
    throw std::logic_error("run_experiment: no trials executed");
  std::vector<std::string> columns = grid.factor_names();
  columns.emplace_back("seed");
  for (const auto& [name, value] : results.front()) columns.push_back(name);

  ResultFrame frame(columns);
  for (std::size_t i = 0; i < total_trials; ++i) {
    const ExperimentPoint& point = points[i / options.repetitions];
    std::vector<Cell> row;
    row.reserve(columns.size());
    for (const std::string& factor : grid.factor_names()) {
      row.emplace_back(point.at(factor));
    }
    row.emplace_back(static_cast<std::int64_t>(seeds[i]));
    if (results[i].size() != results.front().size())
      throw std::runtime_error(
          "run_experiment: trials returned differing measurement sets");
    for (std::size_t m = 0; m < results[i].size(); ++m) {
      if (results[i][m].first != results.front()[m].first)
        throw std::runtime_error(
            "run_experiment: trials returned differing measurement names");
      row.emplace_back(results[i][m].second);
    }
    frame.add_row(std::move(row));
  }
  return frame;
}

}  // namespace fbc
