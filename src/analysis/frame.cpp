#include "analysis/frame.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace fbc {

std::string cell_to_string(const Cell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* number = std::get_if<double>(&cell))
    return format_double(*number);
  return std::to_string(std::get<std::int64_t>(cell));
}

double cell_to_double(const Cell& cell) {
  if (const auto* number = std::get_if<double>(&cell)) return *number;
  if (const auto* integer = std::get_if<std::int64_t>(&cell))
    return static_cast<double>(*integer);
  throw std::invalid_argument("cell_to_double: cell holds text, not a number");
}

std::string to_string(Agg agg) {
  switch (agg) {
    case Agg::Mean: return "mean";
    case Agg::Min: return "min";
    case Agg::Max: return "max";
    case Agg::Count: return "count";
    case Agg::Ci95: return "ci95";
    case Agg::Median: return "median";
    case Agg::P95: return "p95";
  }
  return "?";
}

ResultFrame::ResultFrame(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty())
    throw std::invalid_argument("ResultFrame: need at least one column");
}

void ResultFrame::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("ResultFrame: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::size_t ResultFrame::column_index(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  if (it == columns_.end())
    throw std::invalid_argument("ResultFrame: unknown column '" + name + "'");
  return static_cast<std::size_t>(it - columns_.begin());
}

const Cell& ResultFrame::at(std::size_t row, const std::string& column) const {
  return rows_.at(row)[column_index(column)];
}

ResultFrame ResultFrame::filter(const std::string& column,
                                const std::string& value) const {
  const std::size_t idx = column_index(column);
  ResultFrame out(columns_);
  for (const auto& row : rows_) {
    if (cell_to_string(row[idx]) == value) out.rows_.push_back(row);
  }
  return out;
}

ResultFrame ResultFrame::aggregate(const std::vector<std::string>& keys,
                                   const std::string& value,
                                   const std::vector<Agg>& aggs) const {
  if (aggs.empty())
    throw std::invalid_argument("ResultFrame::aggregate: no aggregations");
  std::vector<std::size_t> key_idx;
  key_idx.reserve(keys.size());
  for (const std::string& key : keys) key_idx.push_back(column_index(key));
  const std::size_t value_idx = column_index(value);

  const bool need_values =
      std::any_of(aggs.begin(), aggs.end(), [](Agg agg) {
        return agg == Agg::Median || agg == Agg::P95;
      });

  // Group rows, preserving first-appearance order.
  std::vector<std::vector<std::string>> group_keys;
  std::vector<RunningStats> group_stats;
  std::vector<std::vector<double>> group_values;
  std::map<std::vector<std::string>, std::size_t> lookup;
  for (const auto& row : rows_) {
    std::vector<std::string> group;
    group.reserve(key_idx.size());
    for (std::size_t idx : key_idx) group.push_back(cell_to_string(row[idx]));
    auto [it, inserted] = lookup.try_emplace(group, group_keys.size());
    if (inserted) {
      group_keys.push_back(group);
      group_stats.emplace_back();
      group_values.emplace_back();
    }
    const double observation = cell_to_double(row[value_idx]);
    group_stats[it->second].add(observation);
    if (need_values) group_values[it->second].push_back(observation);
  }

  std::vector<std::string> out_columns = keys;
  for (Agg agg : aggs) out_columns.push_back(value + "_" + to_string(agg));
  ResultFrame out(out_columns);
  for (std::size_t g = 0; g < group_keys.size(); ++g) {
    std::vector<Cell> row;
    row.reserve(out_columns.size());
    for (const std::string& key : group_keys[g]) row.emplace_back(key);
    for (Agg agg : aggs) {
      switch (agg) {
        case Agg::Mean: row.emplace_back(group_stats[g].mean()); break;
        case Agg::Min: row.emplace_back(group_stats[g].min()); break;
        case Agg::Max: row.emplace_back(group_stats[g].max()); break;
        case Agg::Count:
          row.emplace_back(static_cast<std::int64_t>(group_stats[g].count()));
          break;
        case Agg::Ci95:
          row.emplace_back(group_stats[g].ci95_halfwidth());
          break;
        case Agg::Median:
          row.emplace_back(quantile(group_values[g], 0.5));
          break;
        case Agg::P95:
          row.emplace_back(quantile(group_values[g], 0.95));
          break;
      }
    }
    out.add_row(std::move(row));
  }
  return out;
}

void ResultFrame::sort_by(const std::string& column) {
  const std::size_t idx = column_index(column);
  const bool numeric = std::all_of(
      rows_.begin(), rows_.end(), [idx](const std::vector<Cell>& row) {
        return !std::holds_alternative<std::string>(row[idx]);
      });
  std::stable_sort(rows_.begin(), rows_.end(),
                   [idx, numeric](const auto& a, const auto& b) {
                     if (numeric)
                       return cell_to_double(a[idx]) < cell_to_double(b[idx]);
                     return cell_to_string(a[idx]) < cell_to_string(b[idx]);
                   });
}

void ResultFrame::print(std::ostream& os) const {
  TextTable table(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) cells.push_back(cell_to_string(cell));
    table.add_row(std::move(cells));
  }
  table.print(os);
}

void ResultFrame::print_csv(std::ostream& os) const {
  TextTable table(columns_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) cells.push_back(cell_to_string(cell));
    table.add_row(std::move(cells));
  }
  table.print_csv(os);
}

}  // namespace fbc
