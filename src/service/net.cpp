#include "service/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <vector>

namespace fbc::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UniqueFd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

UniqueFd listen_loopback(std::uint16_t port, std::uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
    throw_errno("setsockopt(SO_REUSEADDR)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw_errno("getsockname");
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

UniqueFd connect_loopback(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      break;
    if (errno == EINTR) continue;
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  // Request/reply protocol: disable Nagle so small frames round-trip fast.
  set_nodelay(fd.get());
  return fd;
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool write_full(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: report a dead peer via EPIPE instead of SIGPIPE.
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_full(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return false;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw NetError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

FrameReader::Fill FrameReader::fill(int fd, bool block) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // creep rightward forever on a long-lived connection.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  constexpr std::size_t kChunk = 16 * 1024;
  const std::size_t old_size = buf_.size();
  buf_.resize(old_size + kChunk);
  for (;;) {
    const ssize_t n =
        ::recv(fd, buf_.data() + old_size, kChunk, block ? 0 : MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      buf_.resize(old_size);
      if (!block && (errno == EAGAIN || errno == EWOULDBLOCK))
        return Fill::Empty;
      if (errno == ECONNRESET) return Fill::Eof;
      throw_errno("recv");
    }
    buf_.resize(old_size + static_cast<std::size_t>(n));
    return n == 0 ? Fill::Eof : Fill::Data;
  }
}

std::optional<Message> FrameReader::take() {
  if (have() < kFrameHeaderBytes) return std::nullopt;
  const FrameHeader header =
      decode_header({buf_.data() + pos_, kFrameHeaderBytes});
  if (have() < kFrameHeaderBytes + header.payload_len) return std::nullopt;
  Message message = decode_payload(
      header.type,
      {buf_.data() + pos_ + kFrameHeaderBytes, header.payload_len});
  pos_ += kFrameHeaderBytes + header.payload_len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return message;
}

std::optional<Message> FrameReader::next(int fd) {
  for (;;) {
    if (std::optional<Message> message = take()) return message;
    switch (fill(fd, /*block=*/true)) {
      case Fill::Data:
        break;
      case Fill::Eof:
        if (have() == 0) return std::nullopt;
        throw NetError("connection closed mid-frame");
      case Fill::Empty:
        break;  // unreachable: blocking fill never reports Empty
    }
  }
}

bool FrameReader::buffered_next(Message* out) {
  std::optional<Message> message = take();
  if (!message.has_value()) return false;
  *out = std::move(*message);
  return true;
}

TryRecv FrameReader::try_next(int fd, Message* out) {
  for (;;) {
    if (std::optional<Message> message = take()) {
      *out = std::move(*message);
      return TryRecv::Got;
    }
    // A partial frame in the buffer means the peer committed to it;
    // finish it with a blocking read. Only a clean boundary probes.
    switch (fill(fd, /*block=*/have() > 0)) {
      case Fill::Data:
        break;
      case Fill::Empty:
        return TryRecv::Empty;
      case Fill::Eof:
        if (have() == 0) return TryRecv::Eof;
        throw NetError("connection closed mid-frame");
    }
  }
}

bool send_message(int fd, const Message& message) {
  std::vector<std::uint8_t> frame;
  encode_frame(message, &frame);
  return write_full(fd, frame.data(), frame.size());
}

std::optional<Message> recv_message(int fd) {
  std::uint8_t header_bytes[kFrameHeaderBytes];
  if (!read_full(fd, header_bytes, sizeof header_bytes)) return std::nullopt;
  const FrameHeader header =
      decode_header({header_bytes, sizeof header_bytes});
  std::vector<std::uint8_t> payload(header.payload_len);
  if (header.payload_len > 0 &&
      !read_full(fd, payload.data(), payload.size()))
    throw NetError("connection closed mid-frame");
  return decode_payload(header.type, payload);
}

}  // namespace fbc::service
