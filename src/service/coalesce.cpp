#include "service/coalesce.hpp"

#include <chrono>

namespace fbc::service {

void FetchCoalescer::begin_fetch(std::span<const FileId> files) {
  if (files.empty()) return;
  std::lock_guard<OrderedMutex> lock(inflight_mu_);
  ++transfers_;
  for (FileId id : files) ++in_flight_[id];
}

void FetchCoalescer::complete_fetch(std::span<const FileId> files) {
  if (files.empty()) return;
  {
    std::lock_guard<OrderedMutex> lock(inflight_mu_);
    for (FileId id : files) {
      const auto it = in_flight_.find(id);
      if (it != in_flight_.end() && --it->second == 0) in_flight_.erase(it);
    }
  }
  cv_.notify_all();
}

CoalesceWait FetchCoalescer::wait_for(std::span<const FileId> files) {
  CoalesceWait result;
  if (files.empty()) return result;
  std::unique_lock<OrderedMutex> lock(inflight_mu_);
  std::size_t overlapping = 0;
  for (FileId id : files) {
    if (in_flight_.count(id) != 0) ++overlapping;
  }
  if (overlapping == 0) return result;
  ++coalesced_waits_;
  result.waited_files = overlapping;
  const auto start = std::chrono::steady_clock::now();
  cv_.wait(lock, [&] {
    for (FileId id : files) {
      if (in_flight_.count(id) != 0) return false;
    }
    return true;
  });
  result.wait_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

std::uint64_t FetchCoalescer::transfers() const {
  std::lock_guard<OrderedMutex> lock(inflight_mu_);
  return transfers_;
}

std::uint64_t FetchCoalescer::coalesced_waits() const {
  std::lock_guard<OrderedMutex> lock(inflight_mu_);
  return coalesced_waits_;
}

std::size_t FetchCoalescer::in_flight() const {
  std::lock_guard<OrderedMutex> lock(inflight_mu_);
  return in_flight_.size();
}

}  // namespace fbc::service
